"""The examples must run end-to-end (they double as integration tests)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "byte-exact" in out
    assert "unbalanced" in out


def test_scheme_shootout(capsys):
    run_example("scheme_shootout.py", ["3"])
    out = capsys.readouterr().out
    assert "robustore" in out
    assert "RobuSTore vs RAID-0" in out


def test_qos_planning(capsys):
    run_example("qos_planning.py")
    out = capsys.readouterr().out
    assert "planned:" in out
    assert "simulated:" in out


def test_codes_playground(capsys):
    run_example("codes_playground.py")
    out = capsys.readouterr().out
    assert "Reed-Solomon" in out
    assert "LT (improved)" in out


def test_trace_replay(capsys):
    run_example("trace_replay.py")
    out = capsys.readouterr().out
    assert "fcfs" in out and "sstf" in out
    assert "Replay under different disk schedulers" in out


def test_failure_tolerance(capsys):
    run_example("failure_tolerance.py")
    out = capsys.readouterr().out
    assert "RobuSTore still succeeds" in out
    assert "post-repair read" in out


def test_shared_cluster(capsys):
    run_example("shared_cluster.py", ["2"])
    out = capsys.readouterr().out
    assert "concurrent clients" in out
    assert "robustore" in out
