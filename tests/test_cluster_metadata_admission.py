"""Tests for the metadata server and admission control."""

import pytest

from repro.cluster.admission import (
    AdmissionController,
    CapacityAdmission,
    Flow,
    PriorityAdmission,
    effective_disk_share,
    pick_admitted_server,
)
from repro.cluster.metadata import FileLockedError, FileRecord, MetadataServer


class TestMetadata:
    def test_open_missing_file_for_read_raises(self):
        md = MetadataServer()
        with pytest.raises(KeyError):
            md.open("nope", "r")

    def test_write_then_read_roundtrip(self):
        md = MetadataServer()
        rec, lat = md.open("f", "w")
        assert rec is None and lat == md.latency_s
        md.commit(FileRecord("f", 100, "robustore", disk_ids=[1, 2], placement=[[0], [1]]))
        md.close("f")
        rec, _ = md.open("f", "r")
        assert rec.total_blocks == 2
        assert rec.disk_ids == [1, 2]

    def test_write_lock_excludes_everyone(self):
        md = MetadataServer()
        md.open("f", "w")
        with pytest.raises(FileLockedError):
            md.open("f", "w")
        with pytest.raises(FileLockedError):
            md.open("f", "r")
        md.close("f")
        md.commit(FileRecord("f", 1, "raid0"))
        md.open("f", "r")  # fine after release

    def test_read_lock_allows_readers_blocks_writer(self):
        md = MetadataServer()
        md.commit(FileRecord("f", 1, "raid0"))
        md.open("f", "r")
        md.open("f", "r")  # shared
        with pytest.raises(FileLockedError):
            md.open("f", "w")

    def test_invalid_mode(self):
        md = MetadataServer()
        with pytest.raises(ValueError):
            md.open("f", "rw")

    def test_server_registry(self):
        md = MetadataServer()
        md.register_server(3, {"capacity": 100})
        md.update_server_load(3, 0.7)
        assert md.server_info(3)["load"] == 0.7
        assert md.known_servers == [3]

    def test_delete(self):
        md = MetadataServer()
        md.commit(FileRecord("f", 1, "raid0"))
        md.delete("f")
        assert not md.exists("f")

    def test_access_counter_and_latency(self):
        md = MetadataServer(latency_s=0.007)
        md.open("f", "w")
        md.commit(FileRecord("f", 1, "raid0"))
        md.close("f")
        assert md.accesses == 3
        assert md.latency_s == 0.007

    def test_update_placement(self):
        md = MetadataServer()
        md.commit(FileRecord("f", 1, "robustore", placement=[[0]]))
        md.update_placement("f", [[0, 1]])
        assert md.lookup("f").placement == [[0, 1]]


class TestAdmission:
    def test_base_admits_everything(self):
        ac = AdmissionController()
        for _ in range(100):
            assert ac.request(Flow(nbytes=1))
        assert ac.refused == 0

    def test_capacity_refuses_when_full(self):
        ac = CapacityAdmission(capacity=2)
        f1, f2, f3 = Flow(1), Flow(1), Flow(1)
        assert ac.request(f1) and ac.request(f2)
        assert not ac.request(f3)
        assert ac.refused == 1
        ac.release(f1)
        assert ac.request(f3)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CapacityAdmission(capacity=0)

    def test_priority_preempts_lower(self):
        ac = PriorityAdmission(capacity=1)
        low = Flow(1, priority=5)
        high = Flow(1, priority=1)
        assert ac.request(low)
        assert ac.request(high)  # preempts
        assert low.flow_id in ac.preempted
        assert ac.active_flows == 1

    def test_priority_equal_is_refused(self):
        ac = PriorityAdmission(capacity=1)
        assert ac.request(Flow(1, priority=2))
        assert not ac.request(Flow(1, priority=2))
        assert ac.refused == 1

    def test_effective_disk_share_decreasing(self):
        shares = [effective_disk_share(n) for n in range(1, 6)]
        assert shares[0] == 1.0
        assert all(b < a for a, b in zip(shares, shares[1:]))
        with pytest.raises(ValueError):
            effective_disk_share(0)

    def test_pick_admitted_server_prefers_then_falls_back(self):
        ctrls = [CapacityAdmission(1), CapacityAdmission(1)]
        assert pick_admitted_server(ctrls, Flow(1), preferred=1) == 1
        assert pick_admitted_server(ctrls, Flow(1), preferred=1) == 0
        assert pick_admitted_server(ctrls, Flow(1), preferred=1) is None
