"""Tests for the vectorised block service model, incl. cross-validation
against the event-driven drive."""

import numpy as np
import pytest

from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.mechanics import DiskMechanics
from repro.disk.service import BackgroundLoad, BlockService, served_before
from repro.disk.workload import InDiskLayout, SyntheticWorkload
from repro.sim import Environment

MB = 1 << 20


def make_service(bf=256, p_seq=1.0, seed=0, bg=None):
    mech = DiskMechanics()
    return BlockService(
        mech, InDiskLayout(bf, p_seq), spt=870, rng=np.random.default_rng(seed), background=bg
    )


class TestBlockServiceTimes:
    def test_shapes_and_positivity(self):
        svc = make_service()
        t = svc.block_service_times(32, 1 * MB)
        assert t.shape == (32,)
        assert np.all(t > 0)

    def test_empty(self):
        svc = make_service()
        assert svc.block_service_times(0, MB).size == 0

    def test_sequential_layout_faster(self):
        fast = make_service(bf=1024, p_seq=1.0, seed=1)
        slow = make_service(bf=8, p_seq=0.0, seed=1)
        t_fast = fast.block_service_times(16, MB).mean()
        t_slow = slow.block_service_times(16, MB).mean()
        assert t_slow > 20 * t_fast  # ~80x grid spread

    def test_standalone_bandwidth_sane(self):
        svc = make_service(bf=256, p_seq=1.0)
        bw = svc.standalone_bandwidth()
        assert 10 * MB < bw < 80 * MB

    def test_deterministic_per_seed(self):
        a = make_service(seed=3).block_service_times(8, MB)
        b = make_service(seed=3).block_service_times(8, MB)
        assert np.array_equal(a, b)


class TestCompletions:
    def test_no_background_is_cumsum(self):
        svc = make_service()
        s = np.array([0.1, 0.2, 0.3])
        c = svc.completions(s, start=1.0)
        assert np.allclose(c, [1.1, 1.3, 1.6])

    def test_background_delays_completions(self):
        quiet = make_service(seed=4)
        s = quiet.block_service_times(32, MB)
        base = quiet.completions(s, 0.0)

        loaded = make_service(seed=4, bg=BackgroundLoad(interval_s=0.02))
        c = loaded.completions(s, 0.0)
        assert np.all(c >= base - 1e-12)
        assert c[-1] > base[-1] * 1.1

    def test_heavier_background_delays_more(self):
        s = make_service(seed=5).block_service_times(32, MB)
        light = make_service(seed=5, bg=BackgroundLoad(0.1)).completions(s, 0.0)
        heavy = make_service(seed=5, bg=BackgroundLoad(0.008)).completions(s, 0.0)
        assert heavy[-1] > light[-1]

    def test_saturating_background_dilates_but_never_starves(self):
        """A fair drive caps background at one request per foreground
        request, so even an over-saturating stream only dilates (§6.3.2)."""
        svc = make_service(seed=6, bg=BackgroundLoad(interval_s=0.004))
        c = svc.completions(np.array([0.01, 0.01]), 0.0, reqs_per_item=4)
        assert np.all(np.isfinite(c))
        assert c[-1] > 0.02 * 1.5  # heavily dilated nonetheless

    def test_utilization_matches_paper_6ms(self):
        """6 ms interval ~= 93 % disk utilisation (§6.2.5)."""
        bg = BackgroundLoad(interval_s=0.006)
        mech = DiskMechanics()
        assert bg.utilization(mech, 870) == pytest.approx(0.93, abs=0.05)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            BackgroundLoad(interval_s=-1)


class TestServedBefore:
    def test_counts_in_flight_block(self):
        c = np.array([1.0, 2.0, 3.0])
        assert served_before(c, 0.5) == 1  # first block in flight
        assert served_before(c, 1.5) == 2
        assert served_before(c, 9.9) == 3

    def test_exact_boundary(self):
        c = np.array([1.0, 2.0])
        assert served_before(c, 1.0) == 2  # first done, second in flight

    def test_empty(self):
        assert served_before(np.array([]), 1.0) == 0


class TestCrossValidation:
    """The closed-form model agrees with the event-driven drive."""

    @pytest.mark.parametrize("bf,p_seq", [(64, 0.0), (256, 1.0)])
    def test_mean_bandwidth_matches_event_driven(self, bf, p_seq):
        mech = DiskMechanics()
        layout = InDiskLayout(bf, p_seq)
        total_sectors = 16 * MB // 512

        # Event-driven: run the synthetic request stream through DiskDrive.
        env = Environment()
        drive = DiskDrive(env, mech, np.random.default_rng(10))
        wl = SyntheticWorkload(layout, 0, 10_000_000, np.random.default_rng(11))
        reqs = []
        last = None
        for pat in wl.requests(total_sectors):
            lba = (last if pat.sequential and last is not None else pat.lba)
            reqs.append(drive.read(lba, pat.sectors))
            last = lba + pat.sectors
        env.run()
        event_time = max(r.done.value for r in reqs)

        # Closed form: same workload parameters, middle zone.
        svc = BlockService(mech, layout, spt=870, rng=np.random.default_rng(12))
        t = svc.block_service_times(16, MB)
        model_time = float(t.sum())

        assert model_time == pytest.approx(event_time, rel=0.35)

    def test_background_dilation_matches_event_driven(self):
        """Fair-shared background slows both engines comparably."""
        mech = DiskMechanics()
        layout = InDiskLayout(256, 0.0)
        interval = 0.025

        from repro.disk.workload import BackgroundWorkload

        env = Environment()
        drive = DiskDrive(env, mech, np.random.default_rng(20), scheduler="fair")
        drive.attach_background(BackgroundWorkload(interval, np.random.default_rng(21)))
        wl = SyntheticWorkload(layout, 0, 10_000_000, np.random.default_rng(22))
        reqs = [drive.read(p.lba, p.sectors) for p in wl.requests(8 * MB // 512)]
        from repro.sim import AllOf

        env.run(until=AllOf(env, [r.done for r in reqs]))
        event_time = max(r.done.value for r in reqs if r.done.value is not None)

        svc = BlockService(
            mech, layout, spt=870, rng=np.random.default_rng(23),
            background=BackgroundLoad(interval_s=interval),
        )
        c = svc.serve(8, MB, 0.0)
        assert float(c[-1]) == pytest.approx(event_time, rel=0.5)
