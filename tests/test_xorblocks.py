"""Tests for the XOR block kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import xorblocks as xb


def test_xor_into_basic():
    a = np.array([1, 2, 3, 4, 5, 6, 7, 8], dtype=np.uint8)
    b = np.array([8, 7, 6, 5, 4, 3, 2, 1], dtype=np.uint8)
    expect = a ^ b
    xb.xor_into(a, b)
    assert np.array_equal(a, expect)


def test_xor_into_is_involution():
    rng = np.random.default_rng(0)
    a = xb.random_blocks(rng, 1, 64)[0]
    b = xb.random_blocks(rng, 1, 64)[0]
    orig = a.copy()
    xb.xor_into(a, b)
    xb.xor_into(a, b)
    assert np.array_equal(a, orig)


def test_xor_into_shape_mismatch():
    a = np.zeros(8, dtype=np.uint8)
    b = np.zeros(16, dtype=np.uint8)
    with pytest.raises(ValueError):
        xb.xor_into(a, b)


def test_xor_into_rejects_non_uint8():
    a = np.zeros(8, dtype=np.uint16)
    with pytest.raises(TypeError):
        xb.xor_into(a, a.copy())


def test_xor_into_rejects_unaligned_length():
    a = np.zeros(7, dtype=np.uint8)
    with pytest.raises(ValueError):
        xb.xor_into(a, a.copy())


def test_xor_into_large_striped_path():
    rng = np.random.default_rng(1)
    n = xb.STRIPE_BYTES * 2 + 64
    a = rng.integers(0, 256, n, dtype=np.uint8)
    b = rng.integers(0, 256, n, dtype=np.uint8)
    expect = a ^ b
    xb.xor_into(a, b)
    assert np.array_equal(a, expect)


def test_xor_reduce_empty_is_zero():
    blocks = np.ones((3, 16), dtype=np.uint8)
    out = xb.xor_reduce(blocks, [])
    assert np.array_equal(out, np.zeros(16, dtype=np.uint8))


def test_xor_reduce_single_is_copy():
    rng = np.random.default_rng(2)
    blocks = xb.random_blocks(rng, 4, 32)
    out = xb.xor_reduce(blocks, [2])
    assert np.array_equal(out, blocks[2])
    out[0] ^= 0xFF
    assert not np.array_equal(out, blocks[2])  # no aliasing


def test_xor_reduce_matches_naive():
    rng = np.random.default_rng(3)
    blocks = xb.random_blocks(rng, 10, 24)
    idx = [0, 3, 7, 9]
    naive = np.zeros(24, dtype=np.uint8)
    for i in idx:
        naive ^= blocks[i]
    assert np.array_equal(xb.xor_reduce(blocks, idx), naive)


def test_split_and_join_roundtrip():
    data = bytes(range(100)) * 3
    blocks = xb.split_into_blocks(data, 64)
    assert blocks.shape == (5, 64)
    assert xb.join_blocks(blocks, total_len=len(data)) == data


def test_split_pads_with_zeros():
    blocks = xb.split_into_blocks(b"\x01\x02", 8)
    assert blocks.shape == (1, 8)
    assert list(blocks[0]) == [1, 2, 0, 0, 0, 0, 0, 0]


def test_split_rejects_bad_block_len():
    with pytest.raises(ValueError):
        xb.split_into_blocks(b"abc", 7)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_xor_reduce_associativity_property(n_blocks, words, seed):
    """XOR of any index multiset equals XOR of its odd-count members."""
    rng = np.random.default_rng(seed)
    blocks = xb.random_blocks(rng, n_blocks, words * 8)
    idx = list(rng.integers(0, n_blocks, size=rng.integers(0, 10)))
    odd = [i for i in range(n_blocks) if idx.count(i) % 2 == 1]
    assert np.array_equal(xb.xor_reduce(blocks, idx), xb.xor_reduce(blocks, odd))


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=500), st.sampled_from([8, 16, 64, 128]))
def test_split_join_property(data, block_len):
    blocks = xb.split_into_blocks(data, block_len)
    assert xb.join_blocks(blocks, total_len=len(data)) == data
    assert blocks.shape[1] == block_len
