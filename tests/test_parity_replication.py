"""Tests for the parity and replication codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import ParityCode, ReplicationCode
from repro.coding.xorblocks import random_blocks


class TestParity:
    def test_encode_appends_parity(self):
        rng = np.random.default_rng(0)
        code = ParityCode(3)
        data = random_blocks(rng, 3, 8)
        coded = code.encode(data)
        assert coded.shape == (4, 8)
        assert np.array_equal(coded[3], data[0] ^ data[1] ^ data[2])

    def test_recover_missing_data_block(self):
        rng = np.random.default_rng(1)
        code = ParityCode(4)
        data = random_blocks(rng, 4, 16)
        coded = code.encode(data)
        ids = [0, 2, 3, 4]  # block 1 missing, parity present
        out = code.decode(ids, coded[ids])
        assert np.array_equal(out, data)

    def test_all_data_blocks_no_parity(self):
        rng = np.random.default_rng(2)
        code = ParityCode(4)
        data = random_blocks(rng, 4, 16)
        coded = code.encode(data)
        out = code.decode([0, 1, 2, 3], coded[:4])
        assert np.array_equal(out, data)

    def test_two_erasures_rejected(self):
        code = ParityCode(4)
        with pytest.raises(ValueError):
            code.decode([0, 1, 4], np.zeros((3, 8), np.uint8))

    def test_rate(self):
        assert ParityCode(4).rate == pytest.approx(0.8)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ParityCode(0)

    def test_wrong_block_count(self):
        code = ParityCode(3)
        with pytest.raises(ValueError):
            code.encode(np.zeros((2, 8), np.uint8))


class TestReplication:
    def test_encode_tiles(self):
        rng = np.random.default_rng(3)
        code = ReplicationCode(3, replicas=2)
        data = random_blocks(rng, 3, 8)
        coded = code.encode(data)
        assert coded.shape == (6, 8)
        assert np.array_equal(coded[:3], data)
        assert np.array_equal(coded[3:], data)

    def test_original_of_and_replica_ids(self):
        code = ReplicationCode(4, replicas=3)
        assert code.original_of(0) == 0
        assert code.original_of(5) == 1
        assert list(code.replica_ids(2)) == [2, 6, 10]
        with pytest.raises(IndexError):
            code.original_of(12)
        with pytest.raises(IndexError):
            code.replica_ids(4)

    def test_decode_needs_full_coverage(self):
        rng = np.random.default_rng(4)
        code = ReplicationCode(3, replicas=2)
        data = random_blocks(rng, 3, 8)
        coded = code.encode(data)
        out = code.decode([3, 1, 5], coded[[3, 1, 5]])
        assert np.array_equal(out, data)
        with pytest.raises(ValueError):
            code.decode([0, 3], coded[[0, 3]])  # block 1, 2 uncovered

    def test_covered(self):
        code = ReplicationCode(2, replicas=2)
        assert code.covered([0, 3])
        assert not code.covered([0, 2])

    def test_blocks_needed(self):
        code = ReplicationCode(2, replicas=2)
        assert code.blocks_needed([0, 2, 1]) == 3  # 0 then dup of 0 then 1
        assert code.blocks_needed([0, 1]) == 2
        assert code.blocks_needed([0, 2]) == 3  # sentinel: never covered

    def test_rate_redundancy(self):
        code = ReplicationCode(4, replicas=4)
        assert code.rate == 0.25
        assert code.redundancy == 3.0

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_random_permutation_coverage_property(self, k, r, seed):
        """Reading all N replicas in any order always reconstructs."""
        rng = np.random.default_rng(seed)
        code = ReplicationCode(k, replicas=r)
        data = random_blocks(rng, k, 8)
        coded = code.encode(data)
        order = rng.permutation(code.n)
        needed = code.blocks_needed(order)
        assert needed <= code.n
        out = code.decode(order[:needed], coded[order[:needed]])
        assert np.array_equal(out, data)
