"""Tests for the distributed metadata service."""

import pytest

from repro.cluster.metadata import FileLockedError, FileRecord
from repro.cluster.metadata_distributed import DistributedMetadataServer
from repro.cluster.server import Cluster
from repro.core import SCHEMES
from repro.core.access import MB, AccessConfig
from repro.sim.rng import RngHub


def make(n_nodes=4, sync_replicas=1):
    return DistributedMetadataServer(n_nodes=n_nodes, sync_replicas=sync_replicas)


def test_commit_lookup_roundtrip():
    md = make()
    md.commit(FileRecord("a/b", 10, "robustore", disk_ids=[1], placement=[[0]]))
    assert md.lookup("a/b").size_bytes == 10
    assert md.exists("a/b")


def test_partitioning_spreads_files():
    md = make(n_nodes=4, sync_replicas=0)
    for i in range(64):
        md.commit(FileRecord(f"file-{i}", 1, "raid0"))
    per_node = [sum(1 for i in range(64) if md._node_of(f"file-{i}") == n) for n in range(4)]
    assert all(p > 0 for p in per_node)  # no empty partition at this scale


def test_mutations_sync_to_replicas():
    md = make(n_nodes=4, sync_replicas=2)
    lat = md.commit(FileRecord("f", 1, "raid0"))
    assert md.sync_messages == 2
    assert lat > md.node_latency_s  # sync cost charged


def test_read_latency_cheaper_than_central():
    from repro.cluster.metadata import METADATA_ACCESS_LATENCY_S

    md = make()
    md.commit(FileRecord("f", 1, "raid0"))
    _, lat = md.open("f", "r")
    assert lat < METADATA_ACCESS_LATENCY_S


def test_locks_enforced_per_partition():
    md = make()
    md.open("f", "w")
    with pytest.raises(FileLockedError):
        md.open("f", "w")
    md.close("f")
    md.commit(FileRecord("f", 1, "raid0"))
    md.open("f", "r")  # fine after release


def test_failover_lookup():
    md = make(n_nodes=3, sync_replicas=1)
    md.commit(FileRecord("x", 1, "raid0"))
    primary = md._node_of("x")
    rec = md.lookup_with_failover("x", failed_node=primary)
    assert rec.name == "x"


def test_failover_without_replica_raises():
    md = make(n_nodes=3, sync_replicas=0)
    md.commit(FileRecord("x", 1, "raid0"))
    with pytest.raises(KeyError):
        md.lookup_with_failover("x", failed_node=md._node_of("x"))


def test_delete_propagates():
    md = make(n_nodes=2, sync_replicas=1)
    md.commit(FileRecord("f", 1, "raid0"))
    md.delete("f")
    assert not md.exists("f")
    for node in md._nodes:
        assert not node.exists("f")


def test_server_registry_is_global():
    md = make(n_nodes=3)
    md.register_server(7, {"capacity": 1})
    assert md.server_info(7)["capacity"] == 1


def test_sync_replicas_clipped():
    md = DistributedMetadataServer(n_nodes=2, sync_replicas=5)
    assert md.sync_replicas == 1
    with pytest.raises(ValueError):
        DistributedMetadataServer(n_nodes=0)


def test_schemes_run_on_distributed_metadata():
    """The storage schemes accept either metadata implementation."""
    cfg = AccessConfig(data_bytes=16 * MB, block_bytes=1 * MB, n_disks=4, redundancy=2.0)
    cluster = Cluster(n_disks=8)
    hub = RngHub(1)
    md = make()
    scheme = SCHEMES["robustore"](cluster, cfg, hub=hub, metadata=md)
    cluster.redraw_disk_states(hub.fresh("env", 0))
    scheme.prepare("f", 0)
    r = scheme.read("f", 0)
    assert r.latency_s > 0
    assert md.accesses > 0
