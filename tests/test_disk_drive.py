"""Tests for the event-driven disk drive and workloads."""

import numpy as np
import pytest

from repro.disk.cache import SegmentCache
from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.mechanics import DiskMechanics
from repro.disk.workload import (
    BackgroundWorkload,
    InDiskLayout,
    SyntheticWorkload,
    draw_layout,
    homogeneous_layout,
)
from repro.sim import Environment


def make_drive(env, seed=0, **kw):
    return DiskDrive(env, DiskMechanics(), np.random.default_rng(seed), **kw)


class TestWorkloads:
    def test_draw_layout_domain(self):
        rng = np.random.default_rng(0)
        seen_bf, seen_seq = set(), set()
        for _ in range(200):
            lay = draw_layout(rng)
            seen_bf.add(lay.blocking_factor)
            seen_seq.add(lay.p_sequential)
        assert seen_bf <= {8, 16, 32, 64, 128, 256, 512, 1024}
        assert len(seen_bf) >= 6
        assert seen_seq == {0.0, 1.0}

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            InDiskLayout(0, 0.5)
        with pytest.raises(ValueError):
            InDiskLayout(8, 1.5)

    def test_homogeneous_layout(self):
        lay = homogeneous_layout()
        assert lay.blocking_factor == 256 and lay.p_sequential == 1.0

    def test_synthetic_stream_covers_total(self):
        rng = np.random.default_rng(1)
        wl = SyntheticWorkload(InDiskLayout(64, 0.5), 0, 100_000, rng)
        reqs = list(wl.requests(1000))
        assert sum(r.sectors for r in reqs) == 1000
        assert all(r.sectors <= 64 for r in reqs)
        assert all(0 <= r.lba and r.lba + r.sectors <= 100_000 for r in reqs)

    def test_sequential_stream_is_contiguous(self):
        rng = np.random.default_rng(2)
        wl = SyntheticWorkload(InDiskLayout(32, 1.0), 0, 1_000_000, rng)
        reqs = list(wl.requests(320))
        for a, b in zip(reqs, reqs[1:]):
            assert b.lba == a.lba + a.sectors

    def test_random_stream_never_sequential(self):
        rng = np.random.default_rng(3)
        wl = SyntheticWorkload(InDiskLayout(32, 0.0), 0, 1_000_000, rng)
        reqs = list(wl.requests(320))
        assert not any(r.sequential for r in reqs[1:])

    def test_extent_too_small(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            SyntheticWorkload(InDiskLayout(64, 0.0), 0, 32, rng)

    def test_background_arrivals_spacing(self):
        rng = np.random.default_rng(5)
        bg = BackgroundWorkload(0.01, rng)
        arr = bg.arrivals(0.0, 1.0)
        assert 95 <= arr.size <= 101
        assert np.allclose(np.diff(arr), 0.01)

    def test_background_disabled(self):
        rng = np.random.default_rng(6)
        bg = BackgroundWorkload(None, rng)
        assert not bg.enabled
        assert bg.arrivals(0, 10).size == 0

    def test_background_invalid_interval(self):
        with pytest.raises(ValueError):
            BackgroundWorkload(0.0, np.random.default_rng(0))


class TestDrive:
    def test_single_request_completes(self):
        env = Environment()
        drive = make_drive(env)
        req = drive.read(lba=1000, sectors=64)
        env.run(until=req.done)
        assert env.now > 0
        assert drive.served_requests == 1
        assert drive.served_bytes == 64 * 512

    def test_fifo_service_order(self):
        env = Environment()
        drive = make_drive(env)
        r1 = drive.read(0, 64)
        r2 = drive.read(500_000, 64)
        env.run()
        assert r1.done.value < r2.done.value

    def test_sequential_requests_faster_than_scattered(self):
        env1 = Environment()
        d1 = make_drive(env1, seed=1)
        seq_reqs = [d1.read(i * 64, 64) for i in range(20)]
        env1.run()
        seq_time = max(r.done.value for r in seq_reqs)

        env2 = Environment()
        d2 = make_drive(env2, seed=1)
        rng = np.random.default_rng(7)
        scat = [d2.read(int(rng.integers(0, 10_000_000)), 64) for _ in range(20)]
        env2.run()
        scat_time = max(r.done.value for r in scat)
        assert seq_time < scat_time / 3

    def test_cancellation_removes_queued(self):
        env = Environment()
        drive = make_drive(env)
        keep = drive.submit(DiskRequest(lba=0, sectors=64, tag="keep"))
        drop = [drive.submit(DiskRequest(lba=i * 100_000, sectors=64, tag="drop")) for i in range(5)]
        n = drive.cancel(lambda r: r.tag == "drop")
        assert n >= 4  # the first may already be in service
        env.run()
        assert keep.done.value is not None
        cancelled = [r for r in drop if r.done.value is None]
        assert len(cancelled) == n

    def test_cache_hit_is_fast(self):
        env = Environment()
        drive = make_drive(env, cache=SegmentCache())
        r1 = drive.read(1000, 64)
        env.run(until=r1.done)
        t_miss = env.now
        r2 = drive.read(1000, 64)
        env.run(until=r2.done)
        t_hit = env.now - t_miss
        assert t_hit < t_miss / 3

    def test_background_consumes_disk_time(self):
        env = Environment()
        drive = make_drive(env)
        rng = np.random.default_rng(8)
        drive.attach_background(BackgroundWorkload(0.01, rng))
        env.run(until=2.0)
        assert drive.served_requests > 100
        assert 0.2 < drive.utilization() <= 1.0

    def test_utilization_zero_before_start(self):
        env = Environment()
        drive = make_drive(env)
        assert drive.utilization() == 0.0

    def test_sstf_scheduler_reorders(self):
        env = Environment()
        drive = make_drive(env, scheduler="sstf")
        far = drive.read(40_000_000, 64)
        near = drive.read(100_000, 64)
        # Push a long first request so both are queued when it finishes.
        env.run()
        assert near.done.value is not None and far.done.value is not None
