"""Tests for repro.exec: job codec, result store, executor, CLI.

The subsystem's contracts, in test form:

* the payload codec is lossless and byte-stable (decode ∘ encode = id,
  re-encoding a decoded payload is byte-identical);
* cache keys fold the env knobs and the code salt;
* pooled execution is bit-identical to sequential;
* a cache hit yields the same ``MetricSummary`` as the run that
  populated it (hypothesis round-trip property);
* a crashed worker job is reported and retried, never silently dropped;
* traced runs degrade to sequential, uncached execution with one
  ``exec.job`` span per job.
"""

from __future__ import annotations

import io
import json
import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access import MB, AccessConfig, AccessResult
from repro.disk.workload import InDiskLayout
from repro.exec import (
    CODE_SALT,
    Executor,
    Job,
    JobFailure,
    ResultStore,
    canonical_json,
    decode_plan,
    encode_plan,
    execute_job,
    execute_payload,
    results_from_json,
    results_to_json,
    use_executor,
)
from repro.exec import engine as exec_engine
from repro.exec.cli import main as exec_cli
from repro.experiments.harness import TrialPlan, run_scheme
from repro.faults.model import FaultModel
from repro.faults.plan import FaultPlan
from repro.metrics.stats import MetricSummary, summarize

CFG = AccessConfig(data_bytes=4 * MB, block_bytes=1 * MB, n_disks=4, redundancy=3.0)


def small_plan(**kwargs) -> TrialPlan:
    base = dict(access=CFG, pool=8, rtt_s=0.001, seed=7, trials=2)
    base.update(kwargs)
    return TrialPlan(**base)


# ---------------------------------------------------------------------------
# payload codec


PLAN_VARIANTS = {
    "baseline": {},
    "write": {"mode": "write"},
    "raw": {"mode": "raw", "cache_aging_window_s": 123.5},
    "layout": {"layout": InDiskLayout(blocking_factor=4, p_sequential=1.0)},
    "background": {"background": "heterogeneous", "fixed_zone": 2},
    "failed": {"failed_disks": 1},
    "fault_model": {
        "fault_model": FaultModel(mttf_s=30.0, mttr_s=None),
        "fault_horizon_s": 9.0,
    },
    "fault_plan": {
        "fault_plan": FaultPlan.from_scenario(
            [
                {"at": 0.1, "fault": "disk_fail", "disk": 2},
                {"at": 0.3, "fault": "disk_recover", "disk": 2},
            ]
        )
    },
}


@pytest.mark.parametrize("variant", sorted(PLAN_VARIANTS))
def test_plan_codec_round_trips(variant):
    plan = small_plan(**PLAN_VARIANTS[variant])
    payload = encode_plan(plan, "robustore")
    decoded, scheme = decode_plan(json.loads(canonical_json(payload)))
    assert scheme == "robustore"
    # Re-encoding the decoded plan is byte-identical: canonical JSON is a
    # fixed point, so cache keys never depend on which side encoded.
    assert canonical_json(encode_plan(decoded, scheme)) == canonical_json(payload)


def test_plan_decode_rejects_unknown_fields():
    payload = encode_plan(small_plan(), "raid0")
    payload["not_a_field"] = 1
    with pytest.raises(ValueError, match="not_a_field"):
        decode_plan(payload)


def test_result_decode_rejects_unknown_fields():
    with pytest.raises(ValueError, match="bogus"):
        AccessResult.from_jsonable({"latency_s": 1.0, "bogus": 2})


def test_job_key_folds_env_knobs_and_salt(monkeypatch):
    job = Job(small_plan(), "raid0")
    key = job.key()
    assert len(key) == 32 and int(key, 16) >= 0
    monkeypatch.setenv("REPRO_TRIALS", "99")
    assert Job(small_plan(), "raid0").key() != key  # env knob changes the key
    monkeypatch.delenv("REPRO_TRIALS")
    assert Job(small_plan(), "rraid-s").key() != key  # scheme changes the key
    assert Job(small_plan(seed=8), "raid0").key() != key  # plan changes the key


def test_execute_payload_matches_run_scheme():
    plan = small_plan()
    direct = run_scheme(plan, "robustore")
    via_codec = execute_job(Job(plan, "robustore"))
    assert results_to_json(via_codec) == results_to_json(direct)


# ---------------------------------------------------------------------------
# result store


def test_store_round_trip_and_miss(tmp_path):
    store = ResultStore(tmp_path / "cache")
    job = Job(small_plan(), "raid0")
    key = job.key()
    assert store.get(key) is None
    results = execute_job(job)
    store.put(key, "raid0", job.payload(), json.loads(results_to_json(results)))
    entry = store.get(key)
    assert entry is not None
    assert results_to_json(
        [AccessResult.from_jsonable(d) for d in entry["results"]]
    ) == results_to_json(results)


def test_store_rejects_corrupt_and_stale(tmp_path):
    store = ResultStore(tmp_path / "cache")
    job = Job(small_plan(), "raid0")
    key = job.key()
    results = json.loads(results_to_json(execute_job(job)))
    store.put(key, "raid0", job.payload(), results)

    path = store.path_for(key)
    entry = json.loads(path.read_text())
    entry["salt"] = "exec-v0"  # written by older code
    path.write_text(json.dumps(entry))
    assert store.get(key) is None
    assert store.stats().stale == 1

    path.write_text("{not json")
    assert store.get(key) is None
    assert store.gc() == 1  # unreadable entries are collectable
    assert store.stats().entries == 0


def test_store_gc_all_and_stats(tmp_path):
    store = ResultStore(tmp_path / "cache")
    for scheme in ("raid0", "rraid-s"):
        job = Job(small_plan(), scheme)
        store.put(
            job.key(),
            scheme,
            job.payload(),
            json.loads(results_to_json(execute_job(job))),
        )
    stats = store.stats()
    assert stats.entries == 2 and stats.by_scheme == {"raid0": 1, "rraid-s": 1}
    assert store.gc() == 0  # nothing stale
    assert store.gc(all_entries=True) == 2
    assert store.stats().entries == 0


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    from repro.exec import default_cache_dir

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert str(default_cache_dir()) == str(tmp_path / "elsewhere")


# ---------------------------------------------------------------------------
# executor: caching, dedupe, pool identity


def test_executor_cache_hit_and_stats(tmp_path):
    store = ResultStore(tmp_path / "cache")
    jobs = [Job(small_plan(), s) for s in ("raid0", "robustore")]
    first = Executor(store=store)
    a = first.run_jobs(jobs)
    assert (first.stats.hits, first.stats.ran) == (0, 2)
    second = Executor(store=store)
    b = second.run_jobs(jobs)
    assert (second.stats.hits, second.stats.ran) == (2, 0)
    assert [results_to_json(r) for r in a] == [results_to_json(r) for r in b]
    assert second.stats.hit_rate == 1.0
    assert "2 cached" in second.stats.summary()


def test_executor_dedupes_identical_cells():
    jobs = [Job(small_plan(), "raid0")] * 3
    ex = Executor(store=None)
    out = ex.run_jobs(jobs)
    assert ex.stats.ran == 1 and ex.stats.deduped == 2
    assert (
        results_to_json(out[0])
        == results_to_json(out[1])
        == results_to_json(out[2])
    )


def test_pool_execution_bit_identical():
    jobs = [Job(small_plan(), s) for s in ("raid0", "rraid-s", "robustore")]
    seq = Executor(jobs=1, store=None).run_jobs(jobs)
    par = Executor(jobs=2, store=None).run_jobs(jobs)
    for job, a, b in zip(jobs, seq, par):
        assert results_to_json(a) == results_to_json(b), job.label


def test_ambient_executor_reaches_run_point(tmp_path):
    from repro.experiments.harness import run_point

    store = ResultStore(tmp_path / "cache")
    ex = Executor(store=store)
    with use_executor(ex):
        point = run_point(small_plan(), schemes=("raid0",))
    assert ex.stats.ran == 1
    assert isinstance(point["raid0"], MetricSummary)


# ---------------------------------------------------------------------------
# worker failure: report + retry, never drop


def _failing_worker(payload_json):
    raise RuntimeError("synthetic worker crash")


def test_worker_failure_is_retried_in_process(monkeypatch, capsys):
    monkeypatch.setattr(exec_engine, "_worker", _failing_worker)
    jobs = [Job(small_plan(), s) for s in ("raid0", "robustore")]
    ex = Executor(jobs=2, store=None)
    out = ex.run_jobs(jobs)
    assert ex.stats.retried == 2
    err = capsys.readouterr().err
    assert "failed in worker" in err and "retrying in-process" in err
    # The in-process retry goes through the same codec path, so results
    # are exactly what a healthy pool would have produced.
    expected = Executor(jobs=1, store=None).run_jobs(jobs)
    assert [results_to_json(r) for r in out] == [
        results_to_json(r) for r in expected
    ]


def test_worker_failure_without_retries_raises(monkeypatch):
    monkeypatch.setattr(exec_engine, "_worker", _failing_worker)
    jobs = [Job(small_plan(), s) for s in ("raid0", "robustore")]
    with pytest.raises(JobFailure, match="failed"):
        Executor(jobs=2, store=None, retries=0).run_jobs(jobs)


def _exiting_worker(payload_json):
    os._exit(13)  # kills the worker: BrokenProcessPool for pending futures


def test_dead_pool_jobs_are_recovered(monkeypatch, capsys):
    monkeypatch.setattr(exec_engine, "_worker", _exiting_worker)
    jobs = [Job(small_plan(), s) for s in ("raid0", "robustore")]
    ex = Executor(jobs=2, store=None)
    out = ex.run_jobs(jobs)
    assert ex.stats.retried == 2
    assert all(results is not None for results in out)


# ---------------------------------------------------------------------------
# traced runs: sequential, uncached, spanned


def test_traced_run_bypasses_cache_and_emits_job_spans(tmp_path):
    from repro.obs import Tracer

    store = ResultStore(tmp_path / "cache")
    tracer = Tracer()
    ex = Executor(jobs=4, store=store)
    ex.run_jobs([Job(small_plan(), "raid0")], tracer=tracer)
    assert store.stats().entries == 0  # nothing cached under a tracer
    spans = [s for s in tracer.spans if s.cat == "exec"]
    assert [s.name for s in spans] == ["exec.job:raid0"]
    assert spans[0].dur > 0


def test_traced_results_match_untraced():
    from repro.obs import Tracer

    plan = small_plan()
    traced = Executor().run_jobs([Job(plan, "robustore")], tracer=Tracer())
    untraced = Executor().run_jobs([Job(plan, "robustore")])
    assert results_to_json(traced[0]) == results_to_json(untraced[0])


# ---------------------------------------------------------------------------
# cache hit => identical MetricSummary (round-trip property)

finite_metric = st.floats(
    min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False
)
# Latencies stay >= 1µs so bandwidth (bytes / latency) can't overflow to
# inf and trip numpy's invalid-subtract warning inside std().
latency = st.one_of(
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.just(float("inf")),
)
extra_value = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    finite_metric,
    st.booleans(),
    st.text(max_size=8),
)
access_results = st.lists(
    st.builds(
        AccessResult,
        latency_s=latency,
        data_bytes=st.integers(min_value=1, max_value=2**40),
        network_bytes=st.integers(min_value=0, max_value=2**40),
        disk_blocks=st.integers(min_value=0, max_value=10_000),
        blocks_received=st.integers(min_value=0, max_value=10_000),
        cache_hits=st.integers(min_value=0, max_value=10_000),
        rounds=st.integers(min_value=1, max_value=64),
        extra=st.dictionaries(st.text(max_size=8), extra_value, max_size=4),
    ),
    min_size=1,
    max_size=6,
)


def _summaries_equal(a: MetricSummary, b: MetricSummary) -> bool:
    def eq(x, y):
        if isinstance(x, float) and isinstance(y, float):
            return (x == y) or (math.isnan(x) and math.isnan(y))
        return x == y

    return all(eq(va, vb) for va, vb in zip(a.to_jsonable().values(),
                                            b.to_jsonable().values()))


@settings(max_examples=60, deadline=None)
@given(access_results)
def test_cached_results_summarize_identically(results):
    # A cache hit serves results through the JSON codec; the summary they
    # produce must equal the summary of the originals, bit for bit.
    round_tripped = results_from_json(results_to_json(results))
    assert _summaries_equal(summarize(round_tripped), summarize(results))
    # And the codec itself is a fixed point.
    assert results_to_json(round_tripped) == results_to_json(results)


@settings(max_examples=60, deadline=None)
@given(access_results)
def test_metric_summary_jsonable_round_trip(results):
    summary = summarize(results)
    again = MetricSummary.from_jsonable(
        json.loads(json.dumps(summary.to_jsonable()))
    )
    assert _summaries_equal(summary, again)


def test_end_to_end_cache_hit_summary(tmp_path):
    store = ResultStore(tmp_path / "cache")
    job = Job(small_plan(), "robustore")
    fresh = summarize(Executor(store=store).run_jobs([job])[0])
    hit_ex = Executor(store=store)
    hit = summarize(hit_ex.run_jobs([job])[0])
    assert hit_ex.stats.hits == 1
    assert _summaries_equal(fresh, hit)


# ---------------------------------------------------------------------------
# CLI


def test_cli_stats_and_gc(tmp_path):
    cache = tmp_path / "cache"
    store = ResultStore(cache)
    job = Job(small_plan(), "raid0")
    store.put(
        job.key(),
        "raid0",
        job.payload(),
        json.loads(results_to_json(execute_job(job))),
    )
    out = io.StringIO()
    assert exec_cli(["--cache-dir", str(cache), "stats"], out=out) == 0
    text = out.getvalue()
    assert CODE_SALT in text and "entries: 1" in text and "raid0" in text

    out = io.StringIO()
    assert exec_cli(["--cache-dir", str(cache), "gc", "--all"], out=out) == 0
    assert "removed 1" in out.getvalue()
    assert store.stats().entries == 0


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        exec_cli([])


def test_execute_payload_is_the_worker_path():
    job = Job(small_plan(), "raid0")
    assert results_to_json(
        results_from_json(execute_payload(job.payload_json()))
    ) == results_to_json(execute_job(job))
