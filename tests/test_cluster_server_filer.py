"""Tests for the cluster, storage server and filer layers."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.disk.workload import InDiskLayout


def test_cluster_topology():
    c = Cluster(n_disks=128, disks_per_filer=8)
    assert c.n_filers == 16
    assert c.server_of_disk(0).server_id == 0
    assert c.server_of_disk(127).server_id == 15
    assert c.filer_of_disk(9).disk_ids == list(range(8, 16))


def test_cluster_ragged_last_filer():
    c = Cluster(n_disks=10, disks_per_filer=8)
    assert c.n_filers == 2
    assert c.servers[1].disk_ids == [8, 9]


def test_cluster_validation():
    with pytest.raises(ValueError):
        Cluster(n_disks=0)


def test_redraw_heterogeneous_states():
    c = Cluster(n_disks=32)
    c.redraw_disk_states(np.random.default_rng(0))
    layouts = {
        (c.disk_state(d).layout.blocking_factor, c.disk_state(d).layout.p_sequential)
        for d in range(32)
    }
    assert len(layouts) > 4  # heterogeneous draws


def test_redraw_homogeneous():
    c = Cluster(n_disks=8)
    c.redraw_disk_states(np.random.default_rng(0), layout=InDiskLayout(256, 1.0))
    for d in range(8):
        st = c.disk_state(d)
        assert st.layout.blocking_factor == 256
        assert st.background is None


def test_redraw_with_background():
    c = Cluster(n_disks=4)
    c.redraw_disk_states(np.random.default_rng(0), background_intervals={1: 0.01})
    assert c.disk_state(1).background is not None
    assert c.disk_state(0).background is None


def test_block_service_uses_state():
    c = Cluster(n_disks=4)
    c.redraw_disk_states(np.random.default_rng(0), layout=InDiskLayout(1024, 1.0))
    svc = c.block_service(0, np.random.default_rng(1))
    bw = svc.standalone_bandwidth(n_blocks=32)
    assert bw > 10 * (1 << 20)  # the fast config


def test_network_accounting():
    c = Cluster(n_disks=16)
    c.filer_of_disk(0).link.account(100)
    c.filer_of_disk(15).link.account(23)
    assert c.total_network_bytes == 123
    c.reset_network_counters()
    assert c.total_network_bytes == 0


def test_filer_cache_disabled_by_default():
    c = Cluster(n_disks=8, fs_cache_bytes=0)
    filer = c.filer_of_disk(0)
    assert filer.cache is None
    mask = filer.cached_blocks("f", [0, 1, 2])
    assert not mask.any()


def test_filer_cache_roundtrip():
    c = Cluster(n_disks=8, fs_cache_bytes=64 << 20, cache_line_bytes=1 << 20)
    filer = c.filer_of_disk(0)
    filer.record_write("f", [0, 1], 1 << 20)
    mask = filer.cached_blocks("f", [0, 1, 2])
    assert list(mask) == [True, True, False]


def test_filer_record_read_counts_disk_bytes():
    c = Cluster(n_disks=8, fs_cache_bytes=64 << 20, cache_line_bytes=1 << 20)
    filer = c.filer_of_disk(0)
    filer.record_read("f", [0, 1], 1 << 20)
    assert filer.disk_bytes_read == 2 << 20
    filer.record_read("f", [0], 1 << 20)  # now cached: no disk bytes
    assert filer.disk_bytes_read == 2 << 20


def test_filer_latency_helpers():
    c = Cluster(n_disks=8, rtt_s=0.01)
    filer = c.filer_of_disk(0)
    assert filer.request_arrival_delay() == pytest.approx(0.005)
    assert filer.response_delay(1000) == pytest.approx(0.005)
    assert filer.link.bytes_sent == 1000
