"""Property tests: product-matrix regenerating codes are exact.

The Rashmi-Shah-Kumar contracts, under random geometry and random data:

* any ``k`` of the ``n`` node contents decode the message byte-identically;
* any ``d`` helpers rebuild a lost node byte-identically (functional
  repair is in fact *exact* for product-matrix codes);
* a full failure cascade — lose up to ``n - k`` nodes, repair each from
  ``d`` survivors, then decode through the repaired nodes — round-trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.regenerating import (
    ProductMatrixMBR,
    ProductMatrixMSR,
    mbr_point,
    msr_point,
    product_matrix_code,
)


def _message(code, seed: int, L: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(code.B, L), dtype=np.uint8)


def _mbr(k: int, d_extra: int, n_extra: int) -> ProductMatrixMBR:
    d = k + d_extra
    return ProductMatrixMBR(k, d, n=d + 1 + n_extra)


def _msr(k: int, n_extra: int) -> ProductMatrixMSR:
    d = 2 * k - 2
    return ProductMatrixMSR(k, n=d + 1 + n_extra)


mbr_codes = st.builds(
    _mbr, st.integers(2, 4), st.integers(0, 2), st.integers(0, 3)
)
msr_codes = st.builds(_msr, st.integers(2, 4), st.integers(0, 3))
any_code = st.one_of(mbr_codes, msr_codes)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(code=any_code, seed=st.integers(0, 2**32 - 1), pick=st.randoms())
    def test_any_k_nodes_decode(self, code, seed, pick):
        message = _message(code, seed)
        contents = code.encode(message)
        ids = pick.sample(range(code.n), code.k)
        decoded = code.decode(ids, contents[ids])
        np.testing.assert_array_equal(decoded, message)

    @settings(max_examples=40, deadline=None)
    @given(code=any_code, seed=st.integers(0, 2**32 - 1), pick=st.randoms())
    def test_any_d_helpers_repair_exactly(self, code, seed, pick):
        message = _message(code, seed)
        contents = code.encode(message)
        failed = pick.randrange(code.n)
        helpers = pick.sample([i for i in range(code.n) if i != failed], code.d)
        symbols = np.stack(
            [code.helper_symbol(contents[h], failed) for h in helpers]
        )
        rebuilt = code.repair(failed, helpers, symbols)
        np.testing.assert_array_equal(rebuilt, contents[failed])

    @settings(max_examples=25, deadline=None)
    @given(code=any_code, seed=st.integers(0, 2**32 - 1), pick=st.randoms())
    def test_failure_cascade_then_decode(self, code, seed, pick):
        """Lose up to n-k nodes, repair each from survivors, decode through
        the repaired nodes: byte-identical end to end."""
        message = _message(code, seed)
        contents = code.encode(message).copy()
        n_lost = min(code.n - code.d, code.n - code.k)
        assert n_lost >= 1
        lost = pick.sample(range(code.n), n_lost)
        contents[lost] = 0  # destroy
        for failed in lost:
            helpers = pick.sample(
                [i for i in range(code.n) if i != failed and i not in lost],
                code.d,
            )
            symbols = np.stack(
                [code.helper_symbol(contents[h], failed) for h in helpers]
            )
            contents[failed] = code.repair(failed, helpers, symbols)
        # Decode through a subset biased to include every repaired node.
        ids = (lost + [i for i in range(code.n) if i not in lost])[: code.k]
        decoded = code.decode(ids, contents[ids])
        np.testing.assert_array_equal(decoded, message)


class TestTradeoffPoints:
    def test_msr_matches_mds_storage(self):
        # alpha = B/k: per-node storage is the MDS optimum.
        code = _msr(4, 1)
        assert code.alpha * code.k == code.B
        alpha, gamma = msr_point(code.B, code.k, code.d)
        assert alpha == pytest.approx(code.alpha)
        assert gamma > alpha  # repair still reads more than one node stores

    def test_mbr_matches_minimum_repair_bandwidth(self):
        # Repair bandwidth equals node storage: d symbols for alpha = d.
        code = _mbr(3, 1, 1)
        alpha, gamma = mbr_point(code.B, code.k, code.d)
        assert alpha == pytest.approx(gamma)
        assert code.alpha == code.d

    def test_mbr_stores_more_than_msr_per_symbol(self):
        # The tradeoff: MBR inflates storage beyond B/k to shrink repair.
        code = _mbr(3, 1, 1)
        assert code.alpha * code.k > code.B


class TestValidation:
    def test_decode_needs_exactly_k_nodes(self):
        code = _mbr(3, 0, 1)
        message = _message(code, 1)
        contents = code.encode(message)
        with pytest.raises(ValueError, match="exactly k"):
            code.decode([0, 1], contents[[0, 1]])

    def test_repair_needs_exactly_d_helpers(self):
        code = _msr(3, 1)
        message = _message(code, 2)
        contents = code.encode(message)
        sym = code.helper_symbol(contents[1], 0)
        with pytest.raises(ValueError):
            code.repair(0, [1], np.stack([sym]))

    def test_msr_rejects_wrong_d(self):
        with pytest.raises(ValueError):
            ProductMatrixMSR(3, n=8, d=5)  # d must be 2k-2 = 4

    def test_mbr_rejects_d_below_k(self):
        with pytest.raises(ValueError):
            ProductMatrixMBR(4, d=3, n=6)

    def test_message_shape_checked(self):
        code = _mbr(2, 0, 0)
        with pytest.raises(ValueError, match="message"):
            code.encode(np.zeros((code.B + 1, 4), dtype=np.uint8))


class TestFactory:
    def test_codes_are_memoized(self):
        a = product_matrix_code("msr", 3, 4, 7)
        b = product_matrix_code("msr", 3, 4, 7)
        assert a is b

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            product_matrix_code("mds", 3, 4, 7)
