"""Tests for the soliton degree distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.soliton import (
    expected_degree,
    ideal_soliton,
    robust_soliton,
    sample_degrees,
)


def test_ideal_soliton_sums_to_one():
    for k in (1, 2, 10, 100, 1024):
        assert ideal_soliton(k).sum() == pytest.approx(1.0)


def test_ideal_soliton_known_values():
    rho = ideal_soliton(4)
    assert rho[1] == pytest.approx(0.25)
    assert rho[2] == pytest.approx(0.5)
    assert rho[3] == pytest.approx(1 / 6)
    assert rho[4] == pytest.approx(1 / 12)


def test_ideal_soliton_rejects_bad_k():
    with pytest.raises(ValueError):
        ideal_soliton(0)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=2000),
    st.floats(min_value=0.01, max_value=3.0),
    st.floats(min_value=0.01, max_value=0.99),
)
def test_robust_soliton_is_distribution(k, c, delta):
    mu = robust_soliton(k, c, delta)
    assert mu.shape == (k + 1,)
    assert mu[0] == 0.0
    assert np.all(mu >= 0)
    assert mu.sum() == pytest.approx(1.0)


def test_robust_soliton_parameter_validation():
    with pytest.raises(ValueError):
        robust_soliton(10, c=0.0)
    with pytest.raises(ValueError):
        robust_soliton(10, delta=0.0)
    with pytest.raises(ValueError):
        robust_soliton(10, delta=1.5)
    with pytest.raises(ValueError):
        robust_soliton(0)


def test_robust_soliton_has_spike():
    """The robust distribution exceeds the ideal one at the spike degree."""
    k = 1024
    mu = robust_soliton(k, c=1.0, delta=0.1)
    rho = ideal_soliton(k)
    diff = mu * (mu.sum() / 1.0) - rho / rho.sum()
    # Somewhere above degree 1, mass was added.
    assert np.any(mu[2:] * 1.0 > rho[2:] / 1.0)
    assert diff is not None


def test_larger_c_means_lower_mean_degree():
    """Larger C adds low-degree mass (dissertation §5.2.4)."""
    k = 1024
    low_c = expected_degree(robust_soliton(k, c=0.05, delta=0.5))
    high_c = expected_degree(robust_soliton(k, c=2.0, delta=0.5))
    assert high_c < low_c


def test_paper_regime_mean_degree_about_five():
    """C=1, delta=0.1, K=1024: mean coded degree ~5 (§4.3.4, App. A2)."""
    mu = robust_soliton(1024, c=1.0, delta=0.1)
    assert 3.0 < expected_degree(mu) < 8.0


def test_sample_degrees_range_and_determinism():
    mu = robust_soliton(256, c=0.5, delta=0.5)
    rng = np.random.default_rng(7)
    d = sample_degrees(mu, 10000, rng)
    assert d.min() >= 1
    assert d.max() <= 256
    rng2 = np.random.default_rng(7)
    d2 = sample_degrees(mu, 10000, rng2)
    assert np.array_equal(d, d2)


def test_sample_degrees_mean_matches_distribution():
    mu = robust_soliton(512, c=1.0, delta=0.1)
    rng = np.random.default_rng(11)
    d = sample_degrees(mu, 50000, rng)
    assert d.mean() == pytest.approx(expected_degree(mu), rel=0.05)
