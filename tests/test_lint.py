"""Tests for the repro.lint static-analysis framework.

One positive (violating) and one negative (clean) fixture per rule
SIM001-SIM009, pragma suppression, the JSON report schema, CLI exit
codes — and a self-check that the shipped tree lints clean.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.lint import Severity, all_rules, lint_paths, lint_source
from repro.lint.cli import JSON_VERSION, main

#: Fixture path inside the simulator's hot packages (SIM001/002/004 scope).
HOT = "src/repro/core/fixture.py"
#: Fixture path outside the repro package (rules scoped to src/repro skip it).
OUTSIDE = "scripts/fixture.py"

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(source: str, path: str = HOT) -> list[str]:
    return [f.rule for f in lint_source(source, path)]


# ---------------------------------------------------------------------------
# registry basics


def test_all_rules_registered():
    rules = all_rules()
    for rule_id in (
        "SIM001", "SIM002", "SIM003", "SIM004",
        "SIM005", "SIM006", "SIM007", "SIM008", "SIM009",
    ):
        assert rule_id in rules
        assert rules[rule_id].summary


# ---------------------------------------------------------------------------
# SIM001 — wall clock


def test_sim001_flags_time_time():
    src = "import time\n\ndef f():\n    return time.time()\n"
    assert rules_of(src) == ["SIM001"]


def test_sim001_flags_datetime_now_and_from_import():
    src = "from datetime import datetime\nstamp = datetime.now()\n"
    assert rules_of(src) == ["SIM001"]
    src2 = "from time import monotonic\nt = monotonic()\n"
    assert rules_of(src2) == ["SIM001"]


def test_sim001_clean_and_out_of_scope():
    # perf_counter is allowed: real encode/decode throughput measurement.
    clean = "import time\n\ndef f():\n    return time.perf_counter()\n"
    assert rules_of(clean) == []
    # Outside src/repro the rule does not apply.
    assert rules_of("import time\nt = time.time()\n", OUTSIDE) == []


# ---------------------------------------------------------------------------
# SIM002 — global RNG


def test_sim002_flags_global_numpy_and_stdlib():
    assert rules_of("import numpy as np\nx = np.random.rand(4)\n") == ["SIM002"]
    assert rules_of("import random\nx = random.randint(0, 9)\n") == ["SIM002"]
    assert rules_of("from random import shuffle\nshuffle(deck)\n") == ["SIM002"]


def test_sim002_flags_unseeded_default_rng():
    assert rules_of("import numpy as np\nr = np.random.default_rng()\n") == ["SIM002"]


def test_sim002_flags_hash_derived_seed():
    src = "import numpy as np\nr = np.random.default_rng(abs(hash(key)) % 2**31)\n"
    findings = lint_source(src, HOT)
    assert [f.rule for f in findings] == ["SIM002"]
    assert "PYTHONHASHSEED" in findings[0].message


def test_sim002_allows_injected_generators():
    clean = (
        "import numpy as np\n"
        "from repro.sim.rng import RngHub, stable_seed\n"
        "r1 = np.random.default_rng(7)\n"
        "r2 = RngHub(3).stream('disk', 0)\n"
        "r3 = np.random.default_rng(stable_seed('bg', 4))\n"
        "def f(rng: np.random.Generator):\n"
        "    return rng.random()\n"
    )
    assert rules_of(clean) == []


# ---------------------------------------------------------------------------
# SIM003 — float equality on simulated time


def test_sim003_flags_now_equality():
    src = "def f(env, deadline):\n    return env.now == deadline\n"
    assert rules_of(src) == ["SIM003"]
    src2 = "def f(env, t0):\n    if env.now != t0:\n        return 1\n"
    assert rules_of(src2) == ["SIM003"]


def test_sim003_allows_ordered_comparison():
    src = "def f(env, deadline):\n    return env.now >= deadline\n"
    assert rules_of(src) == []


# ---------------------------------------------------------------------------
# SIM004 — tracer guard


def test_sim004_flags_unguarded_tracer_call():
    src = "def f(tracer):\n    tracer.count('hits')\n"
    assert rules_of(src) == ["SIM004"]
    src2 = "class C:\n    def f(self):\n        self.tracer.span('a', 'b', 0, 1)\n"
    assert rules_of(src2) == ["SIM004"]


def test_sim004_accepts_both_guard_idioms():
    block = "def f(tracer):\n    if tracer.enabled:\n        tracer.count('hits')\n"
    early = (
        "def f(tracer):\n"
        "    if not tracer.enabled:\n"
        "        return\n"
        "    tracer.count('hits')\n"
    )
    assert rules_of(block) == []
    assert rules_of(early) == []


def test_sim004_scope_is_hot_packages_only():
    src = "def f(tracer):\n    tracer.count('hits')\n"
    assert rules_of(src, "src/repro/obs/fixture.py") == []


# ---------------------------------------------------------------------------
# SIM005 — mutable defaults


def test_sim005_flags_mutable_defaults():
    assert rules_of("def f(a=[]):\n    return a\n", OUTSIDE) == ["SIM005"]
    assert rules_of("def f(*, b={}):\n    return b\n", OUTSIDE) == ["SIM005"]
    assert rules_of("def f(c=set()):\n    return c\n", OUTSIDE) == ["SIM005"]


def test_sim005_allows_none_default():
    src = "def f(a=None):\n    return [] if a is None else a\n"
    assert rules_of(src, OUTSIDE) == []


# ---------------------------------------------------------------------------
# SIM006 — swallowed Interrupt


def test_sim006_flags_swallowed_interrupt():
    src = (
        "def proc(env):\n"
        "    try:\n"
        "        yield env.timeout(5)\n"
        "    except Interrupt:\n"
        "        pass\n"
    )
    assert rules_of(src, OUTSIDE) == ["SIM006"]


def test_sim006_allows_handling_or_reraise():
    handled = (
        "def proc(env):\n"
        "    try:\n"
        "        yield env.timeout(5)\n"
        "    except Interrupt as intr:\n"
        "        log(intr.cause)\n"
    )
    reraised = (
        "def proc(env):\n"
        "    try:\n"
        "        yield env.timeout(5)\n"
        "    except Interrupt:\n"
        "        cleanup()\n"
        "        raise\n"
    )
    non_generator = (
        "def not_a_process(env):\n"
        "    try:\n"
        "        run(env)\n"
        "    except Interrupt:\n"
        "        pass\n"
    )
    assert rules_of(handled, OUTSIDE) == []
    assert rules_of(reraised, OUTSIDE) == []
    assert rules_of(non_generator, OUTSIDE) == []


# ---------------------------------------------------------------------------
# SIM007 — policy statelessness

#: Fixture path inside the policy package (SIM007 scope).
POLICY = "src/repro/core/policy/fixture.py"


def test_sim007_flags_instance_write_outside_init():
    src = (
        "class SpeculativeDispatch:\n"
        "    def read(self, scheme):\n"
        "        self.rounds = 2\n"
        "        return scheme\n"
    )
    findings = lint_source(src, POLICY)
    assert [f.rule for f in findings] == ["SIM007"]
    assert "stateless" in findings[0].message
    aug = "class P:\n    def plan(self):\n        self.calls += 1\n"
    assert rules_of(aug, POLICY) == ["SIM007"]
    deleted = "class P:\n    def plan(self):\n        del self.cache\n"
    assert rules_of(deleted, POLICY) == ["SIM007"]


def test_sim007_allows_init_locals_and_foreign_state():
    clean = (
        "class GroupedRSPlacement:\n"
        "    def __init__(self, group):\n"
        "        self.group = group\n"
        "    def plan(self, scheme, tracker):\n"
        "        total = self.group * 2\n"
        "        tracker.fill_times = []\n"  # trackers are stateful by design
        "        scheme.failed_writes = 1\n"  # scheme instances own their state
        "        return total\n"
        "    @staticmethod\n"
        "    def layout(k, h):\n"
        "        rows = {}\n"
        "        rows[0] = k + h\n"
        "        return rows\n"
    )
    assert rules_of(clean, POLICY) == []


def test_sim007_scope_is_policy_package_only():
    src = "class C:\n    def f(self):\n        self.x = 1\n"
    assert rules_of(src, HOT) == []
    assert rules_of(src, OUTSIDE) == []


# ---------------------------------------------------------------------------
# SIM008 — determinism inside the execution engine

#: Fixture path inside the execution engine (SIM008 scope).
EXEC = "src/repro/exec/fixture.py"


def test_sim008_flags_pid_and_uuid_sources():
    src = "import os\n\ndef key_salt():\n    return os.getpid()\n"
    findings = lint_source(src, EXEC)
    assert [f.rule for f in findings] == ["SIM008"]
    assert "deterministic" in findings[0].message
    assert rules_of("import uuid\njob_id = uuid.uuid4()\n", EXEC) == ["SIM008"]
    assert rules_of("from os import getpid\np = getpid()\n", EXEC) == ["SIM008"]


def test_sim008_flags_wall_clock_in_exec():
    # time.time() in exec trips both the global wall-clock rule and the
    # payload-determinism rule — they protect different contracts.
    src = "import time\nstamp = time.time()\n"
    assert sorted(rules_of(src, EXEC)) == ["SIM001", "SIM008"]


def test_sim008_allows_perf_counter_and_deterministic_uuids():
    clean = (
        "import time\n"
        "import uuid\n"
        "def wall(fn):\n"
        "    t0 = time.perf_counter()\n"
        "    fn()\n"
        "    return time.perf_counter() - t0\n"
        "def content_id(ns, name):\n"
        "    return uuid.uuid5(ns, name)\n"
    )
    assert rules_of(clean, EXEC) == []


def test_sim008_scope_is_exec_package_only():
    src = "import os\npid = os.getpid()\n"
    assert rules_of(src, HOT) == []
    assert rules_of(src, OUTSIDE) == []


# ---------------------------------------------------------------------------
# SIM009 — determinism inside the serving simulation

#: Fixture path inside the serving package (SIM009 scope).
SERVE = "src/repro/serve/fixture.py"


def test_sim009_flags_unseeded_rng_constructors():
    src = "import numpy as np\nr = np.random.default_rng()\n"
    findings = lint_source(src, SERVE)
    # Unseeded default_rng trips both the repo-wide SIM002 and the
    # serve-local payload contract — different contracts, as SIM001/SIM008.
    assert sorted(f.rule for f in findings) == ["SIM002", "SIM009"]
    assert any("OS entropy" in f.message for f in findings)
    src2 = "import random\nr = random.Random()\n"
    assert "SIM009" in rules_of(src2, SERVE)
    src3 = "from numpy.random import default_rng\nr = default_rng()\n"
    assert "SIM009" in rules_of(src3, SERVE)


def test_sim009_flags_global_state_rng():
    assert "SIM009" in rules_of("import random\nx = random.random()\n", SERVE)
    assert "SIM009" in rules_of(
        "import numpy as np\nx = np.random.rand(3)\n", SERVE
    )
    assert "SIM009" in rules_of(
        "from random import shuffle\nshuffle(deck)\n", SERVE
    )


def test_sim009_flags_wall_clock_pid_uuid():
    assert sorted(rules_of("import time\nt = time.time()\n", SERVE)) == [
        "SIM001", "SIM009",
    ]
    assert "SIM009" in rules_of("import os\np = os.getpid()\n", SERVE)
    assert "SIM009" in rules_of("import uuid\nu = uuid.uuid4()\n", SERVE)
    assert "SIM009" in rules_of(
        "import secrets\nt = secrets.token_hex()\n", SERVE
    )


def test_sim009_allows_seeded_and_hub_derived_rng():
    clean = (
        "import numpy as np\n"
        "from repro.sim.rng import RngHub\n"
        "def gen(seed):\n"
        "    hub = RngHub(seed)\n"
        "    rng = hub.stream('serve', 'sizes')\n"
        "    explicit = np.random.default_rng(42)\n"
        "    return rng.random(4), explicit.random(4)\n"
    )
    assert rules_of(clean, SERVE) == []


def test_sim009_scope_is_serve_package_only():
    src = "import random\nr = random.Random()\n"
    assert "SIM009" not in rules_of(src, HOT)
    assert "SIM009" not in rules_of(src, EXEC)
    assert rules_of(src, OUTSIDE) == []


# ---------------------------------------------------------------------------
# pragmas


def test_pragma_suppresses_single_rule_on_line():
    src = "import time\nt = time.time()  # lint: disable=SIM001 -- calibration\n"
    assert rules_of(src) == []


def test_pragma_only_applies_to_its_line():
    src = (
        "import time\n"
        "a = time.time()  # lint: disable=SIM001\n"
        "b = time.time()\n"
    )
    findings = lint_source(src, HOT)
    assert [(f.rule, f.line) for f in findings] == [("SIM001", 3)]


def test_pragma_disable_all_and_multiple_ids():
    src = "import time\nt = time.time()  # lint: disable=all\n"
    assert rules_of(src) == []
    src2 = "def f(a=[], b=time.time()):  # lint: disable=SIM001,SIM005\n    return a\n"
    assert rules_of("import time\n" + src2) == []


# ---------------------------------------------------------------------------
# findings, syntax errors, severities


def test_finding_carries_location_and_severity():
    src = "import time\n\n\nt = time.time()\n"
    (finding,) = lint_source(src, HOT)
    assert finding.line == 4
    assert finding.severity is Severity.ERROR
    assert finding.path == HOT
    assert "SIM001" in finding.render() and ":4:" in finding.render()


def test_syntax_error_is_reported_not_raised():
    (finding,) = lint_source("def broken(:\n", HOT)
    assert finding.rule == "SYNTAX"
    assert finding.severity is Severity.ERROR


# ---------------------------------------------------------------------------
# CLI: JSON schema and exit codes


def _run_cli(tmp_path, source, extra_args=()):
    target = tmp_path / "src" / "repro" / "core"
    target.mkdir(parents=True, exist_ok=True)
    (target / "mod.py").write_text(source)
    out = io.StringIO()
    code = main([str(tmp_path), *extra_args], out=out)
    return code, out.getvalue()


def test_cli_json_schema_and_exit_code(tmp_path):
    code, output = _run_cli(
        tmp_path, "import time\nt = time.time()\n", ("--format", "json")
    )
    assert code == 1
    report = json.loads(output)
    assert report["version"] == JSON_VERSION
    assert report["counts"] == {"error": 1, "warning": 0}
    assert report["files_checked"] == 1
    (entry,) = report["findings"]
    assert set(entry) == {"rule", "severity", "path", "line", "col", "message"}
    assert entry["rule"] == "SIM001"
    assert entry["severity"] == "error"
    assert entry["line"] == 2


def test_cli_clean_tree_exits_zero(tmp_path):
    code, output = _run_cli(tmp_path, "x = 1\n", ("--format", "json"))
    assert code == 0
    assert json.loads(output)["findings"] == []


def test_cli_select_runs_only_requested_rules(tmp_path):
    code, output = _run_cli(
        tmp_path,
        "import time\nt = time.time()\ndef f(a=[]):\n    return a\n",
        ("--format", "json", "--select", "SIM005"),
    )
    assert code == 1
    rules = [f["rule"] for f in json.loads(output)["findings"]]
    assert rules == ["SIM005"]


def test_cli_unknown_rule_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as exc:
        _run_cli(tmp_path, "x = 1\n", ("--select", "NOPE"))
    assert exc.value.code == 2


def test_cli_list_rules():
    out = io.StringIO()
    assert main(["--list-rules"], out=out) == 0
    assert "SIM001" in out.getvalue() and "SIM006" in out.getvalue()


# ---------------------------------------------------------------------------
# the shipped tree is clean


def test_repo_lints_clean():
    findings = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    errors = [f for f in findings if f.severity is Severity.ERROR]
    assert errors == [], "\n".join(f.render() for f in errors)
