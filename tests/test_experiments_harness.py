"""Tests for the experiment harness and registry (small configurations)."""

import numpy as np
import pytest

from repro.core.access import MB, AccessConfig
from repro.disk.workload import InDiskLayout
from repro.experiments import REGISTRY
from repro.experiments.harness import TrialPlan, run_point, run_scheme, sweep

SMALL = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)


def small_plan(**kw):
    defaults = dict(access=SMALL, mode="read", pool=16, trials=3, seed=1)
    defaults.update(kw)
    return TrialPlan(**defaults)


def test_run_scheme_read_results():
    results = run_scheme(small_plan(), "robustore")
    assert len(results) == 3
    assert all(np.isfinite(r.latency_s) for r in results)


def test_run_scheme_write_mode():
    results = run_scheme(small_plan(mode="write"), "raid0")
    assert all(r.network_bytes == SMALL.data_bytes for r in results)


def test_run_scheme_raw_mode_unbalanced():
    results = run_scheme(small_plan(mode="raw"), "robustore")
    assert all(np.isfinite(r.latency_s) for r in results)
    assert all("reception_overhead" in r.extra for r in results)


def test_raid0_redundancy_forced_zero():
    results = run_scheme(small_plan(), "raid0")
    assert all(r.io_overhead == 0.0 for r in results)


def test_unknown_scheme_and_mode():
    with pytest.raises(ValueError):
        run_scheme(small_plan(), "raid6")
    with pytest.raises(ValueError):
        run_scheme(small_plan(mode="scrub"), "raid0")


def test_homogeneous_layout_plan():
    plan = small_plan(layout=InDiskLayout(512, 1.0), fixed_zone=2)
    results = run_scheme(plan, "raid0")
    lats = [r.latency_s for r in results]
    assert np.std(lats) < 0.1 * np.mean(lats)  # homogeneous -> steady


def test_background_modes():
    rng = np.random.default_rng(0)
    assert small_plan().bg_intervals(rng) is None
    homo = small_plan(background="homogeneous", bg_interval_s=0.02).bg_intervals(rng)
    assert set(homo.values()) == {0.02}
    het = small_plan(background="heterogeneous").bg_intervals(rng)
    assert len(set(het.values())) > 1
    with pytest.raises(ValueError):
        small_plan(background="weird").bg_intervals(rng)


def test_background_slows_reads():
    quiet = run_scheme(small_plan(), "robustore")
    loaded = run_scheme(
        small_plan(background="homogeneous", bg_interval_s=0.012), "robustore"
    )
    assert np.mean([r.latency_s for r in loaded]) > np.mean(
        [r.latency_s for r in quiet]
    )


def test_run_point_all_schemes():
    point = run_point(small_plan(), schemes=("raid0", "robustore"))
    assert set(point) == {"raid0", "robustore"}
    assert point["robustore"].bandwidth_mbps > 0


def test_sweep_collects_series():
    result = sweep(
        "test",
        "t",
        "x",
        [4, 8],
        lambda h: small_plan(access=AccessConfig(
            data_bytes=16 * MB, n_disks=h, redundancy=2.0)),
        schemes=("robustore",),
    )
    assert result.xs == [4, 8]
    series = result.series("bandwidth_mbps")
    assert len(series["robustore"]) == 2
    assert "bandwidth" in result.text()


def test_registry_complete():
    expected = {
        "fig4_1", "tab5_1", "fig5_1", "fig5_2", "fig5_3",
        "tab6_1", "fig6_5",
        "fig6_06", "fig6_09", "fig6_12", "fig6_12b", "fig6_15", "fig6_18",
        "fig6_21", "fig6_24", "fig6_26", "fig6_29", "fig6_32", "fig6_35",
        "abl_cancel", "abl_improved_lt", "abl_admission",
    }
    assert expected <= set(REGISTRY)
    assert all(callable(fn) for fn in REGISTRY.values())


def test_runner_cli_list(capsys):
    from repro.experiments.runner import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig6_06" in out


def test_runner_cli_unknown_id():
    from repro.experiments.runner import main

    assert main(["nonexistent"]) == 2


def test_runner_csv_output(tmp_path, capsys):
    import os

    from repro.experiments.runner import main

    os.environ["REPRO_TRIALS"] = "2"
    os.environ["REPRO_DATA_MB"] = "16"
    try:
        code = main(["fig6_06", "--csv", str(tmp_path)])
    finally:
        os.environ.pop("REPRO_TRIALS")
        os.environ.pop("REPRO_DATA_MB")
    assert code == 0
    csv_file = tmp_path / "fig6_06.csv"
    assert csv_file.exists()
    header = csv_file.read_text().splitlines()[0]
    assert header.startswith("scheme,x,bandwidth_mbps")


def test_write_csv_skips_plain_tables(tmp_path):
    from repro.experiments.runner import write_csv

    class Plain:
        def text(self):
            return "x"

    assert write_csv(Plain(), "p", str(tmp_path)) is None
