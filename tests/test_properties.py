"""Property-based tests (hypothesis) on cross-module invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.lt import ImprovedLTCode
from repro.coding.peeling import PeelingDecoder, blocks_needed
from repro.core import layout as L
from repro.disk.mechanics import DiskMechanics
from repro.disk.service import BackgroundLoad, BlockService
from repro.disk.workload import BLOCKING_FACTORS, InDiskLayout

MB = 1 << 20


# ------------------------------------------------------------------ layouts


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=32),
)
def test_striped_partitions_blocks(k, h):
    p = L.striped(k, h)
    flat = sorted(b for disk in p for b in disk)
    assert flat == list(range(k))
    counts = L.placement_counts(p)
    assert counts.max() - counts.min() <= 1


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=16),
)
def test_rotated_replicas_properties(k, r, h):
    p = L.rotated_replicas(k, r, h)
    flat = sorted(b for disk in p for b in disk)
    assert flat == list(range(r * k))
    # Each original block has copies on min(r, h) distinct disks.
    owner: dict[int, set] = {}
    for d, blocks in enumerate(p):
        for b in blocks:
            owner.setdefault(b % k, set()).add(d)
    expected = min(r, h)
    assert all(len(s) == expected for s in owner.values())


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=64),
    st.floats(min_value=0.0, max_value=4.0),
    st.integers(min_value=1, max_value=16),
)
def test_fractional_replication_total(k, d, h):
    p = L.rotated_replicas_fractional(k, d, h)
    total = sum(len(disk) for disk in p)
    expect = (int(d) + 1) * k + int(round((d - int(d)) * k))
    assert total == expect
    ids = [b for disk in p for b in disk]
    assert len(set(ids)) == len(ids)  # globally unique ids


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=16))
def test_unbalanced_assignment_properties(counts):
    p = L.unbalanced(counts)
    assert [len(d) for d in p] == counts
    ids = sorted(b for disk in p for b in disk)
    assert ids == list(range(sum(counts)))


# ------------------------------------------------------------------ service model


layout_strategy = st.builds(
    InDiskLayout,
    blocking_factor=st.sampled_from(BLOCKING_FACTORS),
    p_sequential=st.sampled_from([0.0, 0.5, 1.0]),
)


@settings(max_examples=25, deadline=None)
@given(
    layout_strategy,
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_block_service_positive_and_reproducible(layout, n_blocks, seed):
    mech = DiskMechanics()
    t1 = BlockService(mech, layout, 870, np.random.default_rng(seed)).block_service_times(
        n_blocks, MB
    )
    t2 = BlockService(mech, layout, 870, np.random.default_rng(seed)).block_service_times(
        n_blocks, MB
    )
    assert np.all(t1 > 0)
    assert np.array_equal(t1, t2)


@settings(max_examples=25, deadline=None)
@given(
    layout_strategy,
    st.floats(min_value=0.006, max_value=0.5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_completions_monotone_and_delayed_by_background(layout, interval, seed):
    mech = DiskMechanics()
    rng = np.random.default_rng(seed)
    services = BlockService(mech, layout, 870, rng).block_service_times(8, MB)

    quiet = BlockService(mech, layout, 870, np.random.default_rng(seed + 1))
    c0 = quiet.completions(services, 1.0)
    loaded = BlockService(
        mech, layout, 870, np.random.default_rng(seed + 1),
        background=BackgroundLoad(interval_s=interval),
    )
    c1 = loaded.completions(services, 1.0, reqs_per_item=4)
    # Completions are strictly increasing and never earlier than quiet.
    assert np.all(np.diff(c0) > 0)
    assert np.all(np.diff(c1) > 0)
    assert np.all(c1 >= c0 - 1e-9)
    assert np.all(np.isfinite(c1))


# ------------------------------------------------------------------ decoding


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=8, max_value=48),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_blocks_needed_order_invariance_bounds(k, seed):
    """Any arrival order needs between k and n blocks; the full set always
    decodes (writer guarantee)."""
    rng = np.random.default_rng(seed)
    code = ImprovedLTCode(k, c=0.5, delta=0.5)
    graph = code.build_graph(3 * k, rng)
    for _ in range(3):
        order = rng.permutation(graph.n)
        needed = blocks_needed(graph, order)
        assert k <= needed <= graph.n


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=8, max_value=32),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_decoder_progress_monotone(k, seed):
    rng = np.random.default_rng(seed)
    code = ImprovedLTCode(k, c=0.5, delta=0.5)
    graph = code.build_graph(4 * k, rng)
    dec = PeelingDecoder(graph)
    prev = 0
    for cid in rng.permutation(graph.n):
        dec.add(int(cid))
        assert dec.decoded_count >= prev
        prev = dec.decoded_count
        if dec.is_complete:
            break
    assert dec.is_complete


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=4, max_value=24), st.integers(min_value=0, max_value=2**31 - 1))
def test_low_redundancy_repair_guarantee(k, seed):
    """Even n == k graphs decode after the constructive repair pass."""
    rng = np.random.default_rng(seed)
    code = ImprovedLTCode(k, c=1.0, delta=0.5)
    graph = code.build_graph(k, rng)
    assert blocks_needed(graph, list(range(k))) == k


# ------------------------------------------------------------------ cluster


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=60),
)
def test_fscache_lru_never_exceeds_capacity(ways, keys):
    from repro.cluster.fscache import SetAssociativeCache

    cache = SetAssociativeCache(
        capacity_bytes=ways * 4 * 64, line_bytes=64, ways=ways
    )
    for key in keys:
        cache.insert_line(key)
        cache.lookup_line(key % 7)
    for s in cache._sets:
        assert len(s) <= ways
        assert len(set(s)) == len(s)  # no duplicate tags in a set


@settings(max_examples=25, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=40))
def test_fair_queue_alternates_when_both_classes_pending(flags):
    from dataclasses import dataclass

    from repro.disk.scheduler import FairShareQueue

    @dataclass
    class Req:
        cylinder: int
        is_background: bool

    q = FairShareQueue()
    for i, bg in enumerate(flags):
        q.push(Req(i, bg))
    served = []
    while q:
        served.append(q.pop().is_background)
    # Conservation: everything served exactly once.
    assert len(served) == len(flags)
    assert sum(served) == sum(flags)
    # No class is served three times in a row while the other has pending
    # work: check via suffix counts.
    remaining = {True: sum(flags), False: len(flags) - sum(flags)}
    streak_class, streak = None, 0
    for bg in served:
        remaining[bg] -= 1
        if bg == streak_class:
            streak += 1
        else:
            streak_class, streak = bg, 1
        other = remaining[not bg]
        if other > 0:
            assert streak <= 2
