"""Regenerate tests/data/golden_trace.json after a deliberate format change.

Usage::

    PYTHONPATH=src python -m tests.make_golden
"""

import json
import pathlib

from tests.test_obs_tracer import build_reference_tracer

if __name__ == "__main__":
    path = pathlib.Path(__file__).parent / "data" / "golden_trace.json"
    path.parent.mkdir(exist_ok=True)
    path.write_text(
        json.dumps(build_reference_tracer().to_chrome(), indent=1) + "\n"
    )
    print(f"wrote {path}")
