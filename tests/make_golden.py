"""Regenerate the golden files under tests/data after a deliberate change.

Usage::

    PYTHONPATH=src python -m tests.make_golden

Writes:

* ``golden_trace.json`` — the tracer's Chrome export format
  (:func:`tests.test_obs_tracer.build_reference_tracer`);
* ``golden_faults.json`` — per-scheme results under the reference fault
  storm (:func:`tests.test_faults_golden.build_fault_reference`);
* ``golden_schemes.json`` — every scheme's full ``AccessResult`` across
  read/write/raw x {no faults, storm}
  (:func:`tests.test_golden_schemes.build_scheme_reference`);
* ``golden_repair.json`` — the repair-economy grid under the pinned
  storm seed (:func:`tests.test_repair_golden.build_repair_reference`).
"""

import json
import pathlib

from tests.test_faults_golden import build_fault_reference
from tests.test_golden_schemes import build_scheme_reference
from tests.test_obs_tracer import build_reference_tracer
from tests.test_repair_golden import build_repair_reference

if __name__ == "__main__":
    data = pathlib.Path(__file__).parent / "data"
    data.mkdir(exist_ok=True)

    path = data / "golden_trace.json"
    path.write_text(
        json.dumps(build_reference_tracer().to_chrome(), indent=1) + "\n"
    )
    print(f"wrote {path}")

    path = data / "golden_faults.json"
    path.write_text(json.dumps(build_fault_reference(), indent=1) + "\n")
    print(f"wrote {path}")

    path = data / "golden_schemes.json"
    path.write_text(json.dumps(build_scheme_reference(), indent=1) + "\n")
    print(f"wrote {path}")

    path = data / "golden_repair.json"
    path.write_text(json.dumps(build_repair_reference(), indent=1) + "\n")
    print(f"wrote {path}")
