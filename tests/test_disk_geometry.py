"""Tests for disk geometry."""

import numpy as np
import pytest

from repro.disk.geometry import SECTOR_BYTES, DiskGeometry, Zone, default_geometry


def small_geometry():
    return DiskGeometry(
        [Zone(0, 9, 100), Zone(10, 19, 50)],
        heads=2,
    )


def test_total_sectors():
    g = small_geometry()
    assert g.total_sectors == 10 * 2 * 100 + 10 * 2 * 50
    assert g.capacity_bytes == g.total_sectors * SECTOR_BYTES


def test_zone_tiling_enforced():
    with pytest.raises(ValueError):
        DiskGeometry([Zone(0, 9, 100), Zone(11, 19, 50)])
    with pytest.raises(ValueError):
        DiskGeometry([])
    with pytest.raises(ValueError):
        DiskGeometry([Zone(0, 9, 0)])
    with pytest.raises(ValueError):
        DiskGeometry([Zone(0, 9, 10)], heads=0)


def test_locate_first_and_boundary():
    g = small_geometry()
    assert g.locate(0) == (0, 0, 0)
    assert g.locate(99) == (0, 0, 99)
    assert g.locate(100) == (0, 1, 0)  # next head
    assert g.locate(200) == (1, 0, 0)  # next cylinder
    # First LBA of zone 1:
    first_z1 = 10 * 2 * 100
    assert g.locate(first_z1) == (10, 0, 0)


def test_cylinder_of_lba_vectorised():
    g = small_geometry()
    lbas = np.array([0, 199, 200, 2000, g.total_sectors - 1])
    cyls = g.cylinder_of_lba(lbas)
    assert list(cyls) == [0, 0, 1, 10, 19]


def test_lba_out_of_range():
    g = small_geometry()
    with pytest.raises(ValueError):
        g.zone_index_of_lba(g.total_sectors)
    with pytest.raises(ValueError):
        g.zone_index_of_lba(-1)


def test_spt_lookup():
    g = small_geometry()
    assert int(g.spt_of_lba(0)) == 100
    assert int(g.spt_of_lba(g.total_sectors - 1)) == 50
    assert g.spt_at_cylinder(5) == 100
    assert g.spt_at_cylinder(15) == 50
    with pytest.raises(ValueError):
        g.spt_at_cylinder(99)


def test_track_crossings():
    g = small_geometry()
    assert g.track_crossings(0, 100) == 0  # exactly one track
    assert g.track_crossings(0, 101) == 1
    assert g.track_crossings(50, 100) == 1
    assert g.track_crossings(0, 0) == 0


def test_default_geometry_plausible():
    g = default_geometry()
    # ~110 GB class drive, outer zone faster than inner.
    assert 80e9 < g.capacity_bytes < 150e9
    assert g.zones[0].sectors_per_track > g.zones[-1].sectors_per_track
    assert g.cylinders == 60_000


def test_roundtrip_locate_consistency():
    g = default_geometry()
    rng = np.random.default_rng(0)
    for lba in rng.integers(0, g.total_sectors, 50):
        cyl, head, sector = g.locate(int(lba))
        assert 0 <= cyl < g.cylinders
        assert 0 <= head < g.heads
        assert 0 <= sector < g.spt_at_cylinder(cyl)
        assert int(g.cylinder_of_lba(int(lba))) == cyl
