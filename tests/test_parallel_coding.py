"""Tests for the parallel coding extension."""

import numpy as np
import pytest

from repro.coding.lt import ImprovedLTCode
from repro.coding.parallel import encode_throughput, parallel_encode, striped_xor_into
from repro.coding.xorblocks import random_blocks


@pytest.fixture()
def setup_code():
    rng = np.random.default_rng(0)
    code = ImprovedLTCode(32, c=0.5, delta=0.5)
    graph = code.build_graph(128, rng)
    data = random_blocks(rng, 32, 64)
    return code, graph, data


def test_parallel_encode_bit_identical(setup_code):
    code, graph, data = setup_code
    serial = code.encode(data, graph)
    for workers in (1, 2, 4):
        parallel = parallel_encode(code, data, graph, workers=workers)
        assert np.array_equal(parallel, serial)


def test_parallel_encode_validates(setup_code):
    code, graph, data = setup_code
    with pytest.raises(ValueError):
        parallel_encode(code, data[:10], graph)
    with pytest.raises(ValueError):
        parallel_encode(code, data, graph, workers=0)


def test_small_n_falls_back_to_serial(setup_code):
    code, graph, data = setup_code
    out = parallel_encode(code, data, graph, workers=100)  # n < 2*workers
    assert np.array_equal(out, code.encode(data, graph))


def test_striped_xor_matches_serial():
    rng = np.random.default_rng(1)
    big = 1 << 23  # above the striping threshold
    a = rng.integers(0, 256, big, dtype=np.uint8)
    b = rng.integers(0, 256, big, dtype=np.uint8)
    expect = a ^ b
    striped_xor_into(a, b, workers=4)
    assert np.array_equal(a, expect)


def test_striped_xor_small_fallback():
    a = np.arange(128, dtype=np.uint8)
    b = np.ones(128, dtype=np.uint8)
    expect = a ^ b
    striped_xor_into(a, b, workers=4)
    assert np.array_equal(a, expect)


def test_striped_xor_shape_check():
    with pytest.raises(ValueError):
        striped_xor_into(np.zeros(8, np.uint8), np.zeros(16, np.uint8))


def test_encode_throughput_positive(setup_code):
    code, graph, _ = setup_code
    rng = np.random.default_rng(2)
    thr = encode_throughput(code, graph, block_len=1024, workers=2, rng=rng)
    assert thr > 0


# -- REPRO_CODING_THREADS: the scheme data-path switch -----------------------


def test_coding_threads_env_parsing(monkeypatch):
    from repro.coding.parallel import coding_threads

    monkeypatch.delenv("REPRO_CODING_THREADS", raising=False)
    assert coding_threads() == 1
    for raw, expect in [("4", 4), ("1", 1), ("0", 1), ("-3", 1), ("junk", 1), ("", 1)]:
        monkeypatch.setenv("REPRO_CODING_THREADS", raw)
        assert coding_threads() == expect, raw


def test_parallel_encode_ids_bit_identical(setup_code):
    from repro.coding.parallel import parallel_encode_ids
    from repro.coding.xorblocks import xor_reduce

    code, graph, data = setup_code
    # A placement-like unordered subset with a duplicate id.
    ids = [5, 90, 2, 41, 7, 110, 3, 64, 27, 99, 0, 5]
    serial = {b: xor_reduce(data, graph.neighbors[b]) for b in ids}
    for workers in (1, 2, 8):
        out = parallel_encode_ids(data, graph, ids, workers=workers)
        assert set(out) == set(serial)
        for b, payload in out.items():
            assert np.array_equal(payload, serial[b]), (workers, b)


def test_parallel_group_map_order_and_identity():
    from repro.coding.parallel import parallel_group_map

    fn = lambda g: np.full(4, g, dtype=np.uint8)
    serial = [fn(g) for g in range(13)]
    for workers in (1, 2, 8):
        out = parallel_group_map(fn, 13, workers=workers)
        assert len(out) == 13
        for got, ref in zip(out, serial):
            assert np.array_equal(got, ref)
    assert parallel_group_map(fn, 0, workers=4) == []


def test_parallel_group_map_propagates_exceptions():
    from repro.coding.parallel import parallel_group_map

    def boom(g):
        if g == 3:
            raise RuntimeError("group 3")
        return g

    with pytest.raises(RuntimeError, match="group 3"):
        parallel_group_map(boom, 8, workers=4)


@pytest.mark.parametrize("scheme", ["robustore", "robustore-rs"])
def test_codec_roundtrip_thread_count_invariant(monkeypatch, scheme):
    """Scheme data paths are byte-identical across 1, 2 and 8 threads."""
    from repro.core.codecs import codec_for
    from tests.test_codecs import CFG, blocks, make_record

    codec = codec_for(scheme)
    record = make_record(scheme)
    data = blocks()
    arrival = [bid for p in record.placement for bid in p]
    reference = None
    for workers in ("1", "2", "8"):
        monkeypatch.setenv("REPRO_CODING_THREADS", workers)
        payloads = codec.encode(data, record, CFG)
        decoded = codec.decode(arrival, payloads, record, CFG)
        assert np.array_equal(decoded, data)
        if reference is None:
            reference = payloads
        else:
            assert set(payloads) == set(reference)
            for bid, payload in payloads.items():
                assert np.array_equal(payload, reference[bid]), (workers, bid)


def test_data_mode_peeling_thread_count_invariant(monkeypatch, setup_code):
    """PeelingDecoder's lazy-XOR resolution path under the thread switch."""
    from repro.coding.peeling import PeelingDecoder

    code, graph, data = setup_code
    coded = code.encode(data, graph)
    outputs = []
    for workers in ("1", "8"):
        monkeypatch.setenv("REPRO_CODING_THREADS", workers)
        dec = PeelingDecoder(graph, block_len=data.shape[1])
        for cid in range(graph.n):
            dec.add(cid, coded[cid])
            if dec.is_complete:
                break
        outputs.append(dec.get_data())
        assert np.array_equal(dec.get_data(), data)
    assert np.array_equal(outputs[0], outputs[1])


@pytest.mark.parametrize("scheme", ["robustore", "robustore-rs"])
def test_scheme_goldens_reproduce_under_threads(monkeypatch, scheme):
    """Timing-simulation goldens are invariant to REPRO_CODING_THREADS.

    The switch parallelises only the data path (payload bytes); the
    golden-pinned timing results must not move by a single bit.
    """
    import json

    from tests.test_golden_schemes import CFG as GCFG
    from tests.test_golden_schemes import GOLDEN, TrialPlan, _result_dict, run_scheme

    monkeypatch.setenv("REPRO_CODING_THREADS", "8")
    golden = json.loads(GOLDEN.read_text())
    for mode in ("read", "write"):
        plan = TrialPlan(access=GCFG, mode=mode, pool=8, rtt_s=0.001, seed=7, trials=2)
        results = [_result_dict(r) for r in run_scheme(plan, scheme)]
        assert results == golden[scheme][f"{mode}/none"], (scheme, mode)
