"""Tests for the parallel coding extension."""

import numpy as np
import pytest

from repro.coding.lt import ImprovedLTCode
from repro.coding.parallel import encode_throughput, parallel_encode, striped_xor_into
from repro.coding.xorblocks import random_blocks


@pytest.fixture()
def setup_code():
    rng = np.random.default_rng(0)
    code = ImprovedLTCode(32, c=0.5, delta=0.5)
    graph = code.build_graph(128, rng)
    data = random_blocks(rng, 32, 64)
    return code, graph, data


def test_parallel_encode_bit_identical(setup_code):
    code, graph, data = setup_code
    serial = code.encode(data, graph)
    for workers in (1, 2, 4):
        parallel = parallel_encode(code, data, graph, workers=workers)
        assert np.array_equal(parallel, serial)


def test_parallel_encode_validates(setup_code):
    code, graph, data = setup_code
    with pytest.raises(ValueError):
        parallel_encode(code, data[:10], graph)
    with pytest.raises(ValueError):
        parallel_encode(code, data, graph, workers=0)


def test_small_n_falls_back_to_serial(setup_code):
    code, graph, data = setup_code
    out = parallel_encode(code, data, graph, workers=100)  # n < 2*workers
    assert np.array_equal(out, code.encode(data, graph))


def test_striped_xor_matches_serial():
    rng = np.random.default_rng(1)
    big = 1 << 23  # above the striping threshold
    a = rng.integers(0, 256, big, dtype=np.uint8)
    b = rng.integers(0, 256, big, dtype=np.uint8)
    expect = a ^ b
    striped_xor_into(a, b, workers=4)
    assert np.array_equal(a, expect)


def test_striped_xor_small_fallback():
    a = np.arange(128, dtype=np.uint8)
    b = np.ones(128, dtype=np.uint8)
    expect = a ^ b
    striped_xor_into(a, b, workers=4)
    assert np.array_equal(a, expect)


def test_striped_xor_shape_check():
    with pytest.raises(ValueError):
        striped_xor_into(np.zeros(8, np.uint8), np.zeros(16, np.uint8))


def test_encode_throughput_positive(setup_code):
    code, graph, _ = setup_code
    rng = np.random.default_rng(2)
    thr = encode_throughput(code, graph, block_len=1024, workers=2, rng=rng)
    assert thr > 0
