"""Tests for the wall-clock-paced environment (with a fake clock)."""

import pytest

from repro.sim.realtime import ThrottledEnvironment


class FakeClock:
    """Deterministic wall clock: sleep() advances it exactly."""

    def __init__(self) -> None:
        self.t = 100.0
        self.sleeps: list[float] = []

    def clock(self) -> float:
        return self.t

    def sleep(self, dt: float) -> None:
        self.sleeps.append(dt)
        self.t += dt


def make_env(speedup=1.0, **kw):
    fake = FakeClock()
    env = ThrottledEnvironment(
        speedup=speedup, sleep=fake.sleep, clock=fake.clock, **kw
    )
    return env, fake


def test_paces_to_wall_clock():
    env, fake = make_env(speedup=1.0)

    def proc(env):
        yield env.timeout(2.0)

    env.process(proc(env))
    env.run()
    # 2 virtual seconds at speedup 1 -> ~2 wall seconds slept.
    assert sum(fake.sleeps) == pytest.approx(2.0, abs=0.01)


def test_speedup_divides_sleep():
    env, fake = make_env(speedup=10.0)

    def proc(env):
        yield env.timeout(5.0)

    env.process(proc(env))
    env.run()
    assert sum(fake.sleeps) == pytest.approx(0.5, abs=0.01)


def test_sleep_chunked_by_max_sleep():
    env, fake = make_env(speedup=1.0, max_sleep_s=0.25)

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert max(fake.sleeps) <= 0.25 + 1e-9
    assert len(fake.sleeps) >= 4


def test_infinite_speedup_never_sleeps():
    env, fake = make_env(speedup=float("inf"))

    def proc(env):
        yield env.timeout(100.0)

    env.process(proc(env))
    env.run()
    assert fake.sleeps == []


def test_invalid_speedup():
    with pytest.raises(ValueError):
        ThrottledEnvironment(speedup=0)


def test_behind_by_zero_when_on_schedule():
    env, fake = make_env(speedup=1.0)

    def proc(env):
        yield env.timeout(0.5)

    env.process(proc(env))
    env.run()
    assert env.behind_by_s() == pytest.approx(0.0, abs=0.01)


def test_total_slept_accounting():
    env, fake = make_env(speedup=2.0)

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env.total_slept_s == pytest.approx(sum(fake.sleeps))
    assert env.total_slept_s == pytest.approx(1.0, abs=0.02)
