"""Tests for the Reed-Solomon RobuSTore variant (code-choice ablation)."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core import SCHEMES
from repro.core.access import MB, AccessConfig
from repro.core.robustore_rs import (
    GroupedRSTracker,
    RobuStoreRSScheme,
    rs_decode_bandwidth_bps,
)
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=64 * MB, block_bytes=1 * MB, n_disks=16, redundancy=2.0)


def test_decode_bandwidth_monotone_in_group():
    bws = [rs_decode_bandwidth_bps(g) for g in (4, 8, 16, 32, 64, 128, 256)]
    assert all(b > a for a, b in zip(bws[1:], bws[:-1]))
    # Quadratic-cost extrapolation beyond the table: 256 ~ half of 128.
    assert bws[-1] == pytest.approx(bws[-2] / 2, rel=0.01)


def test_tracker_requires_every_group():
    t = GroupedRSTracker(n_groups=2, group_size=2)
    t.add((0 << 20) | 0)
    t.add((0 << 20) | 1)
    assert not t.complete
    t.add((1 << 20) | 5)
    t.add((1 << 20) | 5)  # duplicate ignored
    assert not t.complete
    t.add((1 << 20) | 6)
    assert t.complete


def test_read_completes_with_decode_tail():
    cluster = Cluster(n_disks=32)
    hub = RngHub(13)
    scheme = SCHEMES["robustore-rs"](cluster, CFG, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", 0))
    record = scheme.prepare("f", 0)
    assert record.coding["algorithm"] == "reed-solomon"
    r = scheme.read("f", 0)
    assert np.isfinite(r.latency_s)
    assert r.extra["decode_tail_s"] > 0.5  # 64 MB at ~13 MB/s
    assert r.latency_s > r.extra["decode_tail_s"]


def test_rs_variant_slower_than_lt():
    lats = {}
    for name in ("robustore", "robustore-rs"):
        cluster = Cluster(n_disks=32)
        hub = RngHub(13)
        scheme = SCHEMES[name](cluster, CFG, hub=hub)
        cluster.redraw_disk_states(hub.fresh("env", 0))
        scheme.prepare("f", 0)
        lats[name] = scheme.read("f", 0).latency_s
    assert lats["robustore-rs"] > 2 * lats["robustore"]


def test_group_capped_at_256_coded():
    cfg = AccessConfig(data_bytes=64 * MB, n_disks=8, redundancy=9.0)
    scheme = RobuStoreRSScheme(Cluster(n_disks=8), cfg, hub=RngHub(0))
    group, n_groups, coded = scheme._grouping()
    assert coded <= 256
