"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt, SimulationError


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [5.0, 7.5]


def test_timeout_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1, value="hello")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "hello"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError, match="finite and non-negative"):
        env.timeout(-1)


def test_nan_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError, match="finite and non-negative"):
        env.timeout(float("nan"))
    with pytest.raises(SimulationError, match="finite and non-negative"):
        env.timeout(float("inf"))


def test_run_until_time_stops_clock():
    env = Environment()
    fired = []

    def ticker(env):
        while True:
            yield env.timeout(1)
            fired.append(env.now)

    env.process(ticker(env))
    env.run(until=3.5)
    assert fired == [1.0, 2.0, 3.0]
    assert env.now == 3.5  # lint: disable=SIM003 -- exact: timeout delays are exact in the DES kernel


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(4)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42
    assert env.now == 4.0  # lint: disable=SIM003 -- exact: timeout delays are exact in the DES kernel


def test_event_at_until_time_does_not_run():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(2)
        fired.append("ran")

    env.process(proc(env))
    env.run(until=2)
    assert fired == []


def test_run_until_past_time_raises():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_process_composition():
    env = Environment()

    def child(env):
        yield env.timeout(3)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    p = env.process(parent(env))
    env.run()
    assert p.value == (3.0, "done")


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in "abc":
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    seen = []

    def waiter(env):
        val = yield ev
        seen.append((env.now, val))

    def trigger(env):
        yield env.timeout(7)
        ev.succeed("payload")

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert seen == [(7.0, "payload")]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def trigger(env):
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_crashes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise KeyError("oops")

    env.process(bad(env))
    with pytest.raises(KeyError):
        env.run()


def test_yield_non_event_raises_inside_process():
    env = Environment()

    def bad(env):
        yield 5  # type: ignore[misc]

    p = env.process(bad(env))
    with pytest.raises(RuntimeError):
        env.run()
    assert not p.ok


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(env, proc):
        yield env.timeout(3)
        proc.interrupt("stop now")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(3.0, "stop now")]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_all_of_collects_values():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        result = yield AllOf(env, [t1, t2])
        return sorted(result.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == ["a", "b"]
    assert env.now == 2.0  # lint: disable=SIM003 -- exact: timeout delays are exact in the DES kernel


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(5, value="slow")
        t2 = env.timeout(1, value="fast")
        result = yield AnyOf(env, [t1, t2])
        return list(result.values())

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == ["fast"]
    assert env.now == 1.0  # lint: disable=SIM003 -- exact: timeout delays are exact in the DES kernel


def test_empty_all_of_fires_immediately():
    env = Environment()

    def proc(env):
        result = yield AllOf(env, [])
        return result

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(9)
    assert env.peek() == 9.0
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_run_out_of_events_before_until_event():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(SimulationError):
        env.run(until=ev)
