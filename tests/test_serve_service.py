"""Tests for the serving facade, its payload codec and exec integration.

A serving cell is a pure function of ``(plan, scheme)``: the payload
codec is lossless, two executions of the same payload are byte-identical,
overload produces graceful rejections (not unbounded queueing), and a
``ServeJob`` rides the executor's cache and worker pool exactly like a
trial job.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exec import Executor, ResultStore, canonical_json, execute_payload
from repro.exec.job import results_from_jsonable
from repro.serve import ServeJob, ServePlan, ServeReport, WorkloadSpec
from repro.serve.service import (
    StorageService,
    decode_serve_plan,
    encode_serve_plan,
    execute_serve_payload,
)
from repro.serve.slo import SloTracker

SMALL = WorkloadSpec(n_clients=200, duration_s=60.0, n_files=64)


def small_plan(**kwargs) -> ServePlan:
    base = dict(
        workload=SMALL, pool=16, disks_per_filer=4, calibration_trials=2,
        calibration_mb=8, seed=11,
    )
    base.update(kwargs)
    return ServePlan(**base)


# ---------------------------------------------------------------------------
# payload codec


def test_plan_codec_round_trip():
    plan = small_plan(target_bandwidth_mbps=50.0)
    payload = encode_serve_plan(plan, "robustore")
    assert payload["kind"] == "serve"
    back, scheme = decode_serve_plan(json.loads(canonical_json(payload)))
    assert back == plan and scheme == "robustore"


def test_plan_codec_rejects_bad_payloads():
    payload = encode_serve_plan(small_plan(), "raid0")
    with pytest.raises(ValueError):
        decode_serve_plan({**payload, "kind": "trial"})
    with pytest.raises(ValueError):
        decode_serve_plan({**payload, "surprise": 1})


def test_plan_validation():
    with pytest.raises(ValueError):
        small_plan(pool=0)
    with pytest.raises(ValueError):
        small_plan(replication_factor=0)
    with pytest.raises(ValueError):
        small_plan(max_wait_s=0.0)


# ---------------------------------------------------------------------------
# end-to-end serving


def test_service_end_to_end_report():
    report = StorageService(small_plan(), "robustore").run()
    assert isinstance(report, ServeReport)
    assert report.scheme == "robustore"
    assert report.offered == SMALL.total_requests
    assert report.admitted + report.rejected == report.offered
    assert report.admitted > 0
    assert 0.0 < report.p50_s <= report.p99_s <= report.p999_s
    assert report.goodput_mbps <= report.offered_mbps
    assert ServeReport.from_jsonable(report.to_jsonable()) == report


def test_same_payload_byte_identical():
    payload = encode_serve_plan(small_plan(), "raid0")
    assert execute_serve_payload(payload) == execute_serve_payload(payload)


def test_exec_payload_dispatches_on_kind():
    payload = encode_serve_plan(small_plan(), "raid0")
    out = execute_payload(canonical_json(payload))
    assert out == execute_serve_payload(payload)
    report = results_from_jsonable(json.loads(out))
    assert isinstance(report, ServeReport)
    with pytest.raises(ValueError):
        execute_payload(canonical_json({**payload, "kind": "mystery"}))
    with pytest.raises(ValueError):
        results_from_jsonable({"kind": "mystery"})


def test_overload_rejects_gracefully():
    # One filer slot and a tight admission bound: most requests cannot
    # start in time and must be refused, not queued forever.
    plan = small_plan(
        workload=WorkloadSpec(n_clients=2000, duration_s=30.0, n_files=64),
        filer_concurrency=1,
        max_wait_s=0.5,
    )
    report = StorageService(plan, "raid0").run()
    assert report.rejected > 0
    assert report.rejection_rate == pytest.approx(
        report.rejected / report.offered
    )
    assert report.goodput_mbps < report.offered_mbps


def test_calibration_sample_is_finite_and_scheme_specific():
    svc = StorageService(small_plan(), "robustore")
    cal = svc.calibrate()
    assert cal.size >= 1 and np.all(np.isfinite(cal)) and np.all(cal > 0)


# ---------------------------------------------------------------------------
# exec integration: cache, pool, byte-identity


def jobs_pair():
    plan = small_plan()
    return [ServeJob(plan, "raid0"), ServeJob(plan, "robustore")]


def test_serve_job_key_and_label():
    a, b = jobs_pair()
    assert a.key() != b.key()
    assert a.label.startswith("serve:raid0")
    assert "200c" in a.label


def test_serve_jobs_through_executor_cache(tmp_path):
    store = ResultStore(tmp_path / "cache")
    first = Executor(store=store).run_jobs(jobs_pair())
    second = Executor(store=store).run_jobs(jobs_pair())
    assert first == second
    assert all(isinstance(r, ServeReport) for r in first)
    assert store.stats().entries == 2


def test_serve_jobs_parallel_equals_sequential():
    seq = Executor(jobs=1, store=None).run_jobs(jobs_pair())
    par = Executor(jobs=2, store=None).run_jobs(jobs_pair())
    assert seq == par


# ---------------------------------------------------------------------------
# SLO tracker arithmetic


def test_tracker_counts_and_goodput():
    t = SloTracker(duration_s=10.0, slo_latency_s=1.0)
    t.admit(0.5, 10 << 20, failover=False)
    t.admit(2.0, 10 << 20, failover=True)  # SLO miss: no goodput credit
    t.reject(10 << 20)
    r = t.report("raid0", n_clients=3)
    assert (r.offered, r.admitted, r.rejected) == (3, 2, 1)
    assert r.failovers == 1 and r.slo_misses == 1
    assert r.goodput_mbps == pytest.approx(1.0)
    assert r.offered_mbps == pytest.approx(3.0)
    assert r.rejection_rate == pytest.approx(1 / 3)


def test_tracker_all_rejected_reports_inf_tails():
    t = SloTracker(duration_s=10.0, slo_latency_s=1.0)
    t.reject(1 << 20)
    r = t.report("raid0", n_clients=1)
    assert r.p50_s == float("inf") and r.rejection_rate == 1.0
    assert "inf" in str(r.row()["p50_s"])
    with pytest.raises(ValueError):
        SloTracker(duration_s=0.0, slo_latency_s=1.0)
