"""Tests for the update access, QoS planning, and the file API facade."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core import RobuStoreScheme
from repro.core.access import MB, AccessConfig
from repro.core.api import RobuStoreClient
from repro.core.qos import DiskProfile, QoSOptions, plan_access
from repro.core.update import affected_blocks, update_access, update_amplification
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)


def make_scheme():
    cluster = Cluster(n_disks=16)
    hub = RngHub(3)
    scheme = RobuStoreScheme(cluster, CFG, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", 0))
    scheme.prepare("f", 0)
    return scheme


class TestUpdate:
    def test_affected_blocks_small_fraction(self):
        scheme = make_scheme()
        affected = affected_blocks(scheme, "f", [0])
        record = scheme.metadata.lookup("f")
        assert 0 < len(affected) < 0.2 * record.total_blocks

    def test_update_access_rewrites_only_affected(self):
        scheme = make_scheme()
        r = update_access(scheme, "f", [0, 1], trial=1)
        assert r.disk_blocks == r.extra["affected_coded_blocks"]
        assert 0 < r.extra["affected_fraction"] < 0.3
        assert np.isfinite(r.latency_s)

    def test_update_nothing(self):
        scheme = make_scheme()
        record = scheme.metadata.lookup("f")
        graph = record.extra["graph"]
        # An original block adjacent to no *stored* coded block is
        # impossible with full balanced placement; empty input instead.
        r = update_access(scheme, "f", [], trial=1)
        assert r.disk_blocks == 0

    def test_update_amplification_near_mean_degree(self):
        scheme = make_scheme()
        record = scheme.metadata.lookup("f")
        graph = record.extra["graph"]
        amp = update_amplification(scheme, "f")
        mean_deg = graph.edge_count / graph.k
        assert amp == pytest.approx(mean_deg, rel=0.4)


class TestQoS:
    def test_bandwidth_target_raises_disk_count(self):
        base = AccessConfig(n_disks=8)
        qos = QoSOptions(target_bandwidth_mbps=900)
        out = plan_access(base, qos, DiskProfile(avg_bandwidth_mbps=15, pool_size=128))
        assert out.n_disks == 60

    def test_disk_count_clipped_to_pool(self):
        base = AccessConfig(n_disks=8)
        qos = QoSOptions(target_bandwidth_mbps=10_000)
        out = plan_access(base, qos, DiskProfile(pool_size=64))
        assert out.n_disks == 64

    def test_redundancy_rule_5_3_2(self):
        base = AccessConfig()
        qos = QoSOptions(redundancy_budget=10)
        out = plan_access(base, qos, DiskProfile(avg_bandwidth_mbps=15, peak_bandwidth_mbps=50))
        # D = 1.5 * 50/15 - 1 = 4.0
        assert out.redundancy == pytest.approx(4.0)

    def test_redundancy_budget_caps(self):
        base = AccessConfig()
        qos = QoSOptions(redundancy_budget=1.0)
        out = plan_access(base, qos)
        assert out.redundancy == 1.0

    def test_tight_robustness_shrinks_blocks(self):
        base = AccessConfig(block_bytes=8 * MB)
        out = plan_access(base, QoSOptions(max_latency_std_s=0.1))
        assert out.block_bytes == 1 * MB

    def test_nonpositive_redundancy_budget_rejected(self):
        base = AccessConfig()
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="redundancy_budget"):
                plan_access(base, QoSOptions(redundancy_budget=bad))

    def test_nonpositive_bandwidth_target_rejected(self):
        base = AccessConfig()
        for bad in (0.0, -50.0):
            with pytest.raises(ValueError, match="target_bandwidth_mbps"):
                plan_access(base, QoSOptions(target_bandwidth_mbps=bad))

    def test_unset_bandwidth_target_means_no_requirement(self):
        base = AccessConfig(n_disks=8)
        out = plan_access(base, QoSOptions(), DiskProfile(pool_size=128))
        assert out.n_disks == 8


class TestApi:
    def test_roundtrip_bytes_exact(self):
        client = RobuStoreClient(
            config=AccessConfig(data_bytes=8 * MB, n_disks=8, redundancy=3.0), seed=1
        )
        data = np.random.default_rng(0).integers(0, 256, 3 * MB + 123, np.uint8).tobytes()
        with client.open("x", "w") as f:
            res_w = f.write(data)
        with client.open("x", "r") as f:
            out, res_r = f.read()
        assert out == data
        assert res_w.latency_s > 0 and res_r.latency_s > 0

    def test_mode_enforced(self):
        client = RobuStoreClient(seed=2)
        with client.open("y", "w") as f:
            f.write(b"\x00" * 1024)
        handle = client.open("y", "r")
        with pytest.raises(PermissionError):
            handle.write(b"123")
        handle.close()
        with pytest.raises(KeyError):
            client.open("zz", "r")

    def test_closed_handle_rejects_io(self):
        client = RobuStoreClient(seed=3)
        f = client.open("z", "w")
        f.close()
        with pytest.raises(ValueError):
            f.write(b"data")

    def test_write_lock_released_on_close(self):
        client = RobuStoreClient(seed=4)
        with client.open("w1", "w") as f:
            f.write(b"\x01" * 2048)
        # Reopening after the context manager exits must not raise.
        with client.open("w1", "r") as f:
            out, _ = f.read()
        assert out == b"\x01" * 2048

    def test_qos_open_adjusts_config(self):
        client = RobuStoreClient(seed=5)
        handle = client.open("q", "w", qos=QoSOptions(redundancy_budget=1.5))
        assert handle.cfg.redundancy <= 1.5
        handle.close()


class TestMultiSchemeApi:
    @pytest.mark.parametrize(
        "scheme",
        ["raid0", "rraid-s", "rraid-a", "raid0+1", "robustore", "robustore-rs"],
    )
    def test_roundtrip_every_codec(self, scheme):
        from repro.core.api import StorageClient

        client = StorageClient(
            scheme,
            config=AccessConfig(data_bytes=8 * MB, n_disks=8, redundancy=2.0),
            seed=31,
        )
        data = np.random.default_rng(5).integers(0, 256, 5 * MB + 7, np.uint8).tobytes()
        with client.open("f", "w") as f:
            f.write(data)
        with client.open("f", "r") as f:
            out, res = f.read()
        assert out == data
        assert np.isfinite(res.latency_s)

    def test_unknown_scheme_rejected(self):
        from repro.core.api import StorageClient

        with pytest.raises(ValueError):
            StorageClient("raid5")  # parity XOR not wired into the file API

    def test_alias_still_works(self):
        from repro.core.api import RobuStoreClient, StorageClient

        client = RobuStoreClient(seed=1)
        assert isinstance(client, StorageClient)
        assert client.scheme_name == "robustore"


class TestApiUpdate:
    def make_client(self):
        from repro.core.api import StorageClient

        return StorageClient(
            "robustore",
            config=AccessConfig(data_bytes=8 * MB, n_disks=8, redundancy=3.0),
            seed=41,
        )

    def test_update_changes_bytes_and_localises_rewrites(self):
        client = self.make_client()
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 4 * MB, np.uint8).tobytes()
        handle = client.open("u", "w")
        handle.write(data)
        new_block = bytes([0xAB]) * MB
        res = handle.update(1, new_block)
        handle.close()
        # Only a small fraction of the coded blocks is rewritten.
        assert 0 < res.extra["affected_fraction"] < 0.5
        with client.open("u", "r") as f:
            out, _ = f.read()
        expect = data[:MB] + new_block + data[2 * MB:]
        assert out == expect

    def test_update_validation(self):
        client = self.make_client()
        handle = client.open("u2", "w")
        handle.write(b"\x00" * (2 * MB))
        with pytest.raises(IndexError):
            handle.update(99, b"x")
        with pytest.raises(ValueError):
            handle.update(0, b"x" * (2 * MB))
        handle.close()
        read_handle = client.open("u2", "r")
        with pytest.raises(PermissionError):
            read_handle.update(0, b"x")
        read_handle.close()

    def test_update_unsupported_scheme(self):
        from repro.core.api import StorageClient

        client = StorageClient(
            "raid0", config=AccessConfig(data_bytes=4 * MB, n_disks=4), seed=2
        )
        handle = client.open("u3", "w")
        handle.write(b"\x01" * MB)
        with pytest.raises(NotImplementedError):
            handle.update(0, b"y")
        handle.close()
