"""Tests for the network model."""

import pytest

from repro.net import Link, NetworkModel


def test_link_defaults():
    link = Link()
    assert link.rtt_s == 0.001
    assert link.one_way_s == 0.0005
    assert link.transfer_time(10**9) == 0.0  # plentiful bandwidth


def test_link_finite_bandwidth():
    link = Link(rtt_s=0.01, bandwidth_bps=1e6)
    assert link.transfer_time(500_000) == pytest.approx(0.5)


def test_link_validation():
    with pytest.raises(ValueError):
        Link(rtt_s=-1)
    with pytest.raises(ValueError):
        Link(bandwidth_bps=0)


def test_link_accounting():
    link = Link()
    link.account(100)
    link.account(50)
    assert link.bytes_sent == 150


def test_network_model_uniform_rtt():
    net = NetworkModel(4, rtt_s=0.02)
    assert len(net) == 4
    assert all(link.rtt_s == 0.02 for link in net.links)


def test_network_model_per_server_rtt():
    net = NetworkModel(3, rtt_s=[0.001, 0.01, 0.1])
    assert net.link(2).rtt_s == 0.1
    with pytest.raises(ValueError):
        NetworkModel(3, rtt_s=[0.001, 0.01])


def test_network_model_totals_and_reset():
    net = NetworkModel(2)
    net.link(0).account(10)
    net.link(1).account(20)
    assert net.total_bytes_sent == 30
    net.reset_counters()
    assert net.total_bytes_sent == 0


def test_network_model_needs_servers():
    with pytest.raises(ValueError):
        NetworkModel(0)
