"""Tests for the RAID-5 and RAID-0+1 baseline schemes."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core import SCHEMES
from repro.core.access import MB, AccessConfig
from repro.core.raid5 import PARITY_BASE, Raid5Scheme
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)


def make(name, trial=0, failed=None, seed=21):
    cluster = Cluster(n_disks=8, rtt_s=0.001)
    hub = RngHub(seed)
    scheme = SCHEMES[name](cluster, CFG, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", trial), failed_disks=failed)
    record = scheme.prepare("f", trial)
    return cluster, hub, scheme, record


class TestRaid5:
    def test_layout_parity_per_stripe(self):
        _, _, scheme, record = make("raid5")
        stripes = record.extra["stripes"]
        # 32 blocks over 8 disks: 7 data + 1 parity per stripe -> 5 stripes.
        assert len(stripes) == -(-CFG.k // 7)
        for stripe in stripes:
            data_disks = {d for _, d in stripe["data"]}
            assert stripe["parity_disk"] not in data_disks
        parity_ids = [b for p in record.placement for b in p if b >= PARITY_BASE]
        assert len(parity_ids) == len(stripes)

    def test_parity_rotates(self):
        _, _, _, record = make("raid5")
        pd = [s["parity_disk"] for s in record.extra["stripes"]]
        assert len(set(pd)) > 1

    def test_fault_free_read_skips_parity(self):
        _, _, scheme, _ = make("raid5")
        r = scheme.read("f", 0)
        assert np.isfinite(r.latency_s)
        assert r.blocks_received == CFG.k  # data blocks only
        assert r.io_overhead == pytest.approx(0.0)
        assert not r.extra["degraded"]

    def test_degraded_read_recovers_single_failure(self):
        cluster, hub, scheme, record = make("raid5")
        cluster.redraw_disk_states(
            hub.fresh("env", 0), failed_disks={record.disk_ids[0]}
        )
        r = scheme.read("f", 0)
        assert np.isfinite(r.latency_s)
        assert r.extra["degraded"]
        # Parity of the affected stripes replaces the lost data blocks in
        # the transfer plan, so the byte count stays ~K blocks.
        assert r.io_overhead >= 0.0
        assert r.blocks_received >= CFG.k

    def test_two_failures_unrecoverable(self):
        cluster, hub, scheme, record = make("raid5")
        cluster.redraw_disk_states(
            hub.fresh("env", 0),
            failed_disks={record.disk_ids[0], record.disk_ids[1]},
        )
        r = scheme.read("f", 0)
        assert r.latency_s == float("inf")
        assert r.extra["unrecoverable"]

    def test_write_includes_parity_overhead(self):
        cluster = Cluster(n_disks=8)
        hub = RngHub(3)
        scheme = SCHEMES["raid5"](cluster, CFG, hub=hub)
        cluster.redraw_disk_states(hub.fresh("env", 0))
        r = scheme.write("f", 0)
        assert r.network_bytes > CFG.data_bytes
        assert r.io_overhead == pytest.approx(1 / 7, abs=0.05)

    def test_needs_two_disks(self):
        cluster = Cluster(n_disks=8)
        cfg1 = AccessConfig(data_bytes=4 * MB, n_disks=1)
        scheme = Raid5Scheme(cluster, cfg1, hub=RngHub(0))
        with pytest.raises(ValueError):
            scheme._layout(1)


class TestRaid01:
    def test_layout_two_mirrors(self):
        _, _, _, record = make("raid0+1")
        half = len(record.disk_ids) // 2
        set_a = [b for p in record.placement[:half] for b in p]
        set_b = [b for p in record.placement[half:] for b in p]
        assert sorted(set_a) == list(range(CFG.k))
        assert sorted(b - CFG.k for b in set_b) == list(range(CFG.k))

    def test_read_completes_with_coverage(self):
        _, _, scheme, _ = make("raid0+1")
        r = scheme.read("f", 0)
        assert np.isfinite(r.latency_s)
        assert 0.0 <= r.io_overhead <= 1.0

    def test_survives_one_mirror_failure(self):
        cluster, hub, scheme, record = make("raid0+1")
        cluster.redraw_disk_states(
            hub.fresh("env", 0), failed_disks={record.disk_ids[0]}
        )
        r = scheme.read("f", 0)
        assert np.isfinite(r.latency_s)

    def test_dies_when_both_mirrors_fail(self):
        cluster, hub, scheme, record = make("raid0+1")
        half = len(record.disk_ids) // 2
        cluster.redraw_disk_states(
            hub.fresh("env", 0),
            failed_disks={record.disk_ids[0], record.disk_ids[half]},
        )
        r = scheme.read("f", 0)
        assert r.latency_s == float("inf")

    def test_write_doubles_bytes(self):
        cluster = Cluster(n_disks=8)
        hub = RngHub(4)
        scheme = SCHEMES["raid0+1"](cluster, CFG, hub=hub)
        cluster.redraw_disk_states(hub.fresh("env", 0))
        r = scheme.write("f", 0)
        assert r.network_bytes == 2 * CFG.data_bytes


def test_scheme_comparison_with_new_baselines():
    """RobuSTore still dominates the extended baseline set."""
    lats = {}
    for name in ("raid0", "raid5", "raid0+1", "robustore"):
        _, _, scheme, _ = make(name)
        lats[name] = scheme.read("f", 0).latency_s
    assert lats["robustore"] < min(lats["raid0"], lats["raid5"], lats["raid0+1"])
