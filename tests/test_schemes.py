"""Integration tests of the four storage schemes (small configurations)."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core import SCHEMES
from repro.core.access import MB, AccessConfig
from repro.disk.workload import InDiskLayout
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=64 * MB, block_bytes=1 * MB, n_disks=16, redundancy=3.0)


def run_read(name, trial=0, cfg=CFG, layout=None, n_pool=32, rtt=0.001, fixed_zone=None):
    cluster = Cluster(n_disks=n_pool, rtt_s=rtt)
    hub = RngHub(42)
    scheme = SCHEMES[name](cluster, cfg, hub=hub)
    cluster.redraw_disk_states(
        hub.fresh("env", name, trial), layout=layout, fixed_zone=fixed_zone
    )
    scheme.prepare("f", trial)
    return scheme.read("f", trial)


def run_write(name, trial=0, cfg=CFG, n_pool=32):
    cluster = Cluster(n_disks=n_pool, rtt_s=0.001)
    hub = RngHub(42)
    scheme = SCHEMES[name](cluster, cfg, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", name, trial))
    return scheme, scheme.write("f", trial)


@pytest.mark.parametrize("name", list(SCHEMES))
def test_read_completes_and_reports(name):
    r = run_read(name)
    assert np.isfinite(r.latency_s) and r.latency_s > 0
    assert r.network_bytes >= CFG.data_bytes or name == "rraid-a"
    assert r.bandwidth_mbps > 0


@pytest.mark.parametrize("name", list(SCHEMES))
def test_write_completes(name):
    _, r = run_write(name)
    assert np.isfinite(r.latency_s) and r.latency_s > 0
    assert r.network_bytes > 0


def test_raid0_has_zero_overhead():
    r = run_read("raid0")
    assert r.io_overhead == pytest.approx(0.0)
    assert r.blocks_received == CFG.k


def test_rraid_s_fetches_duplicates():
    r = run_read("rraid-s")
    assert r.io_overhead > 0.5  # replication wastes transfers


def test_rraid_a_near_zero_overhead():
    r = run_read("rraid-a")
    assert -0.01 <= r.io_overhead < 0.25


def test_robustore_overhead_near_reception_overhead():
    r = run_read("robustore")
    rec = r.extra["reception_overhead"]
    assert 0.1 < rec < 1.0
    assert r.io_overhead >= rec - 0.05


def test_robustore_beats_raid0_heterogeneous():
    lats = {n: run_read(n).latency_s for n in ("raid0", "robustore")}
    assert lats["robustore"] < lats["raid0"] / 3


def test_raid0_matches_others_homogeneous():
    """In a homogeneous environment RobuSTore loses its edge (§7.2)."""
    lay = InDiskLayout(512, 1.0)
    r_raid = run_read("raid0", layout=lay, fixed_zone=4)
    r_robu = run_read("robustore", layout=lay, fixed_zone=4)
    # RobuSTore pays reception overhead; RAID-0 reads only K blocks.
    assert r_robu.latency_s > r_raid.latency_s * 0.9


def test_rraid_a_sensitive_to_rtt():
    fast = [run_read("rraid-a", trial=t, rtt=0.001) for t in range(6)]
    slow = [run_read("rraid-a", trial=t, rtt=0.1) for t in range(6)]
    assert np.mean([r.latency_s for r in slow]) > np.mean([r.latency_s for r in fast])
    assert all(r.rounds > 1 for r in slow)  # multi-round adaptive requests


def test_raid0_insensitive_to_rtt():
    fast = run_read("raid0", rtt=0.001)
    slow = run_read("raid0", rtt=0.1)
    assert slow.latency_s - fast.latency_s < 0.5


def test_robustore_write_is_unbalanced():
    scheme, r = run_write("robustore")
    record = scheme.metadata.lookup("f")
    counts = [len(p) for p in record.placement]
    assert max(counts) > min(counts)  # speculative writes skew placement
    assert r.extra["overshoot"] >= 0
    assert sum(counts) == r.disk_blocks


def test_robustore_write_faster_than_uniform_writers():
    _, r_robu = run_write("robustore")
    _, r_s = run_write("rraid-s")
    assert r_robu.latency_s < r_s.latency_s


def test_read_after_write_roundtrip():
    """RaW: read the unbalanced placement a speculative write produced."""
    cluster = Cluster(n_disks=32, rtt_s=0.001)
    hub = RngHub(7)
    scheme = SCHEMES["robustore"](cluster, CFG, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", 0))
    scheme.write("f", 0)
    cluster.redraw_disk_states(hub.fresh("env", 1))  # dynamic performance
    r = scheme.read("f", 1)
    assert np.isfinite(r.latency_s)
    assert r.extra["reception_overhead"] < 1.5


def test_robustore_zero_redundancy_still_decodes_balanced():
    """D=0: the writer-guaranteed graph decodes with exactly K blocks."""
    cfg = AccessConfig(data_bytes=16 * MB, n_disks=8, redundancy=0.0)
    r = run_read("robustore", cfg=cfg)
    assert np.isfinite(r.latency_s)


def test_determinism_same_seed_same_result():
    a = run_read("robustore", trial=3)
    b = run_read("robustore", trial=3)
    assert a.latency_s == b.latency_s
    assert a.network_bytes == b.network_bytes


def test_scheme_rejects_oversized_disk_request():
    cluster = Cluster(n_disks=8)
    with pytest.raises(ValueError):
        SCHEMES["raid0"](cluster, AccessConfig(n_disks=16))
