"""Cross-validation: event-driven reference engine vs the closed form."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core import SCHEMES
from repro.core.access import MB, AccessConfig
from repro.core.reference import reference_read
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)


def setup(scheme_name, trial=0, seed=5, bg=None):
    cluster = Cluster(n_disks=16, rtt_s=0.002)
    hub = RngHub(seed)
    scheme = SCHEMES[scheme_name](cluster, CFG, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", trial), background_intervals=bg)
    record = scheme.prepare("f", trial)
    return cluster, hub, scheme, record


def run_reference(cluster, hub, scheme, record, trial=0, n_clients=1):
    return reference_read(
        cluster,
        record.disk_ids,
        record.placement,
        CFG.block_bytes,
        scheme.name,
        lambda d: hub.fresh("refsvc", trial, d),
        k=CFG.k,
        graph=record.extra.get("graph"),
        n_clients=n_clients,
    )


@pytest.mark.parametrize("name", ["raid0", "rraid-s", "robustore"])
def test_reference_engine_completes(name):
    cluster, hub, scheme, record = setup(name)
    ref = run_reference(cluster, hub, scheme, record)
    assert np.isfinite(ref.latency_s) and ref.latency_s > 0.005
    assert ref.blocks_received >= CFG.k or name == "robustore"
    assert ref.network_bytes >= ref.blocks_received * CFG.block_bytes


@pytest.mark.parametrize("name", ["raid0", "robustore"])
def test_reference_matches_closed_form_mean(name):
    """Engines agree in distribution: compare trial-mean latencies."""
    ref_lats, fast_lats = [], []
    for trial in range(6):
        cluster, hub, scheme, record = setup(name, trial=trial)
        ref = run_reference(cluster, hub, scheme, record, trial=trial)
        ref_lats.append(ref.latency_s)
        fast_lats.append(scheme.read("f", trial).latency_s)
    ref_m, fast_m = np.mean(ref_lats), np.mean(fast_lats)
    assert ref_m == pytest.approx(fast_m, rel=0.35), (ref_lats, fast_lats)


def test_reference_with_background_slows_down():
    cluster, hub, scheme, record = setup("robustore", seed=6)
    quiet = run_reference(cluster, hub, scheme, record)
    bg = {d: 0.02 for d in range(16)}
    cluster2, hub2, scheme2, record2 = setup("robustore", seed=6, bg=bg)
    loaded = run_reference(cluster2, hub2, scheme2, record2)
    assert loaded.latency_s > quiet.latency_s


def test_reference_multi_client_contention():
    """Concurrent clients on the same drives slow each other down."""
    cluster, hub, scheme, record = setup("robustore", seed=7)
    solo = run_reference(cluster, hub, scheme, record, n_clients=1)
    cluster2, hub2, scheme2, record2 = setup("robustore", seed=7)
    shared = run_reference(cluster2, hub2, scheme2, record2, n_clients=4)
    assert len(shared.per_client) == 4
    mean_shared = np.mean(list(shared.per_client.values()))
    assert mean_shared > solo.latency_s * 1.5


def test_reference_rejects_unknown_scheme():
    cluster, hub, scheme, record = setup("raid0")
    with pytest.raises(ValueError):
        reference_read(
            cluster,
            record.disk_ids,
            record.placement,
            CFG.block_bytes,
            "raid6",
            lambda d: hub.fresh("x", d),
            k=CFG.k,
        )
