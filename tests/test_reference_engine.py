"""Cross-validation: event-driven reference engine vs the closed form.

The two engines wrap the same access core — one policy layer, one tracker
family, one epilogue — so every composition must run under both, and the
engines must agree statistically (they share the environment draws but
not the per-block service draws, so agreement is on distributions, not
bits).  The differential matrix covers all ten compositions under a
fault-free environment and under the golden fault storm, reads and
writes, closed-form vs event-driven.
"""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core.access import MB, AccessConfig
from repro.core.pipeline import COMPOSITIONS, scheme_class
from repro.core.reference import reference_read, reference_write
from repro.experiments.harness import TrialPlan, run_scheme
from repro.faults import FaultPlan
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)

#: The golden storm (tests/test_faults_golden.py): a slowdown, a degraded
#: link, a permanent fail-stop, a transient fail-stop and a filer crash.
STORM_SCENARIO = [
    {"at": 0.0, "fault": "disk_slow", "disk": 2, "factor": 3.0, "duration": 2.0},
    {"at": 0.0, "fault": "link_degrade", "filer": 0, "extra_s": 0.01,
     "duration": 5.0},
    {"at": 0.05, "fault": "disk_fail", "disk": 0},
    {"at": 0.1, "fault": "disk_fail", "disk": 1, "duration": 0.5},
    {"at": 0.2, "fault": "filer_crash", "filer": 0, "duration": 0.3},
]

#: Compositions whose redundancy lets them survive the storm in both
#: engines at this configuration (re-speculation over rateless codes;
#: the grouped-RS variants lose whole groups to the permanent fail-stop
#: on some trials, in both engines).
STORM_SURVIVORS = ("robustore",)

#: Compositions with no redundancy at all: the storm's permanent
#: fail-stop kills every trial in both engines.
STORM_CASUALTIES = ("raid0",)

#: Compositions where the engines' mean read latencies track closely
#: (single-round or near-deterministic hand-off structure).  The heavily
#: adaptive mirrored layouts diverge more: the event engine's speculative
#: duplicates beat the closed form's fractional hand-offs on some draws.
TIGHT_SCHEMES = ("raid0", "raid5", "robustore", "robustore-rs", "rraid-s",
                 "lt+adaptive", "rs+adaptive")

TRIALS = 3


def plan_for(fault: bool, mode: str = "read") -> TrialPlan:
    return TrialPlan(
        access=CFG,
        mode=mode,
        pool=8,
        rtt_s=0.001,
        seed=7,
        trials=TRIALS,
        fault_plan=FaultPlan.from_scenario(STORM_SCENARIO) if fault else None,
    )


def run_both(name: str, fault: bool, mode: str = "read"):
    plan = plan_for(fault, mode)
    closed = run_scheme(plan, name, engine="closed")
    event = run_scheme(plan, name, engine="event")
    return closed, event


def make_scheme(name, trial=0, seed=5, bg=None, pool=16):
    cluster = Cluster(n_disks=pool, rtt_s=0.002)
    hub = RngHub(seed)
    scheme = scheme_class(name)(cluster, CFG, hub=hub)
    cluster.redraw_disk_states(
        hub.fresh("env", name, trial), background_intervals=bg
    )
    return scheme


@pytest.mark.parametrize("fault", [False, True], ids=["no-fault", "storm"])
@pytest.mark.parametrize("name", sorted(COMPOSITIONS))
def test_differential_read_matrix(name, fault):
    """Every composition reads under both engines, faulted or not."""
    closed, event = run_both(name, fault)
    assert len(closed) == len(event) == TRIALS
    for c, e in zip(closed, event):
        # Identical result shape and config-side fields.
        assert e.data_bytes == c.data_bytes == CFG.data_bytes
        # Nothing finishes before the metadata open.
        assert e.latency_s > 0.005
        assert c.latency_s > 0.005
        # Accounting invariants on the event engine's own books.
        assert e.network_bytes >= 0
        assert e.blocks_received >= 0
        if np.isfinite(e.latency_s):
            assert e.blocks_received >= CFG.k or name == "raid5"
            assert e.network_bytes >= CFG.data_bytes
    if not fault:
        c_lat = [r.latency_s for r in closed]
        e_lat = [r.latency_s for r in event]
        assert all(np.isfinite(v) for v in c_lat + e_lat)
        if name in TIGHT_SCHEMES:
            ratio = np.mean(e_lat) / np.mean(c_lat)
            assert 0.5 < ratio < 2.0, (c_lat, e_lat)
    else:
        if name in STORM_SURVIVORS:
            assert all(np.isfinite(r.latency_s) for r in closed)
            assert all(np.isfinite(r.latency_s) for r in event)
        if name in STORM_CASUALTIES:
            assert all(not np.isfinite(r.latency_s) for r in closed)
            assert all(not np.isfinite(r.latency_s) for r in event)


@pytest.mark.parametrize("name", sorted(COMPOSITIONS))
def test_differential_write_matrix(name):
    """Every composition writes under both engines (fault-free)."""
    closed, event = run_both(name, fault=False, mode="write")
    for c, e in zip(closed, event):
        assert np.isfinite(c.latency_s)
        assert np.isfinite(e.latency_s)
        assert e.network_bytes >= CFG.data_bytes
        # Writes push at least the original volume to disks.
        assert e.disk_blocks >= CFG.k
    if name in TIGHT_SCHEMES:
        ratio = np.mean([r.latency_s for r in event]) / np.mean(
            [r.latency_s for r in closed]
        )
        assert 0.3 < ratio < 3.0


def test_engines_match_in_mean():
    """Engines agree in distribution: compare trial-mean read latencies."""
    e_lats, c_lats = [], []
    for trial in range(6):
        scheme = make_scheme("robustore", trial=trial)
        scheme.prepare("f", trial)
        e_lats.append(reference_read(scheme, "f", trial=trial).latency_s)
        scheme2 = make_scheme("robustore", trial=trial)
        scheme2.prepare("f", trial)
        c_lats.append(scheme2.read("f", trial).latency_s)
    assert np.mean(e_lats) == pytest.approx(np.mean(c_lats), rel=0.35), (
        e_lats, c_lats,
    )


def test_event_write_registers_replayable_placement():
    """A speculative event-driven write leaves a record either engine reads."""
    scheme = make_scheme("robustore")
    w = reference_write(scheme, "g", trial=0)
    assert np.isfinite(w.latency_s)
    record = scheme._record("g")
    # The rateless write commits an unbalanced placement with overshoot.
    sizes = [len(p) for p in record.placement]
    assert sum(sizes) == w.blocks_received >= CFG.n_coded
    assert record.extra.get("speculative") is True
    # The closed form replays the event-written placement...
    closed = scheme.read("g", 0)
    assert np.isfinite(closed.latency_s)
    # ...and so does the event engine.
    again = reference_read(scheme, "g", trial=1)
    assert np.isfinite(again.latency_s)


def test_multi_client_contention():
    """More closed-loop clients on the same drives -> no client gets faster."""
    scheme = make_scheme("robustore")
    scheme.prepare("f", 0)
    solo = reference_read(scheme, "f", trial=0, n_clients=1)
    scheme4 = make_scheme("robustore")
    scheme4.prepare("f", 0)
    packed = reference_read(scheme4, "f", trial=0, n_clients=4)
    assert len(packed.per_client) == 4
    assert all(np.isfinite(v) for v in packed.per_client.values())
    # Shared queues: the slowest of 4 clients is no faster than 1 alone.
    assert max(packed.per_client.values()) >= solo.latency_s


def test_background_load_slows_reads():
    scheme = make_scheme("robustore")
    scheme.prepare("f", 0)
    quiet = reference_read(scheme, "f", trial=0)
    loaded_scheme = make_scheme(
        "robustore", bg={d: 0.01 for d in range(16)}
    )
    loaded_scheme.prepare("f", 0)
    loaded = reference_read(loaded_scheme, "f", trial=0)
    assert np.isfinite(loaded.latency_s)
    assert loaded.latency_s > quiet.latency_s


def test_unknown_scheme_and_engine_raise():
    with pytest.raises(ValueError):
        scheme_class("no-such-scheme")
    with pytest.raises(ValueError):
        run_scheme(plan_for(False), "robustore", engine="warp")
