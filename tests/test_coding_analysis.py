"""Tests for the Appendix A closed-form reassembly analysis."""

import numpy as np
import pytest

from repro.coding.analysis import (
    erasure_coverage_curve,
    erasure_coverage_probability,
    expected_replicated_blocks,
    median_blocks_needed,
    replication_coverage_curve,
    replication_coverage_probability,
)
from repro.coding.replication import ReplicationCode


def test_replication_probability_bounds():
    assert replication_coverage_probability(8, 4, 7) == 0.0
    assert replication_coverage_probability(8, 4, 32) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        replication_coverage_probability(8, 4, 33)


def test_replication_probability_monotone():
    k, r = 16, 4
    probs = [replication_coverage_probability(k, r, m) for m in range(k, r * k + 1, 4)]
    assert all(b >= a - 1e-12 for a, b in zip(probs, probs[1:]))
    assert all(0.0 <= p <= 1.0 for p in probs)


def test_replication_exact_small_case():
    """K=1, R=2: any single draw covers the one block."""
    assert replication_coverage_probability(1, 2, 1) == pytest.approx(1.0)


def test_replication_exact_k2_r2():
    """K=2, R=2 (blocks AABB shuffled): P(first 2 cover both) = C(2,1)^2/C(4,2)=2/3."""
    assert replication_coverage_probability(2, 2, 2) == pytest.approx(2 / 3)


def test_replication_matches_monte_carlo():
    k, r, m = 8, 4, 20
    exact = replication_coverage_probability(k, r, m)
    rng = np.random.default_rng(0)
    code = ReplicationCode(k, r)
    hits = 0
    trials = 4000
    for _ in range(trials):
        order = rng.permutation(code.n)[:m]
        hits += code.covered(order)
    assert hits / trials == pytest.approx(exact, abs=0.03)


def test_erasure_probability_bounds_and_monotonicity():
    k, d = 64, 5.0
    probs = [erasure_coverage_probability(k, d, m) for m in range(1, 200, 10)]
    assert probs[0] < 1e-6
    assert probs[-1] > 0.99
    assert all(b >= a - 1e-9 for a, b in zip(probs, probs[1:]))


def test_erasure_zero_m():
    assert erasure_coverage_probability(16, 5.0, 0) == 0.0


def test_figure_4_1_shape():
    """Fig 4-1 (K=1024, 4x): coded needs ~1.5K blocks, replicated ~3K."""
    k = 1024
    ms = np.arange(k, 4 * k + 1, 64)
    coded = erasure_coverage_curve(k, 5.0, ms)
    repl = replication_coverage_curve(k, 4, ms)
    m_coded = median_blocks_needed(ms, coded)
    m_repl = median_blocks_needed(ms, repl)
    assert m_coded < m_repl  # erasure coding dominates replication
    assert 1.2 * k < m_coded < 2.2 * k
    assert 2.4 * k < m_repl < 3.8 * k


def test_expected_replicated_blocks_harmonic():
    # K * H_K for K=4: 4 * (1 + 1/2 + 1/3 + 1/4) = 25/3
    assert expected_replicated_blocks(4) == pytest.approx(25 / 3)


def test_expected_replicated_blocks_grows_like_klogk():
    val = expected_replicated_blocks(1024)
    assert val == pytest.approx(1024 * np.log(1024), rel=0.1)


def test_median_blocks_needed_raises_when_unreached():
    with pytest.raises(ValueError):
        median_blocks_needed(np.array([1, 2]), np.array([0.1, 0.2]))
