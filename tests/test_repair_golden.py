"""Golden regression: the repair economy under the pinned storm seed.

``ext_repair`` runs every (coding family x rebuild scheduler) cell under
one seeded 2-kill storm; the golden file pins each cell's full ledger row
— helper bytes, bytes moved, degraded-read counts, p99 inflation — plus
the per-scheme bytes-per-failure the regenerating-code literature orders.
Any drift in the storm sampler, the repair passes, the trigger rule or
the service model diffs here; regenerate deliberately with
``PYTHONPATH=src python -m tests.make_golden``.
"""

import json
import pathlib

from repro.experiments.repair_experiment import ext_repair

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_repair.json"


def build_repair_reference() -> dict:
    """Exactly the run the golden file was generated from."""
    result = ext_repair(trials=4)
    return {
        "rows": result.rows,
        "summaries": result.summaries,
        "bytes_per_failure": result.bytes_per_failure,
    }


def test_repair_golden_matches():
    assert GOLDEN.exists(), (
        "golden file missing; run PYTHONPATH=src python -m tests.make_golden"
    )
    golden = json.loads(GOLDEN.read_text())
    assert build_repair_reference() == golden


def test_repair_economy_ordering():
    """The headline result, independent of pinned-number drift.

    At equal storage overhead, per-node regenerating repair moves
    strictly fewer helper bytes per disk failure than RS group
    reconstruction, which moves strictly fewer than LT's whole-object
    re-read; MBR undercuts MSR by trading capacity for repair bandwidth.
    """
    ref = build_repair_reference()
    bpf = ref["bytes_per_failure"]
    assert bpf["regen-mbr"] < bpf["regen-msr"] < bpf["robustore-rs"]
    assert bpf["robustore-rs"] < bpf["robustore"]

    rows = {(r["scheme"], r["policy"]): r for r in ref["rows"]}
    schemes = sorted({s for s, _ in rows})
    for name in schemes:
        # Scheduling moves *when* repair bytes flow, never how many:
        # every policy's ledger converges to the same totals after the
        # end-of-horizon drain.
        moved = {rows[(name, p)]["moved_MB"] for p in ("eager", "lazy", "batched")}
        assert len(moved) == 1
        # Eager repairs everything inline; lazy's absolute floor defers
        # everything to the drain and pays for it in degraded reads.
        assert rows[(name, "eager")]["drained"] == 0
        assert rows[(name, "lazy")]["inline"] == 0
        assert rows[(name, "lazy")]["drained"] > 0
        assert (
            rows[(name, "lazy")]["degr_reads"]
            >= rows[(name, "eager")]["degr_reads"]
        )


def test_regenerating_repair_is_sublinear_in_lost_bytes():
    """Read amplification: MBR reads ~1 MB per lost MB, MSR ~d/alpha, RS a
    full group word per loss, LT the whole object."""
    ref = build_repair_reference()
    amp = {r["scheme"]: r["read_amp"] for r in ref["rows"] if r["policy"] == "eager"}
    assert amp["regen-mbr"] <= 1.1
    assert amp["regen-msr"] <= 2.1
    assert amp["robustore-rs"] > amp["regen-msr"]
    assert amp["robustore"] > amp["robustore-rs"]
