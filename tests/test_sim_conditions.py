"""Edge-case tests for condition events, defusing and failure handling."""

import pytest

from repro.sim import AllOf, AnyOf, Environment
from repro.sim.events import Condition


def test_any_of_with_failed_event_propagates():
    env = Environment()
    ok = env.timeout(5, value="slow")
    bad = env.event()
    result = []

    def waiter(env):
        try:
            yield AnyOf(env, [ok, bad])
        except RuntimeError as exc:
            result.append(str(exc))

    def trigger(env):
        yield env.timeout(1)
        bad.fail(RuntimeError("nope"))

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert result == ["nope"]


def test_all_of_mixed_already_processed():
    env = Environment()
    early = env.timeout(1, value="early")
    late = env.timeout(3, value="late")
    collected = []

    def proc(env):
        yield env.timeout(2)  # `early` has fully processed by now
        got = yield AllOf(env, [early, late])
        collected.append(sorted(got.values()))

    env.process(proc(env))
    env.run()
    assert collected == [["early", "late"]]


def test_condition_rejects_cross_environment_events():
    env1, env2 = Environment(), Environment()
    t = env2.timeout(1)
    with pytest.raises(ValueError):
        AllOf(env1, [t])


def test_defused_failure_does_not_crash_run():
    env = Environment()
    ev = env.event()

    def trigger(env):
        yield env.timeout(1)
        exc = RuntimeError("handled elsewhere")
        ev.fail(exc)
        ev.defuse()

    env.process(trigger(env))
    env.run()  # must not raise


def test_nested_conditions():
    env = Environment()

    def proc(env):
        a = env.timeout(1, value="a")
        b = env.timeout(2, value="b")
        c = env.timeout(3, value="c")
        inner = AllOf(env, [a, b])
        outer = AnyOf(env, [inner, c])
        got = yield outer
        return env.now, len(got)

    p = env.process(proc(env))
    env.run()
    t, n = p.value
    assert t == 2.0  # inner AllOf fires before c


def test_condition_value_snapshot_is_consistent():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value=1)
        t2 = env.timeout(1, value=2)
        got = yield AllOf(env, [t1, t2])
        return sorted(got.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == [1, 2]


def test_process_return_value_via_condition():
    env = Environment()

    def child(env, delay, val):
        yield env.timeout(delay)
        return val

    def parent(env):
        c1 = env.process(child(env, 1, "x"))
        c2 = env.process(child(env, 2, "y"))
        got = yield AllOf(env, [c1, c2])
        return sorted(v for v in got.values())

    p = env.process(parent(env))
    env.run()
    assert p.value == ["x", "y"]
