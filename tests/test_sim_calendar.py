"""Differential suite for the indexed event calendar.

:class:`repro.sim.calendar.EventCalendar` replaced the kernel's raw-heapq
pending set; :class:`repro.sim._calendar_ref.ReferenceCalendar` preserves
the seed implementation as the oracle.  Hypothesis drives adversarial
schedule/cancel/pop interleavings — duplicate timestamps, URGENT/NORMAL
mixes, cancels of live, popped and already-cancelled handles — through
both and asserts the observable behaviour matches element-for-element.
A second layer injects the reference calendar into the live kernel
(:class:`repro.sim.core.Environment` takes ``calendar=``) and asserts a
stress simulation dispatches the identical event sequence.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim._calendar_ref import ReferenceCalendar
from repro.sim.calendar import EventCalendar
from repro.sim.core import NORMAL, URGENT, Environment

#: Deliberately tiny time alphabet so ties on (time) and (time, priority)
#: are the common case, not the corner case.
TIMES = (0.0, 0.5, 1.0, 1.5)
PRIORITIES = (URGENT, NORMAL)


def _op_strategy():
    push = st.tuples(
        st.just("push"), st.sampled_from(TIMES), st.sampled_from(PRIORITIES)
    )
    pop = st.tuples(st.just("pop"))
    peek = st.tuples(st.just("peek"))
    # Cancel targets an index into the (growing) handle history, so it
    # hits live, popped and double-cancelled handles alike.
    cancel = st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=127))
    return st.lists(st.one_of(push, pop, peek, cancel), max_size=120)


def _apply(cal, handles, op, payload):
    """Run one op; return an observation tuple for cross-implementation diff."""
    kind = op[0]
    if kind == "push":
        handles.append(cal.push(op[1], op[2], payload))
        return ("push", len(cal))
    if kind == "peek":
        return ("peek", cal.peek_time(), len(cal))
    if kind == "cancel":
        if not handles:
            return ("cancel", None)
        return ("cancel", cal.cancel(handles[op[1] % len(handles)]), len(cal))
    try:
        t, prio, eid, event = cal.pop()
    except IndexError:
        return ("pop", "empty")
    return ("pop", t, prio, eid, event, len(cal))


@settings(deadline=None, max_examples=200)
@given(ops=_op_strategy())
def test_calendar_matches_reference_on_random_interleavings(ops):
    """Any schedule/cancel/pop interleaving observes identically."""
    new, ref = EventCalendar(), ReferenceCalendar()
    new_handles, ref_handles = [], []
    for payload, op in enumerate(ops):
        obs_new = _apply(new, new_handles, op, payload)
        obs_ref = _apply(ref, ref_handles, op, payload)
        assert obs_new == obs_ref, f"diverged at op {op}"
    # Drain both: the full residual pop order must agree too.
    while ref:
        assert new.pop() == ref.pop()
    assert not new
    with pytest.raises(IndexError):
        new.pop()
    with pytest.raises(IndexError):
        ref.pop()


@settings(deadline=None, max_examples=100)
@given(
    items=st.lists(
        st.tuples(st.sampled_from(TIMES), st.sampled_from(PRIORITIES)), max_size=60
    ),
    preload=st.integers(min_value=0, max_value=40),
)
def test_push_batch_pop_order_matches_reference(items, preload):
    """Bulk insertion (both the sift and the heapify path) preserves order.

    ``preload`` single pushes first so the batch/heap size ratio crosses
    the heapify threshold from both sides.
    """
    new, ref = EventCalendar(), ReferenceCalendar()
    for i in range(preload):
        t = TIMES[i % len(TIMES)]
        new.push(t, NORMAL, ("pre", i))
        ref.push(t, NORMAL, ("pre", i))
    new.push_batch((t, p, ("batch", i)) for i, (t, p) in enumerate(items))
    ref.push_batch((t, p, ("batch", i)) for i, (t, p) in enumerate(items))
    assert len(new) == len(ref)
    while ref:
        assert new.pop() == ref.pop()


class TestCalendarSemantics:
    """Directed edge cases the property suite relies on."""

    @pytest.mark.parametrize("cls", [EventCalendar, ReferenceCalendar])
    def test_empty(self, cls):
        cal = cls()
        assert len(cal) == 0 and not cal
        assert cal.peek_time() == math.inf
        with pytest.raises(IndexError):
            cal.pop()

    @pytest.mark.parametrize("cls", [EventCalendar, ReferenceCalendar])
    def test_tie_break_is_priority_then_insertion(self, cls):
        cal = cls()
        cal.push(1.0, NORMAL, "n0")
        cal.push(1.0, URGENT, "u0")
        cal.push(1.0, NORMAL, "n1")
        cal.push(0.5, NORMAL, "early")
        order = [cal.pop()[3] for _ in range(4)]
        assert order == ["early", "u0", "n0", "n1"]

    @pytest.mark.parametrize("cls", [EventCalendar, ReferenceCalendar])
    def test_cancel_states(self, cls):
        cal = cls()
        h_live = cal.push(1.0, NORMAL, "live")
        h_popped = cal.push(0.0, NORMAL, "popped")
        assert cal.pop()[3] == "popped"
        assert cal.cancel(h_popped) is False  # already consumed
        assert cal.cancel(h_live) is True
        assert cal.cancel(h_live) is False  # double cancel
        assert len(cal) == 0 and cal.peek_time() == math.inf

    def test_cancelled_entry_never_surfaces(self):
        cal = EventCalendar()
        h = cal.push(0.0, URGENT, "dead")
        cal.push(1.0, NORMAL, "live")
        cal.cancel(h)
        assert cal.peek_time() == 1.0
        assert cal.pop()[3] == "live"

    def test_cancel_rejects_foreign_handle(self):
        with pytest.raises(ValueError):
            EventCalendar().cancel((1.0, NORMAL, 0, "tuple-not-list"))

    def test_len_counts_only_live(self):
        cal = EventCalendar()
        handles = [cal.push(float(i % 2), NORMAL, i) for i in range(6)]
        for h in handles[::2]:
            cal.cancel(h)
        assert len(cal) == 3


# -- kernel-level differential ---------------------------------------------


def _stress_trace(calendar) -> list:
    """Dispatch trace of a seeded process mix under the given calendar.

    The mix is deterministic (no RNG: the kernel itself must not depend on
    one) and engineered for same-instant collisions: every process cycles
    through the same small delay alphabet, so each instant carries many
    NORMAL timeouts plus the URGENT initialisation/interrupt events.
    """
    env = Environment(calendar=calendar)
    trace: list = []
    DELAYS = (0.0, 0.25, 0.25, 0.5, 1.0)

    def worker(pid: int):
        for step in range(12):
            yield env.timeout(DELAYS[(pid + step) % len(DELAYS)])
            trace.append((env.now, "worker", pid, step))

    def interruptor(victim):
        yield env.timeout(1.25)
        victim.interrupt("poke")
        trace.append((env.now, "interrupt-sent"))

    def fragile():
        try:
            yield env.timeout(100.0)
        except Exception as exc:  # Interrupt
            trace.append((env.now, "interrupted", str(exc.args[0])))
        for _ in range(3):
            yield env.timeout(0.25)
            trace.append((env.now, "fragile-step"))

    procs = [env.process(worker(pid), name=f"w{pid}") for pid in range(6)]
    victim = env.process(fragile(), name="fragile")
    env.process(interruptor(victim), name="irq")
    env.run()
    trace.append((env.now, "end", [p.is_alive for p in procs]))
    return trace


def test_kernel_dispatch_order_is_calendar_independent():
    """The live kernel dispatches identically through either calendar.

    This exercises the kernel's inlined push/pop fast path (stock
    calendar) against the protocol path (injected reference) — the two
    code branches in ``Environment.schedule``/``Environment.step``.
    """
    assert _stress_trace(EventCalendar()) == _stress_trace(ReferenceCalendar())


def test_kernel_default_calendar_is_event_calendar():
    env = Environment()
    assert type(env._calendar) is EventCalendar
    # The inline fast path aliases the calendar's own storage.
    assert env._heap is env._calendar._heap
