"""The background-phase draw comes from its own named ``"bgphase"`` stream.

Historically :class:`repro.disk.service.BlockService` drew the background
stream's initial phase from ``self.rng`` — the *service* stream — which
silently interleaved one extra uniform into every background-bearing
disk's service draws and was invisible to the SIM011 stream discipline.
The fix threads a dedicated ``phase_rng`` (derived from the hub's
``"bgphase"`` stream by :meth:`repro.core.base.SchemeBase.service_rng_factory`)
down through :meth:`repro.cluster.server.Cluster.block_service`.

This file pins (a) the exact legacy↔new stream relationship, (b) the
laziness contract (no derivation for background-free disks), and (c) the
affected end-to-end values, as a regression golden.
"""

import numpy as np
import pytest

from repro.core.access import MB, AccessConfig
from repro.disk.mechanics import DiskMechanics
from repro.disk.service import BackgroundLoad, BlockService
from repro.disk.workload import InDiskLayout
from repro.experiments.harness import TrialPlan, run_scheme
from repro.sim.rng import RngHub


def _service(svc_rng, phase_rng=None, bg_interval=0.006):
    return BlockService(
        DiskMechanics(),
        InDiskLayout(256, 1.0),
        spt=870,
        rng=svc_rng,
        background=BackgroundLoad(bg_interval) if bg_interval else None,
        phase_rng=phase_rng,
    )


class TestPhaseStreamSeparation:
    def test_new_path_equals_legacy_with_split_streams(self):
        """Exact relationship between the legacy and the fixed draw order.

        Legacy consumed [phase, bg-draws...] from one stream.  Giving the
        new path a ``phase_rng`` positioned at the legacy stream's start
        and a service stream advanced past the phase draw must therefore
        reproduce the legacy completions bit for bit — proving the fix
        moved exactly one uniform, nothing else.
        """
        services = _service(np.random.default_rng(0)).block_service_times(8, MB)

        legacy = _service(np.random.default_rng(7), phase_rng=None)
        c_legacy = legacy.completions(services, 0.0)

        phase_rng = np.random.default_rng(7)  # legacy stream, at the phase
        svc_rng = np.random.default_rng(7)
        svc_rng.random()  # skip the slot the phase used to occupy
        fixed = _service(svc_rng, phase_rng=phase_rng)
        c_fixed = fixed.completions(services, 0.0)
        assert np.array_equal(c_legacy, c_fixed)

    def test_phase_rng_used_iff_provided(self):
        """With ``phase_rng`` set, the service stream is phase-free: two
        runs with different phase streams leave differently-phased
        completions, while identical phase streams reproduce exactly."""
        services = _service(np.random.default_rng(0)).block_service_times(8, MB)
        runs = {
            seed: _service(
                np.random.default_rng(7), phase_rng=np.random.default_rng(seed)
            ).completions(services, 0.0)
            for seed in (77, 78, 77_000)
        }
        assert not np.array_equal(runs[77], runs[78])
        again = _service(
            np.random.default_rng(7), phase_rng=np.random.default_rng(77)
        ).completions(services, 0.0)
        assert np.array_equal(runs[77], again)

    def test_background_free_disk_ignores_phase_rng(self):
        """No background → no phase draw, from either stream."""
        services = _service(np.random.default_rng(0)).block_service_times(4, MB)
        a = _service(np.random.default_rng(3), bg_interval=None)
        phase_rng = np.random.default_rng(99)
        b = _service(np.random.default_rng(3), phase_rng=phase_rng, bg_interval=None)
        assert np.array_equal(a.completions(services, 0.0), b.completions(services, 0.0))
        assert phase_rng.bit_generator.state["state"]["state"] == (
            np.random.default_rng(99).bit_generator.state["state"]["state"]
        )


class TestClusterLaziness:
    """Cluster.block_service derives "bgphase" only for loaded disks."""

    def _cluster(self, bg: dict):
        from repro.cluster.server import Cluster

        cluster = Cluster(n_disks=4, disks_per_filer=2)
        cluster.redraw_disk_states(
            np.random.default_rng(0), background_intervals=bg
        )
        return cluster

    def test_derivation_skipped_without_background(self):
        cluster = self._cluster(bg={1: 0.006})
        calls: list[int] = []

        def phase_rng_for(disk_id: int) -> np.random.Generator:
            calls.append(disk_id)
            return np.random.default_rng(1000 + disk_id)

        for d in range(4):
            cluster.block_service(
                d, np.random.default_rng(d), phase_rng_for=phase_rng_for
            )
        assert calls == [1]  # only the background-bearing disk derives

    def test_factory_carries_phase_rng_for(self):
        """service_rng_factory exposes the sibling "bgphase" factory with
        the same key tail as the service stream."""
        from repro.cluster.server import Cluster
        from repro.core.base import SchemeBase

        hub = RngHub(5)
        scheme = SchemeBase(
            Cluster(n_disks=8, disks_per_filer=4),
            AccessConfig(data_bytes=8 * MB, block_bytes=MB, n_disks=4),
            hub=hub,
        )
        rng_for = scheme.service_rng_factory(trial=2, phase="read")
        phase_rng_for = rng_for.phase_rng_for
        expect = hub.fresh("bgphase", "base", 2, "read", 3)
        assert phase_rng_for(3).random() == expect.random()
        assert rng_for(3).random() == hub.fresh("svc", "base", 2, "read", 3).random()


class TestRegressionPins:
    """Pinned values for background-bearing runs under the bgphase fix.

    These are the post-fix goldens: the background-free scheme goldens in
    ``tests/data/golden_schemes.json`` were *not* affected (no background
    → no phase draw), so the affected surface is pinned here instead.
    """

    def test_block_service_completions_pinned(self):
        svc = _service(np.random.default_rng(11), phase_rng=np.random.default_rng(77))
        services = svc.block_service_times(6, MB)
        got = svc.completions(services, 0.0)
        expect = [
            0.40128711619990787,
            0.7263033306888929,
            0.9170569122585062,
            1.4107066658955332,
            1.6610960128517387,
            2.169434200515167,
        ]
        np.testing.assert_allclose(got, expect, rtol=0, atol=0)

    @pytest.mark.parametrize(
        "scheme,expect",
        [
            ("raid0", [1.4103554621645793, 4.466551264893754]),
            ("robustore", [0.42066638675398355, 0.3316711617204502]),
        ],
    )
    def test_background_read_latency_pinned(self, scheme, expect):
        plan = TrialPlan(
            access=AccessConfig(
                data_bytes=32 * MB, block_bytes=MB, n_disks=8, redundancy=3.0
            ),
            mode="read",
            pool=8,
            rtt_s=0.001,
            seed=7,
            trials=2,
            background="homogeneous",
        )
        got = [float(r.latency_s) for r in run_scheme(plan, scheme)]
        np.testing.assert_allclose(got, expect, rtol=0, atol=0)
