"""Batched-RNG equivalence: batch draws consume streams like scalar draws.

The hot-path vectorisation (``disk/mechanics.py``, ``disk/service.py``,
``cluster/server.py``) replaced per-request scalar draws with batched
ones.  That is only bit-identity-preserving because of a set of exact
PCG64 stream equivalences, each pinned here as *values and generator
state, element-for-element* — if a numpy upgrade ever changes one of
them, this file fails before any golden does, and names the primitive.

Also pins the SIM011 stream registry entries the refactor added.
"""

import numpy as np
import pytest

from repro.disk.mechanics import DiskMechanics
from repro.disk.service import BlockService
from repro.disk.workload import InDiskLayout
from repro.sim.rng import STREAMS, RngHub


def _state(rng: np.random.Generator):
    return rng.bit_generator.state["state"]["state"]


def _pair(seed: int = 0):
    return np.random.default_rng(seed), np.random.default_rng(seed)


def _assert_lockstep(a: np.random.Generator, b: np.random.Generator):
    """Same stream position now, and still producing the same draws."""
    assert _state(a) == _state(b)
    assert a.random() == b.random()


class TestPrimitiveEquivalences:
    """The numpy-level identities every batched call site rests on."""

    def test_scalar_random_equals_size_one(self):
        a, b = _pair(3)
        assert a.random() == b.random(1)[0]
        _assert_lockstep(a, b)

    def test_scalar_integers_equals_size_one(self):
        a, b = _pair(3)
        assert a.integers(1, 2001) == b.integers(1, 2001, size=1)[0]
        _assert_lockstep(a, b)

    def test_batch_random_equals_scalar_sequence(self):
        a, b = _pair(5)
        assert a.random(64).tolist() == [b.random() for _ in range(64)]
        _assert_lockstep(a, b)

    def test_batch_integers_equals_scalar_sequence(self):
        a, b = _pair(4)
        got = a.integers(1, 2001, size=64)
        ref = [int(b.integers(1, 2001)) for _ in range(64)]
        assert got.tolist() == ref
        _assert_lockstep(a, b)

    def test_batch_binomial_equals_scalar_sequence(self):
        a, b = _pair(8)
        got = a.binomial(16, 0.3, size=32)
        ref = [int(b.binomial(16, 0.3)) for _ in range(32)]
        assert got.tolist() == ref
        _assert_lockstep(a, b)

    def test_choice_equals_indexed_integers(self):
        # draw_layout replaced rng.choice(options) with options[integers].
        arr = np.arange(20, 60)
        a, b = _pair(6)
        for _ in range(16):
            assert a.choice(arr) == arr[b.integers(0, arr.size)]
        _assert_lockstep(a, b)

    def test_tiled_bounds_equal_interleaved_scalars(self):
        # redraw_disk_states draws each disk's (bf, seq, zone) row in one
        # broadcast call: integers(0, tile(pattern, n)) must reject
        # per-element in order, i.e. exactly like the scalar interleave.
        pattern = np.array([8, 2, 5])
        a, b = _pair(7)
        rows = a.integers(0, np.tile(pattern, 16)).reshape(16, 3)
        ref = np.array([[int(b.integers(0, p)) for p in pattern] for _ in range(16)])
        assert np.array_equal(rows, ref)
        _assert_lockstep(a, b)


class TestMechanicsSampling:
    """The drive samplers: batch and n==1 scalar fast path vs reference."""

    def _ref_seek(self, rng, n, spec):
        import math

        out = []
        for _ in range(n):
            d = float(rng.integers(1, spec.locality_span_cylinders + 1))
            out.append(
                spec.seek_base_s + spec.seek_sqrt_s * math.sqrt(d) + spec.seek_linear_s * d
            )
        return out

    @pytest.mark.parametrize("n", [1, 2, 17, 256])
    def test_sample_local_seek(self, n):
        mech = DiskMechanics()
        a, b = _pair(10 + n)
        got = mech.sample_local_seek(a, n)
        assert got.tolist() == self._ref_seek(b, n, mech.spec)
        _assert_lockstep(a, b)

    @pytest.mark.parametrize("n", [1, 2, 17, 256])
    def test_sample_rotational_latency(self, n):
        mech = DiskMechanics()
        a, b = _pair(20 + n)
        got = mech.sample_rotational_latency(a, n)
        ref = [rng_val * mech.spec.rotation_period_s for rng_val in (b.random() for _ in range(n))]
        assert got.tolist() == ref
        _assert_lockstep(a, b)

    def test_seek_values_match_seek_time_curve(self):
        # The inlined expression must equal the public curve (d >= 1).
        mech = DiskMechanics()
        d = np.arange(1, 50, dtype=np.float64)
        curve = mech.seek_time(d)
        a = np.random.default_rng(0)
        draws = mech.sample_local_seek(a, 2000)
        assert draws.min() >= curve.min()


class TestBlockServiceStream:
    """block_service_times: one named stream, consumed like scalar draws."""

    def _reference(self, rng, n_blocks, layout, mech, spt, block_bytes):
        """Transparent re-derivation with the same macro draw order:
        per-block binomials, then all seeks, then all rotations."""
        from repro.disk.geometry import SECTOR_BYTES

        sectors = max(1, block_bytes // SECTOR_BYTES)
        n_req = -(-sectors // layout.blocking_factor)
        n_pos = [int(rng.binomial(n_req, 1.0 - layout.p_sequential)) for _ in range(n_blocks)]
        n_pos[0] += 1
        total = sum(n_pos)
        seeks = [float(mech.sample_local_seek(rng, 1)[0]) for _ in range(total)]
        rots = [float(mech.sample_rotational_latency(rng, 1)[0]) for _ in range(total)]
        xfer = float(mech.transfer_time(sectors, spt))
        out, pos = [], 0
        for blk in range(n_blocks):
            acc = 0.0
            for _ in range(n_pos[blk]):
                acc += seeks[pos] + rots[pos]
                pos += 1
            out.append(acc + n_req * mech.spec.controller_overhead_s + xfer)
        return out

    @pytest.mark.parametrize("p_seq", [0.0, 0.5, 1.0])
    def test_matches_scalar_reference(self, p_seq):
        mech = DiskMechanics()
        layout = InDiskLayout(64, p_seq)
        a, b = _pair(31)
        svc = BlockService(mech, layout, spt=870, rng=a)
        got = svc.block_service_times(24, 1 << 20)
        ref = self._reference(b, 24, layout, mech, 870, 1 << 20)
        np.testing.assert_allclose(got, ref, rtol=0, atol=1e-15)
        _assert_lockstep(a, b)

    def test_bit_identical_per_seed(self):
        mech = DiskMechanics()
        for seed in range(3):
            runs = [
                BlockService(
                    mech, InDiskLayout(256, 0.5), 870, np.random.default_rng(seed)
                ).block_service_times(16, 1 << 20)
                for _ in range(2)
            ]
            assert np.array_equal(runs[0], runs[1])


class TestStreamRegistry:
    """SIM011 stream-discipline entries for the refactor's streams."""

    def test_bgphase_registered(self):
        # (name, scheme, trial, phase, disk_id) — arity 5, core.base.
        assert STREAMS["bgphase"] == 5

    def test_registry_shape(self):
        for name, arity in STREAMS.items():
            assert isinstance(name, str) and name
            if isinstance(arity, tuple):
                assert all(isinstance(a, int) and a >= 1 for a in arity)
            else:
                assert isinstance(arity, int) and arity >= 1

    def test_bgphase_stream_is_stable_and_distinct(self):
        draws = {
            RngHub(7).fresh("bgphase", "raid0", 0, "read", d).random() for d in range(8)
        }
        assert len(draws) == 8  # per-disk streams are distinct
        again = RngHub(7).fresh("bgphase", "raid0", 0, "read", 3).random()
        assert again == RngHub(7).fresh("bgphase", "raid0", 0, "read", 3).random()
        # and independent of the service stream with the same key tail
        svc = RngHub(7).fresh("svc", "raid0", 0, "read", 3).random()
        assert again != svc
