"""Tests for resources and stores."""

import pytest

from repro.sim import Environment, PriorityResource, Resource, Store


def test_resource_serialises_access():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, tag, hold):
        with res.request() as req:
            yield req
            log.append((tag, env.now, "in"))
            yield env.timeout(hold)
            log.append((tag, env.now, "out"))

    env.process(user(env, "a", 2))
    env.process(user(env, "b", 1))
    env.run()
    assert log == [
        ("a", 0.0, "in"),
        ("a", 2.0, "out"),
        ("b", 2.0, "in"),
        ("b", 3.0, "out"),
    ]


def test_resource_capacity_two_admits_pair():
    env = Environment()
    res = Resource(env, capacity=2)
    entered = []

    def user(env, tag):
        with res.request() as req:
            yield req
            entered.append((tag, env.now))
            yield env.timeout(1)

    for tag in "abc":
        env.process(user(env, tag))
    env.run()
    assert entered == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_queued_request_can_be_cancelled():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        req = res.request()
        yield env.timeout(1)
        req.cancel()  # withdraw before being granted
        got.append("gave up")

    env.process(holder(env))
    env.process(impatient(env))
    env.run()
    assert got == ["gave up"]
    assert res.count == 0


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def waiter(env, tag, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(waiter(env, "low", 5, 1))
    env.process(waiter(env, "high", 1, 2))
    env.run()
    assert order == ["high", "low"]


def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("a in", env.now))
        yield store.put("b")
        log.append(("b in", env.now))

    def consumer(env):
        yield env.timeout(4)
        item = yield store.get()
        log.append((f"got {item}", env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("a in", 0.0) in log
    assert ("b in", 4.0) in log


def test_store_filter_items_removes_cancelled():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.put(i)
    removed = store.filter_items(lambda x: x % 2 == 0)
    assert removed == [1, 3]
    assert store.items == [0, 2, 4]


def test_store_cancel_get():
    env = Environment()
    store = Store(env)
    ev = store.get()
    store.cancel_get(ev)
    store.put("x")
    # The cancelled getter must not consume the item.
    assert store.items == ["x"]


def test_store_len():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    assert len(store) == 1
