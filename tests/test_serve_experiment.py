"""Determinism and shape of the serving experiments.

``ext_multiuser`` (closed-loop compatibility entry, now delegating to
``repro.serve``) must render the exact same table on every same-seed
run, and ``ext_serve`` must produce byte-identical reports per
``(scheme, client count)`` cell — that byte-identity is what the CI
serve job diffs across runs and across ``-j`` widths.
"""

from __future__ import annotations

import pytest

from repro.experiments.multiuser import ext_multiuser
from repro.experiments.serve_experiment import (
    DEFAULT_CLIENTS,
    base_plan,
    ext_serve,
    overload_plan,
    serve_clients,
)

MU_ARGS = dict(
    client_counts=(1, 2), data_mb=8, n_disks=4, pool=8, trials=1, seed=3
)


def test_ext_multiuser_same_seed_pins_the_table():
    a = ext_multiuser(**MU_ARGS)
    b = ext_multiuser(**MU_ARGS)
    assert a.rows == b.rows
    assert a.text() == b.text()


def test_ext_multiuser_shape_and_contention():
    r = ext_multiuser(**MU_ARGS)
    assert [row["scheme"] for row in r.rows] == ["raid0"] * 2 + ["robustore"] * 2
    assert [row["clients"] for row in r.rows] == [1, 2, 1, 2]
    for row in r.rows:
        assert row["lat_s"] > 0
        assert row["aggregate_MBps"] == pytest.approx(
            row["per_client_MBps"] * row["clients"], abs=0.5
        )
    by = {(row["scheme"], row["clients"]): row for row in r.rows}
    # Two clients sharing the drives are no faster per client than one.
    for scheme in ("raid0", "robustore"):
        assert by[(scheme, 2)]["lat_s"] >= by[(scheme, 1)]["lat_s"]


def test_ext_serve_deterministic_and_complete():
    a = ext_serve(client_counts=(200,), seed=5)
    b = ext_serve(client_counts=(200,), seed=5)
    assert a.reports == b.reports
    assert a.text() == b.text()
    assert [r.scheme for r in a.reports] == ["raid0", "robustore"]
    for r in a.reports:
        assert r.n_clients == 200
        assert r.offered == 200
        assert r.admitted + r.rejected == r.offered
    assert "p999_s" in a.text() and "goodput_MBps" in a.text()


def test_serve_clients_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_CLIENTS", raising=False)
    assert serve_clients() == DEFAULT_CLIENTS
    monkeypatch.setenv("REPRO_SERVE_CLIENTS", "100, 2000")
    assert serve_clients() == (100, 2000)
    monkeypatch.setenv("REPRO_SERVE_CLIENTS", "0")
    with pytest.raises(ValueError):
        serve_clients()


def test_plan_builders():
    plan = base_plan(1234, seed=9)
    assert plan.workload.n_clients == 1234 and plan.seed == 9
    tight = overload_plan(1234)
    assert tight.pool < plan.pool and tight.max_wait_s < plan.max_wait_s
