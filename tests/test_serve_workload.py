"""Tests for the seeded open-loop workload generator.

Determinism (bit-identical traces from the same hub seed), the shape
properties the serving model depends on (sorted arrivals, heavy-tailed
sizes, Zipf hot keys, burst/diurnal rate variation), and the spec's
validation and payload round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.workload import RequestBatch, WorkloadSpec, generate
from repro.sim.rng import RngHub


def batch(seed=0, **kwargs) -> RequestBatch:
    return generate(WorkloadSpec(**kwargs), RngHub(seed))


# ---------------------------------------------------------------------------
# determinism


def test_same_seed_bit_identical():
    a = batch(seed=7, n_clients=500)
    b = batch(seed=7, n_clients=500)
    for name in ("arrival_s", "client_id", "file_id", "size_bytes"):
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name))


def test_different_seed_differs():
    a = batch(seed=1, n_clients=500)
    b = batch(seed=2, n_clients=500)
    assert not np.array_equal(a.size_bytes, b.size_bytes)


def test_streams_are_independent():
    # Disabling the diurnal cycle perturbs only the arrival draws.
    base = batch(seed=3, n_clients=400)
    flat = batch(seed=3, n_clients=400, diurnal_amplitude=0.0)
    np.testing.assert_array_equal(base.size_bytes, flat.size_bytes)
    np.testing.assert_array_equal(base.file_id, flat.file_id)
    assert not np.array_equal(base.arrival_s, flat.arrival_s)


# ---------------------------------------------------------------------------
# trace shape


def test_trace_shape_and_bounds():
    spec = WorkloadSpec(n_clients=300, requests_per_client=2, duration_s=100.0)
    b = generate(spec, RngHub(0))
    assert len(b) == spec.total_requests == 600
    assert np.all(np.diff(b.arrival_s) >= 0)
    assert b.arrival_s[0] >= 0 and b.arrival_s[-1] <= spec.duration_s
    assert b.client_id.min() >= 0 and b.client_id.max() < spec.n_clients
    assert b.file_id.min() >= 0 and b.file_id.max() < spec.n_files
    assert b.size_bytes.min() >= spec.size_min_mb * 2**20
    assert b.size_bytes.max() <= spec.size_max_mb * 2**20
    assert b.total_bytes == int(b.size_bytes.sum())


def test_pareto_sizes_are_heavy_tailed():
    b = batch(n_clients=5000, size_dist="pareto", size_max_mb=4096.0)
    sizes = b.size_bytes.astype(float)
    # Heavy tail: the top percentile carries far more than its share.
    top = np.sort(sizes)[-len(sizes) // 100 :]
    assert top.sum() / sizes.sum() > 0.05
    assert sizes.max() / np.median(sizes) > 10


def test_lognormal_and_fixed_sizes():
    ln = batch(n_clients=5000, size_dist="lognormal", size_max_mb=4096.0)
    mean_mb = ln.size_bytes.mean() / 2**20
    assert 8.0 < mean_mb < 32.0  # clipping pulls the exact mean around 16
    fx = batch(n_clients=100, size_dist="fixed")
    assert np.all(fx.size_bytes == 16 * 2**20)


def test_zipf_hot_keys():
    b = batch(n_clients=20_000, zipf_s=1.1, n_files=1024)
    counts = np.bincount(b.file_id, minlength=1024)
    uniform_share = len(b) / 1024
    assert counts[0] > 5 * uniform_share  # rank-0 file is hot
    assert counts[0] >= counts[512]  # and hotter than mid-rank
    uni = batch(n_clients=20_000, zipf_s=0.0, n_files=1024)
    ucounts = np.bincount(uni.file_id, minlength=1024)
    assert ucounts.max() < 3 * uniform_share


def test_bursts_concentrate_arrivals():
    calm = batch(
        n_clients=20_000, burst_factor=1.0, diurnal_amplitude=0.0
    )
    bursty = batch(
        n_clients=20_000, burst_factor=10.0, burst_fraction=0.1,
        diurnal_amplitude=0.0,
    )
    # Max arrivals in any 1/50th window: bursts pack far more than flat.
    def peak(b):
        hist, _ = np.histogram(b.arrival_s, bins=50, range=(0.0, 600.0))
        return hist.max()

    assert peak(bursty) > 1.5 * peak(calm)


# ---------------------------------------------------------------------------
# spec validation and payload round-trip


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_clients=0),
        dict(requests_per_client=0),
        dict(duration_s=0.0),
        dict(n_files=0),
        dict(zipf_s=-0.1),
        dict(size_dist="weibull"),
        dict(size_min_mb=0.0),
        dict(size_min_mb=8.0, size_max_mb=4.0),
        dict(diurnal_amplitude=1.0),
        dict(burst_factor=0.5),
        dict(burst_fraction=1.0),
    ],
)
def test_spec_validation(kwargs):
    with pytest.raises(ValueError):
        WorkloadSpec(**kwargs)


def test_spec_jsonable_round_trip():
    spec = WorkloadSpec(n_clients=42, size_dist="lognormal", zipf_s=1.2)
    assert WorkloadSpec.from_jsonable(spec.to_jsonable()) == spec
    with pytest.raises(ValueError):
        WorkloadSpec.from_jsonable({"n_clients": 1, "bogus": 2})
