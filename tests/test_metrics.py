"""Tests for metric aggregation and reporting."""

import numpy as np
import pytest

from repro.core.access import MB, AccessResult
from repro.metrics.reporting import format_series, format_table
from repro.metrics.stats import summarize


def result(latency, net_mb=None, data_mb=4, rec=None):
    extra = {} if rec is None else {"reception_overhead": rec}
    return AccessResult(
        latency_s=latency,
        data_bytes=data_mb * MB,
        network_bytes=(net_mb if net_mb is not None else data_mb) * MB,
        disk_blocks=data_mb,
        blocks_received=data_mb,
        extra=extra,
    )


def test_summarize_basic():
    s = summarize([result(1.0), result(2.0)])
    assert s.n_trials == 2
    assert s.latency_mean_s == pytest.approx(1.5)
    assert s.latency_std_s == pytest.approx(0.5)
    assert s.bandwidth_mbps == pytest.approx((4 / 1 + 4 / 2) / 2)
    assert s.io_overhead == pytest.approx(0.0)


def test_summarize_io_overhead():
    s = summarize([result(1.0, net_mb=6)])
    assert s.io_overhead == pytest.approx(0.5)


def test_summarize_reception_overhead_optional():
    s = summarize([result(1.0)])
    assert s.reception_overhead is None
    s2 = summarize([result(1.0, rec=0.4), result(1.0, rec=0.6)])
    assert s2.reception_overhead == pytest.approx(0.5)


def test_summarize_excludes_infinite_latency():
    s = summarize([result(1.0), result(float("inf"))])
    assert s.n_trials == 2
    assert s.latency_mean_s == pytest.approx(1.0)


def test_summarize_all_infinite():
    s = summarize([result(float("inf"))])
    assert s.bandwidth_mbps == 0.0
    assert s.latency_mean_s == float("inf")


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_latency_cv():
    s = summarize([result(1.0), result(3.0)])
    assert s.latency_cv == pytest.approx(0.5)


def test_row_rendering():
    row = summarize([result(2.0, rec=0.5)]).row()
    assert row["trials"] == 1
    assert row["reception_overhead"] == 0.5


def test_format_series_alignment():
    text = format_series("T", "x", [1, 2], {"a": [1.0, 2.0], "b": [3.0, float("nan")]})
    assert "T" in text
    lines = text.splitlines()
    assert len(lines) == 6
    assert "—" in lines[-1]  # NaN rendered as a dash


def test_format_table():
    text = format_table("title", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
    assert "title" in text
    assert text.count("\n") == 4
    assert format_table("empty", []) == "empty"


def test_format_bars_proportional():
    from repro.metrics.reporting import format_bars

    text = format_bars("B", {"a": [10.0, 20.0], "b": [float("inf"), 5.0]}, [1, 2], width=10)
    lines = text.splitlines()
    # Peak (20) gets the full width; 10 gets half; inf renders as a dash.
    assert any("██████████" in ln for ln in lines)
    assert any("█████ " in ln and "10.0" in ln for ln in lines)
    assert any("—" in ln for ln in lines)


def test_format_bars_all_zero():
    from repro.metrics.reporting import format_bars

    text = format_bars("Z", {"a": [0.0, 0.0]}, [1, 2])
    assert "0.0" in text


# ---------------------------------------------------------------------------
# percentiles: exact helpers vs numpy, histogram approximation


class TestPercentileExact:
    def test_matches_numpy_linear_interpolation(self):
        rng = np.random.default_rng(42)
        values = rng.lognormal(0.0, 1.5, size=2000)
        from repro.metrics.stats import percentile_exact, percentiles_exact

        for q in (0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0):
            assert percentile_exact(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )
            assert percentile_exact(values, q) == pytest.approx(
                float(np.quantile(values, q / 100.0))
            )
        ps = percentiles_exact(values)
        assert set(ps) == {50.0, 99.0, 99.9}
        assert ps[50.0] == pytest.approx(float(np.median(values)))

    def test_small_inputs_and_errors(self):
        from repro.metrics.stats import percentile_exact

        assert percentile_exact([3.0], 99.0) == 3.0
        assert percentile_exact([1.0, 2.0], 50.0) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            percentile_exact([], 50.0)
        with pytest.raises(ValueError):
            percentile_exact([1.0], 101.0)


class TestFixedBinHistogram:
    def hist_and_values(self, n=50_000):
        from repro.metrics.stats import FixedBinHistogram

        rng = np.random.default_rng(7)
        values = np.clip(rng.lognormal(0.0, 1.2, size=n), 1e-3, 1e4)
        h = FixedBinHistogram()
        h.add_many(values)
        return h, values

    def test_percentiles_conservative_and_tight(self):
        h, values = self.hist_and_values()
        for q in (50.0, 90.0, 99.0, 99.9):
            exact = float(np.percentile(values, q))
            approx = h.percentile(q)
            # Upper bin edge: never under-reports, within one bin's width.
            assert approx >= exact * 0.999
            assert approx <= exact * 1.05

    def test_streaming_equals_batch(self):
        from repro.metrics.stats import FixedBinHistogram

        h, values = self.hist_and_values(n=500)
        one = FixedBinHistogram()
        for v in values:
            one.add(float(v))
        assert np.array_equal(one.counts, h.counts)
        assert one.p50 == h.p50 and one.p999 == h.p999

    def test_overflow_bin_and_nonfinite(self):
        from repro.metrics.stats import FixedBinHistogram

        h = FixedBinHistogram(lo=1.0, hi=10.0, bins=4)
        h.add(1e9)  # above hi: lands in the +inf overflow bin
        assert h.percentile(99.0) == float("inf")
        with pytest.raises(ValueError):
            h.add(float("nan"))
        with pytest.raises(ValueError):
            h.add_many([1.0, float("inf")])

    def test_jsonable_round_trip_sparse(self):
        from repro.metrics.stats import FixedBinHistogram

        h, _ = self.hist_and_values(n=300)
        data = h.to_jsonable()
        back = FixedBinHistogram.from_jsonable(data)
        assert np.array_equal(back.counts, h.counts)
        assert back.p50 == h.p50 and back.p99 == h.p99
