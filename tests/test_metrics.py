"""Tests for metric aggregation and reporting."""

import numpy as np
import pytest

from repro.core.access import MB, AccessResult
from repro.metrics.reporting import format_series, format_table
from repro.metrics.stats import summarize


def result(latency, net_mb=None, data_mb=4, rec=None):
    extra = {} if rec is None else {"reception_overhead": rec}
    return AccessResult(
        latency_s=latency,
        data_bytes=data_mb * MB,
        network_bytes=(net_mb if net_mb is not None else data_mb) * MB,
        disk_blocks=data_mb,
        blocks_received=data_mb,
        extra=extra,
    )


def test_summarize_basic():
    s = summarize([result(1.0), result(2.0)])
    assert s.n_trials == 2
    assert s.latency_mean_s == pytest.approx(1.5)
    assert s.latency_std_s == pytest.approx(0.5)
    assert s.bandwidth_mbps == pytest.approx((4 / 1 + 4 / 2) / 2)
    assert s.io_overhead == pytest.approx(0.0)


def test_summarize_io_overhead():
    s = summarize([result(1.0, net_mb=6)])
    assert s.io_overhead == pytest.approx(0.5)


def test_summarize_reception_overhead_optional():
    s = summarize([result(1.0)])
    assert s.reception_overhead is None
    s2 = summarize([result(1.0, rec=0.4), result(1.0, rec=0.6)])
    assert s2.reception_overhead == pytest.approx(0.5)


def test_summarize_excludes_infinite_latency():
    s = summarize([result(1.0), result(float("inf"))])
    assert s.n_trials == 2
    assert s.latency_mean_s == pytest.approx(1.0)


def test_summarize_all_infinite():
    s = summarize([result(float("inf"))])
    assert s.bandwidth_mbps == 0.0
    assert s.latency_mean_s == float("inf")


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_latency_cv():
    s = summarize([result(1.0), result(3.0)])
    assert s.latency_cv == pytest.approx(0.5)


def test_row_rendering():
    row = summarize([result(2.0, rec=0.5)]).row()
    assert row["trials"] == 1
    assert row["reception_overhead"] == 0.5


def test_format_series_alignment():
    text = format_series("T", "x", [1, 2], {"a": [1.0, 2.0], "b": [3.0, float("nan")]})
    assert "T" in text
    lines = text.splitlines()
    assert len(lines) == 6
    assert "—" in lines[-1]  # NaN rendered as a dash


def test_format_table():
    text = format_table("title", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
    assert "title" in text
    assert text.count("\n") == 4
    assert format_table("empty", []) == "empty"


def test_format_bars_proportional():
    from repro.metrics.reporting import format_bars

    text = format_bars("B", {"a": [10.0, 20.0], "b": [float("inf"), 5.0]}, [1, 2], width=10)
    lines = text.splitlines()
    # Peak (20) gets the full width; 10 gets half; inf renders as a dash.
    assert any("██████████" in ln for ln in lines)
    assert any("█████ " in ln and "10.0" in ln for ln in lines)
    assert any("—" in ln for ln in lines)


def test_format_bars_all_zero():
    from repro.metrics.reporting import format_bars

    text = format_bars("Z", {"a": [0.0, 0.0]}, [1, 2])
    assert "0.0" in text
