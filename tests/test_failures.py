"""Tests for disk-failure handling across the stack.

Failures are injected through the public fault API
(:meth:`repro.cluster.server.Cluster.install_faults` with a
:class:`repro.faults.FaultPlan`): a permanent ``disk_fail`` at t=0 is the
"dead disk" of the original paper experiments, and timed events cover the
mid-read cases the redraw-based injection never could.
"""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core import SCHEMES
from repro.core.access import MB, AccessConfig
from repro.disk.mechanics import DiskMechanics
from repro.disk.service import BlockService, served_before
from repro.disk.workload import InDiskLayout
from repro.faults import FaultPlan
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)


def test_failed_service_never_completes():
    svc = BlockService(
        DiskMechanics(), InDiskLayout(256, 1.0), 870, np.random.default_rng(0), failed=True
    )
    c = svc.serve(4, MB, 0.0)
    assert np.all(np.isinf(c))


def test_served_before_ignores_infinite():
    c = np.array([1.0, np.inf, np.inf])
    assert served_before(c, 2.0) == 1
    assert served_before(c, float("inf")) == 1
    assert served_before(np.full(3, np.inf), 100.0) == 0


def kill_plan(disks, at=0.0, duration=None):
    return FaultPlan.from_scenario(
        [{"at": at, "fault": "disk_fail", "disk": int(d),
          **({"duration": duration} if duration is not None else {})}
         for d in disks]
    )


def run_with_plan(name, plan, trial=0):
    cluster = Cluster(n_disks=8, rtt_s=0.001)
    hub = RngHub(9)
    scheme = SCHEMES[name](cluster, CFG, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", trial))
    cluster.install_faults(plan)
    scheme.prepare("f", trial)
    return scheme.read("f", trial)


def run_with_failures(name, failed, trial=0):
    """Dead-from-the-start disks, via the public fault API."""
    return run_with_plan(name, kill_plan(failed) if failed else None, trial)


def test_raid0_dies_with_any_failed_disk():
    r = run_with_failures("raid0", failed={0})
    assert r.latency_s == float("inf")


def test_robustore_survives_failures():
    r = run_with_failures("robustore", failed={0, 1})
    assert np.isfinite(r.latency_s)
    assert r.extra["reception_overhead"] < 2.0


def test_rraid_s_survives_one_failure():
    r = run_with_failures("rraid-s", failed={3})
    assert np.isfinite(r.latency_s)


def test_rraid_a_survives_one_failure():
    r = run_with_failures("rraid-a", failed={3})
    assert np.isfinite(r.latency_s)


def _prepare_then_fail(name, positions, trial=0):
    """Fail the disks at specific *placement positions* (rotation-aware)."""
    cluster = Cluster(n_disks=8, rtt_s=0.001)
    hub = RngHub(9)
    scheme = SCHEMES[name](cluster, CFG, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", trial))
    record = scheme.prepare("f", trial)
    cluster.install_faults(kill_plan(record.disk_ids[p] for p in positions))
    return scheme.read("f", trial)


def test_rraid_a_dies_when_all_replicas_failed():
    """Kill four placement-consecutive disks: blocks homed on the first
    lose every rotated copy (replicas = 4)."""
    r = _prepare_then_fail("rraid-a", positions=(0, 1, 2, 3))
    assert r.latency_s == float("inf")


def test_rraid_s_dies_when_all_replicas_failed():
    r = _prepare_then_fail("rraid-s", positions=(0, 1, 2, 3))
    assert r.latency_s == float("inf")


def test_robustore_survives_where_replication_cannot():
    r = _prepare_then_fail("robustore", positions=(0, 1, 2, 3))
    assert np.isfinite(r.latency_s)


def test_too_many_failures_kill_even_robustore():
    """With every selected disk dead, nothing decodes."""
    r = run_with_failures("robustore", failed=set(range(8)))
    assert r.latency_s == float("inf")


# -- mid-read failure timing -------------------------------------------------


class TestMidReadFailureTiming:
    """The disks die at 25%/50%/75% of the scheme's fault-free read time."""

    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
    def test_raid0_loses_blocks_still_in_flight(self, fraction):
        T = run_with_plan("raid0", None).latency_s
        assert np.isfinite(T)
        r = run_with_plan("raid0", kill_plan(range(8), at=fraction * T))
        assert r.latency_s == float("inf")

    def test_raid0_unharmed_once_the_read_is_over(self):
        T = run_with_plan("raid0", None).latency_s
        r = run_with_plan("raid0", kill_plan(range(8), at=1.5 * T))
        # The fault fires after the last block arrived: same read, to
        # within the float noise of routing times through the warp.
        assert r.latency_s == pytest.approx(T, rel=1e-12)

    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
    def test_robustore_respeculates_through_a_transient_outage(self, fraction):
        T = run_with_plan("robustore", None).latency_s
        assert np.isfinite(T)
        plan = kill_plan(range(8), at=fraction * T, duration=0.5)
        r = run_with_plan("robustore", plan)
        assert np.isfinite(r.latency_s)
        assert r.latency_s >= T  # the outage can only delay it

    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
    def test_later_single_disk_kills_never_slow_robustore_more(self, fraction):
        """One lost disk mid-read: the erasure code absorbs it at any time."""
        T = run_with_plan("robustore", None).latency_s
        r = run_with_plan("robustore", kill_plan([0], at=fraction * T))
        assert np.isfinite(r.latency_s)
