"""Scheme reactions to mid-operation faults, and the zero-fault contract."""

import dataclasses

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core import SCHEMES
from repro.core.access import MB, AccessConfig
from repro.experiments.harness import TrialPlan, run_scheme
from repro.faults import FaultPlan, maybe_repair
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)
ALL = ("raid0", "rraid-s", "rraid-a", "robustore")


def run_with_plan(name, plan, trial=0, mode="read"):
    """One access on an 8-disk cluster with a fault plan installed."""
    cluster = Cluster(n_disks=8, rtt_s=0.001)
    hub = RngHub(9)
    scheme = SCHEMES[name](cluster, CFG, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", trial))
    cluster.install_faults(plan)
    if mode == "write":
        return scheme.write("f", trial), scheme
    scheme.prepare("f", trial)
    return scheme.read("f", trial), scheme


def transient_all_disk_fail(at=0.02, duration=1.0):
    return FaultPlan.from_scenario(
        [{"at": at, "fault": "disk_fail", "disk": d, "duration": duration}
         for d in range(8)]
    )


def permanent_kills(disks, at=0.02):
    return FaultPlan.from_scenario(
        [{"at": at, "fault": "disk_fail", "disk": d} for d in disks]
    )


# ------------------------------------------------------------ zero perturbation


class TestZeroFaultContract:
    """An installed empty plan must not change a single bit of any result."""

    @pytest.mark.parametrize("name", ALL)
    def test_empty_plan_is_bit_identical(self, name):
        plain, _ = run_with_plan(name, None)
        empty, _ = run_with_plan(name, FaultPlan.empty())
        assert empty.latency_s == plain.latency_s
        assert empty.network_bytes == plain.network_bytes
        assert empty.blocks_received == plain.blocks_received
        assert empty.rounds == plain.rounds

    @pytest.mark.parametrize("name", ALL)
    def test_empty_plan_through_harness(self, name):
        """The TrialPlan path: a zero-fault plan equals a plain run exactly."""
        base = TrialPlan(access=CFG, pool=8, rtt_s=0.001, seed=3, trials=2)
        plain = run_scheme(base, name)
        faulted = run_scheme(
            dataclasses.replace(base, fault_plan=FaultPlan.empty()), name
        )
        assert [r.latency_s for r in faulted] == [r.latency_s for r in plain]
        assert [r.network_bytes for r in faulted] == [r.network_bytes for r in plain]

    def test_empty_plan_installs_no_injector(self):
        cluster = Cluster(n_disks=8)
        cluster.install_faults(FaultPlan.empty())
        assert cluster.faults is None


# ------------------------------------------------------------ scheme reactions


class TestTransientClusterOutage:
    """Every disk dies at t=0.02 and returns 1 s later: only the scheme that
    can re-speculate onto recovered disks finishes the read."""

    def test_robustore_respeculates_to_completion(self):
        r, _ = run_with_plan("robustore", transient_all_disk_fail())
        assert np.isfinite(r.latency_s)
        assert r.rounds == 2  # the second speculation round did the work
        assert r.latency_s > 1.0  # it had to wait out the outage

    @pytest.mark.parametrize("name", ["raid0", "rraid-s", "rraid-a"])
    def test_fixed_schemes_lose_the_read(self, name):
        r, _ = run_with_plan(name, transient_all_disk_fail())
        assert r.latency_s == float("inf")


class TestPartialFailures:
    def test_raid0_dies_on_one_lost_stripe_disk(self):
        r, _ = run_with_plan("raid0", permanent_kills([0]))
        assert r.latency_s == float("inf")

    @pytest.mark.parametrize("name", ["rraid-s", "rraid-a", "robustore"])
    def test_redundant_schemes_survive_one_loss(self, name):
        r, _ = run_with_plan(name, permanent_kills([0]))
        assert np.isfinite(r.latency_s)

    def test_slowdown_stretches_but_completes(self):
        plan = FaultPlan.from_scenario(
            [{"at": 0.0, "fault": "disk_slow", "disk": d,
              "factor": 3.0, "duration": 30.0} for d in range(8)]
        )
        for name in ALL:
            plain, _ = run_with_plan(name, None)
            slow, _ = run_with_plan(name, plan)
            assert np.isfinite(slow.latency_s)
            assert slow.latency_s > plain.latency_s

    def test_link_degrade_adds_latency(self):
        plan = FaultPlan.from_scenario(
            [{"at": 0.0, "fault": "link_degrade", "filer": 0,
              "extra_s": 0.05, "duration": 30.0}]
        )
        plain, _ = run_with_plan("robustore", None)
        slow, _ = run_with_plan("robustore", plan)
        assert np.isfinite(slow.latency_s)
        assert slow.latency_s > plain.latency_s

    def test_filer_crash_defers_the_read(self):
        plan = FaultPlan.from_scenario(
            [{"at": 0.05, "fault": "filer_crash", "filer": 0, "duration": 0.5}]
        )
        plain, _ = run_with_plan("robustore", None)
        crashed, _ = run_with_plan("robustore", plan)
        assert np.isfinite(crashed.latency_s)
        assert crashed.latency_s > plain.latency_s


# ------------------------------------------------------------ repair trigger


class TestRepairTrigger:
    def test_four_permanent_kills_trigger_repair(self):
        # 8 disks at redundancy 3.0: losing half the blocks leaves
        # surviving redundancy 1.0 < 1.5 (the 0.5 x redundancy floor).
        r, scheme = run_with_plan("robustore", permanent_kills([0, 1, 2, 3]))
        assert np.isfinite(r.latency_s)  # still decodes from survivors
        assert r.extra["repair_triggered"]
        assert r.extra["surviving_redundancy"] == pytest.approx(1.0)
        decision = maybe_repair(scheme, "f", 0, r)
        assert decision.triggered and decision.repaired
        assert decision.reason == "repaired"
        assert len(decision.dead_disks) == 4
        (report,) = decision.reports
        assert report.complete and report.bytes_read_helpers > 0

    def test_repeat_notification_same_epoch_is_deduped(self):
        r, scheme = run_with_plan("robustore", permanent_kills([0, 1, 2, 3]))
        first = maybe_repair(scheme, "f", 0, r)
        assert first.repaired
        again = maybe_repair(scheme, "f", 0, r)
        assert again.triggered and not again.repaired
        assert again.reason == "duplicate"
        assert again.dead_disks == first.dead_disks

    def test_three_kills_stay_above_the_floor(self):
        r, scheme = run_with_plan("robustore", permanent_kills([0, 1, 2]))
        assert np.isfinite(r.latency_s)
        assert not r.extra["repair_triggered"]
        assert r.extra["surviving_redundancy"] == pytest.approx(1.5)
        decision = maybe_repair(scheme, "f", 0, r)
        assert not decision.triggered and not decision.repaired
        assert decision.reason == "healthy"

    def test_no_faults_no_trigger(self):
        r, scheme = run_with_plan("robustore", None)
        assert not r.extra.get("repair_triggered")
        decision = maybe_repair(scheme, "f", 0, r)
        assert not decision.triggered and not decision.repaired


# ------------------------------------------------------------ write path


class TestFaultedWrites:
    def test_write_fails_when_every_disk_dies(self):
        r, _ = run_with_plan("robustore", permanent_kills(range(8), at=0.0),
                             mode="write")
        assert r.latency_s == float("inf")
        assert r.extra["write_failed"]

    def test_transient_outage_also_kills_the_single_round_write(self):
        # Writes are single-round (no re-speculation): blocks flushed by the
        # outage never commit, so the decodable target is unreachable.
        r, _ = run_with_plan("robustore", transient_all_disk_fail(), mode="write")
        assert r.latency_s == float("inf")
        assert r.extra["write_failed"]


class TestTotalLoss:
    def test_all_disks_permanently_dead_kills_even_robustore(self):
        r, _ = run_with_plan("robustore", permanent_kills(range(8)))
        assert r.latency_s == float("inf")
