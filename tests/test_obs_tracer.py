"""Tracer core: span nesting on the DES clock, counters, Chrome export."""

import inspect
import json
import pathlib

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer, current_tracer, use_tracer
from repro.sim.core import Environment

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_trace.json"


def build_reference_tracer() -> Tracer:
    """A small deterministic trace exercising every record type.

    The golden file under tests/data was generated from exactly this
    construction — regenerate it with
    ``PYTHONPATH=src python -m tests.make_golden`` after a deliberate
    format change.
    """
    tr = Tracer()
    tr.span("scheme.read:robustore", "scheme", 0.0, 2.5, track="scheme",
            args={"trial": 0})
    tr.begin("drive.service", "drive", 0.25, track="disk0")
    tr.begin("drive.seek", "drive", 0.25, track="disk0")
    tr.end(0.4, track="disk0")
    tr.end(1.0, track="disk0")
    tr.instant("scheme.cancel", "scheme", 2.0, track="scheme",
               args={"cancelled": 3})
    tr.counter("drive.queue_depth", 0.5, 4, track="disk0")
    tr.counter("drive.queue_depth", 1.5, 1, track="disk0")
    tr.count("scheme.reads")
    tr.count("drive.cancelled_requests", 3)
    tr.account_bytes("network", 12 * 1024)
    tr.account_bytes("consumed", 8 * 1024)
    tr.account_bytes("data", 8 * 1024)
    tr.offset = 10.0
    tr.span("scheme.read:robustore", "scheme", 0.0, 1.25, track="scheme",
            args={"trial": 1})
    return tr


# -- spans under the DES clock ------------------------------------------------

def test_span_nesting_and_ordering_under_des_clock():
    """begin/end frames nest LIFO and land at the kernel's virtual times."""
    tracer = Tracer()
    env = Environment(tracer=tracer)

    def worker():
        tracer.begin("outer", "test", env.now, track="w")
        yield env.timeout(1.0)
        tracer.begin("inner", "test", env.now, track="w")
        yield env.timeout(2.0)
        tracer.end(env.now, track="w")  # closes inner
        yield env.timeout(0.5)
        tracer.end(env.now, track="w")  # closes outer

    env.process(worker(), name="worker")
    env.run()

    by_name = {s.name: s for s in tracer.spans if s.track == "w"}
    inner, outer = by_name["inner"], by_name["outer"]
    assert (inner.ts, inner.end) == (1.0, 3.0)
    assert (outer.ts, outer.end) == (0.0, 3.5)
    # Proper nesting: inner lies strictly inside outer.
    assert outer.ts <= inner.ts and inner.end <= outer.end
    # LIFO close order: inner was recorded before outer.
    names = [s.name for s in tracer.spans if s.track == "w"]
    assert names.index("inner") < names.index("outer")
    # The kernel's own process span covers the whole generator lifetime.
    kernel = [s for s in tracer.spans if s.name == "sim.process:worker"]
    assert len(kernel) == 1 and kernel[0].ts == 0.0 and kernel[0].end == 3.5


def test_end_without_track_requires_unambiguity():
    tracer = Tracer()
    tracer.begin("a", "t", 0.0, track="x")
    tracer.begin("b", "t", 0.0, track="y")
    with pytest.raises(RuntimeError):
        tracer.end(1.0)  # two tracks open -> ambiguous
    tracer.end(1.0, track="y")
    tracer.end(2.0)  # only "x" open now -> fine
    assert {s.name for s in tracer.spans} == {"a", "b"}
    with pytest.raises(RuntimeError):
        tracer.end(3.0, track="x")  # nothing open


def test_span_offset_applied_and_duration_clamped():
    tracer = Tracer()
    tracer.offset = 5.0
    tracer.span("s", "c", 1.0, 3.0)
    tracer.span("weird", "c", 2.0, 1.0)  # end < start -> zero-length
    assert tracer.spans[0].ts == 6.0 and tracer.spans[0].dur == 2.0
    assert tracer.spans[1].dur == 0.0
    tracer.instant("i", "c", 1.0)
    assert tracer.instants[0].ts == 6.0


# -- counters -----------------------------------------------------------------

def test_count_is_monotone_and_rejects_negative_deltas():
    tracer = Tracer()
    seen = []
    for delta in (1, 0, 5, 2):
        tracer.count("x", delta)
        seen.append(tracer.counters["x"])
    assert seen == sorted(seen)  # never decreases
    assert tracer.counters["x"] == 8
    with pytest.raises(ValueError):
        tracer.count("x", -1)
    with pytest.raises(ValueError):
        tracer.account_bytes("network", -10)


# -- NullTracer parity --------------------------------------------------------

def _public_api(cls):
    return {
        name
        for name, member in inspect.getmembers(cls)
        if not name.startswith("_")
        and (callable(member) or isinstance(member, property)
             or not inspect.isroutine(member))
    }


def test_null_tracer_api_parity():
    """Every public attribute of Tracer exists on NullTracer (and is inert)."""
    missing = _public_api(Tracer) - _public_api(NullTracer)
    assert not missing, f"NullTracer lacks: {sorted(missing)}"

    null = NullTracer()
    assert null.enabled is False
    # Recording methods accept the same arguments and stay empty.
    null.span("s", "c", 0.0, 1.0, track="t", args={"a": 1})
    null.begin("s", "c", 0.0, track="t")
    null.end(1.0, track="t")
    null.instant("i", "c", 0.0, track="t", args={})
    null.counter("q", 0.0, 3, track="t")
    null.count("n", 2)
    null.account_bytes("network", 100)
    assert null.spans == [] and null.instants == [] and null.counter_samples == []
    assert null.counters == {} and null.bytes_ledger == {}
    assert null.categories() == set()
    assert null.to_chrome() == {"traceEvents": [], "displayTimeUnit": "ms"}
    null.write_chrome("/nonexistent/dir/never_written.json")  # no-op, no error


def test_ambient_tracer_stack():
    assert current_tracer() is NULL_TRACER
    t1, t2 = Tracer(), Tracer()
    with use_tracer(t1):
        assert current_tracer() is t1
        with use_tracer(t2):
            assert current_tracer() is t2
        assert current_tracer() is t1
    assert current_tracer() is NULL_TRACER


# -- Chrome export ------------------------------------------------------------

def test_chrome_export_matches_golden_file():
    got = build_reference_tracer().to_chrome()
    want = json.loads(GOLDEN.read_text())
    assert got == want


def test_chrome_export_shape():
    trace = build_reference_tracer().to_chrome()
    events = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i", "C"}
    # Non-metadata events are sorted by timestamp.
    ts = [e["ts"] for e in events if e["ph"] != "M"]
    assert ts == sorted(ts)
    # Times are microseconds: the 2.5 s span is 2.5e6 us long.
    read0 = next(e for e in events
                 if e["ph"] == "X" and e["args"].get("trial") == 0)
    assert read0["dur"] == pytest.approx(2.5e6)
    # The offset placed trial 1 at 10 s.
    read1 = next(e for e in events
                 if e["ph"] == "X" and e["args"].get("trial") == 1)
    assert read1["ts"] == pytest.approx(10e6)
    # Track names travel as thread_name metadata.
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"scheme", "disk0"} <= names
    # Totals metadata carries counters and the byte ledger.
    totals = next(e for e in events if e.get("name") == "obs_totals")
    assert totals["args"]["counters"]["scheme.reads"] == 1
    assert totals["args"]["bytes"] == {
        "network": 12288, "consumed": 8192, "data": 8192,
    }


def test_write_chrome_roundtrip(tmp_path):
    tracer = build_reference_tracer()
    path = tmp_path / "trace.json"
    tracer.write_chrome(str(path))
    assert json.loads(path.read_text()) == tracer.to_chrome()
