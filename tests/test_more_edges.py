"""Additional edge-case tests across modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.lt import ImprovedLTCode, LTGraph
from repro.coding.peeling import PeelingDecoder
from repro.core.access import MB, AccessConfig
from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.mechanics import DiskMechanics
from repro.disk.workload import BackgroundWorkload
from repro.sim import Environment


class TestDriveEdges:
    def test_service_time_override(self):
        env = Environment()
        drive = DiskDrive(
            env,
            DiskMechanics(),
            np.random.default_rng(0),
            service_time_fn=lambda req: 0.25,
        )
        r1 = drive.read(0, 8)
        r2 = drive.read(10_000_000, 8)
        env.run()
        assert r1.done.value == pytest.approx(0.25)
        assert r2.done.value == pytest.approx(0.5)

    def test_cancel_mid_queue_spares_in_service(self):
        env = Environment()
        drive = DiskDrive(
            env,
            DiskMechanics(),
            np.random.default_rng(0),
            service_time_fn=lambda req: 1.0,
        )
        first = drive.submit(DiskRequest(lba=0, sectors=8, tag="a"))
        rest = [drive.submit(DiskRequest(lba=0, sectors=8, tag="a")) for _ in range(3)]

        def canceller(env):
            yield env.timeout(0.5)  # first request is mid-service
            drive.cancel(lambda r: r.tag == "a")

        env.process(canceller(env))
        env.run()
        assert first.done.value == pytest.approx(1.0)  # completed anyway
        assert all(r.done.value is None for r in rest)  # queued ones died

    def test_disabled_background_not_attached(self):
        env = Environment()
        drive = DiskDrive(env, DiskMechanics(), np.random.default_rng(0))
        drive.attach_background(BackgroundWorkload(None, np.random.default_rng(1)))
        env.run(until=0.5)
        assert drive.served_requests == 0


class TestAccessConfigProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=64),
        st.floats(min_value=0.0, max_value=9.0),
    )
    def test_n_coded_consistent(self, blocks, d):
        cfg = AccessConfig(data_bytes=blocks * MB, redundancy=d)
        assert cfg.k == blocks
        assert cfg.n_coded >= cfg.k
        assert cfg.n_coded == max(cfg.k, round((1 + d) * cfg.k))
        assert cfg.replicas == round(d) + 1


class TestGraphEdges:
    def test_graph_stats_empty(self):
        g = LTGraph(4)
        assert g.n == 0
        assert g.edge_count == 0
        assert list(g.original_degrees()) == [0, 0, 0, 0]

    def test_decoder_rejects_negative_ids(self):
        code = ImprovedLTCode(8, c=0.5, delta=0.5)
        graph = code.build_graph(16, np.random.default_rng(0))
        dec = PeelingDecoder(graph)
        with pytest.raises(IndexError):
            dec.add(-1)

    def test_build_graph_impossible_small_n(self):
        code = ImprovedLTCode(16, c=0.5, delta=0.5)
        with pytest.raises(RuntimeError):
            code.build_graph(4, np.random.default_rng(0))

    def test_mean_degree_constant_under_extension(self):
        code = ImprovedLTCode(64, c=1.0, delta=0.5)
        rng = np.random.default_rng(5)
        g = code.build_graph(128, rng)
        before = g.edge_count / g.n
        code.extend_graph(g, 128, rng)
        after = g.edge_count / g.n
        assert after == pytest.approx(before, rel=0.3)
