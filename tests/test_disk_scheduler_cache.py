"""Tests for disk scheduling disciplines and the segment cache."""

from dataclasses import dataclass

import pytest

from repro.disk.cache import SegmentCache
from repro.disk.scheduler import ElevatorQueue, FCFSQueue, SSTFQueue, make_queue


@dataclass
class Req:
    cylinder: int
    tag: str = ""


class TestQueues:
    def test_fcfs_order(self):
        q = FCFSQueue()
        for c in (5, 1, 9):
            q.push(Req(c))
        assert [q.pop().cylinder for _ in range(3)] == [5, 1, 9]

    def test_sstf_picks_nearest(self):
        q = SSTFQueue()
        for c in (100, 10, 55):
            q.push(Req(c))
        assert q.pop(head_cylinder=50).cylinder == 55
        assert q.pop(head_cylinder=55).cylinder == 100
        assert q.pop(head_cylinder=100).cylinder == 10

    def test_elevator_sweeps_then_reverses(self):
        q = ElevatorQueue()
        for c in (30, 70, 10):
            q.push(Req(c))
        assert q.pop(head_cylinder=50).cylinder == 70  # sweep up
        assert q.pop(head_cylinder=70).cylinder == 30  # reverse
        assert q.pop(head_cylinder=30).cylinder == 10

    def test_pop_empty_raises(self):
        for q in (FCFSQueue(), SSTFQueue(), ElevatorQueue()):
            with pytest.raises(IndexError):
                q.pop()

    def test_cancel_by_predicate(self):
        q = FCFSQueue()
        q.push(Req(1, "keep"))
        q.push(Req(2, "drop"))
        q.push(Req(3, "drop"))
        removed = q.cancel(lambda r: r.tag == "drop")
        assert [r.cylinder for r in removed] == [2, 3]
        assert len(q) == 1
        assert q.pop().tag == "keep"

    def test_make_queue_names(self):
        assert isinstance(make_queue("FCFS"), FCFSQueue)
        assert isinstance(make_queue("sstf"), SSTFQueue)
        assert isinstance(make_queue("elevator"), ElevatorQueue)
        with pytest.raises(ValueError):
            make_queue("lifo")

    def test_bool_and_len(self):
        q = FCFSQueue()
        assert not q
        q.push(Req(1))
        assert q and len(q) == 1


class TestSegmentCache:
    def test_miss_then_hit(self):
        c = SegmentCache()
        assert not c.lookup(100, 8)
        c.fill(100, 8)
        assert c.lookup(100, 8)
        assert c.hits == 1 and c.misses == 1

    def test_read_ahead_extends_segment(self):
        c = SegmentCache(read_ahead_sectors=64)
        c.fill(0, 8)
        assert c.lookup(8, 32)  # inside the read-ahead window

    def test_partial_overlap_is_miss(self):
        c = SegmentCache(read_ahead_sectors=0)
        c.fill(0, 10)
        assert not c.lookup(5, 10)

    def test_adjacent_fills_merge(self):
        c = SegmentCache(read_ahead_sectors=0, segments=4)
        c.fill(0, 10)
        c.fill(10, 10)
        assert len(c._segments) == 1
        assert c.lookup(0, 20)

    def test_lru_eviction_by_segment_count(self):
        c = SegmentCache(segments=2, read_ahead_sectors=0)
        c.fill(0, 4)
        c.fill(1000, 4)
        c.fill(2000, 4)
        assert not c.lookup(0, 4)  # oldest evicted
        assert c.lookup(1000, 4)
        assert c.lookup(2000, 4)

    def test_capacity_eviction(self):
        c = SegmentCache(capacity_bytes=512 * 100, segments=16, read_ahead_sectors=0)
        c.fill(0, 60)
        c.fill(1000, 60)  # exceeds 100-sector capacity
        assert not c.lookup(0, 60)
        assert c.lookup(1000, 60)

    def test_single_oversized_segment_trimmed(self):
        c = SegmentCache(capacity_bytes=512 * 10, segments=4, read_ahead_sectors=0)
        c.fill(0, 100)
        assert c.used_sectors <= 10

    def test_clear(self):
        c = SegmentCache()
        c.fill(0, 8)
        c.clear()
        assert not c.lookup(0, 8)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SegmentCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            SegmentCache(segments=0)
