"""Tests for the set-associative filesystem cache."""

import pytest

from repro.cluster.fscache import SetAssociativeCache


def make_cache(**kw):
    defaults = dict(capacity_bytes=64 * 4096, line_bytes=4096, ways=4)
    defaults.update(kw)
    return SetAssociativeCache(**defaults)


def test_miss_then_hit():
    c = make_cache()
    assert not c.lookup_line(("f", 0))
    c.insert_line(("f", 0))
    assert c.lookup_line(("f", 0))
    assert c.hits == 1 and c.misses == 1


def test_distinct_streams_do_not_collide_logically():
    c = make_cache()
    c.insert_line(("a", 0))
    assert not c.contains_line(("b", 0))


def test_lru_within_set():
    c = SetAssociativeCache(capacity_bytes=4 * 64, line_bytes=64, ways=4)
    assert c.n_sets == 1
    for i in range(4):
        c.insert_line(i)
    c.lookup_line(0)  # refresh 0
    c.insert_line(99)  # evicts LRU = 1
    assert c.contains_line(0)
    assert not c.contains_line(1)


def test_insert_existing_refreshes():
    c = SetAssociativeCache(capacity_bytes=2 * 64, line_bytes=64, ways=2)
    c.insert_line("a")
    c.insert_line("b")
    c.insert_line("a")  # refresh, not duplicate
    c.insert_line("c")  # evicts b
    assert c.contains_line("a")
    assert not c.contains_line("b")


def test_lookup_range_fraction():
    c = make_cache()
    c.insert_range("f", 0, 8192)  # lines 0,1
    assert c.lookup_range("f", 0, 16384) == pytest.approx(0.5)
    assert c.lookup_range("f", 0, 0) == 0.0


def test_range_line_alignment():
    c = make_cache()
    c.insert_range("f", 100, 1)  # single byte -> line 0
    assert c.contains_line(("f", 0))
    c.insert_range("f", 4095, 2)  # straddles lines 0 and 1
    assert c.contains_line(("f", 1))


def test_hit_rate_and_reset():
    c = make_cache()
    c.insert_line(1)
    c.lookup_line(1)
    c.lookup_line(2)
    assert c.hit_rate == pytest.approx(0.5)
    c.reset_counters()
    assert c.hit_rate == 0.0


def test_clear():
    c = make_cache()
    c.insert_line(1)
    c.clear()
    assert not c.contains_line(1)


def test_validation():
    with pytest.raises(ValueError):
        SetAssociativeCache(capacity_bytes=0)
    with pytest.raises(ValueError):
        SetAssociativeCache(capacity_bytes=64, line_bytes=64, ways=4)


def test_contains_does_not_touch_counters_or_lru():
    c = SetAssociativeCache(capacity_bytes=2 * 64, line_bytes=64, ways=2)
    c.insert_line("a")
    c.insert_line("b")
    c.contains_line("a")  # must NOT refresh
    c.insert_line("c")  # evicts true LRU = a
    assert not c.contains_line("a")
    assert c.hits == 0 and c.misses == 0
