"""Shared invariants across the placement x dispatch x completion grid.

Every registered composition — plus two ad-hoc cross-products assembled
here from the registry's own layer singletons, proving the grid composes
beyond the registered points — must satisfy the same contracts:

* reads and writes complete on a healthy cluster;
* the completion tracker consumes arrivals in non-decreasing time order
  (the ``observe(t, block_id)`` hook sees a monotone timeline);
* when a composition reports an arrival order, it is duplicate-free and
  exactly as long as ``blocks_received``;
* the tracer's byte-flow ledger reconciles with the ``AccessResult``
  (``consumed + cancelled == network``, ledger io_overhead == result);
* policies are stateless singletons, so identical seeds give identical
  results no matter which composition ran before (the runtime complement
  of lint rule SIM007).

Also covers the :class:`~repro.experiments.harness.TrialPlan` field
validation added with the layered architecture.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core.access import MB, AccessConfig
from repro.core.pipeline import PolicyScheme, scheme_class
from repro.core.policy.compose import COMPOSITIONS, SchemeSpec
from repro.core.policy.dispatch import AdaptiveDispatch
from repro.experiments.harness import TrialPlan, run_scheme
from repro.obs import TraceReport, Tracer
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=16 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)


def _layers(name):
    return COMPOSITIONS[name]


#: Grid points with no registry entry, assembled from the shared layer
#: singletons: the dispatch axis varied over a striped layout, and the
#: reaction axis varied over a replicated one.
EXTRA_SPECS = {
    "striped+adaptive": SchemeSpec(
        "striped+adaptive",
        _layers("raid0").placement,
        _layers("rraid-a").dispatch,
        _layers("raid0").completion,
        _layers("raid0").reaction,
        _layers("raid0").write,
        traced=False,
        redundancy_override=0.0,
    ),
    "rotated+abort": SchemeSpec(
        "rotated+abort",
        _layers("rraid-s").placement,
        _layers("rraid-s").dispatch,
        _layers("rraid-s").completion,
        _layers("raid0").reaction,
        _layers("rraid-s").write,
        traced=False,
    ),
}

GRID = sorted(COMPOSITIONS) + sorted(EXTRA_SPECS)


def _class_for(name, spec_override=None):
    if spec_override is not None:
        return type(
            f"Matrix[{name}]", (PolicyScheme,), {"name": name, "spec": spec_override}
        )
    if name in EXTRA_SPECS:
        return _class_for(name, EXTRA_SPECS[name])
    return scheme_class(name)


class _RecordingTracker:
    """Delegating tracker proxy that records every observed arrival time."""

    def __init__(self, inner, times):
        self._inner = inner
        self._times = times

    def observe(self, t, block_id):
        self._times.append(t)
        inner_observe = getattr(self._inner, "observe", None)
        if inner_observe is not None:
            inner_observe(t, block_id)
        else:
            self._inner.add(block_id)

    def add(self, block_id):
        self._inner.add(block_id)

    def __getattr__(self, attr):  # complete, fill_times, decoder, ...
        return getattr(self._inner, attr)


class _RecordingCompletion:
    """Wraps a completion policy; its trackers log arrival timestamps."""

    def __init__(self, inner, times):
        self._inner = inner
        self._times = times

    def tracker(self, scheme, record, plan):
        return _RecordingTracker(self._inner.tracker(scheme, record, plan), self._times)

    def finish(self, scheme, tracker, t_fill):
        return self._inner.finish(scheme, tracker, t_fill)

    def extras(self, scheme, tracker, t_fill, t_done):
        return self._inner.extras(scheme, tracker, t_fill, t_done)

    def __getattr__(self, attr):  # wants_order, trace, ...
        return getattr(self._inner, attr)


def run_round_trip(name, spec_override=None, trial=0, seed=11):
    cls = _class_for(name, spec_override)
    cfg = CFG
    if cls.spec.redundancy_override is not None:
        cfg = dataclasses.replace(cfg, redundancy=cls.spec.redundancy_override)
    cluster = Cluster(n_disks=16, rtt_s=0.001)
    hub = RngHub(seed)
    scheme = cls(cluster, cfg, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", name, trial))
    wrote = scheme.write("f", trial)
    read = scheme.read("f", trial)
    return wrote, read


@pytest.mark.parametrize("name", GRID)
def test_composition_round_trips(name):
    wrote, read = run_round_trip(name)
    for r in (wrote, read):
        assert np.isfinite(r.latency_s) and r.latency_s > 0
        assert r.network_bytes > 0
    assert read.bandwidth_mbps > 0
    assert read.io_overhead >= 0.0
    assert read.blocks_received > 0


@pytest.mark.parametrize("name", GRID)
def test_tracker_consumes_arrivals_monotonically(name):
    base = EXTRA_SPECS.get(name, COMPOSITIONS.get(name))
    times: list[float] = []
    spec = dataclasses.replace(
        base, completion=_RecordingCompletion(base.completion, times)
    )
    _, read = run_round_trip(name, spec_override=spec)
    assert times, "the completion tracker never saw an arrival"
    assert all(b >= a for a, b in zip(times, times[1:]))
    if base.completion.wants_order:
        order = read.extra["arrival_order"]
        assert len(order) == len(set(order)) == read.blocks_received


@pytest.mark.parametrize("name", sorted(COMPOSITIONS))
def test_byte_ledger_reconciles(name):
    tracer = Tracer()
    plan = TrialPlan(access=CFG, mode="read", pool=16, trials=1, seed=7)
    (result,) = run_scheme(plan, name, tracer=tracer)
    report = TraceReport.from_tracer(tracer)
    assert report.network_bytes == result.network_bytes
    assert report.consumed_bytes + report.cancelled_bytes == report.network_bytes
    assert report.cancelled_bytes >= 0
    spec = COMPOSITIONS[name]
    if spec.traced or isinstance(spec.dispatch, AdaptiveDispatch):
        # Untraced speculative compositions skip the scheme-level data
        # accounting (the generic read trace), by design.
        assert report.data_bytes == result.data_bytes == CFG.data_bytes
        assert report.io_overhead == result.io_overhead


def test_policies_are_stateless_across_runs():
    """Same seed, same results — regardless of what ran in between."""
    first = {name: run_round_trip(name)[1].latency_s for name in GRID}
    second = {name: run_round_trip(name)[1].latency_s for name in reversed(GRID)}
    assert first == second


# ---------------------------------------------------------------------------
# TrialPlan validation (added with the layered refactor)


def test_trial_plan_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown mode"):
        TrialPlan(access=CFG, mode="scan")


def test_trial_plan_rejects_unknown_background():
    with pytest.raises(ValueError, match="unknown background"):
        TrialPlan(access=CFG, background="bursty")


def test_trial_plan_rejects_fault_plan_and_model_together():
    with pytest.raises(ValueError, match="mutually exclusive"):
        TrialPlan(access=CFG, fault_plan=object(), fault_model=object())
