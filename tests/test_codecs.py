"""Direct tests of the data-path codecs."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.coding.xorblocks import random_blocks
from repro.core import SCHEMES
from repro.core.access import MB, AccessConfig
from repro.core.codecs import CODECS, codec_for
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=8 * MB, block_bytes=1 * MB, n_disks=4, redundancy=2.0)


def make_record(scheme_name):
    cluster = Cluster(n_disks=8)
    hub = RngHub(23)
    scheme = SCHEMES[scheme_name](cluster, CFG, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", 0))
    return scheme.prepare("f", 0)


def blocks():
    return random_blocks(np.random.default_rng(0), CFG.k, CFG.block_bytes)


def test_codec_for_known_and_unknown():
    assert codec_for("robustore") is CODECS["robustore"]
    with pytest.raises(KeyError):
        codec_for("raid5")


def test_plain_codec_identity():
    record = make_record("raid0")
    data = blocks()
    payloads = CODECS["raid0"].encode(data, record, CFG)
    assert set(payloads) == set(range(CFG.k))
    out = CODECS["raid0"].decode(list(range(CFG.k)), payloads, record, CFG)
    assert np.array_equal(out, data)


def test_plain_codec_missing_block_raises():
    record = make_record("raid0")
    payloads = CODECS["raid0"].encode(blocks(), record, CFG)
    with pytest.raises(ValueError):
        CODECS["raid0"].decode(list(range(CFG.k - 1)), payloads, record, CFG)


def test_replica_codec_any_copy_suffices():
    record = make_record("rraid-s")
    data = blocks()
    codec = CODECS["rraid-s"]
    payloads = codec.encode(data, record, CFG)
    # Use only the last replica round (ids 2k..3k-1 at replicas=3).
    last_round = [2 * CFG.k + i for i in range(CFG.k)]
    out = codec.decode(last_round, payloads, record, CFG)
    assert np.array_equal(out, data)


def test_replica_codec_uncovered_raises():
    record = make_record("rraid-s")
    codec = CODECS["rraid-s"]
    payloads = codec.encode(blocks(), record, CFG)
    with pytest.raises(ValueError):
        codec.decode([0, 1], payloads, record, CFG)


def test_lt_codec_prefix_roundtrip():
    record = make_record("robustore")
    data = blocks()
    codec = CODECS["robustore"]
    payloads = codec.encode(data, record, CFG)
    rng = np.random.default_rng(3)
    order = [b for p in record.placement for b in p]
    rng.shuffle(order)
    out = codec.decode(order, payloads, record, CFG)
    assert np.array_equal(out, data)


def test_rs_group_codec_roundtrip_with_any_fill():
    record = make_record("robustore-rs")
    data = blocks()
    codec = CODECS["robustore-rs"]
    payloads = codec.encode(data, record, CFG)
    rng = np.random.default_rng(4)
    order = list(payloads)
    rng.shuffle(order)
    out = codec.decode(order, payloads, record, CFG)
    assert np.array_equal(out, data)


def test_rs_group_codec_unfilled_group_raises():
    record = make_record("robustore-rs")
    codec = CODECS["robustore-rs"]
    payloads = codec.encode(blocks(), record, CFG)
    group_size = record.coding["group"]
    too_few = list(payloads)[: group_size - 1]
    with pytest.raises(ValueError):
        codec.decode(too_few, payloads, record, CFG)
