"""Event-driven fault injection: DiskDrive fail/recover/slow on the DES kernel."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.disk.drive import DiskDrive
from repro.disk.mechanics import DiskMechanics
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Tracer
from repro.sim import Environment


def make_drive(env, seed=0, **kw):
    return DiskDrive(env, DiskMechanics(), np.random.default_rng(seed), **kw)


def make_injector(plan, n_disks=8, disks_per_filer=4):
    cluster = Cluster(n_disks=n_disks, disks_per_filer=disks_per_filer)
    return FaultInjector(cluster, plan)


# ------------------------------------------------------------ direct drive hooks


class TestDriveFaultHooks:
    def test_fail_aborts_in_flight_request(self):
        env = Environment()
        drive = make_drive(env)
        req = drive.read(0, 2048)  # ~1 MB: service time >> 1 ms

        def killer():
            yield env.timeout(0.001)
            drive.fail()

        env.process(killer(), name="killer")
        env.run()
        assert req.done.value == float("inf")

    def test_fail_flushes_queued_requests(self):
        env = Environment()
        drive = make_drive(env)
        reqs = [drive.read(i * 4096, 2048) for i in range(4)]

        def killer():
            yield env.timeout(0.001)
            drive.fail()

        env.process(killer(), name="killer")
        env.run()
        assert all(r.done.value == float("inf") for r in reqs)

    def test_submit_to_failed_drive_is_instant_erasure(self):
        env = Environment()
        drive = make_drive(env)
        drive.fail()
        req = drive.read(0, 64)
        assert req.done.triggered and req.done.value == float("inf")

    def test_recovered_drive_serves_new_requests(self):
        env = Environment()
        drive = make_drive(env)
        lost = drive.read(0, 2048)
        done_after: list[float] = []

        def script():
            yield env.timeout(0.001)
            drive.fail()
            yield env.timeout(0.05)
            drive.recover()
            req = drive.read(0, 64)
            t = yield req.done
            done_after.append(t)

        env.process(script(), name="script")
        env.run()
        assert lost.done.value == float("inf")  # the flush is not undone
        assert len(done_after) == 1 and np.isfinite(done_after[0])
        assert done_after[0] > 0.051

    def test_set_slow_stretches_service(self):
        def served_at(factor):
            env = Environment()
            drive = make_drive(env)
            if factor is not None:
                drive.set_slow(factor)
            req = drive.read(0, 256)
            env.run()
            return req.done.value

        base = served_at(None)
        slow = served_at(4.0)
        assert np.isfinite(base) and np.isfinite(slow)
        assert slow > base

    def test_set_slow_validates_factor(self):
        env = Environment()
        drive = make_drive(env)
        with pytest.raises(ValueError):
            drive.set_slow(0.5)


# ------------------------------------------------------------ injector pump


class TestScheduleOn:
    def test_windowed_fail_flips_fail_then_recover(self):
        plan = FaultPlan.from_scenario(
            [{"at": 0.001, "fault": "disk_fail", "disk": 0, "duration": 0.05}]
        )
        inj = make_injector(plan)
        env = Environment()
        drive = make_drive(env)
        lost = drive.read(0, 2048)
        inj.schedule_on(env, {0: drive})
        recovered: list[float] = []

        def late_reader():
            yield env.timeout(0.1)
            t = yield drive.read(0, 64).done
            recovered.append(t)

        env.process(late_reader(), name="late")
        env.run()
        assert lost.done.value == float("inf")
        assert not drive.failed
        assert recovered and np.isfinite(recovered[0])

    def test_explicit_recover_event(self):
        plan = FaultPlan.from_scenario([
            {"at": 0.001, "fault": "disk_fail", "disk": 0},
            {"at": 0.05, "fault": "disk_recover", "disk": 0},
        ])
        inj = make_injector(plan)
        env = Environment()
        drive = make_drive(env)
        inj.schedule_on(env, {0: drive})
        env.run()
        assert not drive.failed

    def test_slow_window_sets_then_clears_the_factor(self):
        plan = FaultPlan.from_scenario(
            [{"at": 0.0, "fault": "disk_slow", "disk": 0,
              "factor": 4.0, "duration": 0.05}]
        )
        inj = make_injector(plan)
        env = Environment()
        drive = make_drive(env)
        seen: list[float] = []

        def probe():
            yield env.timeout(0.01)
            seen.append(drive.slow_factor)
            yield env.timeout(0.1)
            seen.append(drive.slow_factor)

        env.process(probe(), name="probe")
        inj.schedule_on(env, {0: drive})
        env.run()
        assert seen == [4.0, 1.0]

    def test_filer_crash_fails_every_drive_of_the_filer(self):
        plan = FaultPlan.from_scenario(
            [{"at": 0.001, "fault": "filer_crash", "filer": 0, "duration": 0.05}]
        )
        inj = make_injector(plan, n_disks=8, disks_per_filer=4)
        env = Environment()
        drives = {d: make_drive(env, seed=d) for d in range(8)}
        reqs = {d: drives[d].read(0, 2048) for d in range(8)}
        inj.schedule_on(env, drives)
        env.run()
        for d in range(4):  # filer 0's drives flushed...
            assert reqs[d].done.value == float("inf")
            assert not drives[d].failed  # ...and restarted at the window end
        for d in range(4, 8):  # filer 1 untouched
            assert np.isfinite(reqs[d].done.value)

    def test_pump_emits_fault_instants(self):
        plan = FaultPlan.from_scenario(
            [{"at": 0.001, "fault": "disk_fail", "disk": 0, "duration": 0.05}]
        )
        inj = make_injector(plan)
        tracer = Tracer()
        env = Environment(tracer=tracer)
        drive = make_drive(env)
        drive.read(0, 2048)
        inj.schedule_on(env, {0: drive})
        env.run()
        names = [i.name for i in tracer.instants if i.track == "fault"]
        assert "fault.disk_fail" in names
        assert "fault.disk_fail:end" in names
        # The drive's own abort instant also lands on the trace.
        assert any(i.name == "drive.abort" for i in tracer.instants)

    def test_pump_runs_under_the_sanitizer(self):
        """The injector's timeouts must satisfy the causality sanitizer."""
        plan = FaultPlan.from_scenario([
            {"at": 0.001, "fault": "disk_fail", "disk": 0, "duration": 0.02},
            {"at": 0.010, "fault": "disk_slow", "disk": 1,
             "factor": 2.0, "duration": 0.02},
        ])
        inj = make_injector(plan)
        env = Environment(sanitize=True)
        drives = {d: make_drive(env, seed=d) for d in range(2)}
        for d in drives:
            drives[d].read(0, 512)
        inj.schedule_on(env, drives)
        env.run()  # raises SimulationError on any causality violation
        assert not drives[0].failed
