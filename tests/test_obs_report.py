"""TraceReport: byte-ledger reconciliation with AccessResult, aggregation."""

import numpy as np

from repro.core.access import MB, AccessConfig
from repro.experiments.harness import TrialPlan, run_scheme
from repro.metrics.stats import summarize
from repro.obs import TraceReport, Tracer, load_trace, use_tracer
from repro.obs.report import main as report_main

SMALL = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)


def small_plan(**kw):
    defaults = dict(access=SMALL, mode="read", pool=16, trials=1, seed=7)
    defaults.update(kw)
    return TrialPlan(**defaults)


def test_robustore_byte_ledger_reconciles_exactly():
    """One RobuSTore read trial: tracer ledger == AccessResult, to the byte.

    cancelled + consumed must equal the network bytes exactly, and the
    ledger-derived io_overhead must equal both the per-access and the
    aggregated MetricSummary value (all exact integer arithmetic).
    """
    tracer = Tracer()
    results = run_scheme(small_plan(), "robustore", tracer=tracer)
    (result,) = results
    report = TraceReport.from_tracer(tracer)

    assert report.network_bytes == result.network_bytes
    assert report.data_bytes == result.data_bytes == SMALL.data_bytes
    assert report.consumed_bytes == result.blocks_received * SMALL.block_bytes
    assert report.consumed_bytes + report.cancelled_bytes == report.network_bytes
    assert report.cancelled_bytes >= 0

    assert report.io_overhead == result.io_overhead
    summary = summarize(results)
    assert report.io_overhead == summary.io_overhead


def test_traced_run_covers_all_four_layers():
    """A traced run produces spans from sim kernel, drive, filer and scheme."""
    tracer = Tracer()
    run_scheme(small_plan(trials=2), "robustore", tracer=tracer)
    span_cats = {s.cat for s in tracer.spans}
    assert {"sim", "drive", "filer", "scheme"} <= span_cats
    # ... and the export preserves them.
    chrome_cats = {
        e["cat"] for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "X"
    }
    assert {"sim", "drive", "filer", "scheme"} <= chrome_cats


def test_tracing_does_not_perturb_results():
    """Installing a tracer must not change any simulation outcome."""
    plain = run_scheme(small_plan(trials=3), "robustore")
    traced = run_scheme(small_plan(trials=3), "robustore", tracer=Tracer())
    for a, b in zip(plain, traced):
        assert a.latency_s == b.latency_s
        assert a.network_bytes == b.network_bytes
        assert a.blocks_received == b.blocks_received


def test_trials_laid_out_on_global_timeline():
    """Consecutive trials occupy disjoint stretches of the traced timeline."""
    tracer = Tracer()
    run_scheme(small_plan(trials=3), "raid0", tracer=tracer)
    reads = sorted(
        (s for s in tracer.spans if s.name == "scheme.read:raid0"),
        key=lambda s: s.ts,
    )
    assert len(reads) == 3
    for earlier, later in zip(reads, reads[1:]):
        assert earlier.end <= later.ts  # no overlap: trial t+1 starts after t


def test_ambient_tracer_is_picked_up_by_run_scheme():
    tracer = Tracer()
    with use_tracer(tracer):
        run_scheme(small_plan(), "rraid-s")
    assert tracer.counters.get("scheme.reads") == 1


def test_report_chrome_roundtrip_and_cli(tmp_path, capsys):
    tracer = Tracer()
    run_scheme(small_plan(trials=2), "robustore", tracer=tracer)
    path = tmp_path / "trace.json"
    tracer.write_chrome(str(path))

    direct = TraceReport.from_tracer(tracer)
    loaded = load_trace(str(path))
    assert loaded.bytes == direct.bytes
    assert loaded.counters == direct.counters
    assert loaded.stage_spans == direct.stage_spans
    assert loaded.io_overhead == direct.io_overhead
    assert loaded.queue_depth_hist == direct.queue_depth_hist
    for cat, total in direct.stage_time.items():
        assert loaded.stage_time[cat] == np.round(total, 6) or (
            abs(loaded.stage_time[cat] - total) < 1e-5
        )

    assert report_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "byte accounting" in out and "io_overhead" in out


def test_report_render_sections():
    tracer = Tracer()
    run_scheme(small_plan(), "robustore", tracer=tracer)
    text = TraceReport.from_tracer(tracer).render()
    for section in ("per-stage time", "top spans", "byte accounting",
                    "counters", "cancelled"):
        assert section in text
