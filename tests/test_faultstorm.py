"""The ext_faultstorm experiment: determinism and the robustness ordering."""

import numpy as np

from repro.experiments.faultstorm import STORM, ext_faultstorm

ARGS = dict(data_mb=64, n_disks=16, trials=6, seed=1)


def test_equal_seeds_reproduce_the_table():
    a = ext_faultstorm(**ARGS)
    b = ext_faultstorm(**ARGS)
    assert a.rows == b.rows
    assert a.bandwidths == b.bandwidths
    assert a.text() == b.text()


def test_different_seed_different_storm():
    a = ext_faultstorm(**ARGS)
    c = ext_faultstorm(**{**ARGS, "seed": 2})
    assert a.bandwidths != c.bandwidths


def test_robustore_has_the_tightest_distribution():
    """The paper's robustness claim under mid-operation faults: RAID-0's
    bandwidth mixes zeros with full-speed runs (maximal variance) while
    RobuSTore's erasure-coded speculation keeps the spread small."""
    r = ext_faultstorm(**ARGS)
    by = {row["scheme"]: row for row in r.rows}
    assert by["raid0"]["failed"] > 0
    assert by["robustore"]["failed"] == 0
    assert by["robustore"]["cv"] < by["raid0"]["cv"]
    assert by["robustore"]["bw_p50"] > by["raid0"]["bw_p50"]


def test_failed_reads_count_as_zero_bandwidth():
    r = ext_faultstorm(**ARGS)
    by = {row["scheme"]: row for row in r.rows}
    for name, bws in r.bandwidths.items():
        assert len(bws) == ARGS["trials"]
        assert sum(1 for b in bws if b == 0.0) == by[name]["failed"]
        assert all(np.isfinite(b) for b in bws)


def test_storm_is_a_fail_stop_regime():
    # The reference storm models an unrepaired window: failures permanent.
    assert STORM.mttr_s is None
    assert np.isfinite(STORM.mttf_s)
