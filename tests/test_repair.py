"""Tests for the repair/rebuild subsystem."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core import RobuStoreScheme
from repro.core.access import MB, AccessConfig
from repro.core.repair import failed_positions, repair_file
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)


def make(failed_count=2, seed=17):
    cluster = Cluster(n_disks=8)
    hub = RngHub(seed)
    scheme = RobuStoreScheme(cluster, CFG, hub=hub)
    cluster.redraw_disk_states(hub.fresh("env", 0))
    record = scheme.prepare("f", 0)
    failed = {record.disk_ids[p] for p in range(failed_count)}
    cluster.redraw_disk_states(hub.fresh("env", 0), failed_disks=failed)
    return cluster, hub, scheme, record


def test_failed_positions_detects():
    _, _, scheme, _ = make(failed_count=2)
    assert sorted(failed_positions(scheme, "f")) == [0, 1]


def test_repair_rebuilds_lost_redundancy():
    cluster, hub, scheme, record = make(failed_count=2)
    lost = sum(len(record.placement[p]) for p in (0, 1))
    report = repair_file(scheme, "f", trial=1)
    assert report.complete
    assert report.blocks_rebuilt == lost
    assert report.healthy_disks == 6
    assert report.total_latency_s > 0

    # Metadata now maps every block to a healthy disk...
    merged = scheme.metadata.lookup("f").placement
    assert merged[0] == [] and merged[1] == []
    total = sum(len(p) for p in merged)
    assert total == CFG.n_coded


def test_repaired_file_readable_after_disks_replaced():
    cluster, hub, scheme, record = make(failed_count=2)
    repair_file(scheme, "f", trial=1)
    # The dead disks stay dead; the read must succeed from the survivors.
    r = scheme.read("f", 2)
    assert np.isfinite(r.latency_s)


def test_repair_survives_repeat_failures():
    cluster, hub, scheme, record = make(failed_count=1)
    repair_file(scheme, "f", trial=1)
    # A second disk dies later; repair again.
    failed = {record.disk_ids[0], record.disk_ids[2]}
    cluster.redraw_disk_states(hub.fresh("env", 5), failed_disks=failed)
    report = repair_file(scheme, "f", trial=2)
    assert report.complete
    assert np.isfinite(scheme.read("f", 3).latency_s)


def test_repair_nothing_lost_is_cheap():
    cluster, hub, scheme, record = make(failed_count=0)
    report = repair_file(scheme, "f", trial=1)
    assert report.blocks_lost == 0
    assert report.write_latency_s == 0.0


def test_repair_impossible_raises():
    cluster, hub, scheme, record = make(failed_count=8)
    with pytest.raises(RuntimeError):
        repair_file(scheme, "f", trial=1)


def test_repair_does_not_mutate_pooled_graph():
    from repro.core.robustore import pooled_graph

    cluster, hub, scheme, record = make(failed_count=1)
    key_graph = pooled_graph(CFG.k, CFG.n_coded, CFG.lt_c, CFG.lt_delta, 0)
    n_before = key_graph.n
    repair_file(scheme, "f", trial=1)
    assert key_graph.n == n_before  # copy-on-repair protected the pool
    assert scheme.metadata.lookup("f").extra["graph"].n > n_before
