"""Tests for disk trace record/parse/synthesize/replay."""

import io

import numpy as np
import pytest

from repro.disk.trace import (
    TraceRecord,
    dump_trace,
    parse_trace,
    replay_trace,
    synthesize_trace,
)
from repro.disk.workload import InDiskLayout


def test_roundtrip_dump_parse():
    records = [TraceRecord(0.0, 100, 8), TraceRecord(0.5, 200, 16, True)]
    text = dump_trace(records)
    parsed = parse_trace(text)
    assert parsed == records


def test_parse_from_file_object():
    buf = io.StringIO("0.0 10 8 R\n# comment\n\n1.0 20 8 W\n")
    parsed = parse_trace(buf)
    assert len(parsed) == 2
    assert parsed[1].is_write


def test_parse_rejects_malformed():
    with pytest.raises(ValueError):
        parse_trace("0.0 10 8")
    with pytest.raises(ValueError):
        parse_trace("0.0 10 8 X")
    with pytest.raises(ValueError):
        parse_trace("0.0 10 -8 R")
    with pytest.raises(ValueError):
        parse_trace("1.0 10 8 R\n0.5 10 8 R")  # time goes backwards


def test_synthesize_matches_model():
    rng = np.random.default_rng(0)
    records = synthesize_trace(InDiskLayout(64, 0.5), 640, 100.0, rng)
    assert sum(r.sectors for r in records) == 640
    assert all(b.arrival_s >= a.arrival_s for a, b in zip(records, records[1:]))
    with pytest.raises(ValueError):
        synthesize_trace(InDiskLayout(64, 0.5), 64, 0.0, rng)


def test_replay_reports_response_times():
    rng = np.random.default_rng(1)
    records = synthesize_trace(InDiskLayout(256, 1.0), 256 * 20, 50.0, rng)
    report = replay_trace(records, rng=np.random.default_rng(2))
    assert report.response_times_s.size == len(records)
    assert report.makespan_s >= records[-1].arrival_s
    assert report.mean_response_s > 0
    assert report.p99_response_s >= report.mean_response_s
    assert report.served_bytes == sum(r.sectors for r in records) * 512


def test_replay_overload_grows_queue():
    """Arrivals far above service capacity inflate response times."""
    rng = np.random.default_rng(3)
    slow = synthesize_trace(InDiskLayout(8, 0.0), 8 * 100, 2000.0, rng)
    report = replay_trace(slow, rng=np.random.default_rng(4))
    # Random 4 KB requests take ~8 ms each; at 2 kHz arrivals the queue
    # builds and later requests wait far longer than one service time.
    assert report.p99_response_s > 10 * 0.008


def test_replay_sstf_beats_fcfs_on_scattered_load():
    rng = np.random.default_rng(5)
    records = synthesize_trace(InDiskLayout(8, 0.0), 8 * 150, 500.0, rng)
    fcfs = replay_trace(records, rng=np.random.default_rng(6), scheduler="fcfs")
    sstf = replay_trace(records, rng=np.random.default_rng(6), scheduler="sstf")
    assert sstf.mean_response_s <= fcfs.mean_response_s * 1.05
