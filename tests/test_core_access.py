"""Tests for the shared access machinery."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core.access import (
    MB,
    AccessConfig,
    AccessResult,
    AllBlocksTracker,
    CoverageTracker,
    completion_time,
    decode_tail_s,
    finalize_read,
    merged_arrival_order,
    serve_read_queues,
    simulate_uniform_write,
)
from repro.disk.workload import InDiskLayout


class TestAccessConfig:
    def test_baseline_derivations(self):
        cfg = AccessConfig()
        assert cfg.k == 1024
        assert cfg.n_coded == 4096
        assert cfg.replicas == 4

    def test_zero_redundancy(self):
        cfg = AccessConfig(redundancy=0.0)
        assert cfg.n_coded == cfg.k
        assert cfg.replicas == 1

    def test_fractional_redundancy(self):
        cfg = AccessConfig(data_bytes=16 * MB, redundancy=0.5)
        assert cfg.n_coded == 24


class TestAccessResult:
    def test_bandwidth_and_overhead(self):
        r = AccessResult(
            latency_s=2.0, data_bytes=4 * MB, network_bytes=6 * MB,
            disk_blocks=6, blocks_received=6,
        )
        assert r.bandwidth_mbps == pytest.approx(2.0)
        assert r.io_overhead == pytest.approx(0.5)

    def test_zero_latency_guard(self):
        r = AccessResult(0.0, MB, MB, 1, 1)
        assert r.bandwidth_bps == 0.0


class TestTrackers:
    def test_all_blocks_tracker(self):
        t = AllBlocksTracker(3)
        t.add(0); t.add(0); t.add(1)
        assert not t.complete
        t.add(2)
        assert t.complete

    def test_coverage_tracker_counts_originals(self):
        t = CoverageTracker(2)
        t.add(0)   # original 0
        t.add(2)   # replica of original 0
        assert not t.complete
        t.add(3)   # replica of original 1
        assert t.complete


def make_cluster(**kw):
    c = Cluster(n_disks=8, rtt_s=0.002, **kw)
    c.redraw_disk_states(np.random.default_rng(0), layout=InDiskLayout(256, 1.0))
    return c


def rng_for_factory():
    return lambda disk_id: np.random.default_rng(100 + disk_id)


class TestServeReadQueues:
    def test_streams_shape_and_timing(self):
        c = make_cluster()
        placement = [[0, 1], [2], [], [3]]
        streams = serve_read_queues(c, [0, 1, 2, 3], placement, MB, 0.0, rng_for_factory())
        assert len(streams) == 4
        s0 = streams[0]
        assert s0.block_ids.tolist() == [0, 1]
        # Arrival after request one-way + service + response one-way.
        assert np.all(s0.arrivals > 0.002)
        assert streams[2].arrivals.size == 0

    def test_merged_order_sorted(self):
        c = make_cluster()
        placement = [[0, 1], [2, 3]]
        streams = serve_read_queues(c, [0, 1], placement, MB, 0.0, rng_for_factory())
        times, ids = merged_arrival_order(streams)
        assert np.all(np.diff(times) >= 0)
        assert sorted(ids.tolist()) == [0, 1, 2, 3]

    def test_completion_time_with_tracker(self):
        c = make_cluster()
        placement = [[0], [1]]
        streams = serve_read_queues(c, [0, 1], placement, MB, 0.0, rng_for_factory())
        t, consumed = completion_time(streams, AllBlocksTracker(2))
        assert np.isfinite(t)
        assert consumed == 2

    def test_completion_impossible_returns_inf(self):
        c = make_cluster()
        placement = [[0]]
        streams = serve_read_queues(c, [0], placement, MB, 0.0, rng_for_factory())
        t, consumed = completion_time(streams, AllBlocksTracker(2))
        assert t == float("inf")
        assert consumed == 1

    def test_finalize_counts_bytes_and_cancels(self):
        c = make_cluster()
        placement = [[0, 1, 2, 3, 4, 5, 6, 7]]
        streams = serve_read_queues(c, [0], placement, MB, 0.0, rng_for_factory())
        # Cancel early: at the 2nd block's completion.
        t_done = float(streams[0].completions[1])
        net, disk_blocks, hits = finalize_read(streams, c, t_done, MB)
        assert hits == 0
        # 2 complete + possibly the in-flight 3rd.
        assert disk_blocks in (2, 3)
        assert net == disk_blocks * MB
        assert c.total_network_bytes == net

    def test_cached_blocks_arrive_at_request_time(self):
        c = Cluster(n_disks=8, rtt_s=0.002, fs_cache_bytes=64 << 20, cache_line_bytes=MB)
        c.redraw_disk_states(np.random.default_rng(0), layout=InDiskLayout(8, 0.0))
        filer = c.filer_of_disk(0)
        filer.record_write("f", [0], MB)
        streams = serve_read_queues(c, [0], [[0, 1]], MB, 0.0, rng_for_factory(), "f")
        s = streams[0]
        assert s.cached.tolist() == [True, False]
        cached_arrival = s.arrivals[0]
        uncached_arrival = s.arrivals[1]
        assert cached_arrival == pytest.approx(0.002)  # 2x one-way only
        assert uncached_arrival > cached_arrival + 0.05  # slow disk


class TestUniformWrite:
    def test_write_gated_by_slowest_disk(self):
        c = Cluster(n_disks=2, rtt_s=0.002)
        rng = np.random.default_rng(1)
        c.redraw_disk_states(rng, layout=InDiskLayout(1024, 1.0))
        # Make disk 1 slow.
        from repro.cluster.server import DiskState

        st = c.disk_state(1)
        c._disk_states[1] = DiskState(1, InDiskLayout(8, 0.0), st.spt)
        t_done, net = simulate_uniform_write(
            c, [0, 1], [[0, 1], [2, 3]], MB, 0.0, rng_for_factory()
        )
        # Slow disk needs seconds; fast disk finishes in tens of ms.
        assert t_done > 1.0
        assert net == 4 * MB

    def test_empty_placement_ok(self):
        c = make_cluster()
        t_done, net = simulate_uniform_write(c, [0], [[]], MB, 0.5, rng_for_factory())
        assert t_done == 0.5
        assert net == 0


def test_decode_tail():
    assert decode_tail_s(MB) == pytest.approx(MB / 500e6)


class TestClientNic:
    def test_infinite_nic_is_passthrough(self):
        c = make_cluster()
        streams = serve_read_queues(c, [0, 1], [[0], [1]], MB, 0.0, rng_for_factory())
        t1, i1 = merged_arrival_order(streams)
        t2, i2 = merged_arrival_order(streams, MB, float("inf"))
        assert np.array_equal(t1, t2) and np.array_equal(i1, i2)

    def test_finite_nic_serialises_arrivals(self):
        c = make_cluster()
        placement = [[0, 1, 2, 3], [4, 5, 6, 7]]
        streams = serve_read_queues(c, [0, 1], placement, MB, 0.0, rng_for_factory())
        rate = 2 * MB  # 2 MB/s NIC: 0.5 s per block minimum spacing
        times, _ = merged_arrival_order(streams, MB, rate)
        gaps = np.diff(times)
        assert np.all(gaps >= 0.5 - 1e-9)

    def test_nic_never_speeds_up(self):
        c = make_cluster()
        streams = serve_read_queues(c, [0], [[0, 1, 2]], MB, 0.0, rng_for_factory())
        base, _ = merged_arrival_order(streams)
        capped, _ = merged_arrival_order(streams, MB, 1 * MB)
        assert np.all(capped >= base - 1e-12)

    def test_config_default_infinite(self):
        assert AccessConfig().client_bandwidth_bps == float("inf")
