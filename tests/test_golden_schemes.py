"""Differential goldens: the policy refactor must be bit-identical.

The golden file pins every registered scheme's complete ``AccessResult``
(including ``extra``) for read, write and raw accesses, with no faults and
under the reference fault storm of :mod:`tests.test_faults_golden`.  It was
generated at the pre-refactor seed commit; any numeric drift introduced by
the placement/dispatch/completion/reaction decomposition shows up as a
diff here.  Regenerate deliberately with
``PYTHONPATH=src python -m tests.make_golden``.
"""

import json
import pathlib

import numpy as np

from repro.core import SCHEMES
from repro.core.access import MB, AccessConfig
from repro.experiments.harness import TrialPlan, run_scheme
from repro.faults import FaultPlan
from tests.test_faults_golden import STORM_SCENARIO

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_schemes.json"

CFG = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)
MODES = ("read", "write", "raw")
FAULTS = ("none", "storm")


def _clean(value):
    """Numpy scalars/arrays -> plain python; dict keys -> str (JSON shape)."""
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_clean(v) for v in value.tolist()]
    return value


def _result_dict(r) -> dict:
    return _clean(
        {
            "latency_s": r.latency_s,
            "data_bytes": r.data_bytes,
            "network_bytes": r.network_bytes,
            "disk_blocks": r.disk_blocks,
            "blocks_received": r.blocks_received,
            "cache_hits": r.cache_hits,
            "rounds": r.rounds,
            "extra": r.extra,
        }
    )


def build_scheme_reference() -> dict:
    """Exactly the runs the golden file was generated from.

    Accesses that raise (e.g. ``raw`` reads of a write that fail-stopped
    and never registered its file) are pinned by exception type: the
    refactor must fail the same way, not just succeed the same way.
    """
    fault_plans = {
        "none": None,
        "storm": FaultPlan.from_scenario(STORM_SCENARIO),
    }
    out: dict = {}
    for name in SCHEMES:
        per_scheme: dict = {}
        for mode in MODES:
            for fault in FAULTS:
                plan = TrialPlan(
                    access=CFG,
                    mode=mode,
                    pool=8,
                    rtt_s=0.001,
                    seed=7,
                    trials=2,
                    fault_plan=fault_plans[fault],
                )
                key = f"{mode}/{fault}"
                try:
                    results = run_scheme(plan, name)
                except Exception as exc:  # pinned, not ignored
                    per_scheme[key] = {"error": type(exc).__name__}
                else:
                    per_scheme[key] = [_result_dict(r) for r in results]
        out[name] = per_scheme
    return out


def test_scheme_golden_matches():
    assert GOLDEN.exists(), (
        "golden file missing; run PYTHONPATH=src python -m tests.make_golden"
    )
    golden = json.loads(GOLDEN.read_text())
    assert build_scheme_reference() == golden


def test_golden_covers_every_registered_scheme():
    golden = json.loads(GOLDEN.read_text())
    assert set(golden) == set(SCHEMES)
    for per_scheme in golden.values():
        assert set(per_scheme) == {f"{m}/{f}" for m in MODES for f in FAULTS}


def test_pool_execution_bit_identical_for_every_composition():
    """Worker-pool execution must be byte-identical to sequential.

    One job per registered composition, run once in-process and once over
    a two-worker pool; the canonical result JSON (the cache / cross-process
    currency of :mod:`repro.exec`) must match byte for byte.
    """
    from repro.core.policy.compose import COMPOSITIONS
    from repro.exec import Executor, Job, results_to_json

    plan = TrialPlan(access=CFG, pool=8, rtt_s=0.001, seed=7, trials=2)
    jobs = [Job(plan, name) for name in COMPOSITIONS]
    sequential = Executor(jobs=1, store=None).run_jobs(jobs)
    pooled = Executor(jobs=2, store=None).run_jobs(jobs)
    for job, seq, par in zip(jobs, sequential, pooled):
        assert results_to_json(seq) == results_to_json(par), job.scheme_name
