"""Small-surface tests for glue modules (config knobs, base classes,
calibration formatting)."""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core.access import MB, AccessConfig
from repro.core.base import SchemeBase
from repro.disk.calibration import CalibrationCell, format_table, grid_statistics
from repro.experiments import config as C
from repro.sim.rng import RngHub


class TestExperimentConfig:
    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "7")
        monkeypatch.setenv("REPRO_DATA_MB", "128")
        assert C.trials() == 7
        assert C.data_mb() == 128
        assert C.baseline_access().data_bytes == 128 * MB

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        monkeypatch.delenv("REPRO_DATA_MB", raising=False)
        assert C.trials(5) == 5
        cfg = C.baseline_access(n_disks=16)
        assert cfg.n_disks == 16
        assert cfg.redundancy == 3.0

    def test_scheme_order(self):
        assert C.ALL_SCHEMES == ("raid0", "rraid-s", "rraid-a", "robustore")


class TestSchemeBase:
    def test_abstract_methods_raise(self):
        cluster = Cluster(n_disks=4)
        base = SchemeBase(cluster, AccessConfig(data_bytes=4 * MB, n_disks=4), hub=RngHub(0))
        with pytest.raises(NotImplementedError):
            base.prepare("f", 0)
        with pytest.raises(NotImplementedError):
            base.write("f", 0)
        with pytest.raises(NotImplementedError):
            base.read("f", 0)

    def test_select_disks_deterministic_per_trial(self):
        cluster = Cluster(n_disks=16)
        base = SchemeBase(cluster, AccessConfig(data_bytes=4 * MB, n_disks=4), hub=RngHub(1))
        a = base.select_disks(3).tolist()
        b = base.select_disks(3).tolist()
        assert a == b  # trial-keyed, not stateful
        assert a != base.select_disks(4).tolist()

    def test_service_rng_factory_streams_differ(self):
        cluster = Cluster(n_disks=4)
        base = SchemeBase(cluster, AccessConfig(data_bytes=4 * MB, n_disks=4), hub=RngHub(2))
        f = base.service_rng_factory(0, "read")
        assert f(0).random() != f(1).random()
        g = base.service_rng_factory(0, "write")
        assert f(0).random() != g(0).random()


class TestCalibrationFormatting:
    def test_grid_statistics_and_table(self):
        cells = [
            CalibrationCell(8, 0.0, 0.5),
            CalibrationCell(8, 1.0, 4.0),
            CalibrationCell(16, 0.0, 1.0),
            CalibrationCell(16, 1.0, 8.0),
        ]
        stats = grid_statistics(cells)
        assert stats["min_mbps"] == 0.5
        assert stats["max_mbps"] == 8.0
        assert stats["spread"] == pytest.approx(16.0)
        text = format_table(cells)
        assert "p_seq=0" in text and "p_seq=1" in text
