"""Tests for the incremental peeling decoder."""

import numpy as np
import pytest

from repro.coding import ImprovedLTCode, LTGraph, PeelingDecoder
from repro.coding.peeling import blocks_needed, decodable
from repro.coding.xorblocks import random_blocks


def chain_graph(k: int) -> LTGraph:
    """Hand-built graph: block 0 is degree-1, each next adds one original."""
    g = LTGraph(k)
    for j in range(k):
        g.neighbors.append(np.arange(j + 1))
    return g


def test_ripple_cascade():
    """Adding blocks back-to-front defers all decoding to the last arrival."""
    k = 5
    g = chain_graph(k)
    dec = PeelingDecoder(g)
    for j in range(k - 1, 0, -1):
        assert dec.add(j) == 0
    assert not dec.is_complete
    newly = dec.add(0)  # degree-1 block triggers the full cascade
    assert newly == k
    assert dec.is_complete


def test_forward_order_decodes_one_each():
    k = 4
    g = chain_graph(k)
    dec = PeelingDecoder(g)
    for j in range(k):
        assert dec.add(j) == 1
    assert dec.is_complete
    assert dec.blocks_used == k
    assert dec.reception_overhead == pytest.approx(0.0)


def test_duplicate_add_counts_bytes_not_progress():
    g = chain_graph(3)
    dec = PeelingDecoder(g)
    dec.add(0)
    assert dec.add(0) == 0
    assert dec.blocks_used == 2
    assert dec.decoded_count == 1


def test_redundant_block_after_decode_is_discarded():
    g = chain_graph(2)
    dec = PeelingDecoder(g)
    dec.add(0)
    dec.add(1)
    assert dec.is_complete
    dec.add(1)
    assert dec.blocks_used == 3


def test_out_of_range_raises():
    dec = PeelingDecoder(chain_graph(2))
    with pytest.raises(IndexError):
        dec.add(5)


def test_data_mode_requires_payload():
    dec = PeelingDecoder(chain_graph(2), block_len=8)
    with pytest.raises(ValueError):
        dec.add(0)


def test_get_data_rejected_in_symbolic_mode():
    dec = PeelingDecoder(chain_graph(2))
    with pytest.raises(RuntimeError):
        dec.get_data()


def test_get_data_incomplete_raises():
    dec = PeelingDecoder(chain_graph(2), block_len=8)
    dec.add(1, np.zeros(8, np.uint8))
    with pytest.raises(RuntimeError):
        dec.get_data()


def test_lazy_xor_counts_only_resolution_work():
    """xor_ops equals sum of (degree-1) across resolved blocks — no waste."""
    k = 6
    g = chain_graph(k)
    dec = PeelingDecoder(g)
    for j in range(k):
        dec.add(j)
    assert dec.xor_ops == sum(j for j in range(k))
    assert dec.edges_peeled == sum(j + 1 for j in range(k))


def test_is_decoded_tracks_individual_blocks():
    g = chain_graph(3)
    dec = PeelingDecoder(g)
    dec.add(0)
    assert dec.is_decoded(0)
    assert not dec.is_decoded(1)


def test_blocks_needed_sentinel_when_impossible():
    g = LTGraph(3)
    g.neighbors = [np.array([0]), np.array([0, 1])]  # block 2 never covered
    assert blocks_needed(g, [0, 1]) == 3
    assert not decodable(g)


def test_blocks_needed_exact():
    g = chain_graph(4)
    assert blocks_needed(g, [3, 2, 1, 0]) == 4
    assert blocks_needed(g, [0, 1, 2, 3]) == 4


def test_data_mode_payload_is_copied():
    g = chain_graph(2)
    dec = PeelingDecoder(g, block_len=8)
    buf = np.ones(8, np.uint8)
    dec.add(1, buf)
    buf[:] = 0  # mutating the caller's buffer must not corrupt the decoder
    dec.add(0, np.full(8, 5, np.uint8))
    data = dec.get_data()
    assert list(data[0]) == [5] * 8
    assert list(data[1]) == [5 ^ 1] * 8


def test_roundtrip_against_reference_gaussian_elimination():
    """Cross-check peeling against brute-force GF(2) solving."""
    rng = np.random.default_rng(0)
    k = 12
    code = ImprovedLTCode(k, c=0.5, delta=0.5)
    graph = code.build_graph(5 * k, rng)
    data = random_blocks(rng, k, 8)
    coded = code.encode(data, graph)
    order = list(rng.permutation(graph.n))

    dec = PeelingDecoder(graph, block_len=8)
    used = 0
    for cid in order:
        dec.add(int(cid), coded[cid])
        used += 1
        if dec.is_complete:
            break
    assert dec.is_complete

    # Reference: solve the GF(2) system with the same prefix of blocks.
    ids = order[:used]
    M = np.zeros((len(ids), k), dtype=np.uint8)
    for row, cid in enumerate(ids):
        M[row, graph.neighbors[cid]] = 1
    # Gaussian elimination over GF(2) to confirm full rank.
    A = M.copy()
    rank = 0
    for col in range(k):
        rows = np.nonzero(A[rank:, col])[0]
        if rows.size == 0:
            continue
        pivot = rank + rows[0]
        A[[rank, pivot]] = A[[pivot, rank]]
        for r in range(len(ids)):
            if r != rank and A[r, col]:
                A[r] ^= A[rank]
        rank += 1
    assert rank == k  # peeling success implies full rank
    assert np.array_equal(dec.get_data(), data)
