"""Tests for the runtime DES causality sanitizer and the delay guards."""

from __future__ import annotations

import pytest

from repro.sim import Environment, SimulationError


# ---------------------------------------------------------------------------
# always-on guards (sanitizer off)


def test_schedule_rejects_negative_delay_without_sanitizer():
    env = Environment(sanitize=False)
    with pytest.raises(SimulationError, match="finite and non-negative"):
        env.schedule(env.event(), delay=-0.5)


def test_schedule_rejects_nan_and_inf_without_sanitizer():
    env = Environment(sanitize=False)
    for bad in (float("nan"), float("inf")):
        with pytest.raises(SimulationError, match="finite and non-negative"):
            env.schedule(env.event(), delay=bad)


def test_back_in_time_schedule_names_offending_process():
    env = Environment(sanitize=True)

    def rogue(env):
        yield env.timeout(-3.0)

    env.process(rogue(env), name="rogue-reader")
    with pytest.raises(SimulationError) as exc:
        env.run()
    assert "rogue-reader" in str(exc.value)
    assert "t=0.0" in str(exc.value)


# ---------------------------------------------------------------------------
# sanitizer-only checks


def test_sanitizer_flag_from_environment_variable(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Environment().sanitize is True
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert Environment().sanitize is False
    monkeypatch.delenv("REPRO_SANITIZE")
    assert Environment().sanitize is False
    # Explicit argument wins over the environment.
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Environment(sanitize=False).sanitize is False


def test_sanitizer_rejects_double_schedule():
    env = Environment(sanitize=True)
    ev = env.event()
    ev.succeed("once")
    with pytest.raises(SimulationError, match="already scheduled"):
        env.schedule(ev)


def test_sanitizer_rejects_scheduling_processed_event():
    env = Environment(sanitize=True)
    t = env.timeout(1.0)
    env.run()
    with pytest.raises(SimulationError, match="already-processed"):
        env.schedule(t)


def test_sanitizer_detects_backwards_clock():
    env = Environment(sanitize=True)
    env.timeout(1.0)
    env._now = 5.0  # simulate a corrupted clock
    with pytest.raises(SimulationError, match="causality violation"):
        env.step()


def test_sanitizer_rejects_resume_after_termination():
    env = Environment(sanitize=True)

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env), name="quick-proc")
    env.run()
    done = env.event()
    done.succeed()
    with pytest.raises(SimulationError, match="quick-proc"):
        p._resume(done)


def test_unsanitized_double_schedule_still_caught_at_step():
    # Without the sanitizer the kernel keeps its (lazier) detection: the
    # second dispatch of the same event raises at step time.
    env = Environment(sanitize=False)
    ev = env.event()
    ev.succeed("once")
    env.schedule(ev)
    with pytest.raises((SimulationError, RuntimeError)):
        env.run()


# ---------------------------------------------------------------------------
# the sanitizer does not perturb results


def test_sanitizer_does_not_change_simulation_results():
    def run_once(sanitize: bool):
        env = Environment(sanitize=sanitize)
        log = []

        def ticker(env):
            for i in range(5):
                yield env.timeout(0.5 + 0.25 * i)
                log.append(env.now)

        env.process(ticker(env))
        env.run()
        return log

    assert run_once(True) == run_once(False)
