"""The repair economy: ledger accounting, schedulers, metered rebuilds.

Unit coverage for :mod:`repro.rebuild` plus end-to-end passes through
:func:`repro.faults.maybe_repair` for each coding family — RS group
reconstruction and regenerating node repair restore redundancy and land
correctly-priced events on the ledger.
"""

import numpy as np
import pytest

from repro.cluster.server import Cluster
from repro.core.access import MB, AccessConfig
from repro.core.pipeline import scheme_class
from repro.core.repair import drain_repairs
from repro.faults import FaultPlan, maybe_repair
from repro.rebuild import (
    BatchedScheduler,
    EagerScheduler,
    LazyThresholdScheduler,
    RepairEvent,
    RepairLedger,
    RepairTask,
    scheduler_for,
)
from repro.sim.rng import RngHub

CFG = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)


def _task(name="f", surv=2.0, dead=(1,)):
    return RepairTask(name, 0, tuple(dead), surv)


def _event(read=4, written=2, lost=2):
    return RepairEvent(
        file_name="f", algorithm="reed-solomon",
        bytes_read_helpers=read * MB, bytes_written=written * MB,
        disks_touched=5, blocks_lost=lost, blocks_rebuilt=lost,
        wall_time_s=0.5,
    )


# ------------------------------------------------------------------- ledger


class TestLedger:
    def test_aggregates_sum_over_events(self):
        led = RepairLedger()
        led.record(_event(read=4, written=2, lost=2))
        led.record(_event(read=6, written=3, lost=3))
        assert led.repairs == 2
        assert led.bytes_read_helpers == 10 * MB
        assert led.bytes_written == 5 * MB
        assert led.bytes_moved == 15 * MB
        assert led.blocks_lost == 5
        assert led.wall_time_s == pytest.approx(1.0)

    def test_read_amplification_is_per_lost_mb(self):
        led = RepairLedger()
        led.record(_event(read=4, written=2, lost=2))
        # 4 MB read from helpers for 2 lost 1-MB blocks -> 2.0.
        assert led.summary()["read_amplification"] == pytest.approx(2.0)

    def test_empty_ledger_summary(self):
        s = RepairLedger().summary()
        assert s["repairs"] == 0 and s["read_amplification"] == 0.0

    def test_degraded_reads_skip_infinite_latency(self):
        led = RepairLedger()
        led.note_degraded_read(0.25, 1.0)
        led.note_degraded_read(float("inf"), 0.5)
        assert led.degraded_reads == 2
        assert led.degraded_read_s == pytest.approx(0.25)

    def test_event_bytes_moved(self):
        assert _event(read=4, written=2).bytes_moved == 6 * MB


# --------------------------------------------------------------- schedulers


class TestSchedulers:
    def test_eager_releases_immediately(self):
        s = EagerScheduler()
        t = _task()
        assert s.offer(t) == [t]
        assert s.pending == ()

    def test_lazy_holds_until_floor_breach(self):
        s = LazyThresholdScheduler(floor=0.5)
        healthy = _task("a", surv=2.0)
        assert s.offer(healthy) == []
        assert s.pending == (healthy,)
        critical = _task("b", surv=0.1)
        # The breach drains the whole backlog, oldest first.
        assert s.offer(critical) == [healthy, critical]
        assert s.pending == ()

    def test_batched_drains_in_fixed_batches(self):
        s = BatchedScheduler(batch_size=3)
        tasks = [_task(str(i)) for i in range(5)]
        released = [s.offer(t) for t in tasks]
        assert released[:2] == [[], []]
        assert released[2] == tasks[:3]
        assert released[3:] == [[], []]
        assert s.flush() == tasks[3:]
        assert s.pending == ()

    def test_scheduler_for_factory(self):
        assert isinstance(scheduler_for("eager"), EagerScheduler)
        assert scheduler_for("lazy", floor=0.7).floor == 0.7
        assert scheduler_for("batched", batch_size=2).batch_size == 2
        with pytest.raises(ValueError, match="unknown rebuild policy"):
            scheduler_for("psychic")


# ------------------------------------------------- metered end-to-end passes


def _kill(disks, at=0.02):
    return FaultPlan.from_scenario(
        [{"at": at, "fault": "disk_fail", "disk": d} for d in disks]
    )


def _scheme_under_kills(name, disks, floor=None):
    cluster = Cluster(n_disks=8, rtt_s=0.001)
    hub = RngHub(9)
    scheme = scheme_class(name)(cluster, CFG, hub=hub)
    if floor is not None:
        scheme.REPAIR_REDUNDANCY_FLOOR = floor
    cluster.redraw_disk_states(hub.fresh("env", 0))
    scheme.prepare("f", 0)
    cluster.install_faults(_kill(disks))
    return scheme, scheme.read("f", 0)


class TestMeteredRepairs:
    @pytest.mark.parametrize(
        "name,algorithm",
        [
            ("robustore-rs", "reed-solomon"),
            ("regen-msr", "regenerating-msr"),
            ("regen-mbr", "regenerating-mbr"),
        ],
    )
    def test_repair_restores_redundancy_and_meters(self, name, algorithm):
        scheme, r = _scheme_under_kills(name, [0, 1, 2, 3], floor=0.99)
        assert np.isfinite(r.latency_s)
        ledger = RepairLedger()
        decision = maybe_repair(scheme, "f", 0, r, ledger=ledger)
        assert decision.repaired and decision.dead_disks == (0, 1, 2, 3)
        (event,) = ledger.events
        assert event.algorithm == algorithm
        assert event.blocks_rebuilt == event.blocks_lost > 0
        assert event.bytes_read_helpers > 0
        assert np.isfinite(event.wall_time_s)
        # Nothing of the record lives on the dead disks any more.
        record = scheme.metadata.lookup("f")
        for idx, disk in enumerate(record.disk_ids):
            if disk in decision.dead_disks:
                assert not record.placement[idx]
        assert np.isfinite(scheme.read("f", 0).latency_s)

    def test_regenerating_reads_fewer_helper_bytes_than_rs(self):
        # A wider cluster keeps the per-disk loss small relative to the RS
        # group word (on 8 disks one disk holds half a word and the ratios
        # tie at 2.0).
        cfg = AccessConfig(
            data_bytes=32 * MB, block_bytes=1 * MB, n_disks=16, redundancy=3.0
        )
        bytes_read = {}
        for name in ("robustore-rs", "regen-msr"):
            cluster = Cluster(n_disks=16, rtt_s=0.001)
            hub = RngHub(9)
            scheme = scheme_class(name)(cluster, cfg, hub=hub)
            scheme.REPAIR_REDUNDANCY_FLOOR = 0.99
            cluster.redraw_disk_states(hub.fresh("env", 0))
            scheme.prepare("f", 0)
            cluster.install_faults(_kill([0]))
            r = scheme.read("f", 0)
            ledger = RepairLedger()
            assert maybe_repair(scheme, "f", 0, r, ledger=ledger).repaired
            lost = ledger.blocks_lost * cfg.block_bytes
            bytes_read[name] = ledger.bytes_read_helpers / lost
        # MSR node repair: d/alpha = 2.0 MB per lost MB; RS re-reads a
        # whole group word per loss.
        assert bytes_read["regen-msr"] == pytest.approx(2.0)
        assert bytes_read["regen-msr"] < bytes_read["robustore-rs"]

    def test_new_failure_opens_a_new_epoch(self):
        scheme, r = _scheme_under_kills("robustore", [0, 1, 2, 3], floor=0.99)
        first = maybe_repair(scheme, "f", 0, r)
        assert first.repaired
        assert maybe_repair(scheme, "f", 0, r).reason == "duplicate"
        # A fifth disk dies: the dead set changes, so repair runs again.
        scheme.cluster.install_faults(_kill([4]))
        second = maybe_repair(scheme, "f", 0, r)
        assert second.repaired and second.dead_disks == (4,)

    def test_scheduler_defers_and_drain_repairs(self):
        scheme, r = _scheme_under_kills("robustore-rs", [0, 1, 2, 3], floor=0.99)
        ledger = RepairLedger()
        scheduler = LazyThresholdScheduler(floor=0.0)
        decision = maybe_repair(
            scheme, "f", 0, r, scheduler=scheduler, ledger=ledger
        )
        assert decision.triggered and not decision.repaired
        assert decision.reason == "deferred" and decision.deferred == 1
        assert ledger.repairs == 0
        # Degraded reads are metered even while the rebuild waits.
        assert ledger.degraded_reads == 1
        reports = drain_repairs(scheme, scheduler, ledger)
        assert len(reports) == 1 and reports[0].complete
        assert ledger.repairs == 1
        assert scheduler.pending == ()

    def test_cluster_installed_ledger_is_found(self):
        scheme, r = _scheme_under_kills("robustore-rs", [0, 1, 2, 3], floor=0.99)
        ledger = RepairLedger()
        scheme.cluster.repair_ledger = ledger
        assert maybe_repair(scheme, "f", 0, r).repaired
        assert ledger.repairs == 1
