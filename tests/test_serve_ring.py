"""Property tests for the consistent-hash placement ring.

The three guarantees serving placement rests on, in test form:

* keys spread ~evenly across filers (bounded max/mean load with
  virtual nodes);
* adding or removing one filer remaps only ~1/n of the keys, and every
  remapped key moves to (or off) exactly that filer;
* the replica set of any key is always ``count`` *distinct* physical
  nodes, primary first.

All hashes come from ``stable_seed`` so every assertion here is exact
and process-independent — no flaky statistical tolerances needed.
"""

from __future__ import annotations

import pytest

from repro.cluster.metadata_distributed import DistributedMetadataServer
from repro.serve.ring import FilePlacer, HashRing

KEYS = [f"f{i}" for i in range(20_000)]


def census(ring: HashRing, keys=KEYS) -> dict:
    counts: dict = {n: 0 for n in ring.nodes}
    for k in keys:
        counts[ring.primary(k)] += 1
    return counts


# ---------------------------------------------------------------------------
# balance


def test_balanced_distribution_with_vnodes():
    ring = HashRing(range(16), vnodes=128)
    counts = census(ring)
    mean = len(KEYS) / len(ring)
    assert all(c > 0 for c in counts.values())
    assert max(counts.values()) / mean < 1.7
    assert min(counts.values()) / mean > 0.4


def test_more_vnodes_flatten_the_distribution():
    few = census(HashRing(range(16), vnodes=8))
    many = census(HashRing(range(16), vnodes=256))
    mean = len(KEYS) / 16
    assert max(many.values()) / mean < max(few.values()) / mean


# ---------------------------------------------------------------------------
# minimal remapping


def test_adding_a_node_only_steals_keys():
    ring = HashRing(range(16), vnodes=64)
    before = {k: ring.primary(k) for k in KEYS}
    ring.add_node(16)
    moved = [k for k in KEYS if ring.primary(k) != before[k]]
    # Every remapped key landed on the new node — no collateral shuffling.
    assert moved and all(ring.primary(k) == 16 for k in moved)
    # ~1/17 of keys move; allow generous slack on the vnode variance.
    assert len(moved) < 2 * len(KEYS) / 17


def test_removing_a_node_only_moves_its_keys():
    ring = HashRing(range(16), vnodes=64)
    before = {k: ring.primary(k) for k in KEYS}
    ring.remove_node(3)
    for k in KEYS:
        if before[k] != 3:
            assert ring.primary(k) == before[k]
        else:
            assert ring.primary(k) != 3


def test_add_then_remove_restores_the_ring():
    ring = HashRing(range(8), vnodes=32)
    before = {k: ring.primary(k) for k in KEYS[:2000]}
    ring.add_node(99)
    ring.remove_node(99)
    assert {k: ring.primary(k) for k in KEYS[:2000]} == before


# ---------------------------------------------------------------------------
# replica selection


def test_replicas_always_distinct():
    ring = HashRing(range(10), vnodes=64)
    for k in KEYS[:2000]:
        reps = ring.nodes_for(k, 3)
        assert len(reps) == 3
        assert len(set(reps)) == 3
        assert reps[0] == ring.primary(k)


def test_replica_count_capped_at_physical_nodes():
    ring = HashRing(range(4), vnodes=16)
    reps = ring.nodes_for("anything", 100)
    assert sorted(reps) == [0, 1, 2, 3]


def test_empty_ring_and_bad_count():
    ring = HashRing()
    assert ring.nodes_for("k", 3) == []
    assert ring.primary("k") is None
    assert HashRing(range(4)).nodes_for("k", 0) == []


# ---------------------------------------------------------------------------
# construction invariants


def test_ring_identical_regardless_of_insertion_order():
    a = HashRing([0, 1, 2, 3], vnodes=64)
    b = HashRing([3, 1, 0, 2], vnodes=64)
    assert [a.primary(k) for k in KEYS[:2000]] == [
        b.primary(k) for k in KEYS[:2000]
    ]


def test_add_remove_idempotent_and_vnodes_validated():
    ring = HashRing(range(4), vnodes=8)
    ring.add_node(2)
    ring.remove_node(77)
    assert len(ring) == 4
    with pytest.raises(ValueError):
        HashRing(vnodes=0)


# ---------------------------------------------------------------------------
# FilePlacer: ring decision, metadata record


def test_placer_records_and_serves_lookups():
    ring = HashRing(range(8), vnodes=32)
    meta = DistributedMetadataServer(n_nodes=2)
    placer = FilePlacer(ring, meta)
    filers = placer.place("fileA", 4 << 20, "robustore", replication_factor=3)
    assert filers == ring.nodes_for("fileA", 3)
    assert placer.lookup("fileA") == list(filers)
    rec = meta.lookup("fileA")
    assert rec.scheme == "robustore" and rec.size_bytes == 4 << 20


def test_placer_empty_ring_raises():
    placer = FilePlacer(HashRing(), DistributedMetadataServer(n_nodes=1))
    with pytest.raises(ValueError):
        placer.place("f", 1, "raid0", replication_factor=2)
