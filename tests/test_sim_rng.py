"""Tests for deterministic RNG stream management."""

from repro.sim import RngHub


def test_same_seed_same_stream():
    a = RngHub(42).stream("disk", 1)
    b = RngHub(42).stream("disk", 1)
    assert list(a.integers(0, 1000, 10)) == list(b.integers(0, 1000, 10))


def test_different_keys_differ():
    hub = RngHub(42)
    xs = hub.stream("disk", 1).integers(0, 10**9, 8)
    ys = hub.stream("disk", 2).integers(0, 10**9, 8)
    assert list(xs) != list(ys)


def test_different_seeds_differ():
    xs = RngHub(1).stream("x").integers(0, 10**9, 8)
    ys = RngHub(2).stream("x").integers(0, 10**9, 8)
    assert list(xs) != list(ys)


def test_stream_is_cached_and_stateful():
    hub = RngHub(5)
    first = hub.stream("a").random()
    second = hub.stream("a").random()
    assert first != second  # same generator advancing, not a fresh copy


def test_fresh_restarts_stream():
    hub = RngHub(5)
    x = hub.fresh("a").random()
    y = hub.fresh("a").random()
    assert x == y


def test_string_and_int_keys_are_distinct():
    hub = RngHub(9)
    assert hub.fresh("1").random() != hub.fresh(1).random()


def test_insensitive_to_creation_order():
    h1 = RngHub(3)
    h1.stream("a")
    val1 = h1.stream("b").random()
    h2 = RngHub(3)
    val2 = h2.stream("b").random()
    assert val1 == val2


def test_spawn_independent_and_stable():
    hub = RngHub(5)
    child1 = hub.spawn("worker", 1)
    child2 = hub.spawn("worker", 2)
    again = RngHub(5).spawn("worker", 1)
    a = list(child1.stream("x").integers(0, 10**9, 4))
    b = list(child2.stream("x").integers(0, 10**9, 4))
    c = list(again.stream("x").integers(0, 10**9, 4))
    assert a != b  # different children diverge
    assert a == c  # same derivation is stable
    assert a != list(RngHub(5).stream("x").integers(0, 10**9, 4))
