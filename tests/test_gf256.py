"""Tests for GF(256) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import gf256 as gf

elem = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_exp_log_inverse_relationship():
    for a in range(1, 256):
        assert gf.EXP[gf.LOG[a]] == a


def test_exp_table_wraps():
    assert np.array_equal(gf.EXP[255:510], gf.EXP[:255])


def test_mul_identity_and_zero():
    a = np.arange(256, dtype=np.uint8)
    assert np.array_equal(gf.gf_mul(a, 1), a)
    assert np.array_equal(gf.gf_mul(a, 0), np.zeros(256, dtype=np.uint8))


@settings(max_examples=200, deadline=None)
@given(elem, elem)
def test_mul_commutative(a, b):
    assert gf.gf_mul(a, b) == gf.gf_mul(b, a)


@settings(max_examples=200, deadline=None)
@given(elem, elem, elem)
def test_mul_associative(a, b, c):
    assert gf.gf_mul(gf.gf_mul(a, b), c) == gf.gf_mul(a, gf.gf_mul(b, c))


@settings(max_examples=200, deadline=None)
@given(elem, elem, elem)
def test_distributive(a, b, c):
    left = gf.gf_mul(a, gf.gf_add(b, c))
    right = gf.gf_add(gf.gf_mul(a, b), gf.gf_mul(a, c))
    assert left == right


@settings(max_examples=100, deadline=None)
@given(nonzero)
def test_inverse(a):
    assert gf.gf_mul(a, gf.gf_inv(a)) == 1


def test_inverse_of_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf.gf_inv(0)


@settings(max_examples=100, deadline=None)
@given(elem, nonzero)
def test_division_roundtrip(a, b):
    assert gf.gf_mul(gf.gf_div(a, b), b) == a


def test_pow_matches_repeated_mul():
    for a in (1, 2, 3, 5, 7, 200):
        acc = 1
        for n in range(6):
            assert gf.gf_pow(a, n) == acc
            acc = int(gf.gf_mul(acc, a))


def test_pow_zero_base():
    assert gf.gf_pow(0, 0) == 1
    assert gf.gf_pow(0, 5) == 0


def test_matmul_identity():
    rng = np.random.default_rng(0)
    A = rng.integers(0, 256, (5, 5), dtype=np.uint8)
    identity = np.eye(5, dtype=np.uint8)
    assert np.array_equal(gf.gf_matmul(A, identity), A)
    assert np.array_equal(gf.gf_matmul(identity, A), A)


def test_matmul_matches_scalar_definition():
    rng = np.random.default_rng(1)
    A = rng.integers(0, 256, (3, 4), dtype=np.uint8)
    B = rng.integers(0, 256, (4, 2), dtype=np.uint8)
    C = gf.gf_matmul(A, B)
    for i in range(3):
        for j in range(2):
            acc = 0
            for kk in range(4):
                acc ^= int(gf.gf_mul(A[i, kk], B[kk, j]))
            assert C[i, j] == acc


def test_matmul_shape_check():
    with pytest.raises(ValueError):
        gf.gf_matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))


def test_mat_inv_roundtrip():
    rng = np.random.default_rng(2)
    for _ in range(5):
        while True:
            A = rng.integers(0, 256, (6, 6), dtype=np.uint8)
            try:
                inv = gf.gf_mat_inv(A)
                break
            except np.linalg.LinAlgError:
                continue
        assert np.array_equal(gf.gf_matmul(A, inv), np.eye(6, dtype=np.uint8))


def test_mat_inv_singular_raises():
    A = np.zeros((3, 3), dtype=np.uint8)
    with pytest.raises(np.linalg.LinAlgError):
        gf.gf_mat_inv(A)


def test_mat_inv_requires_square():
    with pytest.raises(ValueError):
        gf.gf_mat_inv(np.zeros((2, 3), np.uint8))


def test_cauchy_every_square_submatrix_invertible():
    C = gf.cauchy_matrix(4, 6)
    rng = np.random.default_rng(3)
    for _ in range(20):
        size = int(rng.integers(1, 5))
        rows = rng.choice(4, size=size, replace=False)
        cols = rng.choice(6, size=size, replace=False)
        sub = C[np.ix_(rows, cols)]
        gf.gf_mat_inv(sub)  # must not raise


def test_cauchy_size_limit():
    with pytest.raises(ValueError):
        gf.cauchy_matrix(200, 100)


def test_vandermonde_first_column_ones():
    V = gf.vandermonde_matrix(5, 3)
    assert np.array_equal(V[:, 0], np.ones(5, dtype=np.uint8))
