"""Tests for the whole-program lint layer (SIM010-SIM012) and the cache.

Fixture trees are built under ``tmp_path`` with a real ``repro`` package
root, so module naming, corpus expansion and cross-module resolution run
exactly as they do on the shipped tree.  Ends with self-checks that the
shipped tree passes the interprocedural rules and that the findings
cache replays byte-identically.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.lint import Severity, lint_paths, run_lint
from repro.lint.engine import iter_py_files
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialise ``files`` (relative path -> source) under ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


#: Minimal sim-critical package with wall-clock laundered through a
#: two-hop call chain in a *different* (non-critical) package.
LAUNDERED = {
    "src/repro/__init__.py": "",
    "src/repro/core/__init__.py": "",
    "src/repro/util/__init__.py": "",
    "src/repro/util/helpers.py": (
        "import time\n"
        "\n"
        "\n"
        "def _now():\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return _now()\n"
    ),
    "src/repro/core/mod.py": (
        "from repro.util.helpers import stamp\n"
        "\n"
        "\n"
        "def record_event():\n"
        "    return stamp()\n"
    ),
}


# ---------------------------------------------------------------------------
# SIM010 — transitive nondeterminism taint


def test_sim010_flags_two_hop_laundering_with_full_chain(tmp_path):
    _write_tree(tmp_path, LAUNDERED)
    # Lint only core/ — corpus expansion must pull util/ in by itself.
    findings = lint_paths([tmp_path / "src" / "repro" / "core"], ["SIM010"])
    (finding,) = findings
    assert finding.rule == "SIM010"
    assert finding.severity is Severity.ERROR
    assert finding.path.endswith("core/mod.py")
    assert "mod.record_event -> helpers.stamp -> helpers._now" in finding.message
    assert "time.time()" in finding.message
    # The sink lives in another file: its location is printed too.
    assert "helpers.py:5" in finding.message


def test_sim010_findings_stay_inside_the_linted_set(tmp_path):
    _write_tree(tmp_path, LAUNDERED)
    # util/ is pulled into the corpus but was not asked about: no findings
    # may be reported against it, and none for its own functions (they are
    # not in a sim-critical package anyway).
    findings = lint_paths([tmp_path / "src" / "repro" / "core"], ["SIM010"])
    assert all("util" not in f.path for f in findings)


def test_sim010_clean_when_helper_uses_perf_counter(tmp_path):
    files = dict(LAUNDERED)
    files["src/repro/util/helpers.py"] = (
        "import time\n"
        "\n"
        "\n"
        "def _now():\n"
        "    return time.perf_counter()\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return _now()\n"
    )
    _write_tree(tmp_path, files)
    assert lint_paths([tmp_path / "src" / "repro" / "core"], ["SIM010"]) == []


def test_sim010_pragma_at_sink_stops_the_taint(tmp_path):
    files = dict(LAUNDERED)
    files["src/repro/util/helpers.py"] = (
        "import time\n"
        "\n"
        "\n"
        "def _now():\n"
        "    return time.time()  # lint: disable=SIM001 -- boot banner only\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return _now()\n"
    )
    _write_tree(tmp_path, files)
    assert lint_paths([tmp_path / "src" / "repro" / "core"], ["SIM010"]) == []


def test_sim010_leaves_direct_sinks_to_the_per_file_rules(tmp_path):
    _write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/core/__init__.py": "",
            "src/repro/core/mod.py": (
                "import time\n\n\ndef f():\n    return time.time()\n"
            ),
        },
    )
    target = [tmp_path / "src" / "repro" / "core"]
    assert lint_paths(target, ["SIM010"]) == []
    assert [f.rule for f in lint_paths(target, ["SIM001", "SIM010"])] == ["SIM001"]


def test_sim010_entropy_kind_and_method_chains(tmp_path):
    _write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/serve/__init__.py": "",
            "src/repro/serve/cell.py": (
                "import uuid\n"
                "\n"
                "\n"
                "class Cell:\n"
                "    def _tag(self):\n"
                "        return uuid.uuid4()\n"
                "\n"
                "    def run(self):\n"
                "        return self._tag()\n"
            ),
        },
    )
    findings = lint_paths([tmp_path / "src" / "repro" / "serve"], ["SIM010"])
    (finding,) = findings
    assert "cell.Cell.run" in finding.message
    assert "entropy" in finding.message
    assert "uuid.uuid4()" in finding.message


def test_sim010_covers_accesscore(tmp_path):
    """The shared access core is sim-critical: laundered wall clock trips."""
    _write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/accesscore/__init__.py": "",
            "src/repro/util/__init__.py": "",
            "src/repro/util/helpers.py": (
                "import time\n"
                "\n"
                "\n"
                "def _now():\n"
                "    return time.time()\n"
                "\n"
                "\n"
                "def stamp():\n"
                "    return _now()\n"
            ),
            "src/repro/accesscore/events.py": (
                "from repro.util.helpers import stamp\n"
                "\n"
                "\n"
                "def event_read():\n"
                "    return stamp()\n"
            ),
        },
    )
    findings = lint_paths(
        [tmp_path / "src" / "repro" / "accesscore"], ["SIM010"]
    )
    (finding,) = findings
    assert finding.path.endswith("accesscore/events.py")
    assert "events.event_read -> helpers.stamp -> helpers._now" in finding.message


# ---------------------------------------------------------------------------
# SIM011 — RngHub stream discipline

RNG_FIXTURE = (
    "STREAMS = {\n"
    "    'disk': 2,\n"
    "    'bg': (3, 4),\n"
    "}\n"
    "\n"
    "\n"
    "class RngHub:\n"
    "    def stream(self, *key):\n"
    "        return key\n"
    "\n"
    "    def fresh(self, *key):\n"
    "        return key\n"
)


def _sim011_tree(tmp_path, caller_source):
    return _write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/sim/__init__.py": "",
            "src/repro/sim/rng.py": RNG_FIXTURE,
            "src/repro/core/__init__.py": "",
            "src/repro/core/streams.py": caller_source,
        },
    )


def test_sim011_flags_typo_arity_and_computed_names(tmp_path):
    _sim011_tree(
        tmp_path,
        "def draw(hub, disk_id, name):\n"
        "    bad_name = hub.stream('dsik', disk_id)\n"
        "    bad_arity = hub.stream('bg', disk_id)\n"
        "    computed = hub.fresh(name, disk_id)\n"
        "    return bad_name, bad_arity, computed\n",
    )
    findings = lint_paths(
        [tmp_path / "src" / "repro" / "core" / "streams.py"], ["SIM011"]
    )
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert any("unknown stream name 'dsik'" in m for m in messages)
    assert any("has 2 part(s)" in m and "3 or 4" in m for m in messages)
    assert any("must be a string literal" in m for m in messages)


def test_sim011_accepts_declared_names_and_arities(tmp_path):
    _sim011_tree(
        tmp_path,
        "def draw(hub, disk_id, trial):\n"
        "    a = hub.stream('disk', disk_id)\n"
        "    b = hub.stream('bg', disk_id, trial)\n"
        "    c = hub.fresh('bg', disk_id, trial, 99)\n"
        "    return a, b, c\n",
    )
    findings = lint_paths(
        [tmp_path / "src" / "repro" / "core" / "streams.py"], ["SIM011"]
    )
    assert findings == []


def test_sim011_covers_accesscore_refsvc_stream(tmp_path):
    """The event engine's ``refsvc`` stream obeys the declared arity."""
    _write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/sim/__init__.py": "",
            "src/repro/sim/rng.py": (
                "STREAMS = {\n"
                "    'refsvc': 4,\n"
                "}\n"
                "\n"
                "\n"
                "class RngHub:\n"
                "    def fresh(self, *key):\n"
                "        return key\n"
            ),
            "src/repro/accesscore/__init__.py": "",
            "src/repro/accesscore/events.py": (
                "def rngs(hub, name, trial, disk_id):\n"
                "    ok = hub.fresh('refsvc', name, trial, disk_id)\n"
                "    short = hub.fresh('refsvc', disk_id)\n"
                "    typo = hub.fresh('refsrv', name, trial, disk_id)\n"
                "    return ok, short, typo\n"
            ),
        },
    )
    findings = lint_paths(
        [tmp_path / "src" / "repro" / "accesscore" / "events.py"], ["SIM011"]
    )
    messages = [f.message for f in findings]
    assert len(findings) == 2
    assert any("has 2 part(s)" in m for m in messages)
    assert any("unknown stream name 'refsrv'" in m for m in messages)


def test_sim011_silent_without_a_streams_registry(tmp_path):
    _write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/core/__init__.py": "",
            "src/repro/core/streams.py": (
                "def draw(hub):\n    return hub.stream('anything', 1, 2, 3)\n"
            ),
        },
    )
    findings = lint_paths([tmp_path / "src" / "repro" / "core"], ["SIM011"])
    assert findings == []


# ---------------------------------------------------------------------------
# SIM012 — dead/drifted exports


def test_sim012_flags_dead_and_drifted_exports(tmp_path):
    _write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/metricsish/__init__.py": (
                "def used():\n    return 1\n"
                "\n"
                "\n"
                "def dead():\n    return 2\n"
                "\n"
                "\n"
                "__all__ = ['used', 'dead', 'ghost']\n"
            ),
            "tests/test_consumer.py": (
                "from repro.metricsish import used\n\nassert used() == 1\n"
            ),
        },
    )
    findings = lint_paths([tmp_path / "src", tmp_path / "tests"], ["SIM012"])
    assert all(f.severity is Severity.WARNING for f in findings)
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert any("'dead'" in m and "dead export" in m for m in messages)
    assert any("'ghost'" in m and "drifted" in m for m in messages)
    assert not any("'used'" in m for m in messages)


def test_sim012_credits_use_through_reexport_facade(tmp_path):
    _write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/pkg/__init__.py": (
                "from repro.pkg.impl import thing\n\n__all__ = ['thing']\n"
            ),
            "src/repro/pkg/impl.py": "def thing():\n    return 1\n",
            # Consumer imports from the *defining* submodule, not the facade.
            "tests/test_consumer.py": "from repro.pkg.impl import thing\n",
        },
    )
    findings = lint_paths([tmp_path / "src", tmp_path / "tests"], ["SIM012"])
    assert findings == []


def test_sim012_module_getattr_is_not_drift(tmp_path):
    _write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/lazy/__init__.py": (
                "def __getattr__(name):\n"
                "    if name == 'late':\n"
                "        return 42\n"
                "    raise AttributeError(name)\n"
                "\n"
                "\n"
                "__all__ = ['late']\n"
            ),
            "tests/test_consumer.py": "from repro.lazy import late\n",
        },
    )
    findings = lint_paths([tmp_path / "src", tmp_path / "tests"], ["SIM012"])
    assert findings == []


# ---------------------------------------------------------------------------
# engine plumbing: dedupe, scoping metadata, JSON v2


def test_iter_py_files_dedupes_overlapping_path_arguments(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    target = pkg / "mod.py"
    target.write_text("x = 1\n")
    # Directory + a file inside it + the file again: one result.
    files = list(iter_py_files([tmp_path, target, str(target)]))
    assert files == [target]


def test_overlapping_paths_lint_each_finding_once(tmp_path):
    _write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/core/__init__.py": "",
            "src/repro/core/mod.py": "import time\nt = time.time()\n",
        },
    )
    mod = tmp_path / "src" / "repro" / "core" / "mod.py"
    findings = lint_paths([tmp_path / "src", mod], ["SIM001"])
    assert len(findings) == 1


def test_list_rules_shows_scope_and_whole_program(tmp_path):
    out = io.StringIO()
    assert main(["--list-rules"], out=out) == 0
    listing = out.getvalue()
    assert "SIM007" in listing and "repro/core/policy" in listing
    assert "SIM010" in listing and "whole-program" in listing


def test_cli_json_v2_envelope_and_rule_timings(tmp_path):
    target = tmp_path / "src" / "repro" / "core"
    target.mkdir(parents=True)
    (target / "mod.py").write_text("import time\nt = time.time()\n")
    out = io.StringIO()
    code = main([str(tmp_path), "--format", "json", "--no-cache"], out=out)
    assert code == 1
    report = json.loads(out.getvalue())
    assert report["version"] == 2
    assert report["counts"]["error"] >= 1
    assert report["files_checked"] == 1
    assert "SIM001" in report["rules"]
    for timing in report["rules"].values():
        assert isinstance(timing["seconds"], float) and timing["seconds"] >= 0.0


# ---------------------------------------------------------------------------
# findings cache


def test_cache_warm_run_hits_and_replays_identically(tmp_path):
    _write_tree(tmp_path, LAUNDERED)
    cache_dir = tmp_path / "cache"
    target = [tmp_path / "src" / "repro" / "core"]
    cold = run_lint(target, cache_dir=cache_dir)
    warm = run_lint(target, cache_dir=cache_dir)
    assert cold.cache_hit is False
    assert warm.cache_hit is True
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]
    assert warm.rule_seconds == cold.rule_seconds
    assert warm.files_checked == cold.files_checked


def test_cache_invalidated_by_unlinted_corpus_file_change(tmp_path):
    _write_tree(tmp_path, LAUNDERED)
    cache_dir = tmp_path / "cache"
    target = [tmp_path / "src" / "repro" / "core"]
    cold = run_lint(target, cache_dir=cache_dir)
    assert [f.rule for f in cold.findings if f.rule == "SIM010"]
    # Fix the helper (a file we never linted directly): the cached
    # interprocedural findings must be invalidated, not replayed.
    helper = tmp_path / "src" / "repro" / "util" / "helpers.py"
    helper.write_text(
        "import time\n\n\ndef _now():\n    return time.perf_counter()\n"
        "\n\ndef stamp():\n    return _now()\n"
    )
    fixed = run_lint(target, cache_dir=cache_dir)
    assert fixed.cache_hit is False
    assert [f for f in fixed.findings if f.rule == "SIM010"] == []


def test_cache_keyed_by_rule_selection(tmp_path):
    _write_tree(tmp_path, LAUNDERED)
    cache_dir = tmp_path / "cache"
    target = [tmp_path / "src" / "repro" / "core"]
    run_lint(target, ["SIM010"], cache_dir=cache_dir)
    other = run_lint(target, ["SIM005"], cache_dir=cache_dir)
    assert other.cache_hit is False
    assert other.findings == []


# ---------------------------------------------------------------------------
# the shipped tree passes the interprocedural rules


def test_repo_self_check_sim010_sim011_clean():
    findings = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"], ["SIM010", "SIM011"]
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_repo_self_check_sim012_no_dead_exports():
    findings = lint_paths(
        [
            REPO_ROOT / "src",
            REPO_ROOT / "tests",
            REPO_ROOT / "benchmarks",
            REPO_ROOT / "examples",
        ],
        ["SIM012"],
    )
    assert findings == [], "\n".join(f.render() for f in findings)
