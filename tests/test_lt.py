"""Tests for LT codes (original and improved)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import ImprovedLTCode, LTCode
from repro.coding.peeling import PeelingDecoder, blocks_needed, decodable
from repro.coding.xorblocks import random_blocks


def test_graph_shape():
    code = LTCode(32, c=0.5, delta=0.5)
    rng = np.random.default_rng(0)
    graph = code.build_graph(96, rng)
    assert graph.k == 32
    assert graph.n == 96
    assert all(1 <= len(nb) <= 32 for nb in graph.neighbors)
    assert all(len(set(nb.tolist())) == len(nb) for nb in graph.neighbors)


def test_graph_is_rateless_extendable():
    code = LTCode(16)
    rng = np.random.default_rng(1)
    graph = code.build_graph(20, rng)
    code.extend_graph(graph, 12, rng)
    assert graph.n == 32


def test_encode_decode_roundtrip_with_data():
    rng = np.random.default_rng(2)
    k = 64
    code = ImprovedLTCode(k, c=0.5, delta=0.5)
    graph = code.build_graph(4 * k, rng)
    data = random_blocks(rng, k, 32)
    coded = code.encode(data, graph)

    decoder = PeelingDecoder(graph, block_len=32)
    order = rng.permutation(graph.n)
    for cid in order:
        decoder.add(int(cid), coded[cid])
        if decoder.is_complete:
            break
    assert decoder.is_complete
    assert np.array_equal(decoder.get_data(), data)


def test_improved_graph_always_decodable():
    rng = np.random.default_rng(3)
    for k in (8, 32, 128):
        code = ImprovedLTCode(k, c=0.5, delta=0.5)
        graph = code.build_graph(3 * k, rng)
        assert decodable(graph)


def test_improved_uniform_coverage():
    """Original-block degrees differ by at most one (§5.2.3 improvement 2)."""
    rng = np.random.default_rng(4)
    k = 128
    code = ImprovedLTCode(k, c=0.5, delta=0.5)
    graph = code.build_graph(4 * k, rng)
    deg = graph.original_degrees()
    assert deg.max() - deg.min() <= 1


def test_original_coverage_is_irregular():
    """The unmodified LT encoder leaves an irregular coverage profile."""
    rng = np.random.default_rng(5)
    k = 128
    code = LTCode(k, c=0.5, delta=0.5)
    graph = code.build_graph(4 * k, rng)
    deg = graph.original_degrees()
    assert deg.max() - deg.min() > 1


def test_improved_build_raises_when_n_too_small():
    code = ImprovedLTCode(64, c=0.5, delta=0.5, max_attempts=3)
    rng = np.random.default_rng(6)
    with pytest.raises(RuntimeError):
        code.build_graph(8, rng)  # far fewer coded blocks than k


def test_encode_one_matches_full_encode():
    rng = np.random.default_rng(7)
    k = 16
    code = ImprovedLTCode(k, c=0.5, delta=0.5)
    graph = code.build_graph(48, rng)
    data = random_blocks(rng, k, 16)
    full = code.encode(data, graph)
    for j in (0, 5, 47):
        assert np.array_equal(code.encode_one(data, graph, j), full[j])


def test_encode_validates_block_count():
    code = LTCode(8)
    rng = np.random.default_rng(8)
    graph = code.build_graph(16, rng)
    with pytest.raises(ValueError):
        code.encode(np.zeros((4, 8), np.uint8), graph)


def test_affected_coded_blocks_for_update():
    rng = np.random.default_rng(9)
    code = ImprovedLTCode(16, c=0.5, delta=0.5)
    graph = code.build_graph(64, rng)
    affected = graph.affected_coded_blocks(3)
    for j in affected:
        assert 3 in graph.neighbors[j]
    for j in set(range(graph.n)) - set(affected):
        assert 3 not in graph.neighbors[j]
    with pytest.raises(IndexError):
        graph.affected_coded_blocks(99)


def test_update_touches_small_fraction():
    """§4.3.4: one original block maps to ~avg-degree coded blocks (<~5%)."""
    rng = np.random.default_rng(10)
    k = 256
    code = ImprovedLTCode(k, c=1.0, delta=0.1)
    graph = code.build_graph(4 * k, rng)
    affected = graph.affected_coded_blocks(0)
    assert 0 < len(affected) < 0.05 * graph.n


def test_reception_overhead_in_paper_band():
    """K=1024, C=1, delta=0.1 -> overhead roughly 0.3..0.7 (Fig 5-1)."""
    rng = np.random.default_rng(11)
    k = 1024
    code = ImprovedLTCode(k, c=1.0, delta=0.1)
    graph = code.build_graph(4 * k, rng)
    overheads = []
    for trial in range(5):
        order = rng.permutation(graph.n)
        used = blocks_needed(graph, order)
        overheads.append(used / k - 1.0)
    mean = float(np.mean(overheads))
    assert 0.2 < mean < 0.9


def test_build_is_deterministic_per_seed():
    code = ImprovedLTCode(32, c=0.5, delta=0.5)
    g1 = code.build_graph(64, np.random.default_rng(42))
    g2 = code.build_graph(64, np.random.default_rng(42))
    assert all(np.array_equal(a, b) for a, b in zip(g1.neighbors, g2.neighbors))


def test_mean_coded_degree_property():
    code = LTCode(512, c=1.0, delta=0.1)
    rng = np.random.default_rng(12)
    graph = code.build_graph(4096, rng)
    sampled = graph.coded_degrees().mean()
    assert sampled == pytest.approx(code.mean_coded_degree, rel=0.1)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=4, max_value=64),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_roundtrip_property(k, seed):
    """Any decodable prefix reconstructs the data exactly."""
    rng = np.random.default_rng(seed)
    code = ImprovedLTCode(k, c=0.5, delta=0.5)
    graph = code.build_graph(4 * k, rng)
    data = random_blocks(rng, k, 8)
    coded = code.encode(data, graph)
    decoder = PeelingDecoder(graph, block_len=8)
    for cid in rng.permutation(graph.n):
        decoder.add(int(cid), coded[cid])
        if decoder.is_complete:
            break
    assert decoder.is_complete
    assert np.array_equal(decoder.get_data(), data)
