"""Property-based tests (hypothesis) for the erasure-coding stack.

The contract every code must honour under fault injection:

* decode(encode(x)) == x whenever enough coded blocks survive;
* with fewer surviving blocks than the information-theoretic minimum the
  decoder fails *cleanly* (``None`` / an exception / not-complete) — it
  never fabricates data;
* whenever a decoder claims success, the output is exactly the input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.lt import ImprovedLTCode
from repro.coding.peeling import PeelingDecoder
from repro.coding.raptor import RaptorCode
from repro.coding.reed_solomon import ReedSolomonCode
from repro.coding.tornado import TornadoCode

BLOCK_LEN = 16  # payload bytes per block: small keeps examples fast


def random_data(rng: np.random.Generator, k: int) -> np.ndarray:
    return rng.integers(0, 256, size=(k, BLOCK_LEN), dtype=np.uint8)


# ------------------------------------------------------------------ Reed-Solomon


class TestReedSolomonProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_any_k_of_n_round_trip(self, k, parity, seed):
        rng = np.random.default_rng(seed)
        code = ReedSolomonCode(k, k + parity)
        data = random_data(rng, k)
        coded = code.encode(data)
        survivors = rng.permutation(k + parity)[:k]
        decoded = code.decode(survivors, coded[survivors])
        assert np.array_equal(decoded, data)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_fewer_than_k_blocks_fail_cleanly(self, k, parity, seed):
        rng = np.random.default_rng(seed)
        code = ReedSolomonCode(k, k + parity)
        coded = code.encode(random_data(rng, k))
        survivors = rng.permutation(k + parity)[: k - 1]
        with pytest.raises(ValueError):
            code.decode(survivors, coded[survivors])

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_duplicate_ids_do_not_help(self, k, parity, seed):
        """k blocks with a repeated id carry < k equations: clean failure."""
        rng = np.random.default_rng(seed)
        code = ReedSolomonCode(k, k + parity)
        coded = code.encode(random_data(rng, k))
        ids = np.zeros(k, dtype=np.int64)  # the same block k times
        if k == 1:
            # Degenerate: one distinct id IS enough for k=1.
            assert code.decode(ids, coded[ids]).shape == (1, BLOCK_LEN)
            return
        with pytest.raises(ValueError):
            code.decode(ids, coded[ids])


# ------------------------------------------------------------------ Tornado


class TestTornadoProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=48),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_no_erasures_round_trip(self, k, seed):
        rng = np.random.default_rng(seed)
        code = TornadoCode(k, rng=rng)
        data = random_data(rng, k)
        coded = code.encode(data)
        decoded = code.decode_erasures(np.ones(code.n, dtype=bool), coded)
        assert decoded is not None
        assert np.array_equal(decoded[: code.k], data)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=48),
        st.data(),
    )
    def test_never_wrong_when_it_claims_success(self, k, data_strategy):
        """Erase a random subset; a non-None decode must equal the input."""
        seed = data_strategy.draw(st.integers(min_value=0, max_value=2**32 - 1))
        rng = np.random.default_rng(seed)
        code = TornadoCode(k, rng=rng)
        data = random_data(rng, k)
        coded = code.encode(data)
        n_erase = data_strategy.draw(st.integers(min_value=0, max_value=code.n - k))
        present = np.ones(code.n, dtype=bool)
        present[rng.permutation(code.n)[:n_erase]] = False
        decoded = code.decode_erasures(present, coded)
        if decoded is not None:
            assert np.array_equal(decoded[: code.k], data)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=48),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_information_theoretic_floor(self, k, seed):
        """Fewer than k surviving blocks can never reconstruct k originals."""
        rng = np.random.default_rng(seed)
        code = TornadoCode(k, rng=rng)
        coded = code.encode(random_data(rng, k))
        present = np.zeros(code.n, dtype=bool)
        present[rng.permutation(code.n)[: k - 1]] = True
        assert code.decode_erasures(present, coded) is None


# ------------------------------------------------------------------ LT + peeling


class TestLTPeelingProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=64),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_complete_decode_reproduces_the_data(self, k, seed):
        rng = np.random.default_rng(seed)
        code = ImprovedLTCode(k)
        n = int(np.ceil(1.6 * k)) + 8  # enough overhead to usually finish
        graph = code.build_graph(n, rng)
        data = random_data(rng, k)
        coded = code.encode(data, graph)
        decoder = PeelingDecoder(graph, block_len=BLOCK_LEN)
        for cid in rng.permutation(n):
            decoder.add(int(cid), coded[cid])
            if decoder.is_complete:
                break
        if decoder.is_complete:  # rateless: completion is probabilistic
            assert np.array_equal(decoder.get_data(), data)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=64),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_fewer_than_k_blocks_never_complete(self, k, seed):
        rng = np.random.default_rng(seed)
        code = ImprovedLTCode(k)
        graph = code.build_graph(2 * k, rng)
        data = random_data(rng, k)
        coded = code.encode(data, graph)
        decoder = PeelingDecoder(graph, block_len=BLOCK_LEN)
        for cid in rng.permutation(2 * k)[: k - 1]:
            decoder.add(int(cid), coded[cid])
        assert not decoder.is_complete


# ------------------------------------------------------------------ Raptor


class TestRaptorProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_never_wrong_when_it_claims_success(self, k, seed):
        rng = np.random.default_rng(seed)
        code = RaptorCode(k)
        n = int(np.ceil(1.5 * code.m)) + 8
        graph = code.build_graph(n, rng)
        data = random_data(rng, k)
        coded = code.encode(data, graph)
        order = rng.permutation(n)
        decoded = code.decode(graph, order, coded[order], BLOCK_LEN)
        if decoded is not None:
            assert np.array_equal(decoded, data)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_fewer_than_k_blocks_fail_cleanly(self, k, seed):
        rng = np.random.default_rng(seed)
        code = RaptorCode(k)
        n = 2 * code.m
        graph = code.build_graph(n, rng)
        data = random_data(rng, k)
        coded = code.encode(data, graph)
        order = rng.permutation(n)[: k - 1]
        assert code.decode(graph, order, coded[order], BLOCK_LEN) is None
