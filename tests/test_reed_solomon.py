"""Tests for the Reed-Solomon optimal erasure code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import ReedSolomonCode
from repro.coding.xorblocks import random_blocks


def test_systematic_prefix():
    rng = np.random.default_rng(0)
    code = ReedSolomonCode(4, 8)
    data = random_blocks(rng, 4, 16)
    coded = code.encode(data)
    assert np.array_equal(coded[:4], data)
    assert coded.shape == (8, 16)


def test_decode_from_systematic_blocks():
    rng = np.random.default_rng(1)
    code = ReedSolomonCode(4, 8)
    data = random_blocks(rng, 4, 16)
    coded = code.encode(data)
    out = code.decode([0, 1, 2, 3], coded[:4])
    assert np.array_equal(out, data)


def test_decode_from_parity_only():
    rng = np.random.default_rng(2)
    code = ReedSolomonCode(4, 8)
    data = random_blocks(rng, 4, 16)
    coded = code.encode(data)
    out = code.decode([4, 5, 6, 7], coded[4:])
    assert np.array_equal(out, data)


def test_decode_from_any_k_subset():
    rng = np.random.default_rng(3)
    code = ReedSolomonCode(5, 12)
    data = random_blocks(rng, 5, 24)
    coded = code.encode(data)
    for _ in range(20):
        ids = rng.choice(12, size=5, replace=False)
        out = code.decode(ids, coded[ids])
        assert np.array_equal(out, data)


def test_decode_too_few_blocks_raises():
    code = ReedSolomonCode(4, 8)
    with pytest.raises(ValueError):
        code.decode([0, 1, 2], np.zeros((3, 8), np.uint8))


def test_decode_duplicates_not_counted():
    code = ReedSolomonCode(3, 6)
    with pytest.raises(ValueError):
        code.decode([0, 0, 1], np.zeros((3, 8), np.uint8))


def test_decode_extra_blocks_ignored():
    rng = np.random.default_rng(4)
    code = ReedSolomonCode(3, 6)
    data = random_blocks(rng, 3, 8)
    coded = code.encode(data)
    ids = [5, 2, 0, 4, 1]
    out = code.decode(ids, coded[ids])
    assert np.array_equal(out, data)


def test_rate_and_redundancy():
    code = ReedSolomonCode(4, 16)
    assert code.rate == 0.25
    assert code.redundancy == 3.0


def test_invalid_parameters():
    with pytest.raises(ValueError):
        ReedSolomonCode(0, 4)
    with pytest.raises(ValueError):
        ReedSolomonCode(8, 4)
    with pytest.raises(ValueError):
        ReedSolomonCode(128, 300)


def test_n_equals_k_passthrough():
    rng = np.random.default_rng(5)
    code = ReedSolomonCode(4, 4)
    data = random_blocks(rng, 4, 8)
    coded = code.encode(data)
    assert np.array_equal(coded, data)


def test_generator_rows():
    code = ReedSolomonCode(3, 5)
    assert list(code.generator_row(1)) == [0, 1, 0]
    assert np.array_equal(code.generator_row(3), code.parity_matrix[0])
    with pytest.raises(IndexError):
        code.generator_row(5)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_mds_property(k, extra, seed):
    """Any K distinct coded blocks reconstruct the data exactly."""
    rng = np.random.default_rng(seed)
    n = k + extra
    code = ReedSolomonCode(k, n)
    data = random_blocks(rng, k, 8)
    coded = code.encode(data)
    ids = rng.choice(n, size=k, replace=False)
    assert np.array_equal(code.decode(ids, coded[ids]), data)
