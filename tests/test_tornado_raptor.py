"""Tests for the Tornado and Raptor background codes."""

import numpy as np
import pytest

from repro.coding.raptor import RaptorCode
from repro.coding.tornado import TornadoCode
from repro.coding.xorblocks import random_blocks


class TestTornado:
    def test_codeword_layout(self):
        code = TornadoCode(32, beta=0.5, levels=2)
        # 32 originals + 16 + 8 checks + RS cap parity
        assert code.sizes == [32, 16, 8]
        assert code.n == 32 + 16 + 8 + (code.cap.n - code.cap.k)
        assert 0 < code.rate < 1

    def test_encode_shape(self):
        rng = np.random.default_rng(0)
        code = TornadoCode(16, beta=0.5, levels=2, rng=rng)
        data = random_blocks(rng, 16, 8)
        coded = code.encode(data)
        assert coded.shape == (code.n, 8)
        assert np.array_equal(coded[:16], data)

    def test_decode_no_erasures(self):
        rng = np.random.default_rng(1)
        code = TornadoCode(16, beta=0.5, levels=2, rng=rng)
        data = random_blocks(rng, 16, 8)
        coded = code.encode(data)
        present = np.ones(code.n, dtype=bool)
        out = code.decode_erasures(present, coded)
        assert out is not None
        assert np.array_equal(out, data)

    def test_decode_recovers_few_erasures(self):
        rng = np.random.default_rng(2)
        code = TornadoCode(32, beta=0.5, levels=2, left_degree=4, rng=rng)
        data = random_blocks(rng, 32, 8)
        coded = code.encode(data)
        present = np.ones(code.n, dtype=bool)
        present[[3, 17]] = False  # two original blocks lost
        out = code.decode_erasures(present, coded)
        assert out is not None
        assert np.array_equal(out, data)

    def test_decode_fails_gracefully_on_heavy_loss(self):
        rng = np.random.default_rng(3)
        code = TornadoCode(32, beta=0.5, levels=2, rng=rng)
        data = random_blocks(rng, 32, 8)
        coded = code.encode(data)
        present = np.zeros(code.n, dtype=bool)
        present[: code.k // 2] = True  # half the originals, nothing else
        assert code.decode_erasures(present, coded) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TornadoCode(32, beta=1.5)
        with pytest.raises(ValueError):
            TornadoCode(2)

    def test_mask_length_checked(self):
        code = TornadoCode(16)
        with pytest.raises(ValueError):
            code.decode_erasures(np.ones(3, bool), np.zeros((3, 8), np.uint8))


class TestRaptor:
    def test_intermediate_count(self):
        code = RaptorCode(100, precode_rate=0.9, group=50)
        assert code.m > 100
        assert code.overhead_estimate() > 0

    def test_precode_shape(self):
        rng = np.random.default_rng(4)
        code = RaptorCode(64, precode_rate=0.9, group=32)
        data = random_blocks(rng, 64, 8)
        inter = code.precode(data)
        assert inter.shape[0] == code.m
        assert np.array_equal(inter[:64], data)

    def test_roundtrip_via_lt_only(self):
        rng = np.random.default_rng(5)
        code = RaptorCode(32, precode_rate=0.9, group=32, lt_c=0.3)
        graph = code.build_graph(6 * code.m, rng)
        data = random_blocks(rng, 32, 8)
        coded = code.encode(data, graph)
        order = rng.permutation(graph.n)
        out = code.decode(graph, order, coded[order], block_len=8)
        assert out is not None
        assert np.array_equal(out, data)

    def test_precode_repairs_stalled_peeling(self):
        """Feed too few LT blocks for full peeling; pre-code fills holes."""
        rng = np.random.default_rng(6)
        code = RaptorCode(24, precode_rate=0.75, group=24, lt_c=0.3)
        graph = code.build_graph(8 * code.m, rng)
        data = random_blocks(rng, 24, 8)
        coded = code.encode(data, graph)
        # Find a prefix that leaves peeling just short of complete.
        order = list(rng.permutation(graph.n))
        from repro.coding.peeling import PeelingDecoder

        probe = PeelingDecoder(graph)
        cut = None
        for i, cid in enumerate(order):
            probe.add(int(cid))
            if probe.decoded_count >= code.m - code.per_group_parity // 2:
                cut = i + 1
                break
        if cut is None or probe.is_complete:
            pytest.skip("peeling completed before a stall point was found")
        out = code.decode(graph, order[:cut], np.asarray(coded)[order[:cut]], block_len=8)
        if out is not None:
            assert np.array_equal(out, data)

    def test_decode_insufficient_returns_none(self):
        rng = np.random.default_rng(7)
        code = RaptorCode(32, precode_rate=0.9, group=32)
        graph = code.build_graph(4 * code.m, rng)
        data = random_blocks(rng, 32, 8)
        coded = code.encode(data, graph)
        out = code.decode(graph, [0, 1], coded[:2], block_len=8)
        assert out is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RaptorCode(10, precode_rate=1.5)
        with pytest.raises(ValueError):
            RaptorCode(10, group=500)
