"""Seed-sensitivity: the paper's qualitative conclusions must not depend
on one lucky random seed."""

import numpy as np
import pytest

from repro.core.access import MB, AccessConfig
from repro.experiments.harness import TrialPlan, run_point

CFG = AccessConfig(data_bytes=256 * MB, block_bytes=1 * MB, n_disks=64, redundancy=3.0)


@pytest.mark.parametrize("seed", [11, 222, 3333])
def test_headline_orderings_hold_across_seeds(seed):
    point = run_point(
        TrialPlan(access=CFG, mode="read", trials=6, seed=seed),
        schemes=("raid0", "rraid-s", "robustore"),
    )
    bw = {name: s.bandwidth_mbps for name, s in point.items()}
    # RobuSTore wins big; replication sits between; RAID-0 is gated by the
    # slowest disk.
    assert bw["robustore"] > 2 * bw["rraid-s"] > 2 * bw["raid0"]
    # I/O-overhead signatures.
    assert point["raid0"].io_overhead == 0.0
    assert point["rraid-s"].io_overhead > 0.5
    assert 0.2 < point["robustore"].io_overhead < 1.0
    # RobuSTore's latency variation stays a small fraction of its latency.
    robo = point["robustore"]
    assert robo.latency_std_s < 0.5 * robo.latency_mean_s


@pytest.mark.parametrize("seed", [7, 77])
def test_write_conclusions_hold_across_seeds(seed):
    point = run_point(
        TrialPlan(access=CFG, mode="write", trials=5, seed=seed),
        schemes=("raid0", "rraid-s", "robustore"),
    )
    bw = {name: s.bandwidth_mbps for name, s in point.items()}
    assert bw["robustore"] > 2 * bw["raid0"] > 2 * bw["rraid-s"]
    # Write I/O overhead ~= redundancy for everyone who writes redundantly.
    assert point["rraid-s"].io_overhead == pytest.approx(3.0, abs=0.05)
    assert point["robustore"].io_overhead == pytest.approx(3.0, abs=0.35)
