"""Tests for the Appendix C credential-chain access control."""

import pytest

from repro.cluster.credentials import (
    CredentialChain,
    KeyPair,
    Verifier,
    issue,
)


@pytest.fixture()
def pki():
    admin = KeyPair("admin", "admin-secret")
    alice = KeyPair("alice", "alice-secret")
    bob = KeyPair("bob", "bob-secret")
    secrets = {k.public: k.secret for k in (admin, alice, bob)}
    return admin, alice, bob, secrets


def test_single_level_grant(pki):
    admin, alice, _, secrets = pki
    cred = issue(admin, alice.public, "RWX", handle="666240")
    chain = CredentialChain([cred])
    v = Verifier(admin.public, secrets)
    assert v.verify(chain, alice.public, "R", handle="666240")
    assert v.verify(chain, alice.public, "W", handle="666240")


def test_two_level_delegation(pki):
    admin, alice, bob, secrets = pki
    chain = CredentialChain([issue(admin, alice.public, "RWX", handle="666240")])
    chain2 = chain.delegate(alice, bob.public, "RW", handle="666240")
    v = Verifier(admin.public, secrets)
    assert v.verify(chain2, bob.public, "R", handle="666240")
    assert v.verify(chain2, bob.public, "W", handle="666240")
    # X was not delegated: rights intersect along the chain.
    assert not v.verify(chain2, bob.public, "X", handle="666240")


def test_presenter_must_be_last_licensee(pki):
    admin, alice, bob, secrets = pki
    chain = CredentialChain([issue(admin, alice.public, "RWX")])
    v = Verifier(admin.public, secrets)
    assert not v.verify(chain, bob.public, "R")


def test_untrusted_root_rejected(pki):
    admin, alice, _, secrets = pki
    rogue = KeyPair("rogue", "rogue-secret")
    secrets[rogue.public] = rogue.secret
    chain = CredentialChain([issue(rogue, alice.public, "RWX")])
    v = Verifier(admin.public, secrets)
    assert not v.verify(chain, alice.public, "R")


def test_tampered_signature_rejected(pki):
    admin, alice, _, secrets = pki
    cred = issue(admin, alice.public, "RWX")
    from dataclasses import replace

    forged = replace(cred, rights=frozenset("RWX"), signature="0" * 24)
    v = Verifier(admin.public, secrets)
    assert not v.verify(CredentialChain([forged]), alice.public, "R")


def test_only_licensee_may_delegate(pki):
    admin, alice, bob, _ = pki
    chain = CredentialChain([issue(admin, alice.public, "RWX")])
    with pytest.raises(PermissionError):
        chain.delegate(bob, bob.public, "R")


def test_time_window_enforced(pki):
    admin, alice, bob, secrets = pki
    chain = CredentialChain([issue(admin, alice.public, "RWX")])
    chain2 = chain.delegate(alice, bob.public, "RWX", not_before=10.0, not_after=20.0)
    v = Verifier(admin.public, secrets)
    assert not v.verify(chain2, bob.public, "R", now=5.0)
    assert v.verify(chain2, bob.public, "R", now=15.0)
    assert not v.verify(chain2, bob.public, "R", now=25.0)


def test_app_domain_condition(pki):
    admin, alice, _, secrets = pki
    chain = CredentialChain([issue(admin, alice.public, "R", app_domain="RobuSTore")])
    v = Verifier(admin.public, secrets)
    assert not v.verify(chain, alice.public, "R", app_domain="OtherApp")


def test_handle_condition(pki):
    admin, alice, _, secrets = pki
    chain = CredentialChain([issue(admin, alice.public, "R", handle="h1")])
    v = Verifier(admin.public, secrets)
    assert v.verify(chain, alice.public, "R", handle="h1")
    assert not v.verify(chain, alice.public, "R", handle="h2")


def test_empty_chain_rejected(pki):
    admin, _, _, secrets = pki
    v = Verifier(admin.public, secrets)
    assert not v.verify(CredentialChain([]), "anyone", "R")
    with pytest.raises(ValueError):
        CredentialChain([]).delegate(admin, "x", "R")


def test_broken_delegation_link_rejected(pki):
    admin, alice, bob, secrets = pki
    # Bob signs the second link even though Alice is the licensee of link 1.
    link1 = issue(admin, alice.public, "RWX")
    link2 = issue(bob, bob.public, "RWX")
    v = Verifier(admin.public, secrets)
    assert not v.verify(CredentialChain([link1, link2]), bob.public, "R")
