"""Batched arrival consumption must equal the scalar observe loop.

The access engine's hot path feeds whole per-disk arrival batches to
``tracker.consume_arrivals`` (see :mod:`repro.core.access` and
:mod:`repro.core.policy.dispatch`); the seed fed arrivals one at a time
through ``observe``.  This suite proves the two are equivalent for every
tracker that implements the batch contract — same ``(t_fill, consumed)``
return, same internal state afterwards — and documents why
:class:`~repro.core.trackers.GroupedRSTracker` deliberately does not
(its ``observe`` records per-arrival fill timestamps).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.lt import ImprovedLTCode
from repro.coding.peeling import PeelingDecoder
from repro.core.trackers import (
    AllBlocksTracker,
    CoverageTracker,
    DecoderTracker,
    GroupedRSTracker,
)


def scalar_consume(tracker, times: np.ndarray, ids: np.ndarray) -> tuple[float, int]:
    """The seed's consumption loop, verbatim: observe until complete."""
    for consumed, (t, bid) in enumerate(zip(times.tolist(), ids.tolist()), start=1):
        tracker.observe(float(t), int(bid))
        if tracker.complete:
            return float(t), consumed
    return float("inf"), int(ids.size)


def _times(n: int, with_inf: bool = False) -> np.ndarray:
    t = np.linspace(0.1, 0.1 * max(n, 1), n)
    if with_inf and n:
        t[-1] = np.inf  # a block a failed disk never delivers
    return t


def _assert_same_simple_state(a, b):
    assert a._count == b._count
    assert np.array_equal(a._have, b._have)
    assert a.complete == b.complete


def _check_simple(make_tracker, ids, with_inf=False, prefix=0):
    """Differential check for the ``_have``/``_count`` trackers.

    ``prefix`` arrivals are fed scalar to *both* first, so the batch call
    starts from a partially-consumed tracker (the multi-round dispatch
    case), not only from a fresh one.
    """
    ids = np.asarray(ids, dtype=np.int64)
    times = _times(ids.size, with_inf)
    ref, new = make_tracker(), make_tracker()
    for t, bid in zip(times[:prefix], ids[:prefix]):
        ref.observe(float(t), int(bid))
        new.observe(float(t), int(bid))
    got_ref = scalar_consume(ref, times[prefix:], ids[prefix:])
    got_new = new.consume_arrivals(times[prefix:], ids[prefix:])
    assert got_new == got_ref
    _assert_same_simple_state(new, ref)


class TestAllBlocksTracker:
    def test_completes_mid_batch(self):
        _check_simple(lambda: AllBlocksTracker(4), [0, 1, 1, 2, 3, 0, 2])

    def test_never_completes(self):
        _check_simple(lambda: AllBlocksTracker(5), [0, 1, 1, 0, 2])

    def test_empty_batch(self):
        _check_simple(lambda: AllBlocksTracker(3), [])

    def test_partial_then_batch(self):
        _check_simple(lambda: AllBlocksTracker(4), [3, 3, 0, 1, 2], prefix=2)

    def test_completing_arrival_at_infinite_time(self):
        """A failed-disk (t=inf) arrival can still complete the tracker.

        Completion must be discriminated by ``tracker.complete``, never by
        ``isfinite(t_fill)`` — this pins the contract the access engine's
        batch fast path relies on.
        """
        tracker = AllBlocksTracker(2)
        t_fill, consumed = tracker.consume_arrivals(
            np.array([1.0, np.inf]), np.array([0, 1])
        )
        assert tracker.complete
        assert consumed == 2 and t_fill == np.inf


class TestCoverageTracker:
    def test_replica_ids_map_to_originals(self):
        _check_simple(lambda: CoverageTracker(3), [0, 3, 6, 1, 4, 2])

    def test_duplicate_coverage_not_double_counted(self):
        _check_simple(lambda: CoverageTracker(3), [0, 3, 0, 3, 1])

    def test_partial_then_batch(self):
        _check_simple(lambda: CoverageTracker(4), [5, 2, 7, 0, 1, 6], prefix=3)


@settings(deadline=None, max_examples=150)
@given(
    k=st.integers(min_value=1, max_value=12),
    replicas=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_simple_trackers_match_scalar_loop(k, replicas, data):
    """Random id sequences (duplicates, partial prefixes, both trackers)."""
    ids = data.draw(
        st.lists(st.integers(min_value=0, max_value=k * replicas - 1), max_size=4 * k)
    )
    prefix = data.draw(st.integers(min_value=0, max_value=len(ids)))
    make = (lambda: AllBlocksTracker(k)) if replicas == 1 else (lambda: CoverageTracker(k))
    _check_simple(make, ids, prefix=prefix)


class TestDecoderTracker:
    K, N = 16, 48

    def _graph(self, seed=0):
        rng = np.random.default_rng(seed)
        return ImprovedLTCode(self.K, c=0.5, delta=0.5).build_graph(self.N, rng)

    def _pair(self, seed=0):
        graph = self._graph(seed)
        return (
            DecoderTracker(PeelingDecoder(graph)),
            DecoderTracker(PeelingDecoder(graph)),
        )

    def _assert_same_decoder_state(self, a, b):
        da, db = a.decoder, b.decoder
        assert da.decoded_count == db.decoded_count
        assert da.blocks_used == db.blocks_used
        assert da.edges_peeled == db.edges_peeled
        assert np.array_equal(da._decoded, db._decoded)
        assert da.resolvers == db.resolvers
        assert a.complete == b.complete

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scalar_loop(self, seed):
        order = np.random.default_rng(100 + seed).permutation(self.N)
        times = _times(self.N)
        ref, new = self._pair(seed)
        got_ref = scalar_consume(ref, times, order)
        got_new = new.consume_arrivals(times, order)
        assert got_new == got_ref
        assert got_new[0] != np.inf  # a full permutation always decodes
        self._assert_same_decoder_state(new, ref)

    def test_insufficient_prefix_returns_inf(self):
        order = np.arange(self.K // 2)
        ref, new = self._pair()
        got_ref = scalar_consume(ref, _times(order.size), order)
        got_new = new.consume_arrivals(_times(order.size), order)
        assert got_new == got_ref == (np.inf, order.size)
        self._assert_same_decoder_state(new, ref)

    def test_stops_at_completing_arrival(self):
        """Arrivals after completion must not be consumed (blocks_used)."""
        order = np.random.default_rng(9).permutation(self.N)
        times = _times(self.N)
        ref, new = self._pair()
        scalar_consume(ref, times, order)
        _, consumed = new.consume_arrivals(times, order)
        assert new.decoder.blocks_used == consumed == ref.decoder.blocks_used


def test_grouped_rs_tracker_has_no_batch_path():
    """GroupedRSTracker records *when* each group filled; the scalar
    observe loop is its contract.  The access engine probes the class (not
    the instance) for ``consume_arrivals``, so absence here routes it to
    the scalar loop."""
    assert getattr(GroupedRSTracker, "consume_arrivals", None) is None
    tracker = GroupedRSTracker(n_groups=2, group_size=2)
    for t, bid in [(0.1, 0), (0.2, 1), (0.3, (1 << 20)), (0.4, (1 << 20) | 1)]:
        tracker.observe(t, bid)
    assert tracker.complete and tracker.fill_times == [0.2, 0.4]
