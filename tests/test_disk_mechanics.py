"""Tests for drive mechanics and the calibrated bandwidth grid."""

import numpy as np
import pytest

from repro.disk.calibration import grid_statistics, measure_bandwidth, table_6_1
from repro.disk.mechanics import DiskMechanics, DriveSpec
from repro.disk.workload import InDiskLayout


def test_rotation_constants():
    spec = DriveSpec(rpm=7200)
    assert spec.rotation_period_s == pytest.approx(60 / 7200)
    assert spec.avg_rotational_latency_s == pytest.approx(30 / 7200)


def test_seek_time_zero_distance():
    mech = DiskMechanics()
    assert float(mech.seek_time(0)) == 0.0


def test_seek_time_monotone_concave_start():
    mech = DiskMechanics()
    d = np.array([1, 10, 100, 1000, 10000, 59999])
    t = mech.seek_time(d)
    assert np.all(np.diff(t) > 0)
    # Full-stroke seek in a plausible 10-25 ms band.
    assert 0.005 < t[-1] < 0.030


def test_rotational_latency_bounds():
    mech = DiskMechanics()
    rng = np.random.default_rng(0)
    lat = mech.sample_rotational_latency(rng, 1000)
    assert np.all(lat >= 0)
    assert np.all(lat <= mech.spec.rotation_period_s)
    assert lat.mean() == pytest.approx(mech.spec.avg_rotational_latency_s, rel=0.1)


def test_media_rate_scales_with_spt():
    mech = DiskMechanics()
    fast = float(mech.media_rate_bps(1200))
    slow = float(mech.media_rate_bps(600))
    assert fast == pytest.approx(2 * slow)
    # Outer zone of a 7200 rpm drive: tens of MB/s.
    assert 50e6 < fast < 100e6


def test_transfer_time_includes_track_switches():
    mech = DiskMechanics()
    spt = 1000
    one_track = float(mech.transfer_time(1000, spt))
    two_tracks = float(mech.transfer_time(2000, spt))
    assert two_tracks > 2 * one_track  # the extra is the switch charge
    assert two_tracks - 2 * one_track == pytest.approx(mech.spec.track_switch_s)


def test_mean_positioning_time_band():
    mech = DiskMechanics()
    # Local seek + rotational latency: single-digit milliseconds.
    assert 0.003 < mech.mean_positioning_time() < 0.012


def test_request_time_positioned_vs_not():
    mech = DiskMechanics()
    rng = np.random.default_rng(1)
    seq = np.mean([mech.request_time(64, 900, True, rng) for _ in range(50)])
    rnd = np.mean([mech.request_time(64, 900, False, rng) for _ in range(50)])
    assert rnd > seq + 0.002  # positioning dominates small requests


def test_expected_bandwidth_matches_measured():
    mech = DiskMechanics()
    rng = np.random.default_rng(2)
    layout = InDiskLayout(128, 0.0)
    spt = 870
    expect = mech.expected_bandwidth(128, 0.0, spt) / (1 << 20)
    measured = measure_bandwidth(mech, layout, rng, total_mb=64, spt=spt)
    assert measured == pytest.approx(expect, rel=0.15)


class TestTable61:
    """The calibrated grid approximates the paper's Table 6-1."""

    @pytest.fixture(scope="class")
    def cells(self):
        return table_6_1(total_mb=32)

    def test_slowest_cell_near_paper(self, cells):
        worst = min(c.bandwidth_mbps for c in cells)
        assert worst == pytest.approx(0.52, rel=0.3)

    def test_spread_order_of_magnitude(self, cells):
        stats = grid_statistics(cells)
        assert stats["spread"] > 40  # paper: ~100x

    def test_mean_near_15(self, cells):
        stats = grid_statistics(cells)
        assert 10 < stats["mean_mbps"] < 22  # paper: 14.9

    def test_monotone_in_blocking_factor(self, cells):
        for p_seq in (0.0, 1.0):
            row = [c.bandwidth_mbps for c in cells if c.p_sequential == p_seq]
            assert all(b > a for a, b in zip(row, row[1:]))

    def test_sequential_beats_random(self, cells):
        rnd = {c.blocking_factor: c.bandwidth_mbps for c in cells if c.p_sequential == 0.0}
        seq = {c.blocking_factor: c.bandwidth_mbps for c in cells if c.p_sequential == 1.0}
        for bf in rnd:
            assert seq[bf] > rnd[bf]
        assert seq[8] / rnd[8] > 4  # order-of-magnitude gap at small bf
