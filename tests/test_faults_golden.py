"""Golden regression: a fixed fault scenario must reproduce exact numbers.

The golden file pins every scheme's per-trial latency (and traffic) under
one mixed fault storm.  Any change to the fault transform, the schemes'
reactions, or the underlying service model shows up as a diff here —
regenerate deliberately with ``PYTHONPATH=src python -m tests.make_golden``.
"""

import json
import pathlib

import numpy as np

from repro.core.access import MB, AccessConfig
from repro.experiments.harness import TrialPlan, run_scheme
from repro.faults import FaultPlan

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_faults.json"

CFG = AccessConfig(data_bytes=32 * MB, block_bytes=1 * MB, n_disks=8, redundancy=3.0)
SCHEMES = ("raid0", "rraid-s", "rraid-a", "robustore")

#: One storm touching every fault kind: a permanent loss, a transient loss,
#: a slowdown, a filer crash (flushing every queue mid-read) and a degraded
#: link.  RobuSTore re-speculates through it; the fixed schemes mostly die.
STORM_SCENARIO = [
    {"at": 0.0, "fault": "disk_slow", "disk": 2, "factor": 3.0, "duration": 2.0},
    {"at": 0.0, "fault": "link_degrade", "filer": 0, "extra_s": 0.01,
     "duration": 5.0},
    {"at": 0.05, "fault": "disk_fail", "disk": 0},
    {"at": 0.1, "fault": "disk_fail", "disk": 1, "duration": 0.5},
    {"at": 0.2, "fault": "filer_crash", "filer": 0, "duration": 0.3},
]


def build_fault_reference() -> dict:
    """Exactly the runs the golden file was generated from."""
    plan = FaultPlan.from_scenario(STORM_SCENARIO)
    base = TrialPlan(access=CFG, pool=8, rtt_s=0.001, seed=7, trials=3,
                     fault_plan=plan)
    out: dict = {"scenario": plan.describe(), "schemes": {}}
    for name in SCHEMES:
        results = run_scheme(base, name)
        out["schemes"][name] = {
            "latency_s": [r.latency_s for r in results],
            "network_bytes": [r.network_bytes for r in results],
            "blocks_received": [r.blocks_received for r in results],
            "rounds": [r.rounds for r in results],
        }
    return out


def test_fault_golden_matches():
    assert GOLDEN.exists(), (
        "golden file missing; run PYTHONPATH=src python -m tests.make_golden"
    )
    golden = json.loads(GOLDEN.read_text())
    assert build_fault_reference() == golden


def test_reference_storm_differentiates_the_schemes():
    """Sanity on the pinned numbers themselves (independent of drift)."""
    ref = build_fault_reference()
    lat = {name: ref["schemes"][name]["latency_s"] for name in SCHEMES}
    # The filer crash flushes every queue: the fixed-layout schemes cannot
    # finish any trial, RobuSTore re-speculates every trial to completion.
    assert all(np.isinf(lat["raid0"]))
    assert all(np.isfinite(lat["robustore"]))
    assert all(r == 2 for r in ref["schemes"]["robustore"]["rounds"])
