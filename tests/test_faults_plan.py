"""Unit tests for repro.faults: plans, timelines, compile, fault model."""

import json
import math

import numpy as np
import pytest

from repro.faults.model import FaultModel
from repro.faults.plan import (
    DISK_FAIL,
    DISK_RECOVER,
    DISK_SLOW,
    FILER_CRASH,
    LINK_DEGRADE,
    FaultEvent,
    FaultPlan,
)
from repro.faults.timeline import DiskTimeline, LinkTimeline, compile_plan


# ------------------------------------------------------------------ events


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(t=0.0, kind="meteor_strike", disk=0)

    def test_negative_or_nonfinite_time_rejected(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            FaultEvent(t=-1.0, kind=DISK_FAIL, disk=0)
        with pytest.raises(ValueError, match="finite and non-negative"):
            FaultEvent(t=float("inf"), kind=DISK_FAIL, disk=0)

    def test_target_exclusivity(self):
        # Disk kinds take a disk, never a filer — and vice versa.
        with pytest.raises(ValueError, match="targets a disk"):
            FaultEvent(t=0.0, kind=DISK_FAIL, filer=0)
        with pytest.raises(ValueError, match="targets a disk"):
            FaultEvent(t=0.0, kind=DISK_FAIL, disk=0, filer=0)
        with pytest.raises(ValueError, match="targets a filer"):
            FaultEvent(t=0.0, kind=FILER_CRASH, disk=0, duration=1.0)

    def test_duration_rules(self):
        # Windowed kinds require a positive finite duration.
        with pytest.raises(ValueError, match="requires a duration"):
            FaultEvent(t=0.0, kind=DISK_SLOW, disk=0, factor=2.0)
        with pytest.raises(ValueError, match="requires a duration"):
            FaultEvent(t=0.0, kind=FILER_CRASH, filer=0)
        with pytest.raises(ValueError, match="positive"):
            FaultEvent(t=0.0, kind=DISK_FAIL, disk=0, duration=-1.0)
        # disk_fail without duration is legal: permanent until recover.
        ev = FaultEvent(t=0.5, kind=DISK_FAIL, disk=3)
        assert ev.end is None
        assert FaultEvent(t=0.5, kind=DISK_FAIL, disk=3, duration=1.5).end == 2.0

    def test_factor_and_extra_s_rules(self):
        with pytest.raises(ValueError, match="factor >= 1"):
            FaultEvent(t=0.0, kind=DISK_SLOW, disk=0, factor=0.5, duration=1.0)
        with pytest.raises(ValueError, match="only valid for disk_slow"):
            FaultEvent(t=0.0, kind=DISK_FAIL, disk=0, factor=2.0)
        with pytest.raises(ValueError, match="extra_s > 0"):
            FaultEvent(t=0.0, kind=LINK_DEGRADE, filer=0, duration=1.0, extra_s=0.0)
        with pytest.raises(ValueError, match="only valid for link_degrade"):
            FaultEvent(t=0.0, kind=FILER_CRASH, filer=0, duration=1.0, extra_s=0.01)


# ------------------------------------------------------------------ plans


SCENARIO = [
    {"at": 0.5, "fault": "disk_fail", "disk": 3},
    {"at": 2.0, "fault": "disk_recover", "disk": 3},
    {"at": 0.2, "fault": "disk_slow", "disk": 7, "factor": 4.0, "duration": 1.5},
    {"at": 1.0, "fault": "filer_crash", "filer": 0, "duration": 0.5},
    {"at": 0.0, "fault": "link_degrade", "filer": 1, "extra_s": 0.05, "duration": 2.0},
]


class TestFaultPlan:
    def test_events_sorted_and_order_independent(self):
        a = FaultPlan.from_scenario(SCENARIO)
        b = FaultPlan.from_scenario(list(reversed(SCENARIO)))
        assert a == b
        assert hash(a) == hash(b)
        assert [e.t for e in a] == sorted(e.t for e in a)

    def test_scenario_round_trip(self):
        plan = FaultPlan.from_scenario(SCENARIO)
        again = FaultPlan.from_scenario(plan.describe())
        assert again == plan
        # The spec is JSON-serialisable.
        assert FaultPlan.from_scenario(json.loads(json.dumps(plan.describe()))) == plan

    def test_scenario_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unexpected keys"):
            FaultPlan.from_scenario([{"at": 0.0, "fault": "disk_fail", "disk": 0,
                                      "factor": 2.0}])
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_scenario([{"at": 0.0, "fault": "nope", "disk": 0}])
        with pytest.raises(ValueError, match="missing"):
            FaultPlan.from_scenario([{"fault": "disk_fail", "disk": 0}])

    def test_double_fail_rejected(self):
        with pytest.raises(ValueError, match="already failed"):
            FaultPlan([
                FaultEvent(t=0.0, kind=DISK_FAIL, disk=1),
                FaultEvent(t=1.0, kind=DISK_FAIL, disk=1),
            ])

    def test_recover_without_fail_rejected(self):
        with pytest.raises(ValueError, match="without a preceding"):
            FaultPlan([FaultEvent(t=1.0, kind=DISK_RECOVER, disk=1)])
        # A windowed fail self-recovers: a later explicit recover is a bug.
        with pytest.raises(ValueError, match="without a preceding"):
            FaultPlan([
                FaultEvent(t=0.0, kind=DISK_FAIL, disk=1, duration=0.5),
                FaultEvent(t=1.0, kind=DISK_RECOVER, disk=1),
            ])

    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert plan.is_empty and len(plan) == 0 and plan.describe() == []

    def test_per_target_queries(self):
        plan = FaultPlan.from_scenario(SCENARIO)
        assert {e.kind for e in plan.events_for_disk(3)} == {DISK_FAIL, DISK_RECOVER}
        assert plan.events_for_disk(5) == []
        assert [e.kind for e in plan.events_for_filer(0)] == [FILER_CRASH]


# ------------------------------------------------------------------ disk timeline


class TestDiskTimeline:
    def test_fail_stop_flushes_pending_work(self):
        """Blocks unfinished when the disk dies are lost, not delayed."""
        tl = DiskTimeline(down=[(1.0, 2.0)])
        out = tl.warp(np.array([0.5, 1.0, 1.5, 2.5]), start=0.0)
        # A block completing exactly at the fail instant made it out.
        assert out.tolist() == [0.5, 1.0, float("inf"), float("inf")]

    def test_start_after_recovery_is_identity(self):
        tl = DiskTimeline(down=[(1.0, 2.0)])
        out = tl.warp(np.array([3.0, 3.5]), start=2.5)
        assert out.tolist() == [3.0, 3.5]

    def test_start_inside_outage_defers_to_recovery(self):
        tl = DiskTimeline(down=[(1.0, 2.0)])
        out = tl.warp(np.array([1.7]), start=1.2)  # 0.5 s of work
        assert out.tolist() == [2.5]

    def test_start_inside_permanent_outage_is_all_inf(self):
        tl = DiskTimeline(down=[(1.0, math.inf)])
        out = tl.warp(np.array([1.7, 2.0]), start=1.2)
        assert np.all(np.isinf(out))

    def test_slowdown_stretches_through_capacity_map(self):
        # Rate 1 on [0,1), rate 1/2 on [1,3), rate 1 after.
        tl = DiskTimeline(slow=[(1.0, 3.0, 2.0)])
        out = tl.warp(np.array([0.5, 1.0, 1.5, 2.5]), start=0.0)
        assert out.tolist() == [0.5, 1.0, 2.0, 3.5]

    def test_slowdown_then_permanent_fail(self):
        tl = DiskTimeline(down=[(2.0, math.inf)], slow=[(0.0, 10.0, 2.0)])
        out = tl.warp(np.array([1.0, 1.5]), start=0.0)
        assert out.tolist() == [2.0, float("inf")]

    def test_overlapping_slowdowns_take_max_factor(self):
        tl = DiskTimeline(slow=[(0.0, 2.0, 2.0), (1.0, 3.0, 4.0)])
        assert tl.rate_at(0.5) == 0.5
        assert tl.rate_at(1.5) == 0.25
        assert tl.rate_at(2.5) == 0.25
        assert tl.rate_at(3.5) == 1.0

    def test_state_queries(self):
        tl = DiskTimeline(down=[(1.0, 2.0), (5.0, math.inf)])
        assert tl.down_at(1.5) and not tl.down_at(0.5) and tl.down_at(7.0)
        assert tl.rate_at(1.5) == 0.0
        assert tl.resume_time(1.5) == 2.0
        assert tl.resume_time(0.5) == 0.5
        assert math.isinf(tl.resume_time(6.0))
        assert tl.next_fail_after(0.0) == 1.0
        assert tl.next_fail_after(1.0) == 5.0
        assert math.isinf(tl.next_fail_after(5.0))
        assert tl.down_forever
        assert not DiskTimeline(down=[(1.0, 2.0)]).down_forever

    def test_overlapping_down_windows_merge(self):
        tl = DiskTimeline(down=[(1.0, 3.0), (2.0, 4.0)])
        assert tl.down == [(1.0, 4.0)]

    def test_from_events(self):
        assert DiskTimeline.from_events([]) is None
        perm = DiskTimeline.from_events([FaultEvent(t=1.0, kind=DISK_FAIL, disk=0)])
        assert perm.down == [(1.0, math.inf)] and perm.down_forever
        windowed = DiskTimeline.from_events(
            [FaultEvent(t=1.0, kind=DISK_FAIL, disk=0, duration=2.0)]
        )
        assert windowed.down == [(1.0, 3.0)]
        paired = DiskTimeline.from_events([
            FaultEvent(t=1.0, kind=DISK_FAIL, disk=0),
            FaultEvent(t=4.0, kind=DISK_RECOVER, disk=0),
        ])
        assert paired.down == [(1.0, 4.0)] and not paired.down_forever

    def test_warp_empty_input(self):
        tl = DiskTimeline(down=[(1.0, 2.0)])
        assert tl.warp(np.array([]), start=0.0).size == 0


# ------------------------------------------------------------------ link timeline


class TestLinkTimeline:
    def test_extra_windows_sum_on_overlap(self):
        tl = LinkTimeline(extra=[(0.0, 1.0, 0.01), (0.5, 1.5, 0.02)])
        assert tl.extra_at(0.2) == pytest.approx(0.01)
        assert tl.extra_at(0.7) == pytest.approx(0.03)
        assert tl.extra_at(1.2) == pytest.approx(0.02)
        assert tl.extra_at(2.0) == 0.0

    def test_response_arrivals_defer_through_blackout(self):
        tl = LinkTimeline(blackout=[(1.0, 2.0)])
        out = tl.response_arrivals(np.array([0.5, 1.5, 2.5]), one_way_s=0.1)
        # The payload ready mid-blackout leaves at the blackout's end.
        assert out.tolist() == pytest.approx([0.6, 2.1, 2.6])

    def test_request_arrival_defers_and_degrades(self):
        tl = LinkTimeline(extra=[(0.0, 1.0, 0.05)], blackout=[(1.0, 2.0)])
        # Sent at 0.9: +0.1 one-way +0.05 degradation lands at 1.05,
        # inside the blackout, so the filer acts on it at 2.0.
        assert tl.request_arrival(0.9, one_way_s=0.1) == pytest.approx(2.0)
        assert tl.request_arrival(2.5, one_way_s=0.1) == pytest.approx(2.6)

    def test_from_windows_none_when_empty(self):
        assert LinkTimeline.from_windows([], []) is None


# ------------------------------------------------------------------ compile


class TestCompilePlan:
    def test_filer_crash_downs_disks_and_blacks_out_link(self):
        plan = FaultPlan.from_scenario(
            [{"at": 1.0, "fault": "filer_crash", "filer": 0, "duration": 0.5}]
        )
        disk_tl, link_tl = compile_plan(plan, disks_per_filer=4, n_disks=8)
        assert set(disk_tl) == {0, 1, 2, 3}
        assert all(disk_tl[d].down == [(1.0, 1.5)] for d in disk_tl)
        assert set(link_tl) == {0}
        assert link_tl[0].blackout == [(1.0, 1.5)]

    def test_link_degrade_touches_only_the_link(self):
        plan = FaultPlan.from_scenario(
            [{"at": 0.0, "fault": "link_degrade", "filer": 1,
              "extra_s": 0.02, "duration": 2.0}]
        )
        disk_tl, link_tl = compile_plan(plan, disks_per_filer=4, n_disks=8)
        assert disk_tl == {}
        assert set(link_tl) == {1}
        assert link_tl[1].extra == [(0.0, 2.0, 0.02)]

    def test_untouched_targets_get_no_timeline(self):
        plan = FaultPlan.from_scenario([{"at": 0.5, "fault": "disk_fail", "disk": 6}])
        disk_tl, link_tl = compile_plan(plan, disks_per_filer=4, n_disks=8)
        assert set(disk_tl) == {6}
        assert link_tl == {}

    def test_empty_plan_compiles_to_nothing(self):
        disk_tl, link_tl = compile_plan(FaultPlan.empty(), 4, 8)
        assert disk_tl == {} and link_tl == {}


# ------------------------------------------------------------------ fault model


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="mttf_s"):
            FaultModel(mttf_s=0.0)
        with pytest.raises(ValueError, match="mttr_s"):
            FaultModel(mttr_s=-1.0)
        with pytest.raises(ValueError, match="slow_factor"):
            FaultModel(slow_factor=0.5)
        with pytest.raises(ValueError, match="horizon"):
            FaultModel().sample_plan(np.random.default_rng(0), 4, 0.0)

    def test_all_inf_rates_sample_empty_plan(self):
        plan = FaultModel().sample_plan(np.random.default_rng(0), 8, 10.0, n_filers=2)
        assert plan.is_empty

    def test_equal_seeds_equal_storms(self):
        model = FaultModel(mttf_s=5.0, mttr_s=2.0, slow_mtbf_s=4.0,
                           filer_crash_mtbf_s=6.0, link_degrade_mtbf_s=6.0)
        a = model.sample_plan(np.random.default_rng(42), 8, 20.0, n_filers=2)
        b = model.sample_plan(np.random.default_rng(42), 8, 20.0, n_filers=2)
        c = model.sample_plan(np.random.default_rng(43), 8, 20.0, n_filers=2)
        assert a == b
        assert len(a) > 0
        assert a != c  # different seed, different storm

    def test_mttr_none_means_permanent_failures(self):
        model = FaultModel(mttf_s=1.0, mttr_s=None)
        plan = model.sample_plan(np.random.default_rng(0), 16, 50.0)
        fails = [e for e in plan if e.kind == DISK_FAIL]
        assert fails and all(e.duration is None for e in fails)

    def test_mttr_draws_repair_windows(self):
        model = FaultModel(mttf_s=1.0, mttr_s=3.0)
        plan = model.sample_plan(np.random.default_rng(0), 16, 50.0)
        fails = [e for e in plan if e.kind == DISK_FAIL]
        assert fails and all(e.duration is not None and e.duration > 0 for e in fails)
