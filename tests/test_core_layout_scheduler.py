"""Tests for layout planning and the access scheduler."""

import numpy as np
import pytest

from repro.core import layout as L
from repro.core.scheduler import AccessScheduler


class TestLayouts:
    def test_striped_round_robin(self):
        p = L.striped(8, 4)
        assert p == [[0, 4], [1, 5], [2, 6], [3, 7]]

    def test_striped_uneven(self):
        p = L.striped(5, 4)
        assert L.placement_counts(p).tolist() == [2, 1, 1, 1]

    def test_rotated_replicas_figure_6_1d(self):
        """The 8-block, 2-replica, 4-disk example of Fig 6-1d."""
        p = L.rotated_replicas(8, 2, 4)
        # Disk 0: replica 0 of blocks {0,4}; replica 1 of blocks {3,7}.
        assert p[0] == [0, 4, 8 + 3, 8 + 7]
        # Every block has exactly 2 copies across distinct disks.
        flat = [b for disk in p for b in disk]
        assert sorted(flat) == list(range(16))

    def test_rotated_replica_disks_distinct(self):
        p = L.rotated_replicas(16, 4, 8)
        owner = {}
        for d, blocks in enumerate(p):
            for b in blocks:
                owner.setdefault(b % 16, set()).add(d)
        assert all(len(disks) == 4 for disks in owner.values())

    def test_coded_balanced(self):
        p = L.coded_balanced(10, 4)
        assert L.placement_counts(p).tolist() == [3, 3, 2, 2]
        assert sorted(b for disk in p for b in disk) == list(range(10))

    def test_unbalanced_assignment(self):
        p = L.unbalanced([3, 0, 1])
        assert L.placement_counts(p).tolist() == [3, 0, 1]
        flat = sorted(b for disk in p for b in disk)
        assert flat == list(range(4))

    def test_unbalanced_total_check(self):
        with pytest.raises(ValueError):
            L.unbalanced([1, 2], n_coded=4)

    def test_imbalance_metric(self):
        assert L.imbalance([[0], [1]]) == 1.0
        assert L.imbalance([[0, 1, 2], [3]]) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            L.striped(4, 0)
        with pytest.raises(ValueError):
            L.rotated_replicas(4, 0, 2)
        with pytest.raises(ValueError):
            L.coded_balanced(4, 0)


class TestScheduler:
    def test_random_selection_distinct_and_in_range(self):
        s = AccessScheduler(128)
        rng = np.random.default_rng(0)
        sel = s.select(64, rng)
        assert len(set(sel.tolist())) == 64
        assert sel.min() >= 0 and sel.max() < 128

    def test_selection_validation(self):
        s = AccessScheduler(16)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            s.select(17, rng)
        with pytest.raises(ValueError):
            s.select(0, rng)
        with pytest.raises(ValueError):
            AccessScheduler(0)
        with pytest.raises(ValueError):
            AccessScheduler(4, strategy="weird")

    def test_random_selection_varies(self):
        s = AccessScheduler(128)
        rng = np.random.default_rng(1)
        a = s.select(8, rng).tolist()
        b = s.select(8, rng).tolist()
        assert a != b

    def test_lightly_loaded_avoids_busy_disks(self):
        s = AccessScheduler(8, strategy="lightly-loaded")
        s.note_assignment([0, 1, 2, 3], [100, 100, 100, 100])
        rng = np.random.default_rng(2)
        sel = set(s.select(4, rng).tolist())
        assert sel == {4, 5, 6, 7}

    def test_load_decrements_on_completion(self):
        s = AccessScheduler(4, strategy="lightly-loaded")
        s.note_assignment([0], [10])
        s.note_completion([0], [10])
        rng = np.random.default_rng(3)
        # With all loads equal again, selection is unconstrained.
        assert len(s.select(4, rng)) == 4

    def test_disks_to_saturate_rule(self):
        s = AccessScheduler(128)
        # 10 Gbps client (1.2 GB/s) over 20 MB/s disks -> ~64 disks (§5.3.1).
        assert s.disks_to_saturate(1.2e9, 20e6) == 60
        with pytest.raises(ValueError):
            s.disks_to_saturate(1e9, 0)


class TestFractionalReplication:
    def test_integer_redundancy_matches_full(self):
        assert L.rotated_replicas_fractional(8, 1.0, 4) == L.rotated_replicas(8, 2, 4)

    def test_half_round_adds_partial_copies(self):
        p = L.rotated_replicas_fractional(8, 0.5, 4)
        total = sum(len(d) for d in p)
        assert total == 8 + 4  # one full copy + half a round

    def test_partial_ids_map_to_low_blocks(self):
        k = 8
        p = L.rotated_replicas_fractional(k, 1.5, 4)
        partial_ids = [b for d in p for b in d if b >= 2 * k]
        assert sorted(b % k for b in partial_ids) == [0, 1, 2, 3]

    def test_zero_redundancy_is_striping_rotation(self):
        p = L.rotated_replicas_fractional(8, 0.0, 4)
        assert sum(len(d) for d in p) == 8

    def test_negative_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            L.rotated_replicas_fractional(8, -0.1, 4)
