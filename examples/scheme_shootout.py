"""Scheme shoot-out: the paper's headline comparison, reproduced live.

Reads 1 GB from 64 heterogeneous disks (random in-disk layouts spanning a
~100x bandwidth spread) under each of the four storage schemes, printing
the three §6.2.3 metrics.  This is Fig 6-6/6-7/6-8 at the baseline point.

Run:  python examples/scheme_shootout.py [trials]
"""

import sys

from repro.core.access import MB, AccessConfig
from repro.experiments.harness import TrialPlan, run_point
from repro.metrics.reporting import format_table


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    plan = TrialPlan(
        access=AccessConfig(
            data_bytes=1024 * MB, block_bytes=1 * MB, n_disks=64, redundancy=3.0
        ),
        mode="read",
        trials=trials,
        seed=7,
    )
    print(f"1 GB read, 64 of 128 disks, 3x redundancy, {trials} trials per scheme\n")
    point = run_point(plan)
    rows = []
    for name, summary in point.items():
        rows.append(
            {
                "scheme": name,
                "bw MB/s": round(summary.bandwidth_mbps, 1),
                "lat s": round(summary.latency_mean_s, 2),
                "lat std s": round(summary.latency_std_s, 2),
                "io ovh": round(summary.io_overhead, 2),
            }
        )
    print(format_table("Headline comparison (paper: 31 / 117 / 228 / 459 MB/s)", rows))

    robo, raid = point["robustore"], point["raid0"]
    print(
        f"\nRobuSTore vs RAID-0: {robo.bandwidth_mbps / raid.bandwidth_mbps:.1f}x "
        f"bandwidth (paper ~15x), "
        f"{raid.latency_std_s / max(robo.latency_std_s, 1e-9):.1f}x lower latency "
        f"std-dev (paper ~5x)"
    )


if __name__ == "__main__":
    main()
