"""Shared cluster under concurrent users (§7.3 future work, realised).

Runs the event-driven reference engine with several clients issuing
simultaneous 64 MB reads over the *same* sixteen disks, comparing how
RAID-0 and RobuSTore degrade — per-client latency, per-client bandwidth
and the aggregate the cluster actually delivers.

Run:  python examples/shared_cluster.py [max_clients]
"""

import sys

from repro.experiments.multiuser import ext_multiuser


def main() -> None:
    max_clients = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    counts = [n for n in (1, 2, 4, 8, 16) if n <= max_clients]
    result = ext_multiuser(client_counts=tuple(counts), trials=3)
    print(result.text())
    robo = {r["clients"]: r for r in result.rows if r["scheme"] == "robustore"}
    raid = {r["clients"]: r for r in result.rows if r["scheme"] == "raid0"}
    top = counts[-1]
    print(
        f"\nat {top} concurrent clients: RobuSTore aggregates "
        f"{robo[top]['aggregate_MBps']} MB/s "
        f"({robo[top]['aggregate_MBps'] / robo[1]['aggregate_MBps']:.2f}x its "
        f"single-client figure) while RAID-0 saturates at "
        f"{raid[top]['aggregate_MBps']} MB/s — the slowest-disk ceiling is "
        "shared, the erasure-coded pool is not."
    )


if __name__ == "__main__":
    main()
