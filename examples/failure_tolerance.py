"""Failure tolerance: reads while disks are dying, then rebuilding.

Erasure-coded symmetric redundancy means *any* sufficient subset of coded
blocks reconstructs the data (§4.1.1) — so RobuSTore reads sail past dead
disks that stop RAID-0 cold and that replication only survives while some
copy of every block remains.  Afterwards, the repair subsystem restores
the lost redundancy onto the survivors (§5.3.1 disaster recovery).

Run:  python examples/failure_tolerance.py
"""

from repro.cluster.server import Cluster
from repro.core import RobuStoreScheme
from repro.core.access import MB, AccessConfig
from repro.core.repair import repair_file
from repro.experiments.extensions import ext_failures
from repro.sim.rng import RngHub


def main() -> None:
    result = ext_failures(failure_counts=(0, 2, 8, 16), data_mb=256, trials=6)
    print(result.text())
    by = {(r["scheme"], r["failed_disks"]): r for r in result.rows}
    print()
    r16 = by[("robustore", 16)]
    print(
        f"with 16 of 128 disks dead, RobuSTore still succeeds "
        f"{r16['success_%']}% of the time at {r16['bw_MBps']} MB/s, while "
        f"RAID-0 succeeds {by[('raid0', 16)]['success_%']}% of the time."
    )

    # --- and then the system heals itself -------------------------------
    print("\nrebuilding the lost redundancy (repair subsystem):")
    cluster = Cluster(n_disks=32)
    hub = RngHub(99)
    scheme = RobuStoreScheme(
        cluster,
        AccessConfig(data_bytes=128 * MB, n_disks=16, redundancy=3.0),
        hub=hub,
    )
    cluster.redraw_disk_states(hub.fresh("env", 0))
    record = scheme.prepare("dataset", 0)
    dead = {record.disk_ids[0], record.disk_ids[1]}
    cluster.redraw_disk_states(hub.fresh("env", 0), failed_disks=dead)
    report = repair_file(scheme, "dataset", trial=1)
    print(
        f"  2 disks lost {report.blocks_lost} coded blocks; reconstruction "
        f"read took {report.read_latency_s:.2f} s, fresh rateless "
        f"replacements written to {report.healthy_disks} survivors in "
        f"{report.write_latency_s:.2f} s."
    )
    after = scheme.read("dataset", 2)
    print(f"  post-repair read: {after.bandwidth_mbps:.0f} MB/s ✔")


if __name__ == "__main__":
    main()
