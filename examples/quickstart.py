"""Quickstart: store and retrieve a file through the RobuSTore client.

Demonstrates the §4.3.1 interface end to end on a simulated 128-disk
cluster: the data is really LT-encoded, speculatively written (leaving an
unbalanced placement), then reconstructed from the blocks that happen to
arrive first — while the simulation reports the latency and bandwidth a
real client would have observed.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.access import MB, AccessConfig
from repro.core.api import RobuStoreClient


def main() -> None:
    client = RobuStoreClient(
        config=AccessConfig(
            data_bytes=64 * MB,   # adjusted per write below
            block_bytes=1 * MB,
            n_disks=32,
            redundancy=3.0,       # 3x coded redundancy (the paper baseline)
        ),
        seed=2024,
    )

    payload = np.random.default_rng(0).integers(0, 256, 24 * MB, np.uint8).tobytes()
    print(f"writing {len(payload) // MB} MB through the speculative writer...")
    with client.open("dataset/genome-tile-17", "w") as f:
        res = f.write(payload)
    print(
        f"  write: {res.bandwidth_mbps:7.1f} MB/s, "
        f"{res.disk_blocks} coded blocks committed "
        f"(target {res.extra['target_blocks']}, overshoot {res.extra['overshoot']})"
    )
    record = client.metadata.lookup("dataset/genome-tile-17")
    counts = [len(p) for p in record.placement]
    print(f"  placement is unbalanced: {min(counts)}..{max(counts)} blocks per disk")

    print("reading it back speculatively...")
    with client.open("dataset/genome-tile-17", "r") as f:
        data, res = f.read()
    assert data == payload, "byte-exact reconstruction failed!"
    print(
        f"  read:  {res.bandwidth_mbps:7.1f} MB/s, latency {res.latency_s:.3f} s, "
        f"reception overhead {res.extra['reception_overhead']:.2f}, "
        f"I/O overhead {res.io_overhead:+.2f}"
    )
    print("  data verified byte-exact after out-of-order partial retrieval ✔")


if __name__ == "__main__":
    main()
