"""Erasure-code playground: compare every code family in the repository.

Encodes the same data with replication, parity, Reed-Solomon, Tornado,
Raptor and (improved) LT codes, then reports rate, reconstruction
flexibility and measured coding throughput — the Chapter 2/5 design-space
tour that led the dissertation to pick LT codes.

Run:  python examples/codes_playground.py
"""

import time

import numpy as np

from repro.coding import (
    ImprovedLTCode,
    ParityCode,
    PeelingDecoder,
    ReedSolomonCode,
    ReplicationCode,
)
from repro.coding.raptor import RaptorCode
from repro.coding.tornado import TornadoCode
from repro.coding.xorblocks import random_blocks
from repro.metrics.reporting import format_table

MB = 1 << 20


def main() -> None:
    rng = np.random.default_rng(0)
    k, block_len = 64, 256 << 10  # 16 MB of data
    data = random_blocks(rng, k, block_len)
    rows = []

    # Replication (4 copies).
    rep = ReplicationCode(k, replicas=4)
    t0 = time.perf_counter()
    coded = rep.encode(data)
    t_enc = time.perf_counter() - t0
    order = rng.permutation(rep.n)
    needed = rep.blocks_needed(order)
    rows.append(_row("replication x4", rep.rate, t_enc, k, block_len, needed, k))

    # Single parity.
    par = ParityCode(k)
    t0 = time.perf_counter()
    par.encode(data)
    t_enc = time.perf_counter() - t0
    rows.append(_row("parity (RAID-5)", par.rate, t_enc, k, block_len, k, k))

    # Reed-Solomon (optimal, any K of N).
    rs = ReedSolomonCode(k, 2 * k)
    t0 = time.perf_counter()
    rs_coded = rs.encode(data)
    t_enc = time.perf_counter() - t0
    ids = rng.choice(rs.n, size=k, replace=False)
    assert np.array_equal(rs.decode(ids, rs_coded[ids]), data)
    rows.append(_row("Reed-Solomon", rs.rate, t_enc, k, block_len, k, k))

    # Tornado (cascade + RS cap).
    tor = TornadoCode(k, beta=0.5, levels=2, rng=rng)
    t0 = time.perf_counter()
    tor.encode(data)
    t_enc = time.perf_counter() - t0
    rows.append(_row("Tornado", tor.rate, t_enc, k, block_len, "~K(1+e)", k))

    # Raptor (pre-code + weak LT).
    rap = RaptorCode(k, precode_rate=0.9, group=64)
    graph = rap.build_graph(4 * rap.m, rng)
    t0 = time.perf_counter()
    rap.encode(data, graph)
    t_enc = time.perf_counter() - t0
    rows.append(_row("Raptor", k / graph.n, t_enc, k, block_len, "~K(1+e)", k))

    # Improved LT (the RobuSTore choice) with measured reception overhead.
    lt = ImprovedLTCode(k, c=1.0, delta=0.5)
    lt_graph = lt.build_graph(4 * k, rng)
    t0 = time.perf_counter()
    lt_coded = lt.encode(data, lt_graph)
    t_enc = time.perf_counter() - t0
    dec = PeelingDecoder(lt_graph, block_len=block_len)
    for cid in rng.permutation(lt_graph.n):
        dec.add(int(cid), lt_coded[cid])
        if dec.is_complete:
            break
    assert np.array_equal(dec.get_data(), data)
    rows.append(
        _row("LT (improved)", 0.25, t_enc, k, block_len, dec.blocks_used, k)
    )

    print(format_table("Erasure-code design space (16 MB, K=64)", rows))
    print(
        "\nLT wins for RobuSTore: rateless (flexible redundancy), XOR-only"
        "\n(high throughput), long code words — at ~40-50% reception overhead."
    )


def _row(name, rate, t_enc, k, block_len, needed, k_opt):
    return {
        "code": name,
        "rate": round(rate, 3),
        "enc MB/s": round(k * block_len / MB / max(t_enc, 1e-9), 1),
        "blocks needed": needed,
        "optimal": k_opt,
    }


if __name__ == "__main__":
    main()
