"""Trace-driven drive analysis: synthesise, save, replay, compare.

Uses the trace machinery to study a single drive the way storage teams
study production devices: generate a trace from a workload model, replay
it under different queue-scheduling disciplines, and compare response-time
distributions.  (§7.3 notes the original study lacked traces — this is the
tooling it wished for.)

Run:  python examples/trace_replay.py
"""

import numpy as np

from repro.disk.trace import dump_trace, parse_trace, replay_trace, synthesize_trace
from repro.disk.workload import InDiskLayout
from repro.metrics.reporting import format_table


def main() -> None:
    rng = np.random.default_rng(11)
    # A bursty scattered read workload: 4 KB random requests at 400 Hz.
    records = synthesize_trace(
        InDiskLayout(blocking_factor=8, p_sequential=0.0),
        total_sectors=8 * 400,
        arrival_rate_hz=400.0,
        rng=rng,
    )
    text = dump_trace(records)
    print(f"synthesised {len(records)} requests "
          f"({text.count(chr(10)) - 1} trace lines); first three:")
    for line in text.splitlines()[1:4]:
        print("   ", line)

    records = parse_trace(text)  # round-trip through the on-disk format
    rows = []
    for sched in ("fcfs", "sstf", "elevator"):
        report = replay_trace(records, rng=np.random.default_rng(42), scheduler=sched)
        rows.append(
            {
                "scheduler": sched,
                "mean resp (ms)": round(report.mean_response_s * 1000, 1),
                "p99 resp (ms)": round(report.p99_response_s * 1000, 1),
                "makespan (s)": round(report.makespan_s, 2),
            }
        )
    print()
    print(format_table("Replay under different disk schedulers", rows))
    print("\nSeek-aware disciplines (SSTF/elevator) cut response times on"
          "\nscattered load — the §2.1.1 disk behaviour the simulator models.")


if __name__ == "__main__":
    main()
