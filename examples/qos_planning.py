"""QoS-driven access planning (Appendix B + §5.3 sizing rules).

A scientific application opens a dataset with performance requirements;
the layout planner sizes the access (#disks, redundancy) from the pool
statistics, and the simulation shows the plan actually meeting the target.

Run:  python examples/qos_planning.py
"""

from repro.core.access import MB, AccessConfig
from repro.core.qos import DiskProfile, QoSOptions, plan_access
from repro.experiments.harness import TrialPlan, run_scheme
from repro.metrics.stats import summarize


def main() -> None:
    base = AccessConfig(data_bytes=512 * MB, block_bytes=1 * MB, n_disks=8)
    profile = DiskProfile(avg_bandwidth_mbps=16, peak_bandwidth_mbps=45, pool_size=128)

    for label, qos in [
        ("interactive visualisation (300 MB/s, tight jitter)",
         QoSOptions(target_bandwidth_mbps=300, max_latency_std_s=0.3)),
        ("bulk archival staging (modest bandwidth, cheap storage)",
         QoSOptions(target_bandwidth_mbps=60, redundancy_budget=1.0)),
    ]:
        cfg = plan_access(base, qos, profile)
        print(f"\n{label}")
        print(
            f"  planned: {cfg.n_disks} disks, redundancy D={cfg.redundancy:.1f}, "
            f"{cfg.block_bytes // MB} MB blocks"
        )
        summary = summarize(
            run_scheme(TrialPlan(access=cfg, mode="read", trials=10, seed=3), "robustore")
        )
        met = "MET" if summary.bandwidth_mbps >= qos.target_bandwidth_mbps else "missed"
        print(
            f"  simulated: {summary.bandwidth_mbps:.0f} MB/s "
            f"(target {qos.target_bandwidth_mbps:.0f} -> {met}), "
            f"latency {summary.latency_mean_s:.2f} ± {summary.latency_std_s:.2f} s"
        )


if __name__ == "__main__":
    main()
