"""Bench: Figs 6-24/6-25 — homogeneous layout + homogeneous bg load."""

from conftest import run_once

from repro.experiments.competitive_experiments import fig6_24


def test_fig6_24(benchmark):
    result = run_once(benchmark, fig6_24, intervals_ms=(6, 20, 80, 200))
    print("\n" + result.text())
    bw = result.series("bandwidth_mbps")

    # Paper shape: everyone speeds up as the background gets lighter...
    for scheme, ys in bw.items():
        assert ys[-1] > ys[0], scheme

    # ...and this is the one environment where RobuSTore *loses* (it pays
    # LT reception overhead with no heterogeneity to tolerate), though by
    # much less than the 50% overhead (paper: ~18% below RRAID-S's peak).
    assert bw["robustore"][-1] < bw["rraid-s"][-1]
    assert bw["robustore"][-1] > 0.5 * bw["rraid-s"][-1]
