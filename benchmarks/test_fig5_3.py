"""Bench: Fig 5-3 — real LT decoding bandwidth and reception overhead."""

from conftest import run_once

from repro.experiments.coding_experiments import fig5_3


def test_fig5_3(benchmark):
    result = run_once(benchmark, fig5_3, block_kb=32)
    print("\n" + result.text())
    rows = result.rows
    # Decoding must sustain hundreds of MB/s (paper: ~400-550 on a 2.8 GHz
    # Opteron; numpy XOR is memory-bound and comfortably exceeds that).
    assert max(r.decode_mbps for r in rows) > 200
    # The (C, delta) trade-off: the densest setting has the lowest
    # reception overhead.
    by_ovh = sorted(rows, key=lambda r: r.reception_overhead)
    assert by_ovh[0].reception_overhead < by_ovh[-1].reception_overhead
