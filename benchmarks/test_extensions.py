"""Benches: extension experiments (multi-user, update, parallel coding,
QoS admission)."""

import pytest

from conftest import run_once

from repro.experiments.extensions import (
    ext_parallel_coding,
    ext_qos_admission,
    ext_update,
)
from repro.experiments.multiuser import ext_multiuser


def test_ext_multiuser(benchmark):
    result = run_once(benchmark, ext_multiuser, client_counts=(1, 4), trials=2)
    print("\n" + result.text())
    rows = {(r["scheme"], r["clients"]): r for r in result.rows}
    # RobuSTore's aggregate throughput grows with concurrent clients
    # while RAID-0's saturates at the slowest-disk ceiling.
    assert rows[("robustore", 4)]["aggregate_MBps"] > rows[("robustore", 1)]["aggregate_MBps"]
    assert rows[("robustore", 4)]["per_client_MBps"] > rows[("raid0", 4)]["per_client_MBps"]


def test_ext_update(benchmark):
    result = run_once(benchmark, ext_update, ks=(128, 1024))
    print("\n" + result.text())
    by_k = {r["K"]: r for r in result.rows}
    # Paper's example: K=1024 touches ~20 coded blocks, ~0.5% of the data,
    # versus ~75% for an optimal code at the same rate.
    assert 10 <= by_k[1024]["blocks_rewritten"] <= 35
    assert by_k[1024]["fraction_%"] < 1.0
    assert by_k[1024]["optimal_code_%"] > 70


def test_ext_parallel_coding(benchmark):
    result = run_once(benchmark, ext_parallel_coding, workers=(1, 2))
    print("\n" + result.text())
    assert all(r["encode_MBps"] > 0 for r in result.rows)


def test_ext_qos_admission(benchmark):
    result = run_once(benchmark, ext_qos_admission)
    print("\n" + result.text())
    rows = {r["class"]: r for r in result.rows}
    # Priority admission never refuses the interactive class while
    # capacity forces batch spill/refusal.
    assert rows["interactive"]["refused"] == 0
    assert rows["batch"]["refused"] > 0


def test_ext_failures(benchmark):
    from repro.experiments.extensions import ext_failures

    result = run_once(benchmark, ext_failures, failure_counts=(0, 4, 16), data_mb=256, trials=6)
    print("\n" + result.text())
    by = {(r["scheme"], r["failed_disks"]): r for r in result.rows}
    # Erasure coding survives what kills striping.
    assert by[("robustore", 16)]["success_%"] == 100
    assert by[("raid0", 16)]["success_%"] < 30
    assert by[("robustore", 16)]["bw_MBps"] > 0.5 * by[("robustore", 0)]["bw_MBps"]


def test_ext_baselines(benchmark):
    from repro.experiments.extensions import ext_baselines

    result = run_once(benchmark, ext_baselines, data_mb=512, trials=6)
    print("\n" + result.text())
    bw = {r["scheme"]: r["bw_MBps"] for r in result.rows}
    # Fault-free RAID-5 reads like RAID-0 (parity is dead weight);
    # mirroring helps some; RobuSTore dominates the whole family.
    assert bw["raid5"] == pytest.approx(bw["raid0"], rel=0.25)
    assert bw["raid0+1"] > bw["raid0"]
    assert bw["robustore"] > 2 * max(v for k, v in bw.items() if k != "robustore")


def test_ext_wan_regime(benchmark):
    from repro.experiments.extensions import ext_wan_regime

    result = run_once(benchmark, ext_wan_regime, trials=4)
    print("\n" + result.text())
    by = {(r["network"], r["scheme"]): r["bw_MBps"] for r in result.rows}
    fast = [k for k in by if k[0].startswith("fast")]
    wan = [k for k in by if not k[0].startswith("fast")]
    fast_ratio = by[fast[0]] / by[fast[1]] if "rs" in fast[1][1] else by[fast[1]] / by[fast[0]]
    wan_lt = next(v for (n, s), v in by.items() if not n.startswith("fast") and s == "robustore")
    wan_rs = next(v for (n, s), v in by.items() if not n.startswith("fast") and s == "robustore-rs")
    # Fast networks: LT dominates by an order of magnitude (§5.2.1).
    fast_lt = next(v for (n, s), v in by.items() if n.startswith("fast") and s == "robustore")
    fast_rs = next(v for (n, s), v in by.items() if n.startswith("fast") and s == "robustore-rs")
    assert fast_lt > 10 * fast_rs
    # Slow WAN: the gap collapses (Collins & Plank's regime) — RS within ~25%.
    assert wan_rs > 0.75 * wan_lt


def test_ext_repair(benchmark):
    from repro.experiments.repair_experiment import ext_repair

    result = run_once(benchmark, ext_repair, trials=3)
    print("\n" + result.text())
    # Repair bandwidth per disk failure orders by coding family:
    # regenerating node repair < RS group reconstruction < LT whole-object
    # re-read (Dimakis et al.'s hierarchy, at equal storage overhead).
    bpf = result.bytes_per_failure
    assert bpf["regen-mbr"] < bpf["regen-msr"] < bpf["robustore-rs"]
    assert bpf["robustore-rs"] < bpf["robustore"]
