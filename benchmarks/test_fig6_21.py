"""Bench: Figs 6-21/6-22/6-23 — read-after-write (unbalanced striping)."""

from conftest import run_once

from repro.experiments.layout_experiments import fig6_21


def test_fig6_21(benchmark):
    result = run_once(benchmark, fig6_21, redundancies=(1.0, 3.0, 5.0))
    print("\n" + result.text())
    bw = result.series("bandwidth_mbps")
    std = result.series("latency_std_s")
    io = result.series("io_overhead")
    at3 = result.xs.index(3.0)

    # Paper shape: RobuSTore with unbalanced striping is slightly worse
    # than with balanced striping but still the best of the four schemes,
    # with the least latency variation; its I/O overhead stays at the
    # LT reception overhead.
    assert bw["robustore"][at3] > bw["rraid-a"][at3]
    assert bw["robustore"][at3] > bw["rraid-s"][at3]
    # Far steadier than the replicated schemes (RAID-0's sigma is an
    # artefact of its constant slowest-disk-gated latency).
    assert std["robustore"][at3] < std["rraid-s"][at3]
    assert std["robustore"][at3] < std["rraid-a"][at3] + 0.05
    assert io["robustore"][at3] < 1.0
