"""Bench: Table 5-1 — Reed-Solomon coding bandwidth vs word length."""

from conftest import run_once

from repro.experiments.coding_experiments import tab5_1


def test_tab5_1(benchmark):
    result = run_once(benchmark, tab5_1, data_mb=8)
    print("\n" + result.text())
    # Paper shape: bandwidth inversely proportional to K (quadratic cost).
    enc = [r.encode_mbps for r in result.rows]  # K = 4, 8, 16, 32
    assert enc[0] > enc[-1] * 2
    dec = [r.decode_mbps for r in result.rows]
    assert dec[0] > dec[-1] * 2
