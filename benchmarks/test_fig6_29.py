"""Bench: Figs 6-29/6-30/6-31 — write vs redundancy, heterogeneous bg."""

from conftest import run_once

from repro.experiments.competitive_experiments import fig6_29


def test_fig6_29(benchmark):
    result = run_once(benchmark, fig6_29, redundancies=(1.0, 3.0, 5.0))
    print("\n" + result.text())
    bw = result.series("bandwidth_mbps")
    std = result.series("latency_std_s")
    xs = result.xs
    at3 = xs.index(3.0)

    # Paper shape: write bandwidth decreases with redundancy; RobuSTore
    # delivers much higher bandwidth and much steadier latency than the
    # uniform writers even under competitive load.
    assert bw["rraid-s"][xs.index(1.0)] > bw["rraid-s"][xs.index(5.0)]
    assert bw["robustore"][at3] > 3 * bw["rraid-s"][at3]
    assert std["robustore"][at3] < std["rraid-s"][at3]
