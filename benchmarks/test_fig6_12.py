"""Bench: Figs 6-12/6-13/6-14 — read vs network latency (two sizes)."""

from conftest import run_once

from repro.experiments.layout_experiments import fig6_12


def test_fig6_12(benchmark):
    big = run_once(benchmark, fig6_12, rtts_ms=(1, 25, 100))
    small = fig6_12(rtts_ms=(1, 25, 100), data_mb=128)
    print("\n" + big.text())
    print("\n" + small.text())

    # Paper shape: speculative schemes pay a single RTT, so going from
    # 1 ms to 100 ms adds at most ~a round trip of absolute latency...
    for result in (big, small):
        lat = result.series("latency_mean_s")
        for scheme in ("raid0", "rraid-s", "robustore"):
            assert lat[scheme][-1] - lat[scheme][0] < 0.30, scheme
    # ...while adaptive RRAID-A pays a round trip per hand-off and loses
    # multiple RTTs of latency (paper: -30% bandwidth for 1 GB).
    lat_a = big.series("latency_mean_s")["rraid-a"]
    bw_big = big.series("bandwidth_mbps")["rraid-a"]
    assert lat_a[-1] - lat_a[0] > 0.25
    assert bw_big[-1] > 0.5 * bw_big[0]
