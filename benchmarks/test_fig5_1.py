"""Bench: Fig 5-1 — LT reception overhead across C and delta."""

from conftest import run_once

from repro.experiments.coding_experiments import fig5_1


def test_fig5_1(benchmark):
    result = run_once(benchmark, fig5_1, ks=(128, 512, 1024))
    print("\n" + result.text())
    # Paper shape: at K=1024 good parameters reach overhead ~0.3-0.5;
    # larger C raises the overhead (more low-degree blocks).
    assert result.mean[(1024, 2.0, 0.5)] > result.mean[(1024, 0.1, 0.5)]
    best = min(result.mean[(1024, c, d)] for c in result.cs for d in result.deltas)
    assert best < 0.5
