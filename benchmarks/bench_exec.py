"""Sequential vs parallel wall-clock for a fixed smoke grid.

Runs the same experiment grid twice through :mod:`repro.exec` — once
in-process (``jobs=1``) and once over a worker pool — verifies the
outputs are byte-identical, and writes ``BENCH_exec.json`` with both
timings.  CI uploads the file as an artifact; the committed copy at the
repo root records the container this revision was developed in.

Usage::

    PYTHONPATH=src python benchmarks/bench_exec.py --out BENCH_exec.json

Not a pytest-benchmark target on purpose: the comparison needs to own
the executor (pool size, no cache), not inherit the harness fixture.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

#: The smoke grid: small enough for CI, large enough (32 jobs at 16
#: trials each) that pool startup amortizes and the sequential/parallel
#: ratio is meaningful.
GRID = ("fig6_06", "ext_faultstorm")
TRIALS = 16
DATA_MB = 64


def run_grid(jobs: int) -> tuple[float, list[str], object]:
    """Run the grid under one executor; return (wall_s, outputs, stats)."""
    from repro.exec import Executor, use_executor
    from repro.experiments import REGISTRY

    executor = Executor(jobs=jobs, store=None)
    outputs: list[str] = []
    t0 = time.perf_counter()
    with use_executor(executor):
        for exp_id in GRID:
            outputs.append(REGISTRY[exp_id]().text())
    return time.perf_counter() - t0, outputs, executor.stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_exec.json", metavar="PATH")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="pool size for the parallel leg (default: min(4, cpu_count), at least 2)",
    )
    args = parser.parse_args(argv)

    os.environ["REPRO_TRIALS"] = str(TRIALS)
    os.environ["REPRO_DATA_MB"] = str(DATA_MB)

    cpu = os.cpu_count() or 1
    # Floor at 2 so the ProcessPool path is always exercised, even on a
    # single-core host where no speedup is expected.
    jobs = args.jobs if args.jobs is not None else max(2, min(4, cpu))

    seq_s, seq_out, seq_stats = run_grid(jobs=1)
    par_s, par_out, par_stats = run_grid(jobs=jobs)
    identical = seq_out == par_out
    if not identical:
        print("FATAL: parallel output differs from sequential", file=sys.stderr)

    bench = {
        "grid": list(GRID),
        "trials": TRIALS,
        "data_mb": DATA_MB,
        "cpu_count": cpu,
        "jobs": jobs,
        "n_jobs_submitted": seq_stats.submitted,
        "sequential_s": round(seq_s, 3),
        "parallel_s": round(par_s, 3),
        "speedup": round(seq_s / par_s, 3) if par_s > 0 else None,
        "identical_output": identical,
    }
    with open(args.out, "w") as fh:
        json.dump(bench, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    assert par_stats.submitted == seq_stats.submitted
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
