"""Bench: Fig 6-5 — background-workload impact on foreground bandwidth."""

from conftest import run_once

from repro.experiments.disk_experiments import fig6_5


def test_fig6_5(benchmark):
    result = run_once(benchmark, fig6_5)
    print("\n" + result.text())
    bws = result.fg_bandwidth_mbps
    # Paper shape: ~93% utilisation at 6 ms; foreground bandwidth grows
    # monotonically as background requests arrive less frequently.
    assert result.bg_utilization[0] > 0.85
    assert all(b >= a for a, b in zip(bws, bws[1:]))
    assert bws[-1] > 5 * bws[0]
