"""Bench: Figs 6-6/6-7/6-8 — read vs number of disks."""

from conftest import run_once

from repro.experiments.layout_experiments import fig6_06


def test_fig6_06(benchmark):
    result = run_once(benchmark, fig6_06, disk_counts=(2, 8, 16, 64, 128))
    print("\n" + result.text())
    bw = result.series("bandwidth_mbps")
    std = result.series("latency_std_s")
    io = result.series("io_overhead")

    at64 = result.xs.index(64)
    # Paper shape at 64 disks: RobuSTore ~15x RAID-0; ordering
    # RobuSTore > RRAID-A >~ RRAID-S > RAID-0 (small tolerance on the
    # middle pair, which the paper separates by ~2x at 100 trials).
    assert bw["robustore"][at64] > 8 * bw["raid0"][at64]
    assert bw["robustore"][at64] > bw["rraid-a"][at64]
    assert bw["rraid-a"][at64] > 0.85 * bw["rraid-s"][at64]
    assert bw["rraid-s"][at64] > bw["raid0"][at64]

    # Only RobuSTore improves ~linearly with disk count.
    at8 = result.xs.index(8)
    assert bw["robustore"][at64] > 4 * bw["robustore"][at8]
    assert bw["raid0"][at64] < 3 * bw["raid0"][at8]

    # Robustness: RobuSTore has the lowest latency variation at scale;
    # RRAID-S the highest.
    assert std["robustore"][at64] <= min(std[s][at64] for s in std)
    assert std["rraid-s"][at64] >= max(std[s][at64] for s in std) * 0.99

    # I/O overheads: RAID-0 zero, RRAID-A ~zero, RobuSTore ~40-60%,
    # RRAID-S up to ~200%+.
    assert io["raid0"][at64] == 0.0
    assert io["rraid-a"][at64] < 0.15
    assert 0.2 < io["robustore"][at64] < 0.9
    assert io["rraid-s"][at64] > 1.0
