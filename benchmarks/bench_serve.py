"""Serving-throughput benchmark for the ``repro.serve`` facade.

Runs one serving cell per scheme at a growing client population and
reports the *simulator's* throughput — how many open-loop requests the
facade places, admits and meters per wall-clock second — plus the
cell's SLO headline.  Verifies along the way that re-running a cell
reproduces its report exactly (the byte-identity the executor cache
rests on).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json

Not a pytest-benchmark target on purpose: the interesting axis is
requests/second *of the facade itself* across population sizes, which
needs to own its plans rather than inherit the harness fixture.
"""

from __future__ import annotations

import argparse
import json
import time

#: Client populations benchmarked (each client issues one request).
POPULATIONS = (1_000, 10_000, 100_000)
SCHEMES = ("raid0", "robustore")


def run_cell(scheme: str, n_clients: int) -> dict:
    """One serving cell; returns timing plus the report headline."""
    from repro.serve import ServePlan, StorageService, WorkloadSpec

    plan = ServePlan(workload=WorkloadSpec(n_clients=n_clients), seed=0)
    t0 = time.perf_counter()
    report = StorageService(plan, scheme).run()
    wall_s = time.perf_counter() - t0
    again = StorageService(plan, scheme).run()
    return {
        "scheme": scheme,
        "n_clients": n_clients,
        "wall_s": round(wall_s, 3),
        "requests_per_s": round(report.offered / wall_s, 1),
        "p50_s": round(report.p50_s, 4),
        "p99_s": round(report.p99_s, 4),
        "goodput_mbps": round(report.goodput_mbps, 1),
        "rejection_rate": round(report.rejection_rate, 4),
        "reproducible": again == report,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve.json", metavar="PATH")
    parser.add_argument(
        "--populations",
        default=None,
        help="comma-separated client counts (default: 1000,10000,100000)",
    )
    args = parser.parse_args(argv)
    pops = (
        tuple(int(p) for p in args.populations.split(","))
        if args.populations
        else POPULATIONS
    )

    cells = [run_cell(s, n) for n in pops for s in SCHEMES]
    bench = {
        "populations": list(pops),
        "schemes": list(SCHEMES),
        "cells": cells,
        "all_reproducible": all(c["reproducible"] for c in cells),
    }
    with open(args.out, "w") as fh:
        json.dump(bench, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    return 0 if bench["all_reproducible"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
