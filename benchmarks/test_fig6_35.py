"""Bench: Figs 6-35/6-36 — filesystem-cache impact."""

from conftest import run_once

from repro.experiments.cache_experiments import fig6_35


def test_fig6_35(benchmark):
    result = run_once(benchmark, fig6_35)
    print("\n" + result.text())
    bw = result.series("bandwidth_mbps")
    uncached, cached = 0, 1

    # Paper shape: caching raises bandwidth for every scheme (partial hits
    # survive the aging by competing traffic); RobuSTore remains on top.
    for scheme, ys in bw.items():
        assert ys[cached] >= ys[uncached] * 0.95, scheme
    assert bw["robustore"][cached] > bw["robustore"][uncached]
    assert bw["robustore"][cached] >= max(ys[cached] for ys in bw.values()) * 0.999
    std = result.series("latency_std_s")
    assert std["robustore"][cached] <= 1.5 * min(ys[cached] for ys in std.values()) + 0.05
