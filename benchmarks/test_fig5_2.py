"""Bench: Fig 5-2 — edges used during LT decoding (CPU-cost proxy)."""

from conftest import run_once

from repro.experiments.coding_experiments import fig5_2


def test_fig5_2(benchmark):
    result = run_once(benchmark, fig5_2)
    print("\n" + result.text())
    # Paper shape: C and delta trade CPU cost against reception overhead —
    # small delta / small C densify the graph (more edges to peel).
    k = 1024
    assert result.mean[(k, 0.1, 0.01)] > result.mean[(k, 2.0, 0.5)]
