"""Bench: Table 6-1 — calibrated disk bandwidth grid."""

from conftest import run_once

from repro.experiments.disk_experiments import tab6_1


def test_tab6_1(benchmark):
    result = run_once(benchmark, tab6_1, total_mb=32)
    print("\n" + result.text())
    stats = result.stats
    # Paper: 0.52..53 MB/s, mean 14.9, ~100x spread.
    assert stats["min_mbps"] < 1.0
    assert stats["max_mbps"] > 25.0
    assert 10 < stats["mean_mbps"] < 22
    assert stats["spread"] > 40
