"""Benchmark-harness defaults.

Benchmarks regenerate every table and figure of the evaluation.  By
default they run at a reduced scale so `pytest benchmarks/ --benchmark-only`
finishes in minutes; export paper-scale knobs for a full run::

    REPRO_TRIALS=100 REPRO_DATA_MB=1024 pytest benchmarks/ --benchmark-only

``REPRO_JOBS=N`` fans each experiment's jobs over N worker processes via
:mod:`repro.exec` (results are bit-identical to sequential).  Benchmarks
always run uncached — a cache hit would time the cache, not the work.
"""

import os

import pytest

os.environ.setdefault("REPRO_TRIALS", "8")
# The scheme-ordering results (e.g. RRAID-A vs RRAID-S) are statements
# about the paper's 1 GB working point; don't shrink the data size.
os.environ.setdefault("REPRO_DATA_MB", "1024")
os.environ.setdefault("REPRO_CODING_SAMPLES", "4")


@pytest.fixture(autouse=True)
def _exec_pool():
    """Honor ``REPRO_JOBS`` for every benchmark, cache disabled."""
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    if jobs <= 1:
        yield
        return
    from repro.exec import Executor, use_executor

    with use_executor(Executor(jobs=jobs, store=None)):
        yield


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
