"""Benchmark-harness defaults.

Benchmarks regenerate every table and figure of the evaluation.  By
default they run at a reduced scale so `pytest benchmarks/ --benchmark-only`
finishes in minutes; export paper-scale knobs for a full run::

    REPRO_TRIALS=100 REPRO_DATA_MB=1024 pytest benchmarks/ --benchmark-only
"""

import os

os.environ.setdefault("REPRO_TRIALS", "8")
# The scheme-ordering results (e.g. RRAID-A vs RRAID-S) are statements
# about the paper's 1 GB working point; don't shrink the data size.
os.environ.setdefault("REPRO_DATA_MB", "1024")
os.environ.setdefault("REPRO_CODING_SAMPLES", "4")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
