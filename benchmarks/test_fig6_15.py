"""Bench: Figs 6-15/6-16/6-17 — read vs degree of data redundancy."""

from conftest import run_once

from repro.experiments.layout_experiments import fig6_15


def test_fig6_15(benchmark):
    result = run_once(benchmark, fig6_15, redundancies=(0.0, 1.0, 2.0, 3.0, 5.0))
    print("\n" + result.text())
    bw = result.series("bandwidth_mbps")
    std = result.series("latency_std_s")
    io = result.series("io_overhead")
    xs = result.xs

    # Paper shape: RobuSTore bandwidth rises rapidly and approaches its
    # best above ~200% redundancy.
    robo = bw["robustore"]
    assert robo[xs.index(2.0)] > 3 * robo[xs.index(0.0)]
    assert robo[xs.index(5.0)] < 1.5 * robo[xs.index(2.0)]

    # 1-2x redundancy already buys most of the robustness benefit.
    assert std["robustore"][xs.index(2.0)] < std["robustore"][xs.index(0.0)]

    # I/O overhead: RRAID-S grows with redundancy; RobuSTore stays at its
    # reception overhead; RRAID-A near zero.
    assert io["rraid-s"][-1] > io["rraid-s"][xs.index(1.0)]
    assert io["robustore"][-1] < 1.0
    assert io["rraid-a"][-1] < 0.15
