"""Bench: Figs 6-26/6-27/6-28 — read vs redundancy, heterogeneous bg."""

from conftest import run_once

from repro.experiments.competitive_experiments import fig6_26


def test_fig6_26(benchmark):
    result = run_once(benchmark, fig6_26, redundancies=(0.5, 2.0, 3.0, 5.0))
    print("\n" + result.text())
    bw = result.series("bandwidth_mbps")
    std = result.series("latency_std_s")
    io = result.series("io_overhead")
    xs = result.xs

    # Paper shape: RobuSTore's read bandwidth rises quickly with
    # redundancy and dominates under competitive load.
    assert bw["robustore"][xs.index(3.0)] > bw["robustore"][xs.index(0.5)]
    at3 = xs.index(3.0)
    assert bw["robustore"][at3] > bw["rraid-s"][at3]
    assert bw["robustore"][at3] > bw["raid0"][at3]

    # Beyond moderate redundancy its variation is the lowest.
    assert std["robustore"][at3] <= std["rraid-s"][at3]

    # I/O overheads keep their signatures under load.
    assert io["robustore"][at3] < 1.0
    assert io["rraid-a"][at3] < 0.15
    assert io["rraid-s"][-1] > 1.0
