"""Bench: Figs 6-9/6-10/6-11 — read vs coding block size."""

from conftest import run_once

from repro.experiments.layout_experiments import fig6_09


def test_fig6_09(benchmark):
    result = run_once(benchmark, fig6_09, block_mbs=(0.5, 1, 4, 16, 64))
    print("\n" + result.text())
    bw = result.series("bandwidth_mbps")["robustore"]
    io = result.series("io_overhead")["robustore"]
    # Paper shape: RobuSTore bandwidth decreases as blocks grow beyond
    # ~1 MB (wasted in-flight bytes + decode-tail pipelining loss), and its
    # I/O overhead grows with block size.
    at1 = result.xs.index(1)
    at64 = result.xs.index(64)
    assert bw[at1] > bw[at64]
    assert io[at64] > io[at1] - 0.05
