"""Bench: Figs 6-32/6-33/6-34 — read-after-write under heterogeneous bg."""

from conftest import run_once

from repro.experiments.competitive_experiments import fig6_32


def test_fig6_32(benchmark):
    result = run_once(benchmark, fig6_32, redundancies=(1.0, 3.0))
    print("\n" + result.text())
    bw = result.series("bandwidth_mbps")
    std = result.series("latency_std_s")
    io = result.series("io_overhead")
    at3 = result.xs.index(3.0)

    # Paper shape: RobuSTore with unbalanced striping still beats the
    # other three under competitive load, with the least variation, and
    # its I/O overhead stays at the 40-60% reception overhead.
    assert bw["robustore"][at3] > bw["raid0"][at3]
    assert bw["robustore"][at3] > bw["rraid-s"][at3]
    assert std["robustore"][at3] <= min(std[s][at3] for s in std) + 1e-9
    assert 0.2 < io["robustore"][at3] < 1.0
