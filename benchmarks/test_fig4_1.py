"""Bench: Fig 4-1 — cumulative reassembly probability curves."""

from conftest import run_once

from repro.experiments.coding_experiments import fig4_1


def test_fig4_1(benchmark):
    result = run_once(benchmark, fig4_1)
    print("\n" + result.text())
    # Paper shape: ~1.5K blocks for LT-coded vs ~3K for replicated.
    assert result.median_coded < result.median_replicated
    assert 1.2 * 1024 < result.median_coded < 2.2 * 1024
    assert 2.4 * 1024 < result.median_replicated < 3.8 * 1024
