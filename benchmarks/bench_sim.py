"""Hot-path simulator benchmark: fig6_06 grid + DES kernel throughput.

Measures two things and appends them to the ``BENCH_sim.json`` trajectory:

* **fig6_06 grid** — every (disk count, scheme) cell of the paper's
  read-scaling sweep, run sequentially in-process (no executor, no cache)
  so the number is the simulator itself.  Reports wall per trial and
  *events/sec*, where an event is one client-consumed block arrival
  (``AccessResult.blocks_received``) — the unit of work the completion
  loop, trackers and disk-service models all scale with.
* **DES kernel** — schedule/dispatch throughput of the event calendar
  under a timeout-churn workload with duplicate timestamps and mixed
  URGENT/NORMAL priorities (events/sec through ``Environment.step``).

The grid's full ``AccessResult`` stream is folded into a content digest
(:func:`repro.sim.rng.stable_digest`): ``--check`` re-runs the grid and
fails if the digest drifted from the committed file (the simulation is no
longer bit-identical to the recorded baseline) or if events/sec regressed
by more than ``--tolerance`` (default 10%) against the newest committed
trajectory entry — the CI gate that makes every PR's speedup or
regression visible.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py --out BENCH_sim.json
    PYTHONPATH=src python benchmarks/bench_sim.py --check   # CI gate

Not a pytest-benchmark target on purpose: the trajectory file needs to
own its grid parameters (trials, data size) rather than inherit the
harness fixture's.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

#: Grid parameters.  Chosen so the whole grid runs in well under a minute
#: on the 1-core CI container while still covering the 128-disk tail.
DISK_COUNTS = (2, 8, 16, 64, 128)
TRIALS = 16
DATA_MB = 256

#: Events the kernel micro-benchmark dispatches.
KERNEL_EVENTS = 200_000

#: The multi-core speedup target recorded in the file (ROADMAP "Hot-path
#: performance program"); the 1-core container gate is 2x.
MULTICORE_TARGET_X = 5.0


def run_grid() -> tuple[float, int, int, str]:
    """Run the fig6_06 grid sequentially; return (wall, trials, events, digest)."""
    from repro.experiments import config as C
    from repro.experiments.harness import TrialPlan, run_scheme
    from repro.sim.rng import stable_digest

    # Warm lazy imports and numpy kernels outside the timed window with
    # the cheapest grid cell: the number measured is simulator throughput,
    # not one-time module loading.  A prior run_scheme call cannot perturb
    # the grid results — every (plan, scheme) run re-derives its streams
    # from the root seed (the digest is identical with or without warmup).
    run_scheme(
        TrialPlan(access=C.baseline_access(n_disks=DISK_COUNTS[0]), mode="read", seed=0),
        C.ALL_SCHEMES[0],
    )

    n_trials = 0
    events = 0
    payload = []
    t0 = time.perf_counter()
    for h in DISK_COUNTS:
        plan = TrialPlan(access=C.baseline_access(n_disks=h), mode="read", seed=0)
        for name in C.ALL_SCHEMES:
            results = run_scheme(plan, name)
            n_trials += len(results)
            events += sum(r.blocks_received for r in results)
            payload.append((h, name, [r.to_jsonable() for r in results]))
    wall = time.perf_counter() - t0
    digest = stable_digest(json.dumps(payload, sort_keys=True))
    return wall, n_trials, events, digest


def run_kernel(n_events: int = KERNEL_EVENTS) -> tuple[float, int]:
    """Timeout-churn through the DES kernel; return (wall, events dispatched).

    100 processes cycle through delays with heavy timestamp collisions and
    both scheduling priorities (URGENT via process initialisation), the
    adversarial mix the calendar's total order must get right.
    """
    from repro.sim.core import Environment

    env = Environment()
    n_procs = 100
    iters = n_events // n_procs
    delays = (0.0, 0.001, 0.001, 0.002, 0.0, 0.003)

    def churn(env, i):
        for j in range(iters):
            yield env.timeout(delays[(i + j) % len(delays)])

    for i in range(n_procs):
        env.process(churn(env, i))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    # Each iteration dispatches one Timeout event; process start/finish
    # events are a rounding error at this scale.
    return wall, n_procs * iters


def measure(label: str) -> dict:
    """One trajectory entry: grid + kernel measurements."""
    os.environ["REPRO_TRIALS"] = str(TRIALS)
    os.environ["REPRO_DATA_MB"] = str(DATA_MB)
    wall, n_trials, events, digest = run_grid()
    k_wall, k_events = run_kernel()
    return {
        "label": label,
        "grid_wall_s": round(wall, 3),
        "trials": n_trials,
        "wall_per_trial_s": round(wall / n_trials, 5),
        "events": events,
        "events_per_s": round(events / wall, 1),
        "kernel_events_per_s": round(k_events / k_wall, 1),
        "results_digest": digest,
    }


def load(path: pathlib.Path) -> dict | None:
    if not path.exists():
        return None
    return json.loads(path.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_sim.json", metavar="PATH")
    parser.add_argument("--label", default=None, help="trajectory entry label")
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: verify bit-identity and events/sec against --out",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional events/sec regression in --check (default 0.10)",
    )
    args = parser.parse_args(argv)
    path = pathlib.Path(args.out)
    committed = load(path)

    entry = measure(args.label or ("check" if args.check else "dev"))

    if args.check:
        if not committed or not committed.get("trajectory"):
            print(f"FATAL: no committed trajectory at {path}", file=sys.stderr)
            return 1
        latest = committed["trajectory"][-1]
        ok = True
        if entry["results_digest"] != latest["results_digest"]:
            print(
                "FATAL: fig6_06 grid results drifted from the committed "
                f"baseline (digest {entry['results_digest']} != "
                f"{latest['results_digest']}) — the simulator is no longer "
                "bit-identical; regenerate BENCH_sim.json only for a "
                "deliberate semantic change",
                file=sys.stderr,
            )
            ok = False
        floor = (1.0 - args.tolerance) * latest["events_per_s"]
        if entry["events_per_s"] < floor:
            print(
                f"FATAL: events/sec regressed >{args.tolerance:.0%}: "
                f"{entry['events_per_s']} < {floor:.1f} "
                f"(committed {latest['events_per_s']})",
                file=sys.stderr,
            )
            ok = False
        print(json.dumps(entry, indent=2, sort_keys=True))
        print("check:", "OK" if ok else "FAILED")
        return 0 if ok else 1

    bench = committed or {
        "grid": {
            "experiment": "fig6_06",
            "disk_counts": list(DISK_COUNTS),
            "schemes": ["raid0", "rraid-s", "rraid-a", "robustore"],
            "trials": TRIALS,
            "data_mb": DATA_MB,
            "kernel_events": KERNEL_EVENTS,
        },
        "multicore_target_x": MULTICORE_TARGET_X,
        "trajectory": [],
    }
    bench["cpu_count"] = os.cpu_count()
    bench["trajectory"].append(entry)
    base = bench["trajectory"][0]
    bench["speedup_vs_first"] = round(
        entry["events_per_s"] / base["events_per_s"], 3
    )
    bench["kernel_speedup_vs_first"] = round(
        entry["kernel_events_per_s"] / base["kernel_events_per_s"], 3
    )
    path.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
