"""Bench: Figs 6-18/6-19/6-20 — write vs degree of data redundancy."""

from conftest import run_once

from repro.experiments.layout_experiments import fig6_18


def test_fig6_18(benchmark):
    result = run_once(benchmark, fig6_18, redundancies=(0.0, 1.0, 3.0, 5.0))
    print("\n" + result.text())
    bw = result.series("bandwidth_mbps")
    std = result.series("latency_std_s")
    io = result.series("io_overhead")
    xs = result.xs
    at3 = xs.index(3.0)

    # Paper: at 300% redundancy RobuSTore writes ~5x RAID-0 and far above
    # the uniform replicated writers (which are gated by the slowest disk).
    assert bw["robustore"][at3] > 2 * bw["raid0"][at3]
    assert bw["robustore"][at3] > 5 * bw["rraid-s"][at3]

    # Writing more redundancy costs bandwidth for everyone.
    assert bw["rraid-s"][xs.index(1.0)] > bw["rraid-s"][xs.index(5.0)]

    # Robustness: RobuSTore's write latency stays steady in absolute terms
    # (paper: sigma ~0.5 s at D=3; the 10x-vs-RRAID comparison needs the
    # rare no-slowest-disk trials that only ~100-trial runs sample).
    assert std["robustore"][at3] < 0.5

    # Write I/O overhead tracks redundancy (plus RobuSTore's overshoot).
    assert io["rraid-s"][at3] > 2.5
    assert io["robustore"][at3] >= 2.5
