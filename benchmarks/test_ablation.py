"""Benches: design-choice ablations (§5.2.3, §5.3.3, §5.4)."""

from conftest import run_once

from repro.experiments.ablations import abl_admission, abl_cancel, abl_improved_lt


def test_ablation_cancel(benchmark):
    result = run_once(benchmark, abl_cancel)
    print("\n" + result.text())
    # Cancellation turns the I/O overhead from the full redundancy D=3
    # into roughly the LT reception overhead.
    assert result.io_overhead_with_cancel < result.io_overhead_without_cancel / 2


def test_ablation_improved_lt(benchmark):
    result = run_once(benchmark, abl_improved_lt)
    print("\n" + result.text())
    original, improved = result.rows
    # The improved encoder guarantees decodability and equalises coverage.
    assert improved["undecodable"].startswith("0/")
    assert improved["deg_spread"] <= 1.0
    assert original["deg_spread"] > 1.0


def test_ablation_admission(benchmark):
    result = run_once(benchmark, abl_admission)
    print("\n" + result.text())
    last = result.rows[-1]
    # With 32 offered flows, the capacity cap preserves aggregate
    # throughput that uncontrolled sharing destroys.
    assert last["admitted"] == 4
    assert last["agg_thr_capped"] > 2 * last["agg_thr_uncapped"]


def test_ablation_code_choice(benchmark):
    from repro.experiments.ablations import abl_code_choice

    result = run_once(benchmark, abl_code_choice, trials=6)
    print("\n" + result.text())
    by = {r["scheme"]: r for r in result.rows}
    # §5.2.1: the quadratic RS decode tail destroys large-read bandwidth;
    # LT keeps decoding off the critical path.
    assert by["robustore"]["bw_MBps"] > 5 * by["robustore-rs"]["bw_MBps"]
