"""Setup shim.

The project is fully described by pyproject.toml; this file exists so
`pip install -e .` also works on minimal/offline environments whose pip
cannot build PEP 660 editable wheels (no `wheel` package available) and
falls back to the legacy `setup.py develop` path.
"""

from setuptools import setup

setup()
