"""Streaming SLO-grade metrics for the serving simulation.

Mean bandwidth is the wrong lens for a multi-tenant service: designs
differentiate in the tail (p99/p999 latency), in what they still deliver
under overload (goodput), and in how often they have to say no
(rejection rate).  This module accumulates those in O(1) memory per
sample — latency goes into a :class:`repro.metrics.stats.
FixedBinHistogram`, so a 10⁶-request sweep holds a few kilobytes, not a
million floats.

:class:`ServeReport` is the canonical, JSON-round-trippable result of
one serving cell — the byte-identity currency the executor caches and
the experiment renders.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.metrics.stats import FixedBinHistogram

MB = 1 << 20


class SloTracker:
    """Accumulates one serving run's SLO metrics, streaming.

    Parameters
    ----------
    duration_s:
        The workload window; goodput normalises served bytes over it.
    slo_latency_s:
        The latency objective: completed requests at or under it count
        toward goodput, slower ones count as SLO misses.
    """

    def __init__(self, duration_s: float, slo_latency_s: float) -> None:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if slo_latency_s <= 0:
            raise ValueError("slo_latency_s must be positive")
        self.duration_s = float(duration_s)
        self.slo_latency_s = float(slo_latency_s)
        self.hist = FixedBinHistogram()
        self.offered = 0
        self.rejected = 0
        self.failovers = 0
        self.bytes_offered = 0
        self.bytes_good = 0
        self.slo_misses = 0

    def admit(self, latency_s: float, size_bytes: int, failover: bool) -> None:
        """Record one admitted, completed request."""
        self.offered += 1
        self.bytes_offered += int(size_bytes)
        self.failovers += int(failover)
        self.hist.add(latency_s)
        if latency_s <= self.slo_latency_s:
            self.bytes_good += int(size_bytes)
        else:
            self.slo_misses += 1

    def reject(self, size_bytes: int) -> None:
        """Record one request refused at admission (graceful rejection)."""
        self.offered += 1
        self.bytes_offered += int(size_bytes)
        self.rejected += 1

    def report(self, scheme: str, n_clients: int) -> "ServeReport":
        admitted = self.offered - self.rejected
        return ServeReport(
            scheme=scheme,
            n_clients=int(n_clients),
            offered=self.offered,
            admitted=admitted,
            rejected=self.rejected,
            failovers=self.failovers,
            slo_misses=self.slo_misses,
            p50_s=self.hist.p50 if admitted else float("inf"),
            p99_s=self.hist.p99 if admitted else float("inf"),
            p999_s=self.hist.p999 if admitted else float("inf"),
            goodput_mbps=self.bytes_good / MB / self.duration_s,
            offered_mbps=self.bytes_offered / MB / self.duration_s,
            rejection_rate=self.rejected / self.offered if self.offered else 0.0,
        )


@dataclass(frozen=True)
class ServeReport:
    """SLO metrics of one ``(scheme, client count)`` serving cell."""

    scheme: str
    n_clients: int
    offered: int
    admitted: int
    rejected: int
    failovers: int
    slo_misses: int
    p50_s: float
    p99_s: float
    p999_s: float
    goodput_mbps: float
    offered_mbps: float
    rejection_rate: float

    def row(self) -> dict:
        """Table row for :func:`repro.metrics.reporting.format_table`."""

        def _r(v: float, nd: int) -> float | str:
            return "inf" if v == float("inf") else round(v, nd)

        return {
            "scheme": self.scheme,
            "clients": self.n_clients,
            "offered": self.offered,
            "rejected": self.rejected,
            "rej_rate": round(self.rejection_rate, 4),
            "failover": self.failovers,
            "p50_s": _r(self.p50_s, 3),
            "p99_s": _r(self.p99_s, 3),
            "p999_s": _r(self.p999_s, 3),
            "goodput_MBps": round(self.goodput_mbps, 2),
            "offered_MBps": round(self.offered_mbps, 2),
        }

    def to_jsonable(self) -> dict:
        """Lossless JSON form, tagged so the executor can decode it."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["kind"] = "serve"
        return out

    @classmethod
    def from_jsonable(cls, data: dict) -> "ServeReport":
        data = dict(data)
        kind = data.pop("kind", "serve")
        if kind != "serve":
            raise ValueError(f"not a serve report: kind={kind!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ServeReport fields: {sorted(unknown)}")
        return cls(**data)
