"""Serving cells as execution-engine jobs.

:class:`ServeJob` speaks the same duck-typed interface as
:class:`repro.exec.job.Job` — canonical payload, content-hash cache key,
human label, traced fallback — so the executor schedules, caches,
dedupes and pools serving cells exactly like trial cells.  The payload
is tagged ``kind: serve``; :func:`repro.exec.job.execute_payload`
dispatches on that tag, which is all the executor needs to run a cell
it has never heard of in a worker process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.service import ServePlan, encode_serve_plan
from repro.serve.slo import ServeReport


@dataclass(frozen=True)
class ServeJob:
    """One schedulable serving cell: ``scheme_name`` under ``plan``."""

    plan: ServePlan
    scheme_name: str

    def payload(self) -> dict:
        return encode_serve_plan(self.plan, self.scheme_name)

    def payload_json(self) -> str:
        from repro.exec.job import canonical_json

        return canonical_json(self.payload())

    def key(self) -> str:
        """Content hash addressing this cell's report in the store.

        Serving cells carry their whole configuration in the payload
        (no ``REPRO_TRIALS``/``REPRO_DATA_MB`` dependence), so only the
        code-version salt folds in alongside it.
        """
        from repro.exec.job import CODE_SALT
        from repro.sim.rng import stable_digest

        return stable_digest(CODE_SALT, "serve", self.payload_json())

    @property
    def label(self) -> str:
        return (
            f"serve:{self.scheme_name}/"
            f"{self.plan.workload.n_clients}c"
        )

    # -- executor hooks -------------------------------------------------------
    def run_traced(self, tracer) -> ServeReport:
        """Traced fallback: run sequentially in-process.

        The serving loop is closed-form queueing, not DES — there are no
        kernel spans to record — so a traced run simply executes the
        cell inline and lets the executor's ``exec.job`` span mark it.
        """
        import json

        from repro.serve.service import execute_serve_payload

        return ServeReport.from_jsonable(
            json.loads(execute_serve_payload(self.payload()))
        )

    def span_args(self) -> dict:
        return {
            "scheme": self.scheme_name,
            "clients": self.plan.workload.n_clients,
            "requests": self.plan.workload.total_requests,
        }
