"""Seeded open-loop workload generation for the serving simulation.

Multi-tenant storage traffic is not Poisson-with-fixed-size: file sizes
are heavy-tailed (a few huge objects carry most of the bytes), arrival
rates swing with the day and spike in bursts, and a small set of hot
files takes a disproportionate share of requests (the warehouse-cluster
measurements of Rashmi et al. — see PAPERS.md).  This module generates
exactly that shape, fully vectorised and fully deterministic: every draw
comes from a named :class:`repro.sim.rng.RngHub` stream, so a million-
request trace is reproduced bit-for-bit from ``(spec, seed)`` in any
process (lint rule SIM009 keeps wall-clock entropy out).

Open-loop means arrival times are fixed up front, independent of request
completions — the generator never lets an overloaded system throttle its
own offered load, which is precisely how overload behaviour (tail
latency, rejection) becomes measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs of one open-loop workload (scalars only — payload-encodable).

    Attributes
    ----------
    n_clients:
        Simulated client population; each client issues
        ``requests_per_client`` requests over the window.
    requests_per_client:
        Open-loop requests per client.
    duration_s:
        Simulated window the arrivals span.
    n_files:
        Catalogue size; requests pick files Zipf-skewed.
    zipf_s:
        Zipf exponent of the hot-key skew (0 = uniform; ~1 = classic
        web-object skew).
    size_dist:
        ``pareto`` | ``lognormal`` | ``fixed`` file-size law.
    size_mean_mb:
        Target mean file size (the distribution is scaled to hit it).
    size_alpha:
        Pareto tail index (heavier tail as it approaches 1).
    size_sigma:
        Lognormal shape parameter.
    size_min_mb / size_max_mb:
        Clip bounds on drawn sizes.
    diurnal_amplitude:
        Fraction of rate swing over a day-cycle (0 disables; 0.5 means
        the rate oscillates ±50 % around its base).
    diurnal_period_s:
        Length of one diurnal cycle in simulated seconds.
    burst_factor:
        Rate multiplier inside burst windows (1.0 disables bursts).
    burst_fraction:
        Fraction of the window covered by bursts.
    n_bursts:
        Number of burst windows placed over the duration.
    """

    n_clients: int = 1000
    requests_per_client: int = 1
    duration_s: float = 600.0
    n_files: int = 4096
    zipf_s: float = 0.9
    size_dist: str = "pareto"
    size_mean_mb: float = 16.0
    size_alpha: float = 1.8
    size_sigma: float = 1.5
    size_min_mb: float = 1.0
    size_max_mb: float = 1024.0
    diurnal_amplitude: float = 0.4
    diurnal_period_s: float = 600.0
    burst_factor: float = 3.0
    burst_fraction: float = 0.1
    n_bursts: int = 4

    def __post_init__(self) -> None:
        if self.n_clients < 1 or self.requests_per_client < 1:
            raise ValueError("need at least one client and one request each")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.n_files < 1:
            raise ValueError("need at least one file")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if self.size_dist not in ("pareto", "lognormal", "fixed"):
            raise ValueError(f"unknown size_dist {self.size_dist!r}")
        if not 0 < self.size_min_mb <= self.size_max_mb:
            raise ValueError("need 0 < size_min_mb <= size_max_mb")
        if self.diurnal_amplitude < 0 or self.diurnal_amplitude >= 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0 <= self.burst_fraction < 1:
            raise ValueError("burst_fraction must be in [0, 1)")

    @property
    def total_requests(self) -> int:
        return self.n_clients * self.requests_per_client

    def to_jsonable(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_jsonable(cls, data: dict) -> "WorkloadSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown WorkloadSpec fields: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class RequestBatch:
    """One generated trace: parallel arrays, sorted by arrival time."""

    arrival_s: np.ndarray  #: float64, non-decreasing, within [0, duration)
    client_id: np.ndarray  #: int64
    file_id: np.ndarray  #: int64 into the catalogue
    size_bytes: np.ndarray  #: int64

    def __len__(self) -> int:
        return int(self.arrival_s.size)

    @property
    def total_bytes(self) -> int:
        return int(self.size_bytes.sum())


def _rate_profile(spec: WorkloadSpec, t: np.ndarray, rng) -> np.ndarray:
    """Relative arrival intensity at times ``t`` (diurnal x bursts)."""
    rate = np.ones_like(t)
    if spec.diurnal_amplitude > 0:
        rate *= 1.0 + spec.diurnal_amplitude * np.sin(
            2.0 * np.pi * t / spec.diurnal_period_s
        )
    if spec.burst_factor > 1.0 and spec.burst_fraction > 0 and spec.n_bursts > 0:
        width = spec.burst_fraction * spec.duration_s / spec.n_bursts
        starts = np.sort(
            rng.uniform(0.0, spec.duration_s - width, size=spec.n_bursts)
        )
        in_burst = np.zeros_like(t, dtype=bool)
        for s in starts:
            in_burst |= (t >= s) & (t < s + width)
        rate = np.where(in_burst, rate * spec.burst_factor, rate)
    return rate


def _arrival_times(spec: WorkloadSpec, rng) -> np.ndarray:
    """Draw ``total_requests`` arrivals with density ∝ the rate profile.

    Inverse-CDF sampling on a discretised cumulative intensity: exact
    request count (open-loop sweeps need predictable size), fully
    vectorised, deterministic given the stream.
    """
    n = spec.total_requests
    grid = np.linspace(0.0, spec.duration_s, 4096)
    rate = _rate_profile(spec, grid, rng)
    cum = np.concatenate([[0.0], np.cumsum((rate[1:] + rate[:-1]) * 0.5)])
    cum /= cum[-1]
    u = np.sort(rng.random(n))
    return np.interp(u, cum, grid)


def _sizes(spec: WorkloadSpec, n: int, rng) -> np.ndarray:
    """Heavy-tailed per-request sizes in bytes, clipped and mean-scaled."""
    mb = float(2**20)
    if spec.size_dist == "fixed":
        sizes = np.full(n, spec.size_mean_mb)
    elif spec.size_dist == "pareto":
        # Pareto with tail index alpha and unit scale; shift to mean 1.
        draws = 1.0 + rng.pareto(spec.size_alpha, size=n)
        mean = (
            spec.size_alpha / (spec.size_alpha - 1.0)
            if spec.size_alpha > 1.0
            else 10.0  # infinite-mean regime: scale by a nominal factor
        )
        sizes = spec.size_mean_mb * draws / mean
    else:  # lognormal
        # mean of lognormal(mu, sigma) is exp(mu + sigma^2/2); pick mu so
        # the configured mean comes out exactly.
        mu = np.log(spec.size_mean_mb) - spec.size_sigma**2 / 2.0
        sizes = rng.lognormal(mu, spec.size_sigma, size=n)
    sizes = np.clip(sizes, spec.size_min_mb, spec.size_max_mb)
    return np.maximum(1, (sizes * mb).astype(np.int64))


def _file_ids(spec: WorkloadSpec, n: int, rng) -> np.ndarray:
    """Zipf-skewed catalogue picks: rank r drawn ∝ 1 / (r+1)^s."""
    if spec.zipf_s == 0.0:
        return rng.integers(0, spec.n_files, size=n, dtype=np.int64)
    ranks = np.arange(1, spec.n_files + 1, dtype=float)
    pmf = ranks**-spec.zipf_s
    pmf /= pmf.sum()
    # Inverse-CDF instead of rng.choice: O(n log n_files) and exact.
    cdf = np.cumsum(pmf)
    return np.searchsorted(cdf, rng.random(n), side="left").astype(np.int64)


def generate(spec: WorkloadSpec, hub) -> RequestBatch:
    """Generate the full open-loop trace for ``spec`` off ``hub``'s streams.

    Each aspect of the workload draws from its own named stream, so e.g.
    turning the diurnal cycle off never perturbs the size draws.
    """
    n = spec.total_requests
    arrival = _arrival_times(spec, hub.stream("serve", "arrivals"))
    sizes = _sizes(spec, n, hub.stream("serve", "sizes"))
    files = _file_ids(spec, n, hub.stream("serve", "files"))
    clients = hub.stream("serve", "clients").integers(
        0, spec.n_clients, size=n, dtype=np.int64
    )
    return RequestBatch(
        arrival_s=arrival,
        client_id=clients,
        file_id=files,
        size_bytes=sizes,
    )
