"""The serving facade: admit, place, queue, serve — at 10⁵–10⁶ clients.

Simulating a million independent full-detail accesses is neither feasible
nor necessary: what multi-tenant serving adds over the single-access
experiments is *contention* — queueing at the filers, admission pressure,
failover between replicas.  So the facade splits the model in two:

* **Calibration** runs a handful of real scheme accesses (the same
  :mod:`repro.core` machinery every figure uses, admitted through the
  :mod:`repro.core.qos` planner) against the simulated cluster, yielding
  an empirical per-access latency sample that carries the scheme's whole
  single-access behaviour — striping parallelism, speculation, decode
  tail, slow-disk variance.
* **Serving** replays the open-loop workload against per-filer queues:
  each request is placed by the consistent-hash ring, admitted if a
  replica filer can start it within the admission bound (rejected
  gracefully otherwise), and charged a service demand drawn from the
  calibration sample scaled by its size.

Everything draws from one :class:`repro.sim.rng.RngHub`, so a serving
cell is a pure function of ``(plan, scheme)`` — the property the
:mod:`repro.exec` cache and worker pool rely on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, fields

import numpy as np

from repro.cluster.metadata_distributed import DistributedMetadataServer
from repro.cluster.server import Cluster
from repro.core.access import MB, AccessConfig
from repro.core.pipeline import scheme_class
from repro.core.qos import DiskProfile, QoSOptions, plan_access
from repro.serve.ring import FilePlacer, HashRing
from repro.serve.slo import ServeReport, SloTracker
from repro.serve.workload import WorkloadSpec, generate
from repro.sim.rng import RngHub


@dataclass(frozen=True)
class ServePlan:
    """One serving cell: workload plus cluster, placement and QoS shape.

    Attributes
    ----------
    workload:
        The open-loop :class:`~repro.serve.workload.WorkloadSpec`.
    pool / disks_per_filer / rtt_s:
        Cluster shape (defaults match the §6.2.5 baseline).
    replication_factor:
        Distinct filers per file on the ring (primary + failover targets).
    vnodes:
        Virtual nodes per filer on the placement ring.
    meta_partitions:
        Hash partitions of the distributed metadata service.
    access_disks:
        Disks one scheme access stripes over (before QoS sizing).
    target_bandwidth_mbps / redundancy_budget:
        The tenant's QoS requirements, fed to
        :func:`repro.core.qos.plan_access` at admission-planning time.
    calibration_trials / calibration_mb:
        Scheme accesses run to build the empirical latency sample, and
        their reference size.
    filer_concurrency:
        Requests one filer serves concurrently (its admission capacity);
        0 means "one slot per attached disk".
    max_wait_s:
        Admission bound: a request no replica filer can *start* within
        this wait is rejected instead of queued unboundedly.
    slo_latency_s:
        Latency objective; completions under it count toward goodput.
    seed:
        Root seed of the cell's :class:`~repro.sim.rng.RngHub`.
    """

    workload: WorkloadSpec
    pool: int = 128
    disks_per_filer: int = 8
    rtt_s: float = 0.001
    replication_factor: int = 3
    vnodes: int = 128
    meta_partitions: int = 4
    access_disks: int = 16
    target_bandwidth_mbps: float | None = None
    redundancy_budget: float = 3.0
    calibration_trials: int = 8
    calibration_mb: int = 64
    filer_concurrency: int = 0
    max_wait_s: float = 30.0
    slo_latency_s: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.pool < 1 or self.disks_per_filer < 1:
            raise ValueError("disk counts must be positive")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.calibration_trials < 1:
            raise ValueError("need at least one calibration trial")
        if self.max_wait_s <= 0 or self.slo_latency_s <= 0:
            raise ValueError("admission and SLO bounds must be positive")

    @property
    def n_filers(self) -> int:
        return -(-self.pool // self.disks_per_filer)

    @property
    def slots_per_filer(self) -> int:
        return self.filer_concurrency or self.disks_per_filer


# ---------------------------------------------------------------------------
# payload codec (the repro.exec integration surface)


def encode_serve_plan(plan: ServePlan, scheme_name: str) -> dict:
    """Canonical payload dict for one serving job (tagged ``kind: serve``)."""
    out: dict = {"kind": "serve", "scheme": str(scheme_name)}
    for f in fields(ServePlan):
        v = getattr(plan, f.name)
        if f.name == "workload":
            out[f.name] = v.to_jsonable()
        elif isinstance(v, (int, float, str, bool, type(None))):
            out[f.name] = v
        else:
            raise TypeError(
                f"ServePlan.{f.name} is not a scalar ({type(v).__name__}); "
                "teach repro.serve.service its encoding"
            )
    return out


def decode_serve_plan(payload: dict) -> tuple[ServePlan, str]:
    """Rebuild ``(plan, scheme_name)`` from :func:`encode_serve_plan`."""
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind != "serve":
        raise ValueError(f"not a serve payload: kind={kind!r}")
    scheme_name = str(data.pop("scheme"))
    known = {f.name for f in fields(ServePlan)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown ServePlan fields in payload: {sorted(unknown)}")
    data["workload"] = WorkloadSpec.from_jsonable(data["workload"])
    return ServePlan(**data), scheme_name


def execute_serve_payload(payload: dict) -> str:
    """Run one serving cell from its payload; return canonical report JSON."""
    from repro.exec.job import canonical_json

    plan, scheme_name = decode_serve_plan(payload)
    report = StorageService(plan, scheme_name).run()
    return canonical_json(report.to_jsonable())


# ---------------------------------------------------------------------------
# the facade


class StorageService:
    """A multi-tenant serving front end over the simulated cluster."""

    def __init__(self, plan: ServePlan, scheme_name: str) -> None:
        self.plan = plan
        self.scheme_name = scheme_name
        self.hub = RngHub(plan.seed)
        self.cluster = Cluster(
            n_disks=plan.pool,
            disks_per_filer=plan.disks_per_filer,
            rtt_s=plan.rtt_s,
        )
        self.metadata = DistributedMetadataServer(n_nodes=plan.meta_partitions)
        self.ring = HashRing(range(self.cluster.n_filers), vnodes=plan.vnodes)
        self.placer = FilePlacer(self.ring, self.metadata)
        # QoS admission planning: the tenant's requirements become the
        # access shape every request of this service is served with.
        self.access = plan_access(
            AccessConfig(
                data_bytes=plan.calibration_mb * MB,
                block_bytes=1 * MB,
                n_disks=plan.access_disks,
                redundancy=plan.redundancy_budget,
            ),
            QoSOptions(
                target_bandwidth_mbps=plan.target_bandwidth_mbps,
                redundancy_budget=plan.redundancy_budget,
            ),
            DiskProfile(pool_size=plan.pool),
        )
        self._place_catalogue()

    def _place_catalogue(self) -> None:
        """Ring-place every catalogue file; record it in metadata."""
        nominal = int(self.plan.workload.size_mean_mb * MB)
        for fid in range(self.plan.workload.n_files):
            self.placer.place(
                f"f{fid}", nominal, self.scheme_name, self.plan.replication_factor
            )

    # -- calibration ----------------------------------------------------------
    def calibrate(self) -> np.ndarray:
        """Empirical single-access latencies of the scheme on this cluster.

        Runs real scheme accesses (same code path as every figure) at the
        reference size; the serving loop bootstraps per-request service
        demands from this sample.
        """
        plan = self.plan
        cls = scheme_class(self.scheme_name)
        access = self.access
        override = cls.spec.redundancy_override
        if override is not None:
            from dataclasses import replace

            access = replace(access, redundancy=override)
        scheme = cls(self.cluster, access, hub=self.hub)
        lats = []
        for trial in range(plan.calibration_trials):
            self.cluster.redraw_disk_states(
                self.hub.fresh("cal-env", self.scheme_name, trial)
            )
            name = f"cal-{self.scheme_name}-{trial}"
            scheme.prepare(name, trial)
            result = scheme.read(name, trial)
            if np.isfinite(result.latency_s):
                lats.append(float(result.latency_s))
        if not lats:
            raise RuntimeError(
                f"{self.scheme_name}: no calibration access completed"
            )
        return np.array(lats)

    # -- serving --------------------------------------------------------------
    def run(self) -> ServeReport:
        """Replay the open-loop workload; return the cell's SLO report."""
        plan = self.plan
        spec = plan.workload
        batch = generate(spec, self.hub)
        cal = self.calibrate()

        # Per-request service demand: a calibration sample scaled by the
        # request's size (the scheme's parallelism is inside the sample).
        svc_rng = self.hub.stream("serve", "svc")
        picks = svc_rng.integers(0, cal.size, size=len(batch))
        ref_bytes = float(plan.calibration_mb * MB)
        service_s = cal[picks] * (batch.size_bytes / ref_bytes)
        meta_s = self.metadata.latency_s

        # Each filer serves `slots` requests concurrently; a slot-heap
        # per filer tracks when capacity frees up.
        slots = [
            [0.0] * plan.slots_per_filer for _ in range(self.cluster.n_filers)
        ]
        tracker = SloTracker(spec.duration_s, plan.slo_latency_s)
        arrivals = batch.arrival_s
        files = batch.file_id
        sizes = batch.size_bytes
        for i in range(len(batch)):
            t = float(arrivals[i])
            filers = self.placer.lookup(f"f{int(files[i])}")
            # Earliest-start replica wins; ties keep the primary.
            best, best_start = None, float("inf")
            for f in filers:
                start = max(t, slots[f][0])
                if start < best_start:
                    best, best_start = f, start
            if best_start - t > plan.max_wait_s:
                tracker.reject(int(sizes[i]))
                continue
            done = best_start + float(service_s[i])
            heapq.heapreplace(slots[best], done)
            tracker.admit(
                latency_s=(best_start - t) + float(service_s[i]) + meta_s,
                size_bytes=int(sizes[i]),
                failover=best != filers[0],
            )
        return tracker.report(self.scheme_name, spec.n_clients)


# ---------------------------------------------------------------------------
# closed-loop compatibility mode (the original ext_multiuser shape)


def closed_loop_point(
    scheme_name: str,
    n_clients: int,
    cfg: AccessConfig,
    pool: int = 16,
    rtt_s: float = 0.001,
    trials: int = 3,
    seed: int = 0,
) -> list[float]:
    """Per-client latencies of ``n_clients`` closed-loop clients.

    The pre-``repro.serve`` multi-user model: every client issues the
    same access shape over the *same* drives in the event-driven
    reference engine, so contention emerges from shared per-drive
    queues.  Kept as the ``ext_multiuser`` compatibility entry; the
    open-loop :class:`StorageService` path supersedes it for scale.
    """
    from repro.core import SCHEMES
    from repro.core.reference import reference_read

    lats: list[float] = []
    for trial in range(trials):
        cluster = Cluster(n_disks=pool, rtt_s=rtt_s)
        hub = RngHub(seed + trial)
        scheme = SCHEMES[scheme_name](cluster, cfg, hub=hub)
        cluster.redraw_disk_states(hub.fresh("env", trial))
        scheme.prepare("f", trial)
        ref = reference_read(scheme, "f", trial=trial, n_clients=n_clients)
        lats.extend(float(v) for v in ref.per_client.values())
    return lats
