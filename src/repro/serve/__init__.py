"""repro.serve: multi-tenant storage serving simulation.

The dissertation evaluates single accesses; §7.3 leaves "a more accurate
model of multi-user workloads" to future work.  This package runs it at
scale: files are placed across filers by a consistent-hash ring with
virtual nodes and replication-factor-aware node selection (backed by the
hash-partitioned :class:`repro.cluster.metadata_distributed.
DistributedMetadataServer`), an open-loop seeded workload generator
drives heavy-tailed, bursty, skewed traffic against the pool, requests
are admitted through the :mod:`repro.core.qos` planner, and SLO-grade
metrics — p50/p99/p999 latency over fixed-bin histograms, goodput under
overload, rejection rate — come out per scheme.

Determinism contract: every draw flows through :class:`repro.sim.rng.
RngHub` (lint rule SIM009 bans wall-clock and unseeded entropy in this
package), so a serving sweep is byte-identical across runs and across
``-j 1`` vs ``-j N`` worker pools.  See ``docs/serving.md``.
"""

from repro.serve.job import ServeJob
from repro.serve.ring import FilePlacer, HashRing
from repro.serve.service import ServePlan, StorageService, closed_loop_point
from repro.serve.slo import ServeReport, SloTracker
from repro.serve.workload import RequestBatch, WorkloadSpec, generate

__all__ = [
    "FilePlacer",
    "HashRing",
    "RequestBatch",
    "ServeJob",
    "ServePlan",
    "ServeReport",
    "SloTracker",
    "StorageService",
    "WorkloadSpec",
    "closed_loop_point",
    "generate",
]
