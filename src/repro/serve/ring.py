"""Consistent-hash placement of files across filers.

The serving layer must answer "which filers hold file X?" a million
times per sweep, keep keys balanced across filers, and move as few keys
as possible when a filer joins or leaves.  A consistent-hash ring with
virtual nodes does all three: each physical node owns ``vnodes`` points
on a 32-bit ring, a key maps to the first point at or after its own
hash (clockwise), and a replication factor of ``rf`` takes the next
``rf`` *distinct* physical nodes along the ring.

Hashes come from :func:`repro.sim.rng.stable_seed` (process-independent
FNV-1a) pushed through a murmur3-style bit finalizer — FNV-1a alone
avalanches poorly on short sequential inputs like ``("vnode", 3, 17)``,
which shows up directly as ring imbalance.  Placement is identical in
every worker process — a ring decision is part of the serving payload's
determinism contract.
"""

from __future__ import annotations

import bisect

from repro.cluster.metadata import FileRecord
from repro.sim.rng import stable_seed

_MASK32 = 0xFFFFFFFF


def _mix32(h: int) -> int:
    """murmur3's 32-bit finalizer: full avalanche over stable_seed."""
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Parameters
    ----------
    nodes:
        Initial physical node ids (any hashable, stringified for hashing).
    vnodes:
        Ring points per physical node.  More points flatten the load
        distribution (the max/mean key-share imbalance shrinks roughly
        with ``1/sqrt(vnodes)``) at the cost of ring size.
    """

    def __init__(self, nodes=(), vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ValueError("need at least one virtual node per node")
        self.vnodes = int(vnodes)
        self._nodes: set = set()
        #: Sorted ring positions and the physical node owning each.
        self._points: list[int] = []
        self._owners: list = []
        for node in nodes:
            self.add_node(node)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list:
        return sorted(self._nodes)

    @staticmethod
    def _key_hash(key) -> int:
        return _mix32(stable_seed("key", key))

    def _vnode_hashes(self, node) -> list[int]:
        return [
            _mix32(stable_seed("vnode", node, i)) for i in range(self.vnodes)
        ]

    def add_node(self, node) -> None:
        """Insert ``node``'s virtual points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for h in self._vnode_hashes(node):
            idx = bisect.bisect_left(self._points, h)
            # Break exact hash collisions by node order so the ring is
            # identical however nodes were added.
            while idx < len(self._points) and self._points[idx] == h and str(
                self._owners[idx]
            ) < str(node):
                idx += 1
            self._points.insert(idx, h)
            self._owners.insert(idx, node)

    def remove_node(self, node) -> None:
        """Remove ``node``'s virtual points (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def primary(self, key):
        """The physical node owning ``key`` (first clockwise point)."""
        nodes = self.nodes_for(key, 1)
        return nodes[0] if nodes else None

    def nodes_for(self, key, count: int) -> list:
        """The first ``count`` *distinct* physical nodes clockwise of ``key``.

        The first entry is the primary, the rest are its replicas — all
        guaranteed distinct, capped at the number of physical nodes.
        """
        if not self._points or count < 1:
            return []
        start = bisect.bisect_left(self._points, self._key_hash(key))
        out: list = []
        seen: set = set()
        n = len(self._points)
        for i in range(n):
            owner = self._owners[(start + i) % n]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) >= count:
                    break
        return out


class FilePlacer:
    """Ring placement recorded in the distributed metadata service.

    Placement decisions live on the ring; the *record* of each decision
    lives in the hash-partitioned metadata service, exactly as §4.2
    splits decision-making from bookkeeping.  ``place`` registers the
    file once; ``lookup`` serves every later request from metadata.
    """

    def __init__(self, ring: HashRing, metadata) -> None:
        self.ring = ring
        self.metadata = metadata

    def place(
        self,
        name: str,
        size_bytes: int,
        scheme: str,
        replication_factor: int,
    ) -> list:
        """Choose ``replication_factor`` distinct filers and record them."""
        filers = self.ring.nodes_for(name, replication_factor)
        if not filers:
            raise ValueError("cannot place on an empty ring")
        record = FileRecord(
            name=name,
            size_bytes=int(size_bytes),
            scheme=scheme,
            extra={"filers": [int(f) for f in filers]},
        )
        self.metadata.commit(record)
        return filers

    def lookup(self, name: str) -> list:
        """The filers holding ``name`` (primary first), from metadata."""
        return list(self.metadata.lookup(name).extra["filers"])
