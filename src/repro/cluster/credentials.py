"""Credential-chain access control (Appendix C).

A capability model for federated, multi-domain storage: the data owner
signs a credential granting rights to a licensee's public key; the
licensee can delegate by appending a further credential signed by itself.
A storage server verifies a chain by walking it root-to-leaf, checking
each signature and intersecting the granted rights and conditions.

Cryptography is simulated (HMAC-style tags over a shared notion of
"private key" = secret string); the *structure* — chains, delegation,
condition intersection, expiry — is faithful to Appendix C's two-level
credential-chain example.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class KeyPair:
    """A principal's simulated key pair (public = fingerprint of secret)."""

    name: str
    secret: str

    @property
    def public(self) -> str:
        return hashlib.sha256(self.secret.encode()).hexdigest()[:16]


def _sign(secret: str, payload: str) -> str:
    return hmac.new(secret.encode(), payload.encode(), hashlib.sha256).hexdigest()[:24]


@dataclass(frozen=True)
class Credential:
    """One link of a credential chain.

    Attributes
    ----------
    authorizer_public:
        Public key of the granting principal.
    licensee_public:
        Public key of the principal being granted rights.
    rights:
        Granted rights, e.g. ``frozenset("RWX")``.
    app_domain, handle:
        Condition fields (Appendix C's examples guard on both).
    not_before, not_after:
        Validity window (simulation seconds); ``None`` = unbounded.
    signature:
        Tag over the other fields by the authorizer's key.
    """

    authorizer_public: str
    licensee_public: str
    rights: frozenset
    app_domain: str
    handle: str
    not_before: float | None
    not_after: float | None
    signature: str

    def payload(self) -> str:
        return "|".join(
            [
                self.authorizer_public,
                self.licensee_public,
                "".join(sorted(self.rights)),
                self.app_domain,
                self.handle,
                repr(self.not_before),
                repr(self.not_after),
            ]
        )


def issue(
    authorizer: KeyPair,
    licensee_public: str,
    rights: str,
    app_domain: str = "RobuSTore",
    handle: str = "",
    not_before: float | None = None,
    not_after: float | None = None,
) -> Credential:
    """Create and sign a credential from ``authorizer`` to a licensee."""
    cred = Credential(
        authorizer_public=authorizer.public,
        licensee_public=licensee_public,
        rights=frozenset(rights),
        app_domain=app_domain,
        handle=handle,
        not_before=not_before,
        not_after=not_after,
        signature="",
    )
    return replace(cred, signature=_sign(authorizer.secret, cred.payload()))


@dataclass
class CredentialChain:
    """A delegation chain: root credential first."""

    links: list[Credential] = field(default_factory=list)

    def delegate(
        self,
        holder: KeyPair,
        licensee_public: str,
        rights: str,
        **conditions,
    ) -> "CredentialChain":
        """Holder (licensee of the last link) grants a sub-credential."""
        if not self.links:
            raise ValueError("cannot delegate from an empty chain")
        last = self.links[-1]
        if holder.public != last.licensee_public:
            raise PermissionError("only the current licensee may delegate")
        sub = issue(
            holder,
            licensee_public,
            rights,
            app_domain=conditions.get("app_domain", last.app_domain),
            handle=conditions.get("handle", last.handle),
            not_before=conditions.get("not_before"),
            not_after=conditions.get("not_after"),
        )
        return CredentialChain(self.links + [sub])


class Verifier:
    """Server-side chain verification.

    Parameters
    ----------
    root_public:
        The administrator public key the server trusts.
    secrets:
        Simulated PKI: map from public key to secret, standing in for
        signature verification with real asymmetric crypto.
    """

    def __init__(self, root_public: str, secrets: dict[str, str]) -> None:
        self.root_public = root_public
        self._secrets = dict(secrets)

    def verify(
        self,
        chain: CredentialChain,
        presenter_public: str,
        right: str,
        app_domain: str = "RobuSTore",
        handle: str = "",
        now: float = 0.0,
    ) -> bool:
        """Check that ``presenter`` holds ``right`` under the conditions."""
        if not chain.links:
            return False
        if chain.links[0].authorizer_public != self.root_public:
            return False
        prev_licensee = None
        effective: frozenset = frozenset("RWX")
        for link in chain.links:
            secret = self._secrets.get(link.authorizer_public)
            if secret is None or _sign(secret, link.payload()) != link.signature:
                return False
            if prev_licensee is not None and link.authorizer_public != prev_licensee:
                return False  # broken delegation chain
            if link.app_domain != app_domain or (link.handle and link.handle != handle):
                return False
            if link.not_before is not None and now < link.not_before:
                return False
            if link.not_after is not None and now > link.not_after:
                return False
            effective &= link.rights
            prev_licensee = link.licensee_public
        return prev_licensee == presenter_public and right in effective
