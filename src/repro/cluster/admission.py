"""Admission control at storage servers (§5.4).

Two mechanisms from the dissertation:

* **Capacity-based (CAC)** — first-come-first-admitted until the server's
  concurrency capacity is exhausted; later flows are refused (the client
  retries elsewhere or queues).
* **Priority-based** — higher-priority flows may preempt admitted
  lower-priority ones, RFC 2751/2815 style.

Admission decisions consider estimated storage throughput, ongoing
accesses and the size of the new request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from repro.obs.tracer import NULL_TRACER

_flow_ids = count()


@dataclass
class Flow:
    """An admitted (or requesting) access stream."""

    nbytes: int
    priority: int = 0
    flow_id: int = field(default_factory=lambda: next(_flow_ids))


class AdmissionController:
    """Base admission controller: admits everything (controller disabled)."""

    def __init__(self) -> None:
        self.admitted: dict[int, Flow] = {}
        self.refused = 0
        #: Rebound by the cluster when a tracer is installed.
        self.tracer = NULL_TRACER

    @property
    def active_flows(self) -> int:
        return len(self.admitted)

    def _note(self, admitted: bool) -> None:
        if self.tracer.enabled:
            self.tracer.count(
                "admission.admitted" if admitted else "admission.refused"
            )

    def request(self, flow: Flow) -> bool:
        """Try to admit ``flow``; True on success."""
        self.admitted[flow.flow_id] = flow
        self._note(True)
        return True

    def release(self, flow: Flow) -> None:
        self.admitted.pop(flow.flow_id, None)


class CapacityAdmission(AdmissionController):
    """First-come-first-admitted up to ``capacity`` concurrent flows.

    Sharing one disk among many concurrent large accesses collapses its
    throughput (rotation + seeking between streams, §5.4); capping
    concurrency protects aggregate throughput.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        super().__init__()
        self.capacity = capacity

    def request(self, flow: Flow) -> bool:
        if len(self.admitted) >= self.capacity:
            self.refused += 1
            self._note(False)
            return False
        self.admitted[flow.flow_id] = flow
        self._note(True)
        return True


class PriorityAdmission(CapacityAdmission):
    """Capacity admission where higher priority (smaller value) preempts.

    When full, a new flow strictly more urgent than the least-urgent
    admitted flow evicts it; the evicted flow id is recorded in
    :attr:`preempted` so the caller can reroute it.
    """

    def __init__(self, capacity: int = 4) -> None:
        super().__init__(capacity)
        self.preempted: list[int] = []

    def request(self, flow: Flow) -> bool:
        if len(self.admitted) < self.capacity:
            self.admitted[flow.flow_id] = flow
            self._note(True)
            return True
        victim = max(self.admitted.values(), key=lambda f: f.priority)
        if flow.priority < victim.priority:
            del self.admitted[victim.flow_id]
            self.preempted.append(victim.flow_id)
            self.admitted[flow.flow_id] = flow
            self._note(True)
            return True
        self.refused += 1
        self._note(False)
        return False


def effective_disk_share(concurrent_flows: int, interference: float = 0.35) -> float:
    """Aggregate-throughput model for disk sharing (§5.4).

    Each additional concurrent large stream costs seek/rotation switches:
    with n flows the disk delivers ``1 / (1 + interference * (n - 1))`` of
    its exclusive-access throughput, split across the flows.  Used by the
    admission-control ablation experiment.
    """
    if concurrent_flows < 1:
        raise ValueError("need at least one flow")
    return 1.0 / (1.0 + interference * (concurrent_flows - 1))


def pick_admitted_server(
    controllers: list[AdmissionController], flow: Flow, preferred: Optional[int] = None
) -> Optional[int]:
    """Admit ``flow`` at the preferred server or the least-loaded alternative.

    Returns the admitting server index, or ``None`` if every controller
    refused.
    """
    order = sorted(
        range(len(controllers)),
        key=lambda i: (i != preferred, controllers[i].active_flows),
    )
    for i in order:
        if controllers[i].request(flow):
            return i
    return None
