"""Metadata service (§4.2): file records, layout registry, locks.

Clients consult the metadata server on open (data location, coding
algorithm and parameters, storage-server information) and report back on
close after writes.  Each metadata access costs a constant latency —
five milliseconds in the simulator (§6.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.tracer import NULL_TRACER

#: Constant latency per metadata-service access (§6.2.2).
METADATA_ACCESS_LATENCY_S = 0.005


@dataclass
class FileRecord:
    """Everything the metadata server knows about one file.

    Attributes
    ----------
    name:
        File name.
    size_bytes:
        Original (pre-coding) data size.
    scheme:
        Storage scheme that wrote the file (``raid0``, ``rraid-s``,
        ``rraid-a``, ``robustore``).
    coding:
        Coding algorithm descriptor (e.g. ``{"algorithm": "lt", "k": ...,
        "c": ..., "delta": ...}``).
    disk_ids:
        The disks holding the file's blocks.
    placement:
        ``placement[i]`` lists, in stored order, the coded-block ids on
        ``disk_ids[i]`` — speculative writes leave this unbalanced.
    owner:
        Principal that created the file.
    """

    name: str
    size_bytes: int
    scheme: str
    coding: dict = field(default_factory=dict)
    disk_ids: list[int] = field(default_factory=list)
    placement: list[list[int]] = field(default_factory=list)
    owner: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def total_blocks(self) -> int:
        return sum(len(p) for p in self.placement)


class FileLockedError(RuntimeError):
    """Raised when an open conflicts with an existing lock."""


class MetadataServer:
    """A (logically centralised) metadata server.

    Tracks file records, storage-server registration info and file locks.
    Every operation returns the constant access latency so callers can
    charge simulated time.
    """

    def __init__(
        self, latency_s: float = METADATA_ACCESS_LATENCY_S, tracer=None
    ) -> None:
        self.latency_s = latency_s
        self._files: dict[str, FileRecord] = {}
        self._locks: dict[str, tuple[str, str]] = {}  # name -> (mode, holder)
        self._servers: dict[int, dict] = {}
        self.accesses = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- storage-server registry ------------------------------------------------
    def register_server(self, server_id: int, info: dict | None = None) -> float:
        """Record a storage server's static information (capacity, peak)."""
        self.accesses += 1
        self._servers[server_id] = dict(info or {})
        return self.latency_s

    def update_server_load(self, server_id: int, load: float) -> None:
        """Record dynamic load information (from accesses/periodic queries)."""
        self._servers.setdefault(server_id, {})["load"] = load

    def server_info(self, server_id: int) -> dict:
        return dict(self._servers.get(server_id, {}))

    @property
    def known_servers(self) -> list[int]:
        return sorted(self._servers)

    # -- file operations ----------------------------------------------------------
    def open(self, name: str, mode: str, holder: str = "client") -> tuple[Optional[FileRecord], float]:
        """Open a file; returns (record or None for a new file, latency).

        Write opens take an exclusive lock; read opens take a shared lock.

        Raises
        ------
        FileLockedError
            On a conflicting lock.
        KeyError
            Reading a file that does not exist.
        """
        if mode not in ("r", "w"):
            raise ValueError(f"mode must be 'r' or 'w', not {mode!r}")
        self.accesses += 1
        if self.tracer.enabled:
            self.tracer.count("meta.accesses")
        existing = self._locks.get(name)
        if existing is not None:
            held_mode, _ = existing
            if mode == "w" or held_mode == "w":
                if self.tracer.enabled:
                    self.tracer.count("meta.lock_conflicts")
                raise FileLockedError(f"{name}: locked {held_mode}")
        record = self._files.get(name)
        if mode == "r" and record is None:
            raise KeyError(f"no such file: {name}")
        if existing is None:
            self._locks[name] = (mode, holder)
        return record, self.latency_s

    def commit(self, record: FileRecord) -> float:
        """Register a written file's structure and location (§4.3.2)."""
        self.accesses += 1
        if self.tracer.enabled:
            self.tracer.count("meta.accesses")
        self._files[record.name] = record
        return self.latency_s

    def close(self, name: str, holder: str = "client") -> float:
        """Release the lock taken at open."""
        self.accesses += 1
        self._locks.pop(name, None)
        return self.latency_s

    def lookup(self, name: str) -> FileRecord:
        return self._files[name]

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> float:
        self.accesses += 1
        self._files.pop(name, None)
        self._locks.pop(name, None)
        return self.latency_s

    def update_placement(self, name: str, placement: list[list[int]]) -> float:
        """Record new block placement after an update access (§4.3.4)."""
        self.accesses += 1
        self._files[name].placement = placement
        return self.latency_s
