"""Storage server: one filer plus its attached disks (§4.2, §6.2.2)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.admission import AdmissionController
from repro.cluster.filer import Filer
from repro.cluster.fscache import SetAssociativeCache
from repro.disk.mechanics import DiskMechanics
from repro.disk.service import BackgroundLoad, BlockService
from repro.disk.workload import BLOCKING_FACTORS, InDiskLayout, layout_at
from repro.net.link import Link
from repro.obs.tracer import NULL_TRACER


@dataclass
class DiskState:
    """Per-trial state of one virtual disk.

    The in-disk layout and zone are redrawn per access trial — they are the
    experiments' primary source of performance variation (§6.2.5).
    ``failed`` disks never respond: their blocks are effectively erased,
    the situation erasure-coded redundancy exists to survive (§5.3.1).
    """

    disk_id: int
    layout: InDiskLayout
    spt: int
    background: BackgroundLoad | None = None
    failed: bool = False


class StorageServer:
    """A filer fronting several disks, with optional admission control."""

    def __init__(
        self,
        server_id: int,
        disk_ids: list[int],
        link: Link,
        cache: SetAssociativeCache | None = None,
        admission: AdmissionController | None = None,
        tracer=None,
    ) -> None:
        self.server_id = server_id
        tracer = tracer if tracer is not None else NULL_TRACER
        self.filer = Filer(server_id, disk_ids, link, cache, tracer=tracer)
        self.admission = admission or AdmissionController()
        self.admission.tracer = tracer

    @property
    def disk_ids(self) -> list[int]:
        return self.filer.disk_ids


class Cluster:
    """The simulated storage cluster: servers, disks, per-trial disk state.

    Parameters
    ----------
    n_disks:
        Total disks in the pool (128 in the baseline).
    disks_per_filer:
        Disks per storage server (8 in the baseline).
    rtt_s:
        Client <-> server round-trip latency.
    fs_cache_bytes:
        Per-filer filesystem cache size; 0 disables caching.
    mechanics:
        Shared drive mechanics.
    tracer:
        Optional :class:`repro.obs.Tracer` shared by every filer and
        admission controller; the access machinery reads it off the
        cluster (``cluster.tracer``).
    """

    def __init__(
        self,
        n_disks: int = 128,
        disks_per_filer: int = 8,
        rtt_s: float = 0.001,
        fs_cache_bytes: int = 0,
        cache_line_bytes: int = 1 << 20,
        mechanics: DiskMechanics | None = None,
        tracer=None,
    ) -> None:
        if n_disks < 1 or disks_per_filer < 1:
            raise ValueError("disk counts must be positive")
        self.n_disks = n_disks
        self.disks_per_filer = disks_per_filer
        self.mechanics = mechanics or DiskMechanics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.servers: list[StorageServer] = []
        n_filers = -(-n_disks // disks_per_filer)
        for f in range(n_filers):
            ids = list(range(f * disks_per_filer, min((f + 1) * disks_per_filer, n_disks)))
            cache = (
                SetAssociativeCache(fs_cache_bytes, line_bytes=cache_line_bytes)
                if fs_cache_bytes > 0
                else None
            )
            self.servers.append(
                StorageServer(f, ids, Link(rtt_s=rtt_s), cache, tracer=self.tracer)
            )
        self._disk_states: dict[int, DiskState] = {}
        #: Active :class:`repro.faults.inject.FaultInjector`, or ``None``.
        self.faults = None

    @property
    def n_filers(self) -> int:
        return len(self.servers)

    def server_of_disk(self, disk_id: int) -> StorageServer:
        return self.servers[disk_id // self.disks_per_filer]

    def filer_of_disk(self, disk_id: int) -> Filer:
        return self.server_of_disk(disk_id).filer

    # -- per-trial state --------------------------------------------------------
    def redraw_disk_states(
        self,
        rng: np.random.Generator,
        layout: InDiskLayout | None = None,
        background_intervals: dict[int, float] | None = None,
        fixed_zone: int | None = None,
        failed_disks: set[int] | None = None,
    ) -> None:
        """Draw fresh per-disk layout/zone state for a new access trial.

        ``layout=None`` gives each disk an independent heterogeneous draw;
        passing a fixed layout models the homogeneous environment.
        ``background_intervals`` maps disk_id -> competitive-load interval.
        ``fixed_zone`` pins every disk's data to one zone (fully homogeneous
        media rate); otherwise each disk draws a random zone.
        ``failed_disks`` never respond to requests.
        """
        zones = self.mechanics.geometry.zones
        bg = background_intervals or {}
        failed = failed_disks or set()
        n = self.n_disks
        # Per-disk draw pattern: (bf, p_seq) indices when the layout is
        # heterogeneous, then a zone index when none is pinned.  One
        # broadcast bounded-integer call consumes the PCG64 bit stream
        # exactly as the per-disk scalar draws did (numpy's array-bound
        # path rejects per element in order; verified value- and
        # state-identical across seeds), so trials stay bit-identical.
        pat = []
        if layout is None:
            pat += [len(BLOCKING_FACTORS), 2]
        if fixed_zone is None:
            pat.append(len(zones))
        rows = None
        if pat:
            rows = rng.integers(0, np.tile(np.array(pat), n)).reshape(n, len(pat)).tolist()
        states = self._disk_states
        for d in range(n):
            if layout is None:
                row = rows[d]
                lay = layout_at(row[0], row[1])
                zi = fixed_zone if fixed_zone is not None else row[-1]
            else:
                lay = layout
                zi = fixed_zone if fixed_zone is not None else rows[d][0]
            spt = int(zones[zi].sectors_per_track)
            load = BackgroundLoad(bg[d]) if d in bg else None
            states[d] = DiskState(d, lay, spt, load, failed=d in failed)

    def disk_state(self, disk_id: int) -> DiskState:
        return self._disk_states[disk_id]

    # -- fault injection --------------------------------------------------------
    def install_faults(self, plan) -> None:
        """Install a :class:`repro.faults.plan.FaultPlan` (or ``None`` to clear).

        Compiles the plan against this cluster's topology and exposes the
        resulting injector as ``self.faults``; subsequent
        :meth:`block_service` calls hand each disk its fault timeline and
        the access machinery routes messages through the link timelines.
        Installing ``None`` or an empty plan restores bit-identical
        unfaulted behaviour.
        """
        if plan is None:
            self.faults = None
            return
        # Imported lazily: repro.faults.inject reaches back into repro.core.
        from repro.faults.inject import FaultInjector

        injector = FaultInjector(self, plan)
        self.faults = injector if injector.has_faults else None

    def clear_faults(self) -> None:
        self.faults = None

    def disk_timeline(self, disk_id: int):
        """The disk's fault timeline under the active injector (or ``None``)."""
        return None if self.faults is None else self.faults.timeline(disk_id)

    def link_timeline(self, disk_id: int):
        """The fault timeline of the link serving ``disk_id`` (or ``None``)."""
        return None if self.faults is None else self.faults.link_for_disk(disk_id)

    def block_service(
        self,
        disk_id: int,
        rng: np.random.Generator,
        phase_rng_for=None,
    ) -> BlockService:
        """A vectorised service model bound to the disk's current state.

        ``phase_rng_for(disk_id)`` (when given) supplies the dedicated
        ``"bgphase"`` stream for the background phase draw.  It is only
        invoked when the disk actually carries a background load — stream
        derivation costs real hash work, and background-free experiments
        (most of the grid) must not pay it per disk per access.
        """
        st = self._disk_states[disk_id]
        phase_rng = None
        if phase_rng_for is not None and st.background is not None:
            phase_rng = phase_rng_for(disk_id)
        return BlockService(
            self.mechanics,
            st.layout,
            st.spt,
            rng,
            st.background,
            failed=st.failed,
            timeline=self.disk_timeline(disk_id),
            phase_rng=phase_rng,
        )

    def age_caches(self, window_s: float) -> None:
        """Run ``window_s`` of competing cache traffic through every filer.

        Each disk's background stream (if any) reads ~50-sector requests at
        its interval; that competing data shares the filer cache and evicts
        resident lines (§6.3.3).
        """
        from repro.disk.geometry import SECTOR_BYTES
        from repro.disk.workload import BACKGROUND_SECTORS

        for server in self.servers:
            volume = 0.0
            for d in server.disk_ids:
                st = self._disk_states.get(d)
                if st is not None and st.background is not None:
                    rate = BACKGROUND_SECTORS * SECTOR_BYTES / st.background.interval_s
                    volume += rate * window_s
            server.filer.age_cache(int(volume))

    # -- accounting -----------------------------------------------------------
    @property
    def total_network_bytes(self) -> int:
        return sum(s.filer.link.bytes_sent for s in self.servers)

    def reset_network_counters(self) -> None:
        for s in self.servers:
            s.filer.link.bytes_sent = 0
