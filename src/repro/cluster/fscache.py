"""Set-associative LRU filesystem cache (§6.2.5).

Each filer keeps a 2 GB filesystem cache shared by its eight disks,
modelled as a 4-way set-associative LRU over fixed-size lines.  The paper
uses 4 KB lines; the cache is parametric, and the storage experiments run
it at data-block granularity for speed (the hit/miss behaviour at whole-
block accesses is identical because blocks are loaded and evicted as
aligned groups of lines).
"""

from __future__ import annotations


class SetAssociativeCache:
    """A W-way set-associative LRU cache over (stream, line) keys.

    Parameters
    ----------
    capacity_bytes:
        Total cache capacity.
    line_bytes:
        Line size.
    ways:
        Associativity (lines per set).
    """

    def __init__(
        self,
        capacity_bytes: int = 2 << 30,
        line_bytes: int = 4 << 10,
        ways: int = 4,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("capacity, line size and ways must be positive")
        lines = capacity_bytes // line_bytes
        if lines < ways:
            raise ValueError("capacity must hold at least one full set")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = max(1, lines // ways)
        # Each set is an LRU-ordered list of tags (most recent last).
        self._sets: list[list] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _index(self, key) -> tuple[int, tuple]:
        tag = key if isinstance(key, tuple) else (key,)
        return hash(tag) % self.n_sets, tag

    # -- line operations -----------------------------------------------------
    def lookup_line(self, key) -> bool:
        """Probe one line; updates LRU order and hit/miss counters."""
        idx, tag = self._index(key)
        s = self._sets[idx]
        if tag in s:
            s.remove(tag)
            s.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert_line(self, key) -> None:
        """Install a line, evicting the set's LRU entry if full."""
        idx, tag = self._index(key)
        s = self._sets[idx]
        if tag in s:
            s.remove(tag)
        elif len(s) >= self.ways:
            s.pop(0)
        s.append(tag)

    def contains_line(self, key) -> bool:
        """Probe without touching LRU order or counters."""
        idx, tag = self._index(key)
        return tag in self._sets[idx]

    # -- whole-range helpers -----------------------------------------------------
    def lookup_range(self, stream, offset: int, nbytes: int) -> float:
        """Fraction of the byte range present (counts one probe per line)."""
        lines = self._lines_of(offset, nbytes)
        if not lines:
            return 0.0
        hit = sum(self.lookup_line((stream, ln)) for ln in lines)
        return hit / len(lines)

    def insert_range(self, stream, offset: int, nbytes: int) -> None:
        for ln in self._lines_of(offset, nbytes):
            self.insert_line((stream, ln))

    def _lines_of(self, offset: int, nbytes: int) -> range:
        if nbytes <= 0:
            return range(0)
        first = offset // self.line_bytes
        last = (offset + nbytes - 1) // self.line_bytes
        return range(first, last + 1)

    # -- stats -----------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        for s in self._sets:
            s.clear()
        self.reset_counters()
