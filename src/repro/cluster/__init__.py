"""Storage cluster: filers, filesystem caches, metadata, admission control.

Mirrors the simulator architecture of §6.2.2: 16 virtual filers each fronting
8 virtual disks with a shared 2 GB filesystem cache, a metadata service the
client consults on open/close (5 ms per access), per-server admission
control (§5.4) and the credential-chain access-control model (Appendix C).
"""

from repro.cluster.admission import (
    AdmissionController,
    CapacityAdmission,
    PriorityAdmission,
)
from repro.cluster.filer import Filer
from repro.cluster.fscache import SetAssociativeCache
from repro.cluster.metadata import FileRecord, MetadataServer
from repro.cluster.server import StorageServer

__all__ = [
    "AdmissionController",
    "CapacityAdmission",
    "FileRecord",
    "Filer",
    "MetadataServer",
    "PriorityAdmission",
    "SetAssociativeCache",
    "StorageServer",
]
