"""Distributed metadata service (§4.2).

The dissertation weighs a central metadata server (simple, update-cheap,
scalability-limited) against a distributed one ("potential to support
more disks and users with faster responses, while it also involves higher
management costs for synchronization, load balancing, and so on").  This
module implements the distributed variant: file records hash-partition
across metadata nodes; reads hit one partition, mutations additionally pay
a synchronisation cost to replicate the change to ``sync_replicas`` peer
nodes.  The interface matches :class:`repro.cluster.metadata.MetadataServer`
so the schemes can run on either.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.metadata import (
    METADATA_ACCESS_LATENCY_S,
    FileRecord,
    MetadataServer,
)


class DistributedMetadataServer:
    """Hash-partitioned metadata over ``n_nodes`` cooperating servers.

    Parameters
    ----------
    n_nodes:
        Number of metadata partitions.
    node_latency_s:
        Per-node access latency; lower than a loaded central server
        because each node handles 1/n of the traffic.
    sync_latency_s:
        Extra latency charged per mutation for replicating it to the
        partition's peers.
    sync_replicas:
        How many peer nodes every mutation synchronises to.
    """

    def __init__(
        self,
        n_nodes: int = 4,
        node_latency_s: float = METADATA_ACCESS_LATENCY_S / 2,
        sync_latency_s: float = METADATA_ACCESS_LATENCY_S,
        sync_replicas: int = 1,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one metadata node")
        if sync_replicas >= n_nodes and n_nodes > 1:
            sync_replicas = n_nodes - 1
        self.n_nodes = n_nodes
        self.node_latency_s = node_latency_s
        self.sync_latency_s = sync_latency_s
        self.sync_replicas = sync_replicas if n_nodes > 1 else 0
        self._nodes = [MetadataServer(latency_s=node_latency_s) for _ in range(n_nodes)]
        self.accesses = 0
        self.sync_messages = 0

    # The scheme layer reads `latency_s` for open-cost estimation.
    @property
    def latency_s(self) -> float:
        return self.node_latency_s

    def _node_of(self, name: str) -> int:
        h = 2166136261
        for ch in name.encode():
            h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
        return h % self.n_nodes

    def _primary(self, name: str) -> MetadataServer:
        return self._nodes[self._node_of(name)]

    def _peers(self, name: str) -> list[MetadataServer]:
        if self.sync_replicas == 0:
            return []
        base = self._node_of(name)
        return [
            self._nodes[(base + i) % self.n_nodes]
            for i in range(1, self.sync_replicas + 1)
        ]

    def _mutation_latency(self) -> float:
        return self.node_latency_s + (
            self.sync_latency_s if self.sync_replicas else 0.0
        )

    # -- MetadataServer-compatible interface ------------------------------------
    def open(self, name: str, mode: str, holder: str = "client"):
        self.accesses += 1
        record, _ = self._primary(name).open(name, mode, holder)
        return record, self.node_latency_s

    def commit(self, record: FileRecord) -> float:
        self.accesses += 1
        self._primary(record.name).commit(record)
        for peer in self._peers(record.name):
            peer.commit(record)
            self.sync_messages += 1
        return self._mutation_latency()

    def close(self, name: str, holder: str = "client") -> float:
        self.accesses += 1
        self._primary(name).close(name, holder)
        return self.node_latency_s

    def lookup(self, name: str) -> FileRecord:
        return self._primary(name).lookup(name)

    def exists(self, name: str) -> bool:
        return self._primary(name).exists(name)

    def delete(self, name: str) -> float:
        self.accesses += 1
        self._primary(name).delete(name)
        for peer in self._peers(name):
            peer.delete(name)
            self.sync_messages += 1
        return self._mutation_latency()

    def update_placement(self, name: str, placement) -> float:
        self.accesses += 1
        self._primary(name).update_placement(name, placement)
        for peer in self._peers(name):
            if peer.exists(name):
                peer.update_placement(name, placement)
            self.sync_messages += 1
        return self._mutation_latency()

    # -- failover ---------------------------------------------------------------
    def lookup_with_failover(self, name: str, failed_node: Optional[int] = None) -> FileRecord:
        """Serve a lookup from a sync replica when the primary is down."""
        primary = self._node_of(name)
        if failed_node != primary:
            return self._nodes[primary].lookup(name)
        for peer in self._peers(name):
            if peer.exists(name):
                return peer.lookup(name)
        raise KeyError(f"{name}: primary down and no replica holds the record")

    def register_server(self, server_id: int, info: dict | None = None) -> float:
        self.accesses += 1
        for node in self._nodes:  # server registry is global knowledge
            node.register_server(server_id, info)
        return self._mutation_latency()

    def server_info(self, server_id: int) -> dict:
        return self._nodes[0].server_info(server_id)

    def node_load(self) -> list[int]:
        """Per-node access counters (load-balance diagnostics)."""
        return [node.accesses for node in self._nodes]
