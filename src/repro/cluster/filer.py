"""Virtual filer: network latency + filesystem cache in front of disks.

§6.2.2: "The virtual filer ... models the network latency between client
and server, and maintains the filesystem cache.  ...  the latency is
applied per data request instead of per data access. ...  If the data are
in-cache, the filer directly sends the data to the client at a rate decided
by the maximum network speed; if the data is not in cache or is only partly
in cache, the filer requests the missing data blocks from the corresponding
virtual disks."

Writes are write-through (§6.2.5): they populate the cache and always reach
the disk.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.fscache import SetAssociativeCache
from repro.net.link import Link
from repro.obs.tracer import NULL_TRACER


class Filer:
    """One storage server front-end.

    Parameters
    ----------
    filer_id:
        Index in the cluster.
    disk_ids:
        The (eight, typically) disks attached to this filer.
    link:
        Client link (fixed RTT, plentiful bandwidth).
    cache:
        Shared filesystem cache; ``None`` disables caching.
    tracer:
        Optional :class:`repro.obs.Tracer`; the filer counts filesystem
        cache hits/misses and disk traffic through it.
    """

    def __init__(
        self,
        filer_id: int,
        disk_ids: list[int],
        link: Link,
        cache: SetAssociativeCache | None = None,
        tracer=None,
    ) -> None:
        self.filer_id = filer_id
        self.disk_ids = list(disk_ids)
        self.link = link
        self.cache = cache
        self.disk_bytes_read = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- cache interface (block granularity) -----------------------------------
    def cached_blocks(self, file_name: str, block_ids) -> np.ndarray:
        """Boolean mask: which of the requested blocks are fully cached.

        Probes without disturbing LRU order (the actual access happens in
        :meth:`read_access` / :meth:`write_access`).
        """
        if self.cache is None:
            mask = np.zeros(len(list(block_ids)), dtype=bool)
        else:
            mask = np.array(
                [self.cache.contains_line((file_name, int(b))) for b in block_ids],
                dtype=bool,
            )
        if self.tracer.enabled and mask.size:
            hits = int(np.count_nonzero(mask))
            self.tracer.count("filer.fscache_hits", hits)
            self.tracer.count("filer.fscache_misses", int(mask.size) - hits)
        return mask

    def record_read(self, file_name: str, block_ids, block_bytes: int) -> None:
        """Blocks served from disk enter the cache; hits refresh LRU."""
        before = self.disk_bytes_read
        if self.cache is None:
            self.disk_bytes_read += len(list(block_ids)) * block_bytes
        else:
            for b in block_ids:
                key = (file_name, int(b))
                if not self.cache.lookup_line(key):
                    self.disk_bytes_read += block_bytes
                    self.cache.insert_line(key)
        if self.tracer.enabled:
            self.tracer.count("filer.bytes_from_disk", self.disk_bytes_read - before)

    def record_write(self, file_name: str, block_ids, block_bytes: int) -> None:
        """Write-through: populate the cache, all bytes hit the disk."""
        if self.cache is not None:
            for b in block_ids:
                self.cache.insert_line((file_name, int(b)))

    def age_cache(self, nbytes: int) -> None:
        """Competing traffic pushes ``nbytes`` of other data through the
        cache, evicting part of whatever was resident (§6.3.3: the 2 GB
        cache is shared by all accesses to the filer's eight disks)."""
        if self.cache is None or nbytes <= 0:
            return
        lines = nbytes // self.cache.line_bytes
        for i in range(int(lines)):
            self._age_counter = getattr(self, "_age_counter", 0) + 1
            self.cache.insert_line(("__aging__", self._age_counter))

    # -- latency helpers ----------------------------------------------------------
    def request_arrival_delay(self) -> float:
        """Client -> filer one-way latency for a request message."""
        return self.link.one_way_s

    def response_delay(self, nbytes: int) -> float:
        """Filer -> client one-way latency + serialization for a payload."""
        self.link.account(nbytes)
        return self.link.one_way_s + self.link.transfer_time(nbytes)
