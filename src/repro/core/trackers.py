"""Compatibility facade over :mod:`repro.accesscore.trackers`.

The completion trackers moved into the access-core package (both engines
consume through them); this module re-exports every tracker under the
original import path so existing imports keep working.  New code should
import from :mod:`repro.accesscore.trackers` directly.
"""

from __future__ import annotations

from repro.accesscore.trackers import (  # noqa: F401
    PARITY_BASE,
    AllBlocksTracker,
    CompletionTracker,
    CoverageTracker,
    DecodableCommit,
    DecoderTracker,
    GroupedRSTracker,
    ParityStripeTracker,
    TrackerBase,
    _consume_batch,
)
