"""RAID-5: block-level striping with rotating parity (Fig 2-2, §2.1.3).

An additional baseline beyond the paper's three: one parity block per
(H-1)-block stripe, parity position rotating across disks.  Fault-free
reads touch only the data blocks (parity is dead weight); a read with one
failed disk runs *degraded* — every stripe that lost a data block must
fetch its parity and all surviving stripe-mates to reconstruct.  More
than one failed disk is unrecoverable.
"""

from __future__ import annotations

import numpy as np

from repro.core.access import (
    AccessResult,
    completion_time,
    finalize_read,
    serve_read_queues,
    simulate_uniform_write,
)
from repro.core.base import SchemeBase

#: Id offset distinguishing parity blocks from data blocks.
PARITY_BASE = 1 << 20


class Raid5Scheme(SchemeBase):
    """Striping + rotating parity; redundancy is fixed at 1/(H-1)."""

    name = "raid5"

    def _layout(self, n_disks: int):
        """Return (placement incl. parity, stripes).

        Stripe ``s`` holds data blocks ``s*(H-1) .. s*(H-1)+H-2`` and one
        parity block (id ``PARITY_BASE + s``) on disk ``H-1 - (s mod H)``.
        """
        k = self.config.k
        h = n_disks
        if h < 2:
            raise ValueError("RAID-5 needs at least two disks")
        per_stripe = h - 1
        n_stripes = -(-k // per_stripe)
        placement = [[] for _ in range(h)]
        stripes = []
        for s in range(n_stripes):
            parity_disk = h - 1 - (s % h)
            data = list(range(s * per_stripe, min(k, (s + 1) * per_stripe)))
            members = []
            d = 0
            for b in data:
                if d == parity_disk:
                    d += 1
                placement[d % h].append(b)
                members.append((b, d % h))
                d += 1
            placement[parity_disk].append(PARITY_BASE + s)
            stripes.append({"data": members, "parity_disk": parity_disk, "id": s})
        return placement, stripes

    def prepare(self, file_name: str, trial: int):
        disks = self.select_disks(trial)
        placement, stripes = self._layout(len(disks))
        return self._register(
            file_name,
            disks,
            placement,
            coding={"algorithm": "parity", "stripes": len(stripes)},
            extra={"stripes": stripes},
        )

    def write(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        disks = self.select_disks(trial)
        placement, stripes = self._layout(len(disks))
        t0 = self.open_latency()
        t_done, net = simulate_uniform_write(
            self.cluster,
            disks,
            placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "write"),
            file_name,
        )
        self._register(
            file_name,
            disks,
            placement,
            coding={"algorithm": "parity", "stripes": len(stripes)},
            extra={"stripes": stripes},
        )
        total = sum(len(p) for p in placement)
        return AccessResult(
            latency_s=t_done + self.metadata.latency_s,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=total,
            blocks_received=total,
        )

    def read(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        record = self._record(file_name)
        stripes = record.extra["stripes"]
        failed_positions = {
            idx
            for idx, d in enumerate(record.disk_ids)
            if self.cluster.disk_state(int(d)).failed
        }
        if len(failed_positions) > 1:
            return AccessResult(
                latency_s=float("inf"),
                data_bytes=cfg.data_bytes,
                network_bytes=0,
                disk_blocks=0,
                blocks_received=0,
                extra={"degraded": True, "unrecoverable": True},
            )

        # Request plan: all data blocks from surviving disks; for stripes
        # that lost a data block, also the parity (if its disk survived).
        degraded = bool(failed_positions)
        failed_pos = next(iter(failed_positions), None)
        placement = [[] for _ in record.disk_ids]
        recoverable = True
        for idx, blocks in enumerate(record.placement):
            if idx == failed_pos:
                continue
            placement[idx] = [
                b
                for b in blocks
                if b < PARITY_BASE
                or degraded
                and self._stripe_lost_data(stripes[b - PARITY_BASE], failed_pos)
            ]
        if degraded:
            for stripe in stripes:
                if self._stripe_lost_data(stripe, failed_pos) and stripe[
                    "parity_disk"
                ] == failed_pos:
                    recoverable = False  # lost both a data block and parity? impossible
        if not recoverable:  # pragma: no cover - single failure never hits this
            return AccessResult(float("inf"), cfg.data_bytes, 0, 0, 0)

        t0 = self.open_latency()
        streams = serve_read_queues(
            self.cluster,
            record.disk_ids,
            placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "read"),
            file_name,
        )
        # Completion: every data block either arrives directly or is
        # reconstructed once its full surviving stripe (incl. parity) is in.
        tracker = _Raid5Tracker(cfg.k, stripes, failed_pos)
        t_done, consumed = completion_time(
            streams, tracker, cfg.block_bytes, cfg.client_bandwidth_bps
        )
        net, disk_blocks, hits = finalize_read(
            streams, self.cluster, t_done, cfg.block_bytes, file_name
        )
        return AccessResult(
            latency_s=t_done,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=disk_blocks,
            blocks_received=consumed,
            cache_hits=hits,
            extra={"degraded": degraded},
        )

    @staticmethod
    def _stripe_lost_data(stripe: dict, failed_pos) -> bool:
        return any(d == failed_pos for _, d in stripe["data"])


class _Raid5Tracker:
    """Data blocks arrive directly or via stripe reconstruction."""

    def __init__(self, k: int, stripes: list, failed_pos) -> None:
        self.k = k
        self._have = np.zeros(k, dtype=bool)
        self._count = 0
        self._failed_pos = failed_pos
        # For each stripe with a lost block: remaining pieces to XOR.
        self._stripe_need: dict[int, set] = {}
        self._lost_block: dict[int, int] = {}
        if failed_pos is not None:
            for stripe in stripes:
                lost = [b for b, d in stripe["data"] if d == failed_pos]
                if lost:
                    sid = stripe["id"]
                    self._lost_block[sid] = lost[0]
                    self._stripe_need[sid] = {
                        b for b, d in stripe["data"] if d != failed_pos
                    } | {PARITY_BASE + sid}
        self._by_member: dict[int, list[int]] = {}
        for sid, members in self._stripe_need.items():
            for m in members:
                self._by_member.setdefault(m, []).append(sid)

    def add(self, block_id: int) -> None:
        if block_id < PARITY_BASE and not self._have[block_id]:
            self._have[block_id] = True
            self._count += 1
        for sid in self._by_member.get(block_id, []):
            need = self._stripe_need.get(sid)
            if need is None:
                continue
            need.discard(block_id)
            if not need:
                del self._stripe_need[sid]
                lost = self._lost_block[sid]
                if not self._have[lost]:
                    self._have[lost] = True
                    self._count += 1

    @property
    def complete(self) -> bool:
        return self._count >= self.k
