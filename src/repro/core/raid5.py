"""RAID-5: block-level striping with rotating parity (Fig 2-2, §2.1.3).

An additional baseline beyond the paper's three: one parity block per
(H-1)-block stripe, parity position rotating across disks.  Fault-free
reads touch only the data blocks (parity is dead weight); a read with one
failed disk runs *degraded* — every stripe that lost a data block must
fetch its parity and all surviving stripe-mates to reconstruct.  More
than one failed disk is unrecoverable.

Composition: parity-stripe placement x speculative dispatch x parity
completion x degraded-read fault reaction (see :mod:`repro.core.policy`).
"""

from __future__ import annotations

from repro.core.pipeline import PolicyScheme
from repro.core.policy.compose import composition
from repro.core.policy.placement import ParityStripePlacement
from repro.core.trackers import PARITY_BASE  # noqa: F401  (re-export)


class Raid5Scheme(PolicyScheme):
    """Striping + rotating parity; redundancy is fixed at 1/(H-1)."""

    name = "raid5"
    spec = composition("raid5")

    def _layout(self, n_disks: int):
        """(placement incl. parity, stripes) — kept for tests and tooling."""
        return ParityStripePlacement.layout(self.config.k, n_disks)
