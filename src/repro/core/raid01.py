"""RAID-0+1: two mirrored striped disk sets (Fig 2-2, §6.2.1).

The layout RRAID-S generalises: the disks split into two halves, each
holding a full RAID-0 stripe of the data; a speculative read requests both
mirrors and completes on first-copy coverage.  Fixed redundancy D=1, and —
unlike RRAID-S's rotated replicas — a block's two copies sit at the *same*
stripe position of their respective halves, so a slow disk pair can pin
the same blocks in both mirrors.
"""

from __future__ import annotations

from repro.core.access import (
    AccessResult,
    CoverageTracker,
    completion_with_order,
    finalize_read,
    serve_read_queues,
    simulate_uniform_write,
)
from repro.core.base import SchemeBase


class Raid01Scheme(SchemeBase):
    """Mirrored striping (two sets), speculative reads; D fixed at 1."""

    name = "raid0+1"

    def _placement(self, n_disks: int):
        k = self.config.k
        if n_disks < 2:
            raise ValueError("RAID-0+1 needs at least two disks")
        half = n_disks // 2
        placement = [[] for _ in range(n_disks)]
        for i in range(k):
            placement[i % half].append(i)            # mirror set A: ids 0..k-1
            placement[half + i % half].append(k + i)  # mirror set B: ids k..2k-1
        return placement

    def prepare(self, file_name: str, trial: int):
        disks = self.select_disks(trial)
        return self._register(
            file_name,
            disks,
            self._placement(len(disks)),
            coding={"algorithm": "mirrored-striping", "replicas": 2},
        )

    def write(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        disks = self.select_disks(trial)
        placement = self._placement(len(disks))
        t0 = self.open_latency()
        t_done, net = simulate_uniform_write(
            self.cluster,
            disks,
            placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "write"),
            file_name,
        )
        self._register(
            file_name,
            disks,
            placement,
            coding={"algorithm": "mirrored-striping", "replicas": 2},
        )
        return AccessResult(
            latency_s=t_done + self.metadata.latency_s,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=2 * cfg.k,
            blocks_received=2 * cfg.k,
        )

    def read(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        record = self._record(file_name)
        t0 = self.open_latency()
        streams = serve_read_queues(
            self.cluster,
            record.disk_ids,
            record.placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "read"),
            file_name,
        )
        t_done, consumed, order = completion_with_order(
            streams, CoverageTracker(cfg.k), cfg.block_bytes, cfg.client_bandwidth_bps
        )
        net, disk_blocks, hits = finalize_read(
            streams, self.cluster, t_done, cfg.block_bytes, file_name
        )
        return AccessResult(
            latency_s=t_done,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=disk_blocks,
            blocks_received=consumed,
            cache_hits=hits,
            extra={"arrival_order": order},
        )
