"""RAID-0+1: two mirrored striped disk sets (Fig 2-2, §6.2.1).

The layout RRAID-S generalises: the disks split into two halves, each
holding a full RAID-0 stripe of the data; a speculative read requests both
mirrors and completes on first-copy coverage.  Fixed redundancy D=1, and —
unlike RRAID-S's rotated replicas — a block's two copies sit at the *same*
stripe position of their respective halves, so a slow disk pair can pin
the same blocks in both mirrors.

Composition: mirrored-stripe placement x speculative dispatch x coverage
completion x emergent failover (see :mod:`repro.core.policy`).
"""

from __future__ import annotations

from repro.core.pipeline import PolicyScheme
from repro.core.policy.compose import composition


class Raid01Scheme(PolicyScheme):
    """Mirrored striping (two sets), speculative reads; D fixed at 1."""

    name = "raid0+1"
    spec = composition("raid0+1")
