"""QoS-aware open (Appendix B).

An application opens a file with a QoS specification — a traffic profile
plus performance requirements — and the layout planner turns it into
access parameters: how many disks, how much redundancy, what block size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.access import MB, AccessConfig


@dataclass(frozen=True)
class QoSOptions:
    """Appendix B's QoS dimensions (the ones the planner acts on).

    Attributes
    ----------
    target_bandwidth_mbps:
        Desired sustained access bandwidth; ``None`` means no bandwidth
        requirement.  Must be positive when given — a zero or negative
        target is a specification error, not a "don't care".
    max_latency_std_s:
        Bound on access-latency variation (robustness requirement).
    redundancy_budget:
        Maximum storage expansion the application will pay for (D).
        Must be positive: a non-positive budget cannot hold any coded
        redundancy and would silently plan a degenerate config.
    reserve_bytes:
        Capacity to reserve (traffic profile).
    priority:
        Admission-control priority (smaller = more urgent).
    """

    target_bandwidth_mbps: float | None = None
    max_latency_std_s: float = float("inf")
    redundancy_budget: float = 3.0
    reserve_bytes: int = 0
    priority: int = 0


@dataclass(frozen=True)
class DiskProfile:
    """The planner's knowledge of the pool (metadata-server statistics)."""

    avg_bandwidth_mbps: float = 15.0
    peak_bandwidth_mbps: float = 50.0
    pool_size: int = 128


def plan_access(
    base: AccessConfig, qos: QoSOptions, profile: DiskProfile | None = None
) -> AccessConfig:
    """Translate QoS requirements into an :class:`AccessConfig`.

    Applies the dissertation's two sizing rules:

    * §5.3.1 — #disks >= target bandwidth / average disk bandwidth;
    * §5.3.2 — redundancy D >= (1 + eps) * peak/average - 1, clipped to
      the application's budget.

    Raises
    ------
    ValueError
        For a non-positive ``redundancy_budget`` or ``target_bandwidth_mbps``
        — both would otherwise plan a degenerate config (no redundancy /
        zero disks) that fails far from the specification mistake.
    """
    if qos.redundancy_budget <= 0:
        raise ValueError(
            f"redundancy_budget must be positive, got {qos.redundancy_budget}"
            " (a non-positive budget cannot hold coded redundancy)"
        )
    if qos.target_bandwidth_mbps is not None and qos.target_bandwidth_mbps <= 0:
        raise ValueError(
            "target_bandwidth_mbps must be positive, got "
            f"{qos.target_bandwidth_mbps} (omit it, or pass None, for "
            "no bandwidth requirement)"
        )
    profile = profile or DiskProfile()
    cfg = base

    if qos.target_bandwidth_mbps is not None:
        need = max(
            1,
            -(-int(qos.target_bandwidth_mbps) // max(1, int(profile.avg_bandwidth_mbps))),
        )
        cfg = replace(cfg, n_disks=min(profile.pool_size, max(cfg.n_disks, need)))

    reception_eps = 0.5  # typical LT reception overhead (§5.2.4)
    d_needed = (1 + reception_eps) * (
        profile.peak_bandwidth_mbps / profile.avg_bandwidth_mbps
    ) - 1
    d = min(qos.redundancy_budget, max(0.0, d_needed))
    cfg = replace(cfg, redundancy=d)

    # Tight robustness targets favour smaller blocks (Fig 6-10).
    if qos.max_latency_std_s < 0.5 and cfg.block_bytes > 1 * MB:
        cfg = replace(cfg, block_bytes=1 * MB)
    return cfg
