"""Client-side access scheduler: disk selection (§5.3.1, §6.2.2).

For each access the scheduler "randomly selects a certain number of disks
and randomly permutes the disks into a random order".  The lightly-loaded
strategy of §5.3.1 is also provided for the admission-control extension.
"""

from __future__ import annotations

import numpy as np


class AccessScheduler:
    """Selects which disks an access uses.

    Parameters
    ----------
    n_pool:
        Size of the disk pool (128 in the baseline).
    strategy:
        ``random`` (the dissertation's experiments) or ``lightly-loaded``.
    """

    def __init__(self, n_pool: int, strategy: str = "random") -> None:
        if n_pool < 1:
            raise ValueError("pool must contain at least one disk")
        if strategy not in ("random", "lightly-loaded"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.n_pool = n_pool
        self.strategy = strategy
        # Exponentially decayed outstanding-block estimate per disk.
        self._load = np.zeros(n_pool, dtype=np.float64)

    def select(self, n_disks: int, rng: np.random.Generator) -> np.ndarray:
        """Pick ``n_disks`` distinct disks in random order."""
        if not 1 <= n_disks <= self.n_pool:
            raise ValueError(f"cannot select {n_disks} of {self.n_pool} disks")
        if self.strategy == "random":
            return rng.choice(self.n_pool, size=n_disks, replace=False)
        # Lightly-loaded: pick the n least-loaded (ties broken randomly),
        # then randomly permute.
        noise = rng.random(self.n_pool) * 1e-9
        order = np.argsort(self._load + noise)[:n_disks]
        return rng.permutation(order)

    def note_assignment(self, disk_ids, blocks_per_disk) -> None:
        """Record outstanding work for the lightly-loaded strategy."""
        for d, n in zip(disk_ids, np.atleast_1d(blocks_per_disk)):
            self._load[int(d)] += float(n)

    def note_completion(self, disk_ids, blocks_per_disk) -> None:
        for d, n in zip(disk_ids, np.atleast_1d(blocks_per_disk)):
            self._load[int(d)] = max(0.0, self._load[int(d)] - float(n))

    def disks_to_saturate(
        self, client_bandwidth_bps: float, avg_disk_bandwidth_bps: float
    ) -> int:
        """§5.3.1 rule: #disks >= client bandwidth / average disk bandwidth."""
        if avg_disk_bandwidth_bps <= 0:
            raise ValueError("average disk bandwidth must be positive")
        return max(1, int(np.ceil(client_bandwidth_bps / avg_disk_bandwidth_bps)))
