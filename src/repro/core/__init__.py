"""The storage schemes and client-facing API (the paper's contribution).

Four schemes, as compared in Chapter 6:

* :class:`repro.core.raid0.Raid0Scheme` — plain striping, zero redundancy.
* :class:`repro.core.rraid_s.RRaidSScheme` — rotated replication +
  speculative access.
* :class:`repro.core.rraid_a.RRaidAScheme` — rotated replication +
  adaptive multi-round access.
* :class:`repro.core.robustore.RobuStoreScheme` — LT-coded redundancy +
  speculative access (the paper's contribution).

:mod:`repro.core.api` wraps them in the open/read/write/close interface of
§4.3.1.
"""

from repro.core.access import AccessResult
from repro.core.raid0 import Raid0Scheme
from repro.core.raid01 import Raid01Scheme
from repro.core.raid5 import Raid5Scheme
from repro.core.robustore import RobuStoreScheme
from repro.core.robustore_rs import RobuStoreRSScheme
from repro.core.rraid_a import RRaidAScheme
from repro.core.rraid_s import RRaidSScheme

#: The paper's four schemes plus the Fig 2-2 background baselines.
SCHEMES = {
    "raid0": Raid0Scheme,
    "rraid-s": RRaidSScheme,
    "rraid-a": RRaidAScheme,
    "robustore": RobuStoreScheme,
    "raid5": Raid5Scheme,
    "raid0+1": Raid01Scheme,
    "robustore-rs": RobuStoreRSScheme,
}

__all__ = [
    "AccessResult",
    "Raid0Scheme",
    "Raid01Scheme",
    "Raid5Scheme",
    "RRaidAScheme",
    "RRaidSScheme",
    "RobuStoreRSScheme",
    "RobuStoreScheme",
    "SCHEMES",
]
