"""The storage schemes and client-facing API (the paper's contribution).

Every scheme is a composition of the :mod:`repro.core.policy` layers
(placement x dispatch x completion x fault-reaction x write), run by the
engine-agnostic pipeline in :mod:`repro.core.pipeline`.  The paper's
schemes, as compared in Chapter 6:

* :class:`repro.core.raid0.Raid0Scheme` — plain striping, zero redundancy.
* :class:`repro.core.rraid_s.RRaidSScheme` — rotated replication +
  speculative access.
* :class:`repro.core.rraid_a.RRaidAScheme` — rotated replication +
  adaptive multi-round access.
* :class:`repro.core.robustore.RobuStoreScheme` — LT-coded redundancy +
  speculative access (the paper's contribution).

Further cross-products (``lt+adaptive``, ``mirror+adaptive``,
``rs+adaptive``) live only in
:data:`repro.core.policy.compose.COMPOSITIONS`;
:func:`repro.core.pipeline.scheme_class` synthesizes their classes on
demand.  :mod:`repro.core.api` wraps the schemes in the
open/read/write/close interface of §4.3.1.
"""

from repro.core.access import AccessResult
from repro.core.pipeline import PolicyScheme, scheme_class
from repro.core.policy.compose import COMPOSITIONS
from repro.core.raid0 import Raid0Scheme
from repro.core.raid01 import Raid01Scheme
from repro.core.raid5 import Raid5Scheme
from repro.core.robustore import RobuStoreScheme
from repro.core.robustore_rs import RobuStoreRSScheme
from repro.core.rraid_a import RRaidAScheme
from repro.core.rraid_s import RRaidSScheme

#: The paper's four schemes plus the Fig 2-2 background baselines.
#: (Exactly the named shim classes; registry-only compositions are in
#: :data:`COMPOSITIONS` and resolved via :func:`scheme_class`.)
SCHEMES = {
    "raid0": Raid0Scheme,
    "rraid-s": RRaidSScheme,
    "rraid-a": RRaidAScheme,
    "robustore": RobuStoreScheme,
    "raid5": Raid5Scheme,
    "raid0+1": Raid01Scheme,
    "robustore-rs": RobuStoreRSScheme,
}

__all__ = [
    "AccessResult",
    "COMPOSITIONS",
    "PolicyScheme",
    "Raid0Scheme",
    "Raid01Scheme",
    "Raid5Scheme",
    "RRaidAScheme",
    "RRaidSScheme",
    "RobuStoreRSScheme",
    "RobuStoreScheme",
    "SCHEMES",
    "scheme_class",
]
