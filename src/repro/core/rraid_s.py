"""RRAID-S: rotated plain-text replication + speculative access (§6.2.1).

Replica ``r`` of block ``i`` lives on disk ``(i + r) mod H``.  The client
speculatively requests *all* blocks on every disk in one round and cancels
once at least one copy of every original block has arrived.  The wasted
duplicate transfers are the scheme's signature ~200 % I/O overhead.
"""

from __future__ import annotations

from repro.core import layout as L
from repro.core.access import (
    AccessResult,
    CoverageTracker,
    completion_with_order,
    finalize_read,
    serve_read_queues,
    simulate_uniform_write,
    trace_read_access,
)
from repro.core.base import SchemeBase


class RRaidSScheme(SchemeBase):
    """Replicated striping, speculative (single-round) reads."""

    name = "rraid-s"

    def _placement(self, n_disks: int):
        return L.rotated_replicas_fractional(
            self.config.k, self.config.redundancy, n_disks
        )

    def prepare(self, file_name: str, trial: int):
        disks = self.select_disks(trial)
        return self._register(
            file_name,
            disks,
            self._placement(len(disks)),
            coding={"algorithm": "replication", "replicas": self.config.replicas},
        )

    def write(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        disks = self.select_disks(trial)
        placement = self._placement(len(disks))
        t0 = self.open_latency()
        t_done, net = simulate_uniform_write(
            self.cluster,
            disks,
            placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "write"),
            file_name,
        )
        self._register(
            file_name,
            disks,
            placement,
            coding={"algorithm": "replication", "replicas": cfg.replicas},
        )
        total = sum(len(p) for p in placement)
        return AccessResult(
            latency_s=t_done + self.metadata.latency_s,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=total,
            blocks_received=total,
        )

    def read(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        record = self._record(file_name)
        t0 = self.open_latency()
        streams = serve_read_queues(
            self.cluster,
            record.disk_ids,
            record.placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "read"),
            file_name,
        )
        t_done, consumed, order = completion_with_order(
            streams, CoverageTracker(cfg.k), cfg.block_bytes, cfg.client_bandwidth_bps
        )
        net, disk_blocks, hits = finalize_read(
            streams, self.cluster, t_done, cfg.block_bytes, file_name
        )
        trace_read_access(
            self.tracer, self.name, trial, streams, t0, t_done, consumed,
            cfg.block_bytes, cfg.data_bytes,
        )
        return AccessResult(
            latency_s=t_done,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=disk_blocks,
            blocks_received=consumed,
            cache_hits=hits,
            extra={"arrival_order": order},
        )
