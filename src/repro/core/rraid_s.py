"""RRAID-S: rotated plain-text replication + speculative access (§6.2.1).

Replica ``r`` of block ``i`` lives on disk ``(i + r) mod H``.  The client
speculatively requests *all* blocks on every disk in one round and cancels
once at least one copy of every original block has arrived.  The wasted
duplicate transfers are the scheme's signature ~200 % I/O overhead.

Composition: rotated-replica placement x speculative dispatch x coverage
completion x emergent failover (see :mod:`repro.core.policy`).
"""

from __future__ import annotations

from repro.core.pipeline import PolicyScheme
from repro.core.policy.compose import composition


class RRaidSScheme(PolicyScheme):
    """Replicated striping, speculative (single-round) reads."""

    name = "rraid-s"
    spec = composition("rraid-s")
