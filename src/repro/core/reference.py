"""Reference event-driven engine: the §6.2.2 simulator, literally.

The production experiment path computes disk queues in closed form (fast,
validated).  This module is the *reference*: every entity — client, filer,
drive, background generator — is a discrete-event process on the
:mod:`repro.sim` kernel, exactly as Figure 6-3 draws the simulator.  It
exists to (a) validate the vectorised engine (see
``tests/test_reference_engine.py``), and (b) support experiments the
closed form cannot express, like multiple concurrent clients contending
for the same drives (§7.3 "Evaluation for Multi-User Workloads").

Scope: speculative reads (RAID-0 / RRAID-S / RobuSTore semantics via the
completion trackers) on heterogeneous drives with optional background
workloads and concurrent clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.server import Cluster
from repro.core.access import CompletionTracker, decode_tail_s
from repro.core.policy.compose import COMPOSITIONS
from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.geometry import SECTOR_BYTES
from repro.disk.mechanics import DiskMechanics
from repro.disk.workload import BackgroundWorkload
from repro.sim.rng import stable_seed
from repro.sim import Environment, Store


@dataclass
class ReferenceAccess:
    """Outcome of one event-driven access (first client's view)."""

    latency_s: float
    blocks_received: int
    network_bytes: int
    per_client: dict = field(default_factory=dict)


class ReferenceDrive:
    """A drive entity whose per-block service times follow the same
    distribution as :class:`repro.disk.service.BlockService`.

    The drive serves whole data blocks: each is one queue entry whose
    service time is sampled from the disk's (blocking factor, p_seq, zone)
    state — identical inputs to the closed-form engine, so the two engines
    are statistically comparable.  Requests from different clients and the
    background stream share the queue under the ``fair`` discipline.
    """

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        disk_id: int,
        rng: np.random.Generator,
        block_bytes: int,
    ) -> None:
        self.env = env
        self.disk_id = disk_id
        self.block_bytes = block_bytes
        self.svc = cluster.block_service(disk_id, rng)
        # The block-service sampler substitutes for the drive's
        # sector-level timing so both engines draw from one distribution.
        self.drive = DiskDrive(
            env,
            DiskMechanics(),
            np.random.default_rng(0),
            scheduler="fair",
            service_time_fn=self._service_time,
        )
        state = cluster.disk_state(disk_id)
        if state.background is not None:
            self.drive.attach_background(
                BackgroundWorkload(
                    state.background.interval_s,
                    np.random.default_rng(stable_seed(disk_id, "bg")),
                )
            )

    def _service_time(self, req: DiskRequest) -> float:
        if req.is_background:
            bg = self.svc.background
            if bg is not None:
                return float(
                    bg.sample_services(
                        1, self.svc.mechanics, self.svc.spt, self.svc.rng
                    )[0]
                )
            return 0.005
        return float(self.svc.block_service_times(1, self.block_bytes)[0])

    def submit_block(self, tag) -> DiskRequest:
        sectors = max(1, self.block_bytes // SECTOR_BYTES)
        return self.drive.submit(DiskRequest(lba=0, sectors=sectors, tag=tag))

    def cancel(self, tag) -> int:
        return self.drive.cancel(
            lambda r: r.tag == tag and not r.is_background
        )


def _make_tracker(scheme: str, k: int, graph) -> CompletionTracker:
    """The composition's completion tracker, built for the reference engine.

    Dispatches through the scheme's completion policy: completions that
    support the event-driven engine expose ``reference_tracker``; the rest
    (grouped RS, parity reconstruction) are rejected.
    """
    spec = COMPOSITIONS.get(scheme)
    build = getattr(spec.completion, "reference_tracker", None) if spec else None
    if build is None:
        raise ValueError(f"reference engine does not implement {scheme!r}")
    return build(scheme, k, graph)


def reference_read(
    cluster: Cluster,
    disk_ids,
    placement: list[list[int]],
    block_bytes: int,
    scheme: str,
    rng_for,
    k: int,
    graph=None,
    n_clients: int = 1,
) -> ReferenceAccess:
    """Run a speculative read fully event-driven.

    With ``n_clients > 1`` each client issues the same access shape over
    the *same* drives (distinct trackers); contention emerges naturally
    from the shared per-drive queues.  Returns the first client's metrics
    plus every client's latency.
    """
    env = Environment()
    drives = {
        int(d): ReferenceDrive(env, cluster, int(d), rng_for(int(d)), block_bytes)
        for d in disk_ids
    }
    one_way = {
        int(d): cluster.filer_of_disk(int(d)).link.one_way_s for d in disk_ids
    }
    results: dict[int, dict] = {}
    transferred = {cid: 0 for cid in range(n_clients)}

    def block_fetch(env, client_id, disk_id, block_id, inbox):
        """One speculative block request: travel, queue, serve, respond."""
        yield env.timeout(one_way[disk_id])
        req = drives[disk_id].submit_block(tag=("c", client_id))
        finished_at = yield req.done
        if finished_at is None:
            return  # cancelled while still queued
        transferred[client_id] += 1
        yield env.timeout(one_way[disk_id])
        inbox.put((env.now, block_id))

    def client(env, client_id):
        tracker = _make_tracker(scheme, k, graph)
        inbox = Store(env)
        yield env.timeout(0.005)  # metadata access
        total = 0
        for idx, disk_id in enumerate(disk_ids):
            for b in placement[idx]:
                env.process(
                    block_fetch(env, client_id, int(disk_id), int(b), inbox)
                )
                total += 1
        received = 0
        while received < total:
            _, block_id = yield inbox.get()
            received += 1
            tracker.add(int(block_id))
            if tracker.complete:
                break
        t_done = env.now + (
            decode_tail_s(block_bytes) if scheme == "robustore" else 0.0
        )
        # Cancel whatever is still queued, one one-way latency out.
        yield env.timeout(min(one_way.values()))
        for d in drives.values():
            d.cancel(("c", client_id))
        results[client_id] = {"latency": t_done, "received": received}

    clients = [
        env.process(client(env, cid), name=f"client-{cid}")
        for cid in range(n_clients)
    ]
    # Background generators run forever; stop once every client finished.
    env.run(until=env.all_of(clients))

    first = results[0]
    return ReferenceAccess(
        latency_s=first["latency"],
        blocks_received=first["received"],
        network_bytes=transferred[0] * block_bytes,
        per_client={cid: r["latency"] for cid, r in results.items()},
    )
