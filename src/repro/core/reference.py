"""Reference event-driven engine: the §6.2.2 simulator, literally.

The production experiment path computes disk queues in closed form (fast,
validated).  This module is the *reference*: every entity — client, filer,
drive, background generator, fault pump — is a discrete-event process on
the :mod:`repro.sim` kernel, exactly as Figure 6-3 draws the simulator.
It exists to (a) validate the vectorised engine (see
``tests/test_reference_engine.py``), and (b) support experiments the
closed form cannot express, like multiple concurrent clients contending
for the same drives (§7.3 "Evaluation for Multi-User Workloads").

The machinery lives in :mod:`repro.accesscore.events`: both engines wrap
the same access core (metadata open, per-disk routing through link/fault
timelines, policy-built trackers, the shared read/write epilogues), so a
composition implemented once in :mod:`repro.core.policy` runs under either
engine.  This module is the stable public face: scheme-object in,
:class:`ReferenceAccess` out.
"""

from __future__ import annotations

from repro.accesscore.events import (  # noqa: F401  (re-exported: public API)
    EventAccess as ReferenceAccess,
    EventDrive as ReferenceDrive,
    attach_faults,
    build_drives,
    event_read,
    event_write,
)
from repro.accesscore.result import AccessResult


def reference_read(
    scheme, file_name: str, trial: int = 0, n_clients: int = 1
) -> ReferenceAccess:
    """Run one read of ``file_name`` fully event-driven.

    ``scheme`` is a policy-composed scheme object (any entry of
    ``repro.core.SCHEMES`` / :data:`repro.core.policy.compose.COMPOSITIONS`);
    the file must have been prepared or written first.  With
    ``n_clients > 1`` every client issues the same access shape over the
    same drives and contention emerges from the shared queues.
    """
    return event_read(scheme, file_name, trial=trial, n_clients=n_clients)


def reference_write(scheme, file_name: str, trial: int = 0) -> AccessResult:
    """Run one write of ``file_name`` fully event-driven.

    Registers the resulting file record on the scheme exactly like the
    closed-form ``scheme.write`` — a subsequent read (either engine) will
    replay the placement this write committed.
    """
    return event_write(scheme, file_name, trial=trial)
