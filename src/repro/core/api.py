"""Client-facing file API (§4.3.1): open / write / read / close.

This facade couples two things the rest of the package keeps separate:

* **real data movement** — bytes are encoded by the scheme's codec
  (LT graph, replication, Reed-Solomon groups, plain striping), coded
  payloads live in per-file in-memory stores, and reads reconstruct the
  data from the payloads **in the arrival order the timing simulation
  produced**;
* **simulated timing** — the same access runs through the scheme's
  speculative-access engine, yielding latency / bandwidth / I/O-overhead
  numbers.

So a successful :meth:`FileHandle.read` proves both data integrity
(byte-exact round trip through encode -> placement -> partial,
out-of-order retrieval -> decode) and gives the performance a real client
would have observed.  Any scheme with a data-path codec works:
``raid0``, ``rraid-s``, ``rraid-a``, ``raid0+1``, ``robustore`` (default)
and ``robustore-rs``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.metadata import MetadataServer
from repro.cluster.server import Cluster
from repro.coding.xorblocks import join_blocks, split_into_blocks
from repro.core.access import MB, AccessConfig, AccessResult
from repro.core.codecs import codec_for
from repro.core.pipeline import scheme_class
from repro.core.qos import QoSOptions, plan_access
from repro.sim.rng import RngHub


@dataclass
class _StoredFile:
    payloads: dict[int, np.ndarray]
    data_len: int


class StorageClient:
    """A storage client bound to one cluster and one scheme.

    Parameters
    ----------
    scheme:
        Scheme name (see module docstring); RobuSTore by default.
    cluster:
        Storage cluster; a default 128-disk pool is created if omitted.
    config:
        Access parameters; QoS options at :meth:`open` may adjust them.
    seed:
        Root of all randomness (fully reproducible).
    """

    def __init__(
        self,
        scheme: str = "robustore",
        cluster: Cluster | None = None,
        config: AccessConfig | None = None,
        seed: int = 0,
    ) -> None:
        try:
            self.codec = codec_for(scheme)
        except KeyError:
            raise ValueError(
                f"scheme {scheme!r} has no data-path codec; pick one of "
                "raid0, rraid-s, rraid-a, raid0+1, robustore, robustore-rs "
                "or a composed scheme sharing their placements"
            ) from None
        self.scheme_name = scheme
        self._scheme_cls = scheme_class(scheme)
        self.cluster = cluster or Cluster(n_disks=128)
        self.config = config or AccessConfig(data_bytes=64 * MB, n_disks=16)
        self.hub = RngHub(seed)
        self.metadata = MetadataServer()
        self._stores: dict[str, _StoredFile] = {}
        self._trial = 0

    # -- §4.3.1 interface -------------------------------------------------------
    def open(self, file_name: str, mode: str, qos: QoSOptions | None = None) -> "FileHandle":
        """Open a file; returns a handle carrying the planned access config."""
        cfg = self.config
        if qos is not None:
            cfg = plan_access(cfg, qos)
        record, _ = self.metadata.open(file_name, mode)
        return FileHandle(self, file_name, mode, cfg, record)

    # -- internals shared with FileHandle ------------------------------------------
    def _next_trial(self) -> int:
        self._trial += 1
        return self._trial

    def _scheme(self, cfg: AccessConfig):
        return self._scheme_cls(
            self.cluster, cfg, hub=self.hub, metadata=self.metadata
        )


#: Backwards-compatible alias: the original RobuSTore-only entry point.
def RobuStoreClient(cluster=None, config=None, seed: int = 0) -> StorageClient:
    """A :class:`StorageClient` fixed to the RobuSTore scheme."""
    return StorageClient("robustore", cluster=cluster, config=config, seed=seed)


class FileHandle:
    """An open file (returned by :meth:`StorageClient.open`)."""

    def __init__(self, client, file_name, mode, cfg, record) -> None:
        self.client = client
        self.file_name = file_name
        self.mode = mode
        self.cfg = cfg
        self.record = record
        self.closed = False

    # -- write --------------------------------------------------------------------
    def write(self, data: bytes) -> AccessResult:
        """Encode ``data``, simulate the write, store real payloads."""
        if self.mode != "w":
            raise PermissionError("file not opened for writing")
        if self.closed:
            raise ValueError("I/O on closed file")
        cfg = self._size_config(len(data))
        scheme = self.client._scheme(cfg)
        trial = self.client._next_trial()
        self.client.cluster.redraw_disk_states(self.client.hub.fresh("env", trial))
        result = scheme.write(self.file_name, trial)

        record = self.client.metadata.lookup(self.file_name)
        blocks = split_into_blocks(data, cfg.block_bytes)
        if blocks.shape[0] != cfg.k:  # pad to the configured word length
            pad = np.zeros((cfg.k - blocks.shape[0], cfg.block_bytes), np.uint8)
            blocks = np.vstack([blocks, pad])
        payloads = self.client.codec.encode(blocks, record, cfg)
        self.client._stores[self.file_name] = _StoredFile(payloads, len(data))
        self.record = record
        return result

    # -- read ----------------------------------------------------------------------
    def read(self) -> tuple[bytes, AccessResult]:
        """Speculative read: returns (reconstructed bytes, access metrics)."""
        if self.mode != "r":
            raise PermissionError("file not opened for reading")
        if self.closed:
            raise ValueError("I/O on closed file")
        record = self.client.metadata.lookup(self.file_name)
        stored = self.client._stores[self.file_name]
        cfg = self._size_config(stored.data_len)
        scheme = self.client._scheme(cfg)
        trial = self.client._next_trial()
        self.client.cluster.redraw_disk_states(self.client.hub.fresh("env", trial))
        result = scheme.read(self.file_name, trial)
        if not np.isfinite(result.latency_s):
            raise IOError(f"read of {self.file_name!r} never completes")

        blocks = self.client.codec.decode(
            result.extra["arrival_order"], stored.payloads, record, cfg
        )
        data = join_blocks(blocks[: cfg.k], total_len=stored.data_len)
        return data, result

    # -- update (§4.3.4) -------------------------------------------------------------
    def update(self, block_index: int, new_block: bytes) -> AccessResult:
        """Replace one original block; rewrite only the coded blocks it
        touches (RobuSTore only — near-optimal codes localise updates).

        The stored payloads are regenerated for the affected coded blocks,
        so a subsequent :meth:`read` returns the updated bytes.
        """
        if self.mode != "w":
            raise PermissionError("file not opened for writing")
        if self.client.scheme_name != "robustore":
            raise NotImplementedError(
                "in-place update is implemented for the LT codec only"
            )
        from repro.coding.lt import ImprovedLTCode
        from repro.core.update import update_access

        stored = self.client._stores[self.file_name]
        record = self.client.metadata.lookup(self.file_name)
        cfg = self._size_config(stored.data_len)
        if not 0 <= block_index < cfg.k:
            raise IndexError(f"block {block_index} out of range (k={cfg.k})")
        if len(new_block) > cfg.block_bytes:
            raise ValueError("replacement exceeds the block size")

        # Current originals (decode everything from the stored payloads).
        order = [b for p in record.placement for b in p]
        blocks = self.client.codec.decode(order, stored.payloads, record, cfg)
        padded = np.zeros(cfg.block_bytes, dtype=np.uint8)
        padded[: len(new_block)] = np.frombuffer(new_block, dtype=np.uint8)
        blocks[block_index] = padded

        # Regenerate only the adjacent coded blocks (§4.3.4).
        graph = record.extra["graph"]
        code = ImprovedLTCode(cfg.k, c=cfg.lt_c, delta=cfg.lt_delta)
        affected = set(graph.affected_coded_blocks(block_index))
        stored_ids = {b for p in record.placement for b in p}
        for coded_id in affected & stored_ids:
            stored.payloads[coded_id] = code.encode_one(blocks, graph, coded_id)

        # Simulated timing of the partial rewrite.
        scheme = self.client._scheme(cfg)
        trial = self.client._next_trial()
        self.client.cluster.redraw_disk_states(self.client.hub.fresh("env", trial))
        return update_access(scheme, self.file_name, [block_index], trial)

    def close(self) -> None:
        """Release locks (metadata registration happened at write time)."""
        if not self.closed:
            self.client.metadata.close(self.file_name)
            self.closed = True

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- helpers -----------------------------------------------------------------------
    def _size_config(self, data_len: int) -> AccessConfig:
        blocks = max(1, -(-data_len // self.cfg.block_bytes))
        return replace(self.cfg, data_bytes=blocks * self.cfg.block_bytes)
