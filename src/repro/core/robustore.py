"""RobuSTore: LT-coded redundancy + speculative access (the contribution).

Reads request every coded block from every selected disk in a single
round, feed arrivals to the incremental peeling decoder, and cancel once
decoding completes (§4.3.3).  Writes are speculative and rateless: every
disk keeps committing coded blocks from its private id stream until the
client has seen enough commits to (a) reach the target redundancy and
(b) guarantee decodability of the committed set, then cancels (§4.3.2,
§5.2.3 improvement 1).  Speculative writes leave an *unbalanced* placement
— fast disks hold more blocks — which the read path replays faithfully.

Composition: rateless-coded placement x speculative dispatch x LT-decode
completion x re-speculation fault reaction x speculative rateless write
(see :mod:`repro.core.policy`); the LT graph pool lives in
:mod:`repro.core.policy.placement`.
"""

from __future__ import annotations

from repro.core.pipeline import PolicyScheme
from repro.core.policy.compose import composition
from repro.core.policy.placement import (  # noqa: F401  (re-exports)
    GRAPH_POOL_SIZE,
    _GRAPH_POOL,
    pooled_graph,
)


class RobuStoreScheme(PolicyScheme):
    """Erasure-coded redundancy with speculative reads and writes."""

    name = "robustore"
    spec = composition("robustore")

    #: Rateless supply multiplier for speculative writes: each disk can
    #: commit up to this factor times its fair share N/H before running
    #: dry.  Must cover the fastest-to-average disk speed ratio (~4-6x in
    #: the calibrated pool) so fast disks never idle mid-write (§5.3.2).
    WRITE_SUPPLY_FACTOR = 8

    #: When permanent fail-stops push a file's surviving redundancy below
    #: this fraction of the configured degree, reads flag the file for a
    #: background rebuild (``extra["repair_triggered"]``;
    #: :func:`repro.faults.inject.maybe_repair` acts on it).
    REPAIR_REDUNDANCY_FLOOR = 0.5
