"""RobuSTore: LT-coded redundancy + speculative access (the contribution).

Reads request every coded block from every selected disk in a single
round, feed arrivals to the incremental peeling decoder, and cancel once
decoding completes (§4.3.3).  Writes are speculative and rateless: every
disk keeps committing coded blocks from its private id stream until the
client has seen enough commits to (a) reach the target redundancy and
(b) guarantee decodability of the committed set, then cancels (§4.3.2,
§5.2.3 improvement 1).  Speculative writes leave an *unbalanced* placement
— fast disks hold more blocks — which the read path replays faithfully.
"""

from __future__ import annotations

import numpy as np

from repro.coding.lt import ImprovedLTCode, LTGraph
from repro.coding.peeling import PeelingDecoder
from repro.core import layout as L
from repro.core.access import (
    AccessResult,
    DecoderTracker,
    completion_with_order,
    decode_tail_s,
    finalize_read,
    serve_read_queues,
    trace_read_access,
)
from repro.core.base import SchemeBase
from repro.disk.service import served_before
from repro.sim.rng import stable_seed

#: Distinct graphs rotated across trials, mimicking per-simulation graph
#: regeneration at bounded cost.
GRAPH_POOL_SIZE = 4

_GRAPH_POOL: dict[tuple, list[LTGraph]] = {}


def pooled_graph(
    k: int,
    n: int,
    c: float,
    delta: float,
    trial: int,
    pool_size: int = GRAPH_POOL_SIZE,
    checked: bool = True,
) -> LTGraph:
    """An LT graph for (k, n), rotated by trial.

    ``checked=True`` enforces the §5.2.3 decodability guarantee over the
    full block set (what a balanced write stores).  Speculative writes use
    ``checked=False`` — their much larger rateless margins would make the
    full-set check needlessly expensive, and the writer gates completion
    on the *committed* set decoding anyway.
    """
    key = (k, n, round(c, 6), round(delta, 6), checked)
    graphs = _GRAPH_POOL.setdefault(key, [])
    idx = trial % pool_size
    while len(graphs) <= idx:
        code = ImprovedLTCode(k, c=c, delta=delta)
        rng = np.random.default_rng(stable_seed("graph-pool", *key, len(graphs)))
        if checked:
            graphs.append(code.build_graph(n, rng))
        else:
            graph = LTGraph(k)
            code.extend_graph(graph, n, rng)
            graphs.append(graph)
    return graphs[idx]


class RobuStoreScheme(SchemeBase):
    """Erasure-coded redundancy with speculative reads and writes."""

    name = "robustore"

    #: Rateless supply multiplier for speculative writes: each disk can
    #: commit up to this factor times its fair share N/H before running
    #: dry.  Must cover the fastest-to-average disk speed ratio (~4-6x in
    #: the calibrated pool) so fast disks never idle mid-write (§5.3.2).
    WRITE_SUPPLY_FACTOR = 8

    def _graph(self, trial: int, n: int | None = None) -> LTGraph:
        cfg = self.config
        return pooled_graph(
            cfg.k, n if n is not None else cfg.n_coded, cfg.lt_c, cfg.lt_delta, trial
        )

    def _coding_descriptor(self) -> dict:
        cfg = self.config
        return {
            "algorithm": "lt",
            "k": cfg.k,
            "n": cfg.n_coded,
            "c": cfg.lt_c,
            "delta": cfg.lt_delta,
        }

    # -- provisioning -------------------------------------------------------------
    def prepare(self, file_name: str, trial: int):
        cfg = self.config
        disks = self.select_disks(trial)
        graph = self._graph(trial)
        placement = L.coded_balanced(cfg.n_coded, len(disks))
        return self._register(
            file_name,
            disks,
            placement,
            coding=self._coding_descriptor(),
            extra={"graph": graph},
        )

    # -- read -----------------------------------------------------------------------
    def read(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        record = self._record(file_name)
        graph: LTGraph = record.extra["graph"]
        t0 = self.open_latency()
        streams = serve_read_queues(
            self.cluster,
            record.disk_ids,
            record.placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "read"),
            file_name,
        )
        decoder = PeelingDecoder(graph)

        t_finish, consumed, order = completion_with_order(
            streams, DecoderTracker(decoder), cfg.block_bytes, cfg.client_bandwidth_bps
        )
        t_done = t_finish + decode_tail_s(cfg.block_bytes)
        net, disk_blocks, hits = finalize_read(
            streams, self.cluster, t_done, cfg.block_bytes, file_name
        )
        tracer = self.tracer
        trace_read_access(
            tracer, self.name, trial, streams, t0, t_done, consumed,
            cfg.block_bytes, cfg.data_bytes,
        )
        if tracer.enabled and np.isfinite(t_finish):
            # The decode ripple: last arrival -> decoder-complete tail.
            tracer.span(
                "scheme.decode_tail",
                "scheme",
                t_finish,
                t_done,
                track="scheme",
                args={"reception_overhead": decoder.reception_overhead},
            )
            tracer.instant(
                "scheme.decode_complete",
                "scheme",
                t_finish,
                track="scheme",
                args={"blocks_consumed": consumed},
            )
        return AccessResult(
            latency_s=t_done,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=disk_blocks,
            blocks_received=consumed,
            cache_hits=hits,
            extra={
                "reception_overhead": decoder.reception_overhead,
                # The coded-block ids the client consumed, in arrival order
                # — the data-path API replays real payload decoding with it.
                "arrival_order": order,
            },
        )

    # -- speculative write --------------------------------------------------------------
    def write(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        disks = self.select_disks(trial)
        h = len(disks)
        target = cfg.n_coded
        per_disk_cap = -(-target * self.WRITE_SUPPLY_FACTOR // h) + 8
        graph = pooled_graph(
            cfg.k,
            per_disk_cap * h,
            cfg.lt_c,
            cfg.lt_delta,
            trial,
            checked=False,
        )
        rng_for = self.service_rng_factory(trial, "write")
        t0 = self.open_latency()

        # Each disk streams ids d, d+H, d+2H, ...; speculative writing keeps
        # every disk busy until the client cancels.
        completions: list[np.ndarray] = []
        one_ways: list[float] = []
        for idx, disk_id in enumerate(disks):
            disk_id = int(disk_id)
            filer = self.cluster.filer_of_disk(disk_id)
            one_way = filer.link.one_way_s
            svc = self.cluster.block_service(disk_id, rng_for(disk_id))
            completions.append(svc.serve(per_disk_cap, cfg.block_bytes, t0 + one_way))
            one_ways.append(one_way)

        # Merge commit acks (commit + one-way back) in time order.
        ack_times = np.concatenate(
            [c + w for c, w in zip(completions, one_ways)]
        )
        ack_ids = np.concatenate(
            [idx + h * np.arange(c.size) for idx, c in enumerate(completions)]
        )
        order = np.argsort(ack_times, kind="stable")
        ack_times, ack_ids = ack_times[order], ack_ids[order]

        # The writer stops once >= N blocks committed AND the committed set
        # is decodable (the §5.2.3 writer-side guarantee).
        decoder = PeelingDecoder(graph)
        t_enough = None
        for count, (t, bid) in enumerate(zip(ack_times, ack_ids), start=1):
            decoder.add(int(bid))
            if count >= target and decoder.is_complete:
                t_enough = float(t)
                break
        if t_enough is None:
            raise RuntimeError(
                "speculative write exhausted its rateless supply; "
                "increase WRITE_SUPPLY_FACTOR"
            )

        # Cancel: blocks committed (or in flight) when it reaches each disk
        # are durable and define the unbalanced placement.
        placement: list[list[int]] = []
        net_bytes = 0
        total_committed = 0
        for idx, disk_id in enumerate(disks):
            t_cancel = t_enough + one_ways[idx]
            committed = served_before(completions[idx], t_cancel)
            committed = min(committed, per_disk_cap)
            ids = (idx + h * np.arange(committed)).tolist()
            placement.append(ids)
            total_committed += committed
            nbytes = committed * cfg.block_bytes
            net_bytes += nbytes
            filer = self.cluster.filer_of_disk(int(disk_id))
            filer.link.account(nbytes)
            filer.record_write(file_name, ids, cfg.block_bytes)

        self._register(
            file_name,
            disks,
            placement,
            coding=self._coding_descriptor(),
            extra={"graph": graph, "speculative": True},
        )
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("scheme.writes")
            tracer.account_bytes("network", net_bytes)
            tracer.span(
                f"scheme.write:{self.name}",
                "scheme",
                0.0,
                t_enough + self.metadata.latency_s,
                track="scheme",
                args={
                    "trial": trial,
                    "committed": total_committed,
                    "overshoot": total_committed - target,
                },
            )
            tracer.instant(
                "scheme.write_cancel", "scheme", t_enough, track="scheme"
            )
        return AccessResult(
            latency_s=t_enough + self.metadata.latency_s,
            data_bytes=cfg.data_bytes,
            network_bytes=net_bytes,
            disk_blocks=total_committed,
            blocks_received=total_committed,
            extra={"target_blocks": target, "overshoot": total_committed - target},
        )
