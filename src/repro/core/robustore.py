"""RobuSTore: LT-coded redundancy + speculative access (the contribution).

Reads request every coded block from every selected disk in a single
round, feed arrivals to the incremental peeling decoder, and cancel once
decoding completes (§4.3.3).  Writes are speculative and rateless: every
disk keeps committing coded blocks from its private id stream until the
client has seen enough commits to (a) reach the target redundancy and
(b) guarantee decodability of the committed set, then cancels (§4.3.2,
§5.2.3 improvement 1).  Speculative writes leave an *unbalanced* placement
— fast disks hold more blocks — which the read path replays faithfully.
"""

from __future__ import annotations

import numpy as np

from repro.coding.lt import ImprovedLTCode, LTGraph
from repro.coding.peeling import PeelingDecoder
from repro.core import layout as L
from repro.core.access import (
    AccessResult,
    DecoderTracker,
    completion_with_order,
    decode_tail_s,
    finalize_read,
    request_arrival_time,
    response_arrival_times,
    serve_read_queues,
    trace_read_access,
)
from repro.core.base import SchemeBase
from repro.disk.service import served_before
from repro.faults.inject import surviving_blocks
from repro.sim.rng import stable_seed

#: Distinct graphs rotated across trials, mimicking per-simulation graph
#: regeneration at bounded cost.
GRAPH_POOL_SIZE = 4

_GRAPH_POOL: dict[tuple, list[LTGraph]] = {}


def pooled_graph(
    k: int,
    n: int,
    c: float,
    delta: float,
    trial: int,
    pool_size: int = GRAPH_POOL_SIZE,
    checked: bool = True,
) -> LTGraph:
    """An LT graph for (k, n), rotated by trial.

    ``checked=True`` enforces the §5.2.3 decodability guarantee over the
    full block set (what a balanced write stores).  Speculative writes use
    ``checked=False`` — their much larger rateless margins would make the
    full-set check needlessly expensive, and the writer gates completion
    on the *committed* set decoding anyway.
    """
    key = (k, n, round(c, 6), round(delta, 6), checked)
    graphs = _GRAPH_POOL.setdefault(key, [])
    idx = trial % pool_size
    while len(graphs) <= idx:
        code = ImprovedLTCode(k, c=c, delta=delta)
        rng = np.random.default_rng(stable_seed("graph-pool", *key, len(graphs)))
        if checked:
            graphs.append(code.build_graph(n, rng))
        else:
            graph = LTGraph(k)
            code.extend_graph(graph, n, rng)
            graphs.append(graph)
    return graphs[idx]


class RobuStoreScheme(SchemeBase):
    """Erasure-coded redundancy with speculative reads and writes."""

    name = "robustore"

    #: Rateless supply multiplier for speculative writes: each disk can
    #: commit up to this factor times its fair share N/H before running
    #: dry.  Must cover the fastest-to-average disk speed ratio (~4-6x in
    #: the calibrated pool) so fast disks never idle mid-write (§5.3.2).
    WRITE_SUPPLY_FACTOR = 8

    #: When permanent fail-stops push a file's surviving redundancy below
    #: this fraction of the configured degree, reads flag the file for a
    #: background rebuild (``extra["repair_triggered"]``;
    #: :func:`repro.faults.inject.maybe_repair` acts on it).
    REPAIR_REDUNDANCY_FLOOR = 0.5

    def _graph(self, trial: int, n: int | None = None) -> LTGraph:
        cfg = self.config
        return pooled_graph(
            cfg.k, n if n is not None else cfg.n_coded, cfg.lt_c, cfg.lt_delta, trial
        )

    def _coding_descriptor(self) -> dict:
        cfg = self.config
        return {
            "algorithm": "lt",
            "k": cfg.k,
            "n": cfg.n_coded,
            "c": cfg.lt_c,
            "delta": cfg.lt_delta,
        }

    # -- provisioning -------------------------------------------------------------
    def prepare(self, file_name: str, trial: int):
        cfg = self.config
        disks = self.select_disks(trial)
        graph = self._graph(trial)
        placement = L.coded_balanced(cfg.n_coded, len(disks))
        return self._register(
            file_name,
            disks,
            placement,
            coding=self._coding_descriptor(),
            extra={"graph": graph},
        )

    # -- read -----------------------------------------------------------------------
    def read(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        record = self._record(file_name)
        graph: LTGraph = record.extra["graph"]
        t0 = self.open_latency()
        streams = serve_read_queues(
            self.cluster,
            record.disk_ids,
            record.placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "read"),
            file_name,
        )
        decoder = PeelingDecoder(graph)

        t_finish, consumed, order = completion_with_order(
            streams, DecoderTracker(decoder), cfg.block_bytes, cfg.client_bandwidth_bps
        )
        rounds = 1
        if not np.isfinite(t_finish) and self.cluster.faults is not None:
            # Mid-read faults stalled the decode: re-speculate on the
            # surviving (or recovered) disks and merge the second round.
            retry = self._respeculate(streams, trial, file_name)
            if retry is not None:
                streams = streams + retry
                decoder = PeelingDecoder(graph)
                t_finish, consumed, order = completion_with_order(
                    streams,
                    DecoderTracker(decoder),
                    cfg.block_bytes,
                    cfg.client_bandwidth_bps,
                )
                rounds = 2
                if self.tracer.enabled:
                    self.tracer.count("scheme.respeculations")
        t_done = t_finish + decode_tail_s(cfg.block_bytes)
        net, disk_blocks, hits = finalize_read(
            streams, self.cluster, t_done, cfg.block_bytes, file_name
        )
        tracer = self.tracer
        trace_read_access(
            tracer, self.name, trial, streams, t0, t_done, consumed,
            cfg.block_bytes, cfg.data_bytes,
        )
        if tracer.enabled and np.isfinite(t_finish):
            # The decode ripple: last arrival -> decoder-complete tail.
            tracer.span(
                "scheme.decode_tail",
                "scheme",
                t_finish,
                t_done,
                track="scheme",
                args={"reception_overhead": decoder.reception_overhead},
            )
            tracer.instant(
                "scheme.decode_complete",
                "scheme",
                t_finish,
                track="scheme",
                args={"blocks_consumed": consumed},
            )
        extra = {
            "reception_overhead": decoder.reception_overhead,
            # The coded-block ids the client consumed, in arrival order
            # — the data-path API replays real payload decoding with it.
            "arrival_order": order,
        }
        injector = self.cluster.faults
        if injector is not None:
            surviving = surviving_blocks(injector, record)
            surv_red = surviving / cfg.k - 1.0
            extra["surviving_redundancy"] = surv_red
            extra["repair_triggered"] = bool(
                surv_red < self.REPAIR_REDUNDANCY_FLOOR * cfg.redundancy
            )
            if extra["repair_triggered"] and tracer.enabled:
                tracer.count("scheme.repairs_triggered")
                tracer.instant(
                    "scheme.repair_trigger",
                    "scheme",
                    t_done if np.isfinite(t_done) else t0,
                    track="scheme",
                    args={"surviving_redundancy": surv_red},
                )
        return AccessResult(
            latency_s=t_done,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=disk_blocks,
            blocks_received=consumed,
            cache_hits=hits,
            rounds=rounds,
            extra=extra,
        )

    def _respeculate(self, streams, trial: int, file_name: str):
        """Build the second-round streams after a fault-stalled decode.

        The client notices the stall once every finite round-1 arrival has
        drained without completing the decode.  Blocks whose arrivals never
        materialised are re-requested from their disks — skipping disks that
        are permanently gone, and waiting for the next recovery when every
        stalled disk is still down at the stall instant.  Returns ``None``
        when no disk can serve a second round (the read genuinely fails).
        """
        cfg = self.config
        injector = self.cluster.faults
        t0 = self.open_latency()
        pending: dict[int, list[int]] = {}
        for s in streams:
            pend = s.block_ids[~np.isfinite(s.arrivals)]
            if pend.size and not injector.permanently_failed(s.disk_id):
                pending[s.disk_id] = [int(b) for b in pend]
        if not pending:
            return None
        # The client observes the stall no earlier than (a) its last finite
        # arrival and (b) the fail-stop that flushed each pending queue; it
        # re-requests once every pending disk has restarted.
        finite = [s.arrivals[np.isfinite(s.arrivals)] for s in streams]
        finite = np.concatenate(finite) if finite else np.empty(0)
        t_retry = float(finite.max()) if finite.size else t0
        for d in pending:
            tl = injector.timeline(d)
            flush = tl.next_fail_after(t0)
            if np.isfinite(flush):
                t_retry = max(t_retry, tl.resume_time(flush))
        disks = [d for d in sorted(pending) if not injector.down_at(d, t_retry)]
        if not disks:
            return None
        if self.tracer.enabled:
            self.tracer.instant(
                "scheme.respeculate",
                "scheme",
                t_retry,
                track="scheme",
                args={"disks": len(disks), "blocks": sum(len(pending[d]) for d in disks)},
            )
        return serve_read_queues(
            self.cluster,
            disks,
            [pending[d] for d in disks],
            cfg.block_bytes,
            t_retry,
            self.service_rng_factory(trial, "read-retry"),
            file_name,
        )

    # -- speculative write --------------------------------------------------------------
    def write(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        disks = self.select_disks(trial)
        h = len(disks)
        target = cfg.n_coded
        per_disk_cap = -(-target * self.WRITE_SUPPLY_FACTOR // h) + 8
        graph = pooled_graph(
            cfg.k,
            per_disk_cap * h,
            cfg.lt_c,
            cfg.lt_delta,
            trial,
            checked=False,
        )
        rng_for = self.service_rng_factory(trial, "write")
        t0 = self.open_latency()

        # Each disk streams ids d, d+H, d+2H, ...; speculative writing keeps
        # every disk busy until the client cancels.
        completions: list[np.ndarray] = []
        one_ways: list[float] = []
        acks: list[np.ndarray] = []
        for idx, disk_id in enumerate(disks):
            disk_id = int(disk_id)
            filer = self.cluster.filer_of_disk(disk_id)
            one_way = filer.link.one_way_s
            svc = self.cluster.block_service(disk_id, rng_for(disk_id))
            t_arrive = request_arrival_time(self.cluster, disk_id, t0, one_way)
            c = svc.serve(per_disk_cap, cfg.block_bytes, t_arrive)
            completions.append(c)
            one_ways.append(one_way)
            acks.append(
                np.asarray(
                    response_arrival_times(self.cluster, disk_id, c, one_way)
                )
            )

        # Merge commit acks (commit + one-way back) in time order.
        ack_times = np.concatenate(acks)
        ack_ids = np.concatenate(
            [idx + h * np.arange(c.size) for idx, c in enumerate(completions)]
        )
        order = np.argsort(ack_times, kind="stable")
        ack_times, ack_ids = ack_times[order], ack_ids[order]

        # The writer stops once >= N blocks committed AND the committed set
        # is decodable (the §5.2.3 writer-side guarantee).
        decoder = PeelingDecoder(graph)
        t_enough = None
        for count, (t, bid) in enumerate(zip(ack_times, ack_ids), start=1):
            decoder.add(int(bid))
            if count >= target and decoder.is_complete:
                t_enough = float(t)
                break
        # An infinite t_enough means the decodable target was only reached
        # by counting acks that never arrive (flushed by a fail-stop).
        if t_enough is None or not np.isfinite(t_enough):
            if not np.all(np.isfinite(ack_times)):
                # Fault injection killed disks mid-write: the committed set
                # never reaches a decodable target — the write fails rather
                # than the supply being undersized.
                if self.tracer.enabled:
                    self.tracer.count("scheme.failed_writes")
                return AccessResult(
                    latency_s=float("inf"),
                    data_bytes=cfg.data_bytes,
                    network_bytes=0,
                    disk_blocks=0,
                    blocks_received=0,
                    extra={"target_blocks": target, "write_failed": True},
                )
            raise RuntimeError(
                "speculative write exhausted its rateless supply; "
                "increase WRITE_SUPPLY_FACTOR"
            )

        # Cancel: blocks committed (or in flight) when it reaches each disk
        # are durable and define the unbalanced placement.
        placement: list[list[int]] = []
        net_bytes = 0
        total_committed = 0
        for idx, disk_id in enumerate(disks):
            t_cancel = t_enough + one_ways[idx]
            committed = served_before(completions[idx], t_cancel)
            committed = min(committed, per_disk_cap)
            ids = (idx + h * np.arange(committed)).tolist()
            placement.append(ids)
            total_committed += committed
            nbytes = committed * cfg.block_bytes
            net_bytes += nbytes
            filer = self.cluster.filer_of_disk(int(disk_id))
            filer.link.account(nbytes)
            filer.record_write(file_name, ids, cfg.block_bytes)

        self._register(
            file_name,
            disks,
            placement,
            coding=self._coding_descriptor(),
            extra={"graph": graph, "speculative": True},
        )
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("scheme.writes")
            tracer.account_bytes("network", net_bytes)
            tracer.span(
                f"scheme.write:{self.name}",
                "scheme",
                0.0,
                t_enough + self.metadata.latency_s,
                track="scheme",
                args={
                    "trial": trial,
                    "committed": total_committed,
                    "overshoot": total_committed - target,
                },
            )
            tracer.instant(
                "scheme.write_cancel", "scheme", t_enough, track="scheme"
            )
        return AccessResult(
            latency_s=t_enough + self.metadata.latency_s,
            data_bytes=cfg.data_bytes,
            network_bytes=net_bytes,
            disk_blocks=total_committed,
            blocks_received=total_committed,
            extra={"target_blocks": target, "overshoot": total_committed - target},
        )
