"""The engine-agnostic access pipeline: one scheme class for any composition.

A :class:`PolicyScheme` binds a :class:`~repro.core.policy.compose.SchemeSpec`
to the :class:`~repro.core.base.SchemeBase` machinery and delegates every
access to the composition's layers:

* ``prepare`` — placement policy provisions the balanced layout;
* ``write`` — write policy commits it (uniform / encode-overlap /
  speculative rateless);
* ``read`` — fault reaction plans the read (or short-circuits it), then
  the dispatch policy runs it against the completion policy's tracker.

The seven scheme modules (``repro.core.raid0`` etc.) are thin shims over
this class; new compositions need no class at all —
:func:`scheme_class` synthesizes one from the registry.
"""

from __future__ import annotations

from typing import ClassVar

from repro.cluster.metadata import FileRecord
from repro.core.access import AccessResult
from repro.core.base import SchemeBase
from repro.core.policy.compose import COMPOSITIONS, SchemeSpec, composition

__all__ = ["PolicyScheme", "scheme_class"]


class PolicyScheme(SchemeBase):
    """A storage scheme assembled from the policy layers."""

    spec: ClassVar[SchemeSpec]

    def prepare(self, file_name: str, trial: int) -> FileRecord:
        disks = self.select_disks(trial)
        pspec = self.spec.placement.plan(self.config, len(disks), trial)
        return self._register(
            file_name, disks, pspec.placement, coding=pspec.coding, extra=pspec.extra
        )

    def write(self, file_name: str, trial: int) -> AccessResult:
        return self.spec.write.write(self, self.spec, file_name, trial)

    def read(self, file_name: str, trial: int) -> AccessResult:
        record = self._record(file_name)
        plan = self.spec.reaction.plan_read(self, record)
        if isinstance(plan, AccessResult):
            return plan  # fate sealed before any disk was touched
        return self.spec.dispatch.read(self, self.spec, record, plan, trial)


#: Classes synthesized for registry-only compositions, keyed by name.
_SYNTHESIZED: dict[str, type[PolicyScheme]] = {}


def scheme_class(name: str) -> type[SchemeBase]:
    """The scheme class for ``name``: a shim if one exists, else synthesized.

    The seven paper schemes have named shim classes (back-compat import
    paths, scheme-specific constants); every other
    :data:`~repro.core.policy.compose.COMPOSITIONS` entry gets a class
    built on the fly.  Raises ``ValueError`` for names in neither.
    """
    from repro.core import SCHEMES

    cls = SCHEMES.get(name)
    if cls is not None:
        return cls
    cached = _SYNTHESIZED.get(name)
    if cached is not None:
        return cached
    spec = COMPOSITIONS.get(name)
    if spec is None:
        raise ValueError(f"unknown scheme {name!r}")
    cls = type(
        f"Composed[{name}]",
        (PolicyScheme,),
        {
            "name": name,
            "spec": spec,
            "__doc__": f"Synthesized composition {name!r} (see COMPOSITIONS).",
        },
    )
    _SYNTHESIZED[name] = cls
    return cls


def redundancy_for(name: str, configured: float) -> float:
    """The redundancy a scheme actually runs at (RAID-0 pins 0.0)."""
    override = composition(name).redundancy_override
    return configured if override is None else override
