"""Compatibility facade over :mod:`repro.accesscore`.

The shared access engine — request/response routing, the per-disk serve
timeline, tracker consumption, cancel accounting, tracing, the uniform
write — lives in the :mod:`repro.accesscore` package, where both the
closed-form and the event-driven engines wrap it.  This module keeps the
original import path alive: everything it ever exported is re-exported
here unchanged, so downstream code and the published examples keep
working without edits.

New code should import from :mod:`repro.accesscore` directly.
"""

from __future__ import annotations

from repro.accesscore.result import (  # noqa: F401
    _RESULT_FIELDS,
    AccessConfig,
    AccessResult,
    _jsonable,
)
from repro.accesscore.routing import (  # noqa: F401
    DECODE_BANDWIDTH_BPS,
    MB,
    decode_tail_s,
    open_latency_s,
    request_arrival_time,
    response_arrival_times,
)
from repro.accesscore.timeline import (  # noqa: F401
    DiskStream,
    completion_time,
    completion_with_order,
    consume_sorted_arrivals,
    finalize_read,
    merged_arrival_order,
    serve_read_queues,
    simulate_uniform_write,
)
from repro.accesscore.tracing import (  # noqa: F401
    _COUNTER_SAMPLES,
    _sample_indices,
    trace_read_access,
)
from repro.accesscore.trackers import (  # noqa: F401
    AllBlocksTracker,
    CompletionTracker,
    CoverageTracker,
    DecoderTracker,
)
