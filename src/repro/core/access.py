"""Shared access machinery for all four storage schemes.

Implements the speculative-access timeline of §4.1.2/§6.2.2:

1. open: metadata access (constant 5 ms);
2. one request message per disk (one-way link latency);
3. each disk serves its stored blocks in order (filesystem-cache hits are
   served by the filer immediately); background workloads interleave;
4. block payloads travel back (one-way latency, plentiful bandwidth);
5. the client consumes arrivals in order until the scheme's completion
   tracker is satisfied (all blocks / replica coverage / LT decode);
6. a cancel message (one-way latency) stops still-queued blocks; blocks
   already served or in flight count toward the I/O-overhead metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cluster.metadata import MetadataServer
from repro.cluster.server import Cluster
from repro.core.trackers import (  # noqa: F401  (re-exported: original import path)
    AllBlocksTracker,
    CompletionTracker,
    CoverageTracker,
    DecoderTracker,
)
from repro.disk.service import served_before

MB = 1 << 20

#: LT decode bandwidth used to charge the decode tail (§6.2.5: "we use
#: [500 MBps] to compute decode times").
DECODE_BANDWIDTH_BPS = 500e6


def request_arrival_time(
    cluster: "Cluster", disk_id: int, t_send: float, one_way_s: float
) -> float:
    """When a request sent at ``t_send`` reaches the disk's filer.

    Routes through the link's fault timeline when one is active (added
    latency inside a degradation window, deferral across a filer-crash
    blackout); otherwise the plain one-way hop — same arithmetic, so
    unfaulted runs stay bit-identical.
    """
    lt = cluster.link_timeline(disk_id)
    if lt is None:
        return t_send + one_way_s
    return lt.request_arrival(t_send, one_way_s)


def response_arrival_times(cluster: "Cluster", disk_id: int, ready, one_way_s: float):
    """Client arrival time(s) for payload(s) ready at the filer at ``ready``."""
    lt = cluster.link_timeline(disk_id)
    if lt is None:
        return ready + one_way_s
    return lt.response_arrivals(ready, one_way_s)


@dataclass(frozen=True)
class AccessConfig:
    """Parameters of one storage access (the §6.2.5 baseline by default).

    Attributes
    ----------
    data_bytes:
        Original data size (1 GB baseline).
    block_bytes:
        Coding/striping block size (1 MB baseline).
    n_disks:
        Disks used by the access (64 baseline).
    redundancy:
        Degree of data redundancy D = N/K - 1 (3.0 baseline; RAID-0 always
        runs at 0).
    lt_c, lt_delta:
        LT code parameters (C = 1.0, delta = 0.5 per §6.2.5).
    """

    data_bytes: int = 1024 * MB
    block_bytes: int = 1 * MB
    n_disks: int = 64
    redundancy: float = 3.0
    lt_c: float = 1.0
    lt_delta: float = 0.5
    #: Client NIC rate; ``inf`` is the paper's plentiful-lambda assumption.
    #: Finite values model the Collins & Plank slow-shared-WAN regime
    #: (§2.3): arrivals serialise through the client's access link.
    client_bandwidth_bps: float = float("inf")

    @property
    def k(self) -> int:
        """Number of original blocks."""
        return max(1, self.data_bytes // self.block_bytes)

    @property
    def n_coded(self) -> int:
        """Coded blocks at the configured redundancy."""
        return max(self.k, int(round((1.0 + self.redundancy) * self.k)))

    @property
    def replicas(self) -> int:
        """Copies per block for the replication schemes (D + 1)."""
        return int(round(self.redundancy)) + 1


def _jsonable(value):
    """Canonical JSON form: numpy scalars/arrays -> python, dict keys -> str.

    The mapping is idempotent (``_jsonable(_jsonable(x)) == _jsonable(x)``),
    which is what makes :meth:`AccessResult.to_jsonable` a fixed point under
    JSON round-trips: floats survive exactly (including ``inf``/``nan``),
    and every container lands in the one shape ``json.loads`` produces.
    """
    if type(value) in (int, float, str, bool, type(None)):
        # Exact-type fast path: the overwhelming share of values are
        # already-plain scalars (numpy subclasses fall through to the
        # isinstance chain below).
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    return value


#: AccessResult fields serialised by :meth:`AccessResult.to_jsonable`, in
#: canonical order.  Kept explicit (rather than introspected) so a new
#: field is a conscious codec decision — cache entries and cross-process
#: payloads depend on this shape.
_RESULT_FIELDS = (
    "latency_s",
    "data_bytes",
    "network_bytes",
    "disk_blocks",
    "blocks_received",
    "cache_hits",
    "rounds",
    "extra",
)


@dataclass
class AccessResult:
    """Metrics of one access (§6.2.3)."""

    latency_s: float
    data_bytes: int
    network_bytes: int
    disk_blocks: int
    blocks_received: int
    cache_hits: int = 0
    rounds: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def bandwidth_bps(self) -> float:
        """Delivered bandwidth: original data size / access latency."""
        return self.data_bytes / self.latency_s if self.latency_s > 0 else 0.0

    @property
    def bandwidth_mbps(self) -> float:
        return self.bandwidth_bps / MB

    @property
    def io_overhead(self) -> float:
        """(bytes sent over networks - data size) / data size (§6.2.3)."""
        return (self.network_bytes - self.data_bytes) / self.data_bytes

    def to_jsonable(self) -> dict:
        """Lossless JSON form of this result.

        Numeric fields survive a JSON round-trip exactly (Python prints
        shortest-round-trip floats; ``inf`` travels as ``Infinity``);
        ``extra`` is canonicalised (numpy scalars to python scalars, dict
        keys to strings), so re-encoding a decoded result is byte-stable —
        the bit-identity contract :mod:`repro.exec` checks across process
        boundaries rests on this.
        """
        return {name: _jsonable(getattr(self, name)) for name in _RESULT_FIELDS}

    @classmethod
    def from_jsonable(cls, data: dict) -> "AccessResult":
        """Rebuild a result from :meth:`to_jsonable` output."""
        unknown = set(data) - set(_RESULT_FIELDS)
        if unknown:
            raise ValueError(f"unknown AccessResult fields: {sorted(unknown)}")
        return cls(**{name: data[name] for name in _RESULT_FIELDS if name in data})


@dataclass
class DiskStream:
    """One disk's contribution to an access."""

    disk_id: int
    block_ids: np.ndarray          # stored order
    cached: np.ndarray             # mask aligned with block_ids
    completions: np.ndarray        # disk completion time of uncached blocks
    arrivals: np.ndarray           # client arrival time, aligned w/ block_ids
    one_way_s: float


#: Cap on sampled points per counter series — traces stay compact while the
#: report's queue-depth / in-flight histograms keep their shape.
_COUNTER_SAMPLES = 8


def _sample_indices(n: int, cap: int = _COUNTER_SAMPLES) -> np.ndarray:
    """Up to ``cap`` evenly spaced indices into a length-``n`` series."""
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    if n <= cap:
        return np.arange(n, dtype=np.int64)
    return np.unique(np.linspace(0, n - 1, cap).astype(np.int64))


def trace_read_access(
    tracer,
    scheme_name: str,
    trial: int,
    streams: list["DiskStream"],
    t_open: float,
    t_done: float,
    consumed: int,
    block_bytes: int,
    data_bytes: int,
) -> None:
    """Record the scheme-level view of one read access.

    Emits the open + whole-access spans, samples the client's in-flight
    block count over the access, and feeds the byte ledger the two numbers
    the :class:`repro.obs.TraceReport` reconciliation rests on: ``consumed``
    (bytes the client used) and ``data`` (bytes it asked for).  The
    ``network`` side of the ledger is accounted in :func:`finalize_read`.
    """
    if not tracer.enabled:
        return
    tracer.count("scheme.reads")
    tracer.account_bytes("consumed", consumed * block_bytes)
    tracer.account_bytes("data", data_bytes)
    tracer.span("scheme.open", "scheme", 0.0, t_open, track="scheme")
    name = f"scheme.read:{scheme_name}"
    if np.isfinite(t_done):
        tracer.span(
            name,
            "scheme",
            0.0,
            t_done,
            track="scheme",
            args={"trial": trial, "blocks_consumed": consumed},
        )
    else:
        tracer.instant(
            f"{name}:failed", "scheme", t_open, track="scheme", args={"trial": trial}
        )
        tracer.count("scheme.failed_reads")
    total = sum(int(s.block_ids.size) for s in streams)
    if total:
        times = np.sort(np.concatenate([s.arrivals for s in streams]))
        times = times[np.isfinite(times)]
        for i in _sample_indices(times.size):
            tracer.counter(
                "client.inflight", float(times[i]), total - (i + 1), track="client"
            )


def serve_read_queues(
    cluster: Cluster,
    disk_ids,
    placement: list[list[int]],
    block_bytes: int,
    t_send: float,
    rng_for,
    file_name: str = "",
) -> list[DiskStream]:
    """Run every disk's stored queue; return per-disk streams.

    ``rng_for(disk_id)`` supplies each disk's random stream.  Cached blocks
    are served by the filer at request-arrival time; the rest queue at the
    disk in stored order.
    """
    streams: list[DiskStream] = []
    tracer = cluster.tracer
    phase_rng_for = getattr(rng_for, "phase_rng_for", None)
    for idx, disk_id in enumerate(disk_ids):
        disk_id = int(disk_id)
        filer = cluster.filer_of_disk(disk_id)
        blocks = np.asarray(placement[idx], dtype=np.int64)
        one_way = filer.link.one_way_s
        t_arrive = request_arrival_time(cluster, disk_id, t_send, one_way)
        cached = filer.cached_blocks(file_name, blocks)
        n_cached = int(np.count_nonzero(cached))
        n_uncached = blocks.size - n_cached
        svc = cluster.block_service(
            disk_id, rng_for(disk_id), phase_rng_for=phase_rng_for
        )
        completions = svc.serve(n_uncached, block_bytes, t_arrive)
        if n_cached == 0:
            # Common case (cold filesystem cache): every block queues at
            # the disk — same values as the masked assignment below.
            arrivals = np.asarray(
                response_arrival_times(cluster, disk_id, completions, one_way),
                dtype=np.float64,
            )
        else:
            arrivals = np.empty(blocks.size, dtype=np.float64)
            arrivals[cached] = response_arrival_times(
                cluster, disk_id, t_arrive, one_way
            )
            arrivals[~cached] = response_arrival_times(
                cluster, disk_id, completions, one_way
            )
        if tracer.enabled:
            tracer.span(
                "filer.request",
                "filer",
                t_send,
                t_arrive,
                track="filer",
                args={"disk": disk_id, "blocks": int(blocks.size)},
            )
            last = float(completions[-1]) if completions.size else t_arrive
            if np.isfinite(last):
                tracer.span(
                    "drive.queue",
                    "drive",
                    t_arrive,
                    last,
                    track="drive",
                    args={
                        "disk": disk_id,
                        "queued": n_uncached,
                        "cached": int(blocks.size) - n_uncached,
                    },
                )
                for i in _sample_indices(completions.size):
                    tracer.counter(
                        "drive.queue_depth",
                        float(completions[i]),
                        n_uncached - (i + 1),
                        track="drive",
                    )
                if tracer.detail and completions.size:
                    starts = np.concatenate([[t_arrive], completions[:-1]])
                    for bid, t0b, t1b in zip(
                        blocks[~cached], starts, completions
                    ):
                        tracer.span(
                            "drive.block",
                            "drive",
                            float(t0b),
                            float(t1b),
                            track=f"disk{disk_id}",
                            args={"block": int(bid)},
                        )
        streams.append(
            DiskStream(disk_id, blocks, cached, completions, arrivals, one_way)
        )
    return streams


def merged_arrival_order(
    streams: list[DiskStream],
    block_bytes: int = 0,
    client_bandwidth_bps: float = float("inf"),
) -> tuple[np.ndarray, np.ndarray]:
    """All (arrival time, block id) pairs across disks, time-sorted.

    With a finite client NIC rate, consecutive arrivals additionally
    serialise through the access link: arrival i completes no earlier than
    one block-transfer after arrival i-1 finished draining.
    """
    if not streams:
        return np.empty(0), np.empty(0, dtype=np.int64)
    times = np.concatenate([s.arrivals for s in streams])
    ids = np.concatenate([s.block_ids for s in streams])
    order = np.argsort(times, kind="stable")
    times, ids = times[order], ids[order]
    if np.isfinite(client_bandwidth_bps) and block_bytes > 0 and times.size:
        xfer = block_bytes / client_bandwidth_bps
        drained = np.empty_like(times)
        prev = -np.inf
        for i, t in enumerate(times):
            prev = max(t, prev + xfer) if np.isfinite(t) else t
            drained[i] = prev
        times = drained
    return times, ids


def completion_time(
    streams: list[DiskStream],
    tracker: CompletionTracker,
    block_bytes: int = 0,
    client_bandwidth_bps: float = float("inf"),
) -> tuple[float, int]:
    """Feed arrivals to ``tracker``; return (finish time, blocks consumed).

    Returns ``(inf, consumed)`` if the access can never complete with the
    queued blocks (insufficient redundancy reached the disks).
    """
    t, consumed, _ = completion_with_order(
        streams, tracker, block_bytes, client_bandwidth_bps
    )
    return t, consumed


def completion_with_order(
    streams: list[DiskStream],
    tracker: CompletionTracker,
    block_bytes: int = 0,
    client_bandwidth_bps: float = float("inf"),
) -> tuple[float, int, list[int]]:
    """Like :func:`completion_time` but also returns the consumed block ids
    in arrival order (the data-path API replays real decoding with them).

    Trackers exposing ``observe(t, block_id)`` (the
    :class:`repro.core.trackers.TrackerBase` hook) are fed the arrival time
    too; plain ``add``-only trackers keep working unchanged.
    """
    times, ids = merged_arrival_order(streams, block_bytes, client_bandwidth_bps)
    # Class-level lookup on purpose: recording/tracing proxies that forward
    # attribute access to an inner tracker must keep the scalar loop, or
    # their observe() hook would be silently bypassed.
    consume = getattr(type(tracker), "consume_arrivals", None)
    if consume is not None and times.size:
        # Batched fast path (AllBlocks/Coverage trackers): same
        # (t_fill, consumed) as the scalar loop, proven element-for-element
        # by tests/test_trackers_batch.py.
        t_fill, consumed = consume(tracker, times, ids)
        if tracker.complete:
            # t_fill may be inf (completed by a never-arriving block on a
            # failed disk) — completion, not time, decides the slice.
            return t_fill, consumed, ids[:consumed].tolist()
        return float("inf"), int(times.size), ids.tolist()
    observe = getattr(tracker, "observe", None)
    for consumed, (t, bid) in enumerate(zip(times, ids), start=1):
        if observe is not None:
            observe(float(t), int(bid))
        else:
            tracker.add(int(bid))
        if tracker.complete:
            return float(t), consumed, [int(b) for b in ids[:consumed]]
    return float("inf"), int(times.size), [int(b) for b in ids]


def finalize_read(
    streams: list[DiskStream],
    cluster: Cluster,
    t_done: float,
    block_bytes: int,
    file_name: str = "",
) -> tuple[int, int, int]:
    """Cancel outstanding work at ``t_done``; account transferred bytes.

    Returns (network bytes, disk blocks read, filesystem-cache hits).
    The cancel message reaches each disk one one-way latency after
    ``t_done``; blocks completed or in flight by then were transferred.
    """
    network_bytes = 0
    disk_blocks = 0
    cache_hits = 0
    tracer = cluster.tracer
    for s in streams:
        t_cancel = t_done + s.one_way_s
        served = served_before(s.completions, t_cancel)
        n_cached = int(np.count_nonzero(s.cached))
        cache_hits += n_cached
        disk_blocks += served
        sent = served + n_cached
        nbytes = sent * block_bytes
        network_bytes += nbytes
        if tracer.enabled:
            cancelled = int(s.block_ids.size) - sent
            tracer.account_bytes("network", nbytes)
            tracer.instant(
                "scheme.cancel",
                "scheme",
                t_cancel,
                track="scheme",
                args={"disk": s.disk_id, "sent": sent, "cancelled": cancelled},
            )
            if cancelled > 0:
                tracer.count("scheme.blocks_cancelled_in_queue", cancelled)
        filer = cluster.filer_of_disk(s.disk_id)
        filer.link.account(nbytes)
        # Blocks that came off the platters populate the filesystem cache.
        uncached_ids = s.block_ids[~s.cached][:served]
        filer.record_read(file_name, uncached_ids, block_bytes)
        cached_ids = s.block_ids[s.cached]
        filer.record_read(file_name, cached_ids, block_bytes)
    return network_bytes, disk_blocks, cache_hits


def simulate_uniform_write(
    cluster: Cluster,
    disk_ids,
    placement: list[list[int]],
    block_bytes: int,
    t_send: float,
    rng_for,
    file_name: str = "",
) -> tuple[float, int]:
    """Write the same stored queues to every disk; wait for all commits.

    RAID-0 / RRAID-S / RRAID-A writes are uniform: completion is gated by
    the slowest disk (§6.3.1).  Returns (completion time at client, bytes
    over the network); the completion time is ``inf`` when any written-to
    disk fail-stops before committing (the write never fully acks).
    Write-through populates the filesystem caches.
    """
    t_done = t_send
    network_bytes = 0
    tracer = cluster.tracer
    phase_rng_for = getattr(rng_for, "phase_rng_for", None)
    for idx, disk_id in enumerate(disk_ids):
        disk_id = int(disk_id)
        filer = cluster.filer_of_disk(disk_id)
        blocks = np.asarray(placement[idx], dtype=np.int64)
        one_way = filer.link.one_way_s
        svc = cluster.block_service(
            disk_id, rng_for(disk_id), phase_rng_for=phase_rng_for
        )
        t_arrive = request_arrival_time(cluster, disk_id, t_send, one_way)
        completions = svc.serve(blocks.size, block_bytes, t_arrive)
        if blocks.size:
            ack = response_arrival_times(
                cluster, disk_id, float(completions[-1]), one_way
            )
            t_done = max(t_done, float(ack))
        nbytes = blocks.size * block_bytes
        network_bytes += nbytes
        if tracer.enabled:
            tracer.account_bytes("network", nbytes)
            if blocks.size and np.isfinite(completions[-1]):
                tracer.span(
                    "drive.write_queue",
                    "drive",
                    t_arrive,
                    float(completions[-1]),
                    track="drive",
                    args={"disk": disk_id, "blocks": int(blocks.size)},
                )
        filer.link.account(nbytes)
        filer.record_write(file_name, blocks, block_bytes)
    return t_done, network_bytes


def decode_tail_s(block_bytes: int) -> float:
    """Latency charged for decoding the final block (§6.2.5)."""
    return block_bytes / DECODE_BANDWIDTH_BPS


def open_latency_s(metadata: Optional[MetadataServer]) -> float:
    """Metadata + connection setup cost at access start."""
    return metadata.latency_s if metadata is not None else 0.005
