"""Data-path codecs: per-scheme real encode/decode for the file API.

Each codec turns K original data blocks into the coded payloads a scheme
stores (keyed by coded-block id) and reconstructs the originals from the
payloads that *actually arrived first* in the timing simulation — so a
successful read proves the scheme's redundancy semantics on real bytes.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.cluster.metadata import FileRecord
from repro.coding.parallel import coding_threads, parallel_encode_ids, parallel_group_map
from repro.coding.peeling import PeelingDecoder
from repro.coding.reed_solomon import ReedSolomonCode
from repro.coding.regenerating import product_matrix_code
from repro.core.access import AccessConfig


class Codec(Protocol):
    """Scheme-specific payload transform."""

    def encode(self, blocks: np.ndarray, record: FileRecord, cfg: AccessConfig) -> dict[int, np.ndarray]:
        """Map original blocks to {coded id: payload} for every stored id."""
        ...

    def decode(
        self,
        arrival_order: list[int],
        payloads: dict[int, np.ndarray],
        record: FileRecord,
        cfg: AccessConfig,
    ) -> np.ndarray:
        """Reconstruct the K original blocks from first arrivals."""
        ...


class PlainCodec:
    """RAID-0: block id == original index, no transform."""

    def encode(self, blocks, record, cfg):
        return {int(b): blocks[int(b)] for p in record.placement for b in p}

    def decode(self, arrival_order, payloads, record, cfg):
        out = np.zeros((cfg.k, cfg.block_bytes), dtype=np.uint8)
        have = np.zeros(cfg.k, dtype=bool)
        for bid in arrival_order:
            if bid < cfg.k and not have[bid]:
                out[bid] = payloads[bid]
                have[bid] = True
        if not have.all():
            raise ValueError(f"{int((~have).sum())} blocks never arrived")
        return out


class ReplicaCodec:
    """RRAID-S / RRAID-A / RAID-0+1: id = r*k + i carries block i."""

    def encode(self, blocks, record, cfg):
        k = cfg.k
        return {int(b): blocks[int(b) % k] for p in record.placement for b in p}

    def decode(self, arrival_order, payloads, record, cfg):
        out = np.zeros((cfg.k, cfg.block_bytes), dtype=np.uint8)
        have = np.zeros(cfg.k, dtype=bool)
        for bid in arrival_order:
            orig = bid % cfg.k
            if not have[orig]:
                out[orig] = payloads[bid]
                have[orig] = True
        if not have.all():
            raise ValueError(f"{int((~have).sum())} originals uncovered")
        return out


class LTCodec:
    """RobuSTore: LT encode against the record's graph, peel to decode.

    Encode shards the stored coded-block ids over
    ``REPRO_CODING_THREADS`` workers (each block's XOR is independent);
    decode's per-resolution XOR uses the striped threaded kernel for
    large blocks.  Both are byte-identical to the sequential kernels.
    """

    def encode(self, blocks, record, cfg):
        graph = record.extra["graph"]
        return parallel_encode_ids(
            blocks, graph, (b for p in record.placement for b in p)
        )

    def decode(self, arrival_order, payloads, record, cfg):
        graph = record.extra["graph"]
        decoder = PeelingDecoder(graph, block_len=cfg.block_bytes)
        for bid in arrival_order:
            decoder.add(int(bid), payloads[int(bid)])
            if decoder.is_complete:
                break
        return decoder.get_data()


class RSGroupCodec:
    """RobuSTore-RS: per-group Reed-Solomon words, id = (g << 20) | j."""

    def _codes(self, record, cfg):
        group = record.coding["group"]
        coded = record.coding["coded_per_group"]
        return group, coded, ReedSolomonCode(group, coded)

    def encode(self, blocks, record, cfg):
        group, coded, code = self._codes(record, cfg)
        n_groups = record.coding["groups"]

        def encode_group(g: int) -> np.ndarray:
            seg = blocks[g * group : (g + 1) * group]
            if seg.shape[0] < group:
                pad = np.zeros((group - seg.shape[0], blocks.shape[1]), np.uint8)
                seg = np.vstack([seg, pad])
            return code.encode(seg)

        # Each group's RS word is independent: REPRO_CODING_THREADS shards
        # the groups, byte-identically to the sequential loop.
        coded_by_group = parallel_group_map(encode_group, n_groups)
        out = {}
        for g, coded_blocks in enumerate(coded_by_group):
            for j in range(coded):
                out[(g << 20) | j] = coded_blocks[j]
        return {bid: out[bid] for p in record.placement for bid in p}

    def decode(self, arrival_order, payloads, record, cfg):
        group, _, code = self._codes(record, cfg)
        n_groups = record.coding["groups"]
        by_group: dict[int, list[int]] = {g: [] for g in range(n_groups)}
        for bid in arrival_order:
            g = bid >> 20
            if len(by_group[g]) < group:
                by_group[g].append(bid)
        short = [g for g, ids in by_group.items() if len(ids) < group]
        if short:
            raise ValueError(f"group {short[0]} never filled")

        def decode_group(g: int) -> np.ndarray:
            ids = by_group[g]
            local = [bid & 0xFFFFF for bid in ids]
            return code.decode(local, np.stack([payloads[b] for b in ids]))

        decoded_by_group = parallel_group_map(decode_group, n_groups)
        out = np.zeros((cfg.k, cfg.block_bytes), dtype=np.uint8)
        for g, decoded in enumerate(decoded_by_group):
            lo = g * group
            hi = min(cfg.k, lo + group)
            out[lo:hi] = decoded[: hi - lo]
        return out


class RegenCodec:
    """Regenerating stripes: product-matrix encode, decode from any k nodes.

    Id ``(stripe << 20) | (node * alpha + sub)``; decode gathers the first
    k nodes per stripe whose ``alpha`` coded blocks all arrived (the
    timing tracker's completion rule, replayed on real bytes).
    """

    def _code(self, record):
        c = record.coding
        return product_matrix_code(c["mode"], c["k"], c["d"], c["nodes"]), c

    def encode(self, blocks, record, cfg):
        code, c = self._code(record)
        B, alpha, n_stripes = c["stripe_symbols"], c["alpha"], c["stripes"]

        def encode_stripe(s: int) -> np.ndarray:
            seg = blocks[s * B : (s + 1) * B]
            if seg.shape[0] < B:
                pad = np.zeros((B - seg.shape[0], blocks.shape[1]), np.uint8)
                seg = np.vstack([seg, pad])
            return code.encode(seg)  # (n, alpha, L)

        # Stripes are independent: REPRO_CODING_THREADS shards them,
        # byte-identically to the sequential loop.
        encoded = parallel_group_map(encode_stripe, n_stripes)
        out = {}
        for s, enc in enumerate(encoded):
            for j in range(c["nodes"]):
                for a in range(alpha):
                    out[(s << 20) | (j * alpha + a)] = enc[j, a]
        return {bid: out[bid] for p in record.placement for bid in p}

    def decode(self, arrival_order, payloads, record, cfg):
        code, c = self._code(record)
        B, alpha, k = c["stripe_symbols"], c["alpha"], c["k"]
        n_stripes = c["stripes"]
        # First k nodes per stripe with all alpha sub-blocks arrived.
        subs: dict[tuple[int, int], set[int]] = {}
        chosen: dict[int, list[int]] = {s: [] for s in range(n_stripes)}
        for bid in arrival_order:
            s, local = bid >> 20, bid & 0xFFFFF
            node = local // alpha
            if len(chosen[s]) >= k or node in chosen[s]:
                continue
            got = subs.setdefault((s, node), set())
            got.add(local % alpha)
            if len(got) == alpha:
                chosen[s].append(node)
        short = [s for s, nodes in chosen.items() if len(nodes) < k]
        if short:
            raise ValueError(f"stripe {short[0]} never completed k nodes")

        def decode_stripe(s: int) -> np.ndarray:
            nodes = chosen[s]
            contents = np.stack(
                [
                    np.stack(
                        [payloads[(s << 20) | (j * alpha + a)] for a in range(alpha)]
                    )
                    for j in nodes
                ]
            )
            return code.decode(nodes, contents)  # (B, L)

        decoded = parallel_group_map(decode_stripe, n_stripes)
        out = np.zeros((cfg.k, cfg.block_bytes), dtype=np.uint8)
        for s, dec in enumerate(decoded):
            lo = s * B
            hi = min(cfg.k, lo + B)
            out[lo:hi] = dec[: hi - lo]
        return out


CODECS: dict[str, Codec] = {
    "raid0": PlainCodec(),
    "rraid-s": ReplicaCodec(),
    "rraid-a": ReplicaCodec(),
    "raid0+1": ReplicaCodec(),
    "robustore": LTCodec(),
    "robustore-rs": RSGroupCodec(),
    # Cross-product compositions share the codec of their placement layer.
    "lt+adaptive": LTCodec(),
    "mirror+adaptive": ReplicaCodec(),
    "rs+adaptive": RSGroupCodec(),
    "regen-msr": RegenCodec(),
    "regen-mbr": RegenCodec(),
}


def codec_for(scheme_name: str) -> Codec:
    """The data-path codec matching a scheme name.

    Raises
    ------
    KeyError
        For schemes without a data path (e.g. RAID-5's parity XOR is not
        wired into the file API).
    """
    return CODECS[scheme_name]
