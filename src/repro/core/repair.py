"""Repair: rebuild a file's redundancy after disk failures (§5.3.1).

"If data are spread across multiple sites with erasure-coded redundancy,
they can be easily reconstructed from data blocks on the available
disks."  This module performs that reconstruction for RobuSTore files:

1. read enough surviving coded blocks to decode the original data
   (a normal speculative read over the surviving disks);
2. generate *fresh* rateless coded blocks to replace the lost ones
   (extend the LT graph — no need to recreate the exact lost blocks);
3. write the replacements to healthy disks (speculative-uniform);
4. update the metadata record.

The repair bandwidth experiment (``ext_repair``) measures how rebuild
time scales with redundancy — erasure-coded repair reads only ~(1+ε)K
blocks regardless of how many disks died, while RAID-style rebuilds touch
full mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.lt import ImprovedLTCode
from repro.core.access import simulate_uniform_write
from repro.core.robustore import RobuStoreScheme


@dataclass
class RepairReport:
    """Outcome of one repair pass."""

    read_latency_s: float
    write_latency_s: float
    blocks_lost: int
    blocks_rebuilt: int
    healthy_disks: int

    @property
    def total_latency_s(self) -> float:
        return self.read_latency_s + self.write_latency_s

    @property
    def complete(self) -> bool:
        return self.blocks_rebuilt >= self.blocks_lost


def failed_positions(scheme: RobuStoreScheme, file_name: str) -> list[int]:
    """Placement positions whose disks are currently failed.

    Covers both per-trial erasure state (``DiskState.failed``) and disks a
    fault plan permanently fail-stopped mid-run
    (:meth:`repro.faults.inject.FaultInjector.permanently_failed`).
    """
    record = scheme.metadata.lookup(file_name)
    injector = scheme.cluster.faults

    def is_dead(d: int) -> bool:
        if scheme.cluster.disk_state(d).failed:
            return True
        return injector is not None and injector.permanently_failed(d)

    return [
        idx for idx, d in enumerate(record.disk_ids) if is_dead(int(d))
    ]


def repair_file(
    scheme: RobuStoreScheme, file_name: str, trial: int
) -> RepairReport:
    """Rebuild the redundancy a failure destroyed.

    Raises
    ------
    RuntimeError
        If the surviving blocks cannot reconstruct the data (the failure
        exceeded the redundancy).
    """
    cfg = scheme.config
    record = scheme.metadata.lookup(file_name)
    graph = record.extra["graph"]
    dead = set(failed_positions(scheme, file_name))
    lost = sum(len(record.placement[i]) for i in dead)
    healthy = [i for i in range(len(record.disk_ids)) if i not in dead]
    if not healthy:
        raise RuntimeError("no surviving disks to repair from")

    # 1. Reconstruct: a speculative read over what survives (the scheme's
    #    normal read path already skips dead disks — they never respond).
    read_result = scheme.read(file_name, trial)
    if not np.isfinite(read_result.latency_s):
        raise RuntimeError(
            f"{file_name!r}: surviving blocks cannot reconstruct the data"
        )

    if lost == 0:
        return RepairReport(read_result.latency_s, 0.0, 0, 0, len(healthy))

    # 2. Fresh rateless replacements: extend the graph rather than rebuild
    #    the exact lost blocks (any coded blocks restore the redundancy).
    #    Copy-on-repair: pooled graphs are shared across files, so this
    #    file gets its own graph before it grows.
    from repro.coding.lt import LTGraph

    graph = LTGraph(graph.k, list(graph.neighbors))
    record.extra["graph"] = graph
    code = ImprovedLTCode(cfg.k, c=cfg.lt_c, delta=cfg.lt_delta)
    rng = scheme.hub.fresh("repair-extend", file_name, trial)
    first_new = graph.n
    code.extend_graph(graph, lost, rng)
    new_ids = list(range(first_new, first_new + lost))

    # 3. Spread the replacements over the healthy disks.
    new_placement = [[] for _ in record.disk_ids]
    for j, bid in enumerate(new_ids):
        new_placement[healthy[j % len(healthy)]].append(bid)
    rng_for = scheme.service_rng_factory(trial, "repair-write")
    t_write, _ = simulate_uniform_write(
        scheme.cluster,
        record.disk_ids,
        new_placement,
        cfg.block_bytes,
        0.0,
        rng_for,
        file_name,
    )

    # 4. Metadata: drop the dead positions' blocks, add the replacements.
    merged = []
    for idx in range(len(record.disk_ids)):
        keep = [] if idx in dead else list(record.placement[idx])
        merged.append(keep + new_placement[idx])
    scheme.metadata.update_placement(file_name, merged)

    return RepairReport(
        read_latency_s=read_result.latency_s,
        write_latency_s=t_write,
        blocks_lost=lost,
        blocks_rebuilt=lost,
        healthy_disks=len(healthy),
    )
