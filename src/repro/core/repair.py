"""Repair: rebuild a file's redundancy after disk failures (§5.3.1).

"If data are spread across multiple sites with erasure-coded redundancy,
they can be easily reconstructed from data blocks on the available
disks."  This module performs that reconstruction, with one repair pass
per coding family — each moving a very different number of bytes per
failure, which is the economy ``ext_repair`` measures:

* **LT** (RobuSTore) — read enough surviving coded blocks to decode
  (a normal speculative read), extend the graph with *fresh* rateless
  blocks, write them to healthy disks.
* **Reed-Solomon** (grouped) — whole-word reconstruction: every affected
  group reads ``group`` surviving blocks from helpers, re-encodes the
  exact lost blocks, writes them back.
* **Regenerating** (product-matrix MSR/MBR) — each lost node pulls one
  ``beta``-symbol from ``d`` helpers: ``d`` block transfers instead of a
  whole stripe, the Dimakis repair-bandwidth saving.  Falls back to
  whole-stripe decode when fewer than ``d`` helpers survive.

All passes consume drive capacity through the ordinary disk service
model (:func:`serve_read_queues` / :func:`simulate_uniform_write`), so
rebuild traffic competes with foreground accesses on the same RNG-derived
service times.  :func:`maybe_repair` is the notification entry point: it
dedupes triggers per disk epoch, defers to a
:class:`repro.rebuild.RebuildScheduler` when one is supplied, and meters
every executed pass into a :class:`repro.rebuild.RepairLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accesscore.repair import DEFAULT_REPAIR_FLOOR, repair_trigger_state
from repro.accesscore.timeline import finalize_read, serve_read_queues
from repro.coding.lt import ImprovedLTCode
from repro.core.access import simulate_uniform_write
from repro.core.robustore import RobuStoreScheme
from repro.rebuild import RepairEvent, RepairTask


@dataclass
class RepairReport:
    """Outcome of one repair pass."""

    read_latency_s: float
    write_latency_s: float
    blocks_lost: int
    blocks_rebuilt: int
    healthy_disks: int
    #: Coding family that performed the pass.
    algorithm: str = "lt"
    #: Bytes pulled from helper disks over the network.
    bytes_read_helpers: int = 0
    #: Bytes written to the replacement locations.
    bytes_written: int = 0
    #: Distinct disks that served helper reads or absorbed writes.
    disks_touched: int = 0

    @property
    def total_latency_s(self) -> float:
        return self.read_latency_s + self.write_latency_s

    @property
    def complete(self) -> bool:
        return self.blocks_rebuilt >= self.blocks_lost


@dataclass(frozen=True)
class RepairDecision:
    """Structured outcome of one fault notification (:func:`maybe_repair`).

    ``triggered`` says whether the file currently warrants repair;
    ``reason`` is one of ``no-faults`` / ``healthy`` / ``duplicate``
    (this disk epoch was already handled) / ``deferred`` (queued by the
    scheduler) / ``repaired``.  ``reports`` carries one
    :class:`RepairReport` per pass the scheduler released.
    """

    triggered: bool
    reason: str
    dead_disks: tuple[int, ...]
    surviving_redundancy: float
    reports: tuple[RepairReport, ...] = ()
    #: Tasks still queued in the scheduler after this notification.
    deferred: int = 0

    @property
    def repaired(self) -> bool:
        return bool(self.reports)


def failed_positions(scheme: RobuStoreScheme, file_name: str) -> list[int]:
    """Placement positions whose disks are currently failed.

    Covers both per-trial erasure state (``DiskState.failed``) and disks a
    fault plan permanently fail-stopped mid-run
    (:meth:`repro.faults.inject.FaultInjector.permanently_failed`).
    """
    record = scheme.metadata.lookup(file_name)
    injector = scheme.cluster.faults

    def is_dead(d: int) -> bool:
        if scheme.cluster.disk_state(d).failed:
            return True
        return injector is not None and injector.permanently_failed(d)

    return [
        idx for idx, d in enumerate(record.disk_ids) if is_dead(int(d))
    ]


def _positions_of(record) -> dict[int, int]:
    """Map every stored block id to its placement position."""
    pos: dict[int, int] = {}
    for idx, blocks in enumerate(record.placement):
        for b in blocks:
            pos[int(b)] = idx
    return pos


def _helper_read(scheme, record, trial: int, queues, file_name: str):
    """Serve the helper queues through the disk service model.

    Returns ``(t_fill, network_bytes)`` — the instant the last helper
    block reaches the client, and the bytes that crossed the network.
    """
    cfg = scheme.config
    streams = serve_read_queues(
        scheme.cluster,
        record.disk_ids,
        queues,
        cfg.block_bytes,
        0.0,
        scheme.service_rng_factory(trial, "rebuild-read"),
        file_name,
    )
    arrivals = [s.arrivals for s in streams if s.arrivals.size]
    stacked = np.concatenate(arrivals) if arrivals else np.empty(0)
    if stacked.size and not np.isfinite(stacked).all():
        raise RuntimeError(f"{file_name!r}: helper disks failed mid-repair")
    t_fill = float(stacked.max()) if stacked.size else 0.0
    network_bytes, _, _ = finalize_read(
        streams, scheme.cluster, t_fill, cfg.block_bytes, file_name
    )
    return t_fill, network_bytes


def _write_replacements(scheme, record, trial: int, writes, file_name: str):
    """Commit the replacement queues; return ``(t_write, bytes_written)``."""
    t_write, net = simulate_uniform_write(
        scheme.cluster,
        record.disk_ids,
        writes,
        scheme.config.block_bytes,
        0.0,
        scheme.service_rng_factory(trial, "rebuild-write"),
        file_name,
    )
    if not np.isfinite(t_write):
        raise RuntimeError(f"{file_name!r}: replacement write never committed")
    return t_write, net


def _merge_placement(scheme, record, file_name: str, dead: set[int], writes):
    """Drop the dead positions' blocks, graft in the replacements."""
    merged = []
    for idx in range(len(record.disk_ids)):
        keep = [] if idx in dead else list(record.placement[idx])
        merged.append(keep + list(writes[idx]))
    scheme.metadata.update_placement(file_name, merged)


def _touched(record, *queue_sets) -> int:
    """Distinct disks with any helper read or replacement write."""
    disks = set()
    for queues in queue_sets:
        for idx, q in enumerate(queues):
            if q:
                disks.add(int(record.disk_ids[idx]))
    return len(disks)


def _repair_lt(scheme, file_name: str, trial: int, record, dead, healthy, lost):
    """RobuSTore: decode via a speculative read, extend the graph, rewrite."""
    cfg = scheme.config
    graph = record.extra["graph"]

    # 1. Reconstruct: a speculative read over what survives (the scheme's
    #    normal read path already skips dead disks — they never respond).
    read_result = scheme.read(file_name, trial)
    if not np.isfinite(read_result.latency_s):
        raise RuntimeError(
            f"{file_name!r}: surviving blocks cannot reconstruct the data"
        )

    if lost == 0:
        return RepairReport(
            read_result.latency_s, 0.0, 0, 0, len(healthy), algorithm="lt",
            bytes_read_helpers=read_result.network_bytes,
            disks_touched=len(healthy),
        )

    # 2. Fresh rateless replacements: extend the graph rather than rebuild
    #    the exact lost blocks (any coded blocks restore the redundancy).
    #    Copy-on-repair: pooled graphs are shared across files, so this
    #    file gets its own graph before it grows.
    from repro.coding.lt import LTGraph

    graph = LTGraph(graph.k, list(graph.neighbors))
    record.extra["graph"] = graph
    code = ImprovedLTCode(cfg.k, c=cfg.lt_c, delta=cfg.lt_delta)
    rng = scheme.hub.fresh("repair-extend", file_name, trial)
    first_new = graph.n
    code.extend_graph(graph, lost, rng)
    new_ids = list(range(first_new, first_new + lost))

    # 3. Spread the replacements over the healthy disks.
    new_placement = [[] for _ in record.disk_ids]
    for j, bid in enumerate(new_ids):
        new_placement[healthy[j % len(healthy)]].append(bid)
    rng_for = scheme.service_rng_factory(trial, "repair-write")
    t_write, write_bytes = simulate_uniform_write(
        scheme.cluster,
        record.disk_ids,
        new_placement,
        cfg.block_bytes,
        0.0,
        rng_for,
        file_name,
    )

    # 4. Metadata: drop the dead positions' blocks, add the replacements.
    _merge_placement(scheme, record, file_name, set(dead), new_placement)

    return RepairReport(
        read_latency_s=read_result.latency_s,
        write_latency_s=t_write,
        blocks_lost=lost,
        blocks_rebuilt=lost,
        healthy_disks=len(healthy),
        algorithm="lt",
        bytes_read_helpers=read_result.network_bytes,
        bytes_written=write_bytes,
        disks_touched=len(healthy),
    )


def _repair_reed_solomon(
    scheme, file_name: str, trial: int, record, dead, healthy, lost
):
    """Grouped RS: whole-word reconstruction per affected group."""
    dead_set = set(dead)
    group = record.coding["group"]
    pos_of = _positions_of(record)
    lost_ids = sorted(b for i in dead for b in record.placement[i])
    affected = sorted({bid >> 20 for bid in lost_ids})

    helper_q = [[] for _ in record.disk_ids]
    for g in affected:
        survivors = sorted(
            bid
            for bid, p in pos_of.items()
            if (bid >> 20) == g and p not in dead_set
        )[:group]
        if len(survivors) < group:
            raise RuntimeError(
                f"{file_name!r}: group {g} kept only {len(survivors)}/{group} blocks"
            )
        for bid in survivors:
            helper_q[pos_of[bid]].append(bid)
    t_read, bytes_read = _helper_read(scheme, record, trial, helper_q, file_name)

    # Re-encode the exact lost blocks; spread them over the healthy disks.
    writes = [[] for _ in record.disk_ids]
    for j, bid in enumerate(lost_ids):
        writes[healthy[j % len(healthy)]].append(bid)
    t_write, bytes_written = _write_replacements(
        scheme, record, trial, writes, file_name
    )
    _merge_placement(scheme, record, file_name, dead_set, writes)

    return RepairReport(
        read_latency_s=t_read,
        write_latency_s=t_write,
        blocks_lost=lost,
        blocks_rebuilt=lost,
        healthy_disks=len(healthy),
        algorithm="reed-solomon",
        bytes_read_helpers=bytes_read,
        bytes_written=bytes_written,
        disks_touched=_touched(record, helper_q, writes),
    )


def _repair_regenerating(
    scheme, file_name: str, trial: int, record, dead, healthy, lost
):
    """Product-matrix repair: ``d`` beta-symbols per lost node."""
    dead_set = set(dead)
    c = record.coding
    n, k, d, alpha = c["nodes"], c["k"], c["d"], c["alpha"]
    pos_of = _positions_of(record)

    def node_pos(s: int, j: int) -> int:
        return pos_of[(s << 20) | (j * alpha)]

    helper_q = [[] for _ in record.disk_ids]
    writes = [[] for _ in record.disk_ids]
    w = 0
    for s in range(c["stripes"]):
        alive = [j for j in range(n) if node_pos(s, j) not in dead_set]
        lost_nodes = [j for j in range(n) if node_pos(s, j) in dead_set]
        if not lost_nodes:
            continue
        if len(alive) < k:
            raise RuntimeError(
                f"{file_name!r}: stripe {s} kept only {len(alive)}/{k} nodes"
            )
        if len(alive) >= d:
            # Exact regeneration: each lost node pulls one beta-symbol
            # (one block) from d helpers.
            for f in lost_nodes:
                for h in alive[:d]:
                    helper_q[node_pos(s, h)].append(
                        (s << 20) | (h * alpha + (f % alpha))
                    )
        else:
            # Degraded fallback: decode the stripe from k whole nodes,
            # re-encode every lost node from the message.
            for h in alive[:k]:
                for a in range(alpha):
                    helper_q[node_pos(s, h)].append((s << 20) | (h * alpha + a))
        for f in lost_nodes:
            target = healthy[w % len(healthy)]
            w += 1
            writes[target].extend((s << 20) | (f * alpha + a) for a in range(alpha))
    t_read, bytes_read = _helper_read(scheme, record, trial, helper_q, file_name)
    t_write, bytes_written = _write_replacements(
        scheme, record, trial, writes, file_name
    )
    _merge_placement(scheme, record, file_name, dead_set, writes)

    return RepairReport(
        read_latency_s=t_read,
        write_latency_s=t_write,
        blocks_lost=lost,
        blocks_rebuilt=lost,
        healthy_disks=len(healthy),
        algorithm=c["algorithm"],
        bytes_read_helpers=bytes_read,
        bytes_written=bytes_written,
        disks_touched=_touched(record, helper_q, writes),
    )


def repair_file(
    scheme: RobuStoreScheme, file_name: str, trial: int
) -> RepairReport:
    """Rebuild the redundancy a failure destroyed.

    Dispatches on the record's coding family (LT graph extension, RS
    whole-word reconstruction, regenerating node repair).

    Raises
    ------
    RuntimeError
        If the surviving blocks cannot reconstruct the data (the failure
        exceeded the redundancy).
    """
    record = scheme.metadata.lookup(file_name)
    dead = failed_positions(scheme, file_name)
    lost = sum(len(record.placement[i]) for i in dead)
    healthy = [i for i in range(len(record.disk_ids)) if i not in set(dead)]
    if not healthy:
        raise RuntimeError("no surviving disks to repair from")

    # The pass's own helper reads (LT re-reads the whole object through
    # scheme.read) are rebuild traffic, not client traffic: unhook any
    # installed ledger so they don't count as degraded foreground reads.
    ledger = getattr(scheme.cluster, "repair_ledger", None)
    if ledger is not None:
        scheme.cluster.repair_ledger = None
    try:
        algorithm = record.coding.get("algorithm", "lt")
        if algorithm.startswith("regenerating"):
            return _repair_regenerating(
                scheme, file_name, trial, record, dead, healthy, lost
            )
        if algorithm == "reed-solomon":
            return _repair_reed_solomon(
                scheme, file_name, trial, record, dead, healthy, lost
            )
        return _repair_lt(scheme, file_name, trial, record, dead, healthy, lost)
    finally:
        if ledger is not None:
            scheme.cluster.repair_ledger = ledger


def _event_from(report: RepairReport, file_name: str) -> RepairEvent:
    return RepairEvent(
        file_name=file_name,
        algorithm=report.algorithm,
        bytes_read_helpers=report.bytes_read_helpers,
        bytes_written=report.bytes_written,
        disks_touched=report.disks_touched,
        blocks_lost=report.blocks_lost,
        blocks_rebuilt=report.blocks_rebuilt,
        wall_time_s=report.total_latency_s,
    )


def maybe_repair(
    scheme, file_name: str, trial: int, result, scheduler=None, ledger=None
) -> RepairDecision:
    """Act on one fault notification; idempotent per disk epoch.

    The trigger comes from the read's extras when the reaction policy
    annotated them (``repair_triggered``), and is recomputed from the
    shared trigger rule otherwise — so schemes with a passive reaction
    (grouped RS) repair under the same floor as RobuSTore.  Repeated
    notifications for the same set of dead disks return a ``duplicate``
    decision without repairing again; a new failure starts a new epoch.

    Without a ``scheduler`` every trigger repairs immediately (eager);
    with one, the scheduler decides which queued tasks to release now.
    Executed passes are metered into ``ledger`` (falling back to the
    cluster-installed ``repair_ledger``, if any).
    """
    record = scheme.metadata.lookup(file_name)
    surv = result.extra.get("surviving_redundancy")
    triggered = result.extra.get("repair_triggered")
    if ledger is None:
        ledger = getattr(scheme.cluster, "repair_ledger", None)
    if triggered is None:
        floor = getattr(scheme, "REPAIR_REDUNDANCY_FLOOR", DEFAULT_REPAIR_FLOOR)
        state = repair_trigger_state(scheme, record, floor)
        if state is None:
            return RepairDecision(False, "no-faults", (), float("nan"))
        surv, triggered = state
        # A passive reaction never annotated this read, so the ledger
        # has not seen it yet — meter the degraded read here.
        if triggered and ledger is not None:
            lat = float(result.latency_s)
            ledger.note_degraded_read(
                lat if np.isfinite(lat) else float("inf"), float(surv)
            )
    surv = float(surv) if surv is not None else float("nan")
    if not triggered:
        return RepairDecision(False, "healthy", (), surv)

    dead = tuple(
        sorted(int(record.disk_ids[i]) for i in failed_positions(scheme, file_name))
    )
    pending = len(scheduler.pending) if scheduler is not None else 0
    if record.extra.get("repair_epoch") == dead:
        return RepairDecision(True, "duplicate", dead, surv, deferred=pending)
    record.extra["repair_epoch"] = dead

    task = RepairTask(file_name, trial, dead, surv)
    released = [task] if scheduler is None else scheduler.offer(task)
    reports = []
    for t in released:
        report = repair_file(scheme, t.file_name, t.trial)
        reports.append(report)
        if ledger is not None:
            ledger.record(_event_from(report, t.file_name))
    pending = len(scheduler.pending) if scheduler is not None else 0
    reason = "repaired" if reports else "deferred"
    return RepairDecision(
        True, reason, dead, surv, tuple(reports), deferred=pending
    )


def drain_repairs(scheme, scheduler, ledger=None) -> tuple[RepairReport, ...]:
    """Flush a scheduler's queue and repair everything it was holding.

    The end-of-horizon drain: lazy and batched policies may still be
    sitting on deferred :class:`~repro.rebuild.RepairTask` entries when a
    run ends.  Every flushed task gets its repair pass, metered into
    ``ledger`` (falling back to the cluster-installed ``repair_ledger``).
    """
    if ledger is None:
        ledger = getattr(scheme.cluster, "repair_ledger", None)
    reports = []
    for task in scheduler.flush():
        report = repair_file(scheme, task.file_name, task.trial)
        reports.append(report)
        if ledger is not None:
            ledger.record(_event_from(report, task.file_name))
    return tuple(reports)
