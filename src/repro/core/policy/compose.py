"""The composition registry: scheme name -> (placement, dispatch, ...).

Every scheme the harness can run is one :class:`SchemeSpec` — a frozen
tuple of the five policy layers plus two knobs (whether the generic
speculative tracer block runs, and a redundancy override for schemes that
ignore the configured degree).  The paper's seven schemes are the first
seven entries; the remaining entries are new cross-products that exist
*because* the layers compose — see ``docs/architecture.md`` for the
recipe.

Policies are stateless (lint rule SIM007), so the singletons below are
shared freely across compositions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy.base import (
    CompletionPolicy,
    DispatchPolicy,
    FaultReaction,
    PlacementPolicy,
    WritePolicy,
)
from repro.core.policy.completion import (
    AllBlocksCompletion,
    CoverageCompletion,
    GroupedRSCompletion,
    LTDecodeCompletion,
    ParityCompletion,
    RegenCompletion,
)
from repro.core.policy.dispatch import AdaptiveDispatch, SpeculativeDispatch
from repro.core.policy.placement import (
    GroupedRSPlacement,
    MirroredStripePlacement,
    ParityStripePlacement,
    RatelessCodedPlacement,
    RegeneratingMBRPlacement,
    RegeneratingMSRPlacement,
    RotatedReplicaPlacement,
    StripedPlacement,
)
from repro.core.policy.reaction import (
    AbortOnLoss,
    DegradedParityRead,
    EmergentFailover,
    PassiveReaction,
    Respeculate,
)
from repro.core.policy.write import (
    EncodeOverlapWrite,
    SpeculativeRatelessWrite,
    UniformWrite,
)


@dataclass(frozen=True)
class SchemeSpec:
    """One scheme as a composition of the five policy layers."""

    name: str
    placement: PlacementPolicy
    dispatch: DispatchPolicy
    completion: CompletionPolicy
    reaction: FaultReaction
    write: WritePolicy
    #: Whether the speculative dispatcher emits the generic read trace
    #: (open/read spans, byte ledger); the adaptive dispatcher always
    #: emits its own.  The background baselines ship untraced.
    traced: bool = True
    #: Redundancy forced onto the access config (RAID-0 always runs at 0).
    redundancy_override: float | None = None


_STRIPED = StripedPlacement()
_ROTATED = RotatedReplicaPlacement()
_MIRRORED = MirroredStripePlacement()
_PARITY = ParityStripePlacement()
_RATELESS = RatelessCodedPlacement()
_GROUPED_RS = GroupedRSPlacement()
_REGEN_MSR = RegeneratingMSRPlacement()
_REGEN_MBR = RegeneratingMBRPlacement()

_SPECULATIVE = SpeculativeDispatch()
_ADAPTIVE = AdaptiveDispatch()

_ALL_BLOCKS = AllBlocksCompletion()
_COVERAGE = CoverageCompletion()
_LT_DECODE = LTDecodeCompletion()
_RS_FILL = GroupedRSCompletion()
_REGEN_FILL = RegenCompletion()
_PARITY_FILL = ParityCompletion()

_ABORT = AbortOnLoss()
_FAILOVER = EmergentFailover()
_RESPECULATE = Respeculate()
_DEGRADED = DegradedParityRead()
_PASSIVE = PassiveReaction()

_UNIFORM = UniformWrite()
_ENCODE_OVERLAP = EncodeOverlapWrite()
_SPEC_WRITE = SpeculativeRatelessWrite()

#: The paper's schemes (first seven) and the new cross-products the
#: layered decomposition unlocks.
COMPOSITIONS: dict[str, SchemeSpec] = {
    "raid0": SchemeSpec(
        "raid0", _STRIPED, _SPECULATIVE, _ALL_BLOCKS, _ABORT, _UNIFORM,
        traced=True, redundancy_override=0.0,
    ),
    "rraid-s": SchemeSpec(
        "rraid-s", _ROTATED, _SPECULATIVE, _COVERAGE, _FAILOVER, _UNIFORM,
        traced=True,
    ),
    "rraid-a": SchemeSpec(
        "rraid-a", _ROTATED, _ADAPTIVE, _COVERAGE, _FAILOVER, _UNIFORM,
        traced=True,
    ),
    "robustore": SchemeSpec(
        "robustore", _RATELESS, _SPECULATIVE, _LT_DECODE, _RESPECULATE,
        _SPEC_WRITE, traced=True,
    ),
    "raid5": SchemeSpec(
        "raid5", _PARITY, _SPECULATIVE, _PARITY_FILL, _DEGRADED, _UNIFORM,
        traced=False,
    ),
    "raid0+1": SchemeSpec(
        "raid0+1", _MIRRORED, _SPECULATIVE, _COVERAGE, _FAILOVER, _UNIFORM,
        traced=False,
    ),
    "robustore-rs": SchemeSpec(
        "robustore-rs", _GROUPED_RS, _SPECULATIVE, _RS_FILL, _PASSIVE,
        _ENCODE_OVERLAP, traced=False,
    ),
    # -- new cross-products ----------------------------------------------------
    # LT-coded layout under the adaptive engine: single-holder units mean
    # no steals, so this isolates what speculation's cancel-at-decode buys.
    "lt+adaptive": SchemeSpec(
        "lt+adaptive", _RATELESS, _ADAPTIVE, _LT_DECODE, _RESPECULATE,
        _SPEC_WRITE, traced=False,
    ),
    # Mirrored stripes under the adaptive engine: set-B disks start idle
    # and immediately steal from struggling set-A partners — genuine
    # cross-mirror work stealing the monoliths could not express.
    "mirror+adaptive": SchemeSpec(
        "mirror+adaptive", _MIRRORED, _ADAPTIVE, _COVERAGE, _FAILOVER,
        _UNIFORM, traced=False,
    ),
    # Grouped RS under the adaptive engine: the group-skew cost without
    # speculation's wasted transfers.
    "rs+adaptive": SchemeSpec(
        "rs+adaptive", _GROUPED_RS, _ADAPTIVE, _RS_FILL, _PASSIVE,
        _ENCODE_OVERLAP, traced=False,
    ),
    # Regenerating codes (repro.rebuild): product-matrix stripes whose
    # node repair reads d*beta blocks from helpers instead of a whole
    # stripe.  MSR matches RS storage overhead exactly — the ext_repair
    # experiment compares their repair economies at equal cost.
    "regen-msr": SchemeSpec(
        "regen-msr", _REGEN_MSR, _SPECULATIVE, _REGEN_FILL, _RESPECULATE,
        _UNIFORM, traced=False,
    ),
    "regen-mbr": SchemeSpec(
        "regen-mbr", _REGEN_MBR, _SPECULATIVE, _REGEN_FILL, _RESPECULATE,
        _UNIFORM, traced=False,
    ),
}


def composition(name: str) -> SchemeSpec:
    """Look up a composition by scheme name."""
    try:
        return COMPOSITIONS[name]
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}") from None
