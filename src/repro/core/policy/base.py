"""Layer contracts: the four policy protocols and their exchange types.

Every policy object is **stateless**: per-access state lives in the
tracker / stream / run structures the pipeline creates, never on the
policy instance (lint rule SIM007).  One policy instance is therefore
safely shared across schemes, trials and threads of experimentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.metadata import FileRecord
    from repro.core.access import AccessConfig, AccessResult
    from repro.core.base import SchemeBase
    from repro.core.policy.compose import SchemeSpec
    from repro.core.trackers import CompletionTracker


@dataclass(frozen=True)
class PlacementSpec:
    """A provisioned layout: per-disk stored queues plus metadata."""

    placement: list  # stored block ids per disk index
    coding: dict  # the FileRecord coding descriptor
    extra: dict = field(default_factory=dict)  # FileRecord extras (graph, stripes)


@dataclass(frozen=True)
class ReadPlan:
    """What one read will request — produced by the fault reaction layer.

    ``extra`` seeds the result's ``extra`` dict (e.g. ``degraded``);
    ``tracker_args`` parameterises the completion policy's tracker (e.g.
    RAID-5's failed position).
    """

    disk_ids: Sequence[int]
    placement: list
    extra: dict = field(default_factory=dict)
    tracker_args: dict = field(default_factory=dict)


@runtime_checkable
class PlacementPolicy(Protocol):
    """Where blocks live; also how the adaptive dispatcher sees the layout."""

    def plan(self, cfg: "AccessConfig", n_disks: int, trial: int) -> PlacementSpec:
        """Provision a balanced layout for ``n_disks`` disks."""
        ...

    def adaptive_units(
        self, cfg: "AccessConfig", record: "FileRecord"
    ) -> tuple[list[list[int]], dict[int, set[int]]]:
        """(round-1 unit ids per disk index, unit id -> holder disk indexes).

        Units are what the adaptive dispatcher requests, steals and feeds
        to the completion tracker: original block ids for replicated
        layouts (any holder can serve them), stored coded ids for coded
        layouts (a single holder each — stealing degenerates gracefully).
        """
        ...


class DispatchPolicy(Protocol):
    """How the requests go out and arrivals are consumed."""

    def read(
        self,
        scheme: "SchemeBase",
        spec: "SchemeSpec",
        record: "FileRecord",
        plan: ReadPlan,
        trial: int,
    ) -> "AccessResult": ...


class CompletionPolicy(Protocol):
    """When the access can finish, and what decode tail that implies."""

    #: Whether the result's ``extra`` carries ``arrival_order`` (the
    #: data-path API replays real decoding with it).
    wants_order: bool

    def tracker(
        self, scheme: "SchemeBase", record: "FileRecord", plan: ReadPlan
    ) -> "CompletionTracker":
        """A fresh per-access tracker."""
        ...

    def finish(
        self, scheme: "SchemeBase", tracker: "CompletionTracker", t_fill: float
    ) -> tuple[float, float]:
        """(access completion time, cancel time) for fill time ``t_fill``."""
        ...

    def extras(
        self,
        scheme: "SchemeBase",
        tracker: "CompletionTracker",
        t_fill: float,
        t_done: float,
    ) -> dict:
        """Completion-specific result extras (decode tails, overheads)."""
        ...

    def trace(self, tracer, tracker, t_fill: float, t_done: float, consumed: int) -> None:
        """Completion-specific trace events (e.g. the decode-tail span)."""
        ...


class FaultReaction(Protocol):
    """What mid-operation faults do to the access."""

    def plan_read(self, scheme: "SchemeBase", record: "FileRecord"):
        """A :class:`ReadPlan` — or a finished :class:`AccessResult` when
        the reaction already knows the read's fate (RAID-5's unrecoverable
        double failure)."""
        ...

    def on_stall(
        self, scheme: "SchemeBase", streams: list, trial: int, file_name: str,
        t_fill: float,
    ):
        """Second-round streams after a stalled read, or ``None``."""
        ...

    def annotate(
        self, scheme: "SchemeBase", record: "FileRecord", extra: dict,
        t_done: float, t0: float,
    ) -> None:
        """Post-access bookkeeping on the result extras (repair flags)."""
        ...


class WritePolicy(Protocol):
    """How a write commits blocks and registers the resulting record."""

    def write(
        self, scheme: "SchemeBase", spec: "SchemeSpec", file_name: str, trial: int
    ) -> "AccessResult": ...
