"""Dispatch policies: how read requests go out and arrivals are consumed.

:class:`SpeculativeDispatch` is the one-shot engine behind RAID-0,
RRAID-S, RAID-0+1, RAID-5, RobuSTore and RobuSTore-RS: request every
planned block in a single round, consume arrivals until the completion
tracker is satisfied, cancel the rest.  :class:`AdaptiveDispatch` is the
multi-round work-stealing engine behind RRAID-A: request primaries only,
then hand work from struggling disks to drained ones, one round trip per
hand-off.

Both engines are completion-agnostic — the composition's completion
policy decides when "enough" has arrived and what decode tail follows —
and fault-reaction-agnostic — the reaction policy plans the read and, for
the speculative engine, may serve a second round after a stall.  The
timeline mechanics themselves (serve, consume, cancel, account, trace)
live in :mod:`repro.accesscore`; these classes only sequence them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.accesscore.result import AccessResult
from repro.accesscore.routing import request_arrival_time, response_arrival_times
from repro.accesscore.timeline import (
    completion_with_order,
    consume_sorted_arrivals,
    read_epilogue,
    serve_read_queues,
)
from repro.accesscore.tracing import trace_read_summary
from repro.disk.service import BlockService


class SpeculativeDispatch:
    """Single-round speculation: request everything, cancel at completion."""

    def read(self, scheme, spec, record, plan, trial) -> AccessResult:
        cfg = scheme.config
        completion = spec.completion
        t0 = scheme.open_latency()
        streams = serve_read_queues(
            scheme.cluster,
            plan.disk_ids,
            plan.placement,
            cfg.block_bytes,
            t0,
            scheme.service_rng_factory(trial, "read"),
            record.name,
        )
        tracker = completion.tracker(scheme, record, plan)
        t_fill, consumed, order = completion_with_order(
            streams, tracker, cfg.block_bytes, cfg.client_bandwidth_bps
        )
        rounds = 1
        if not np.isfinite(t_fill) and scheme.cluster.faults is not None:
            # Mid-read faults stalled the access: the reaction may build a
            # second round on the surviving (or recovered) disks.
            retry = spec.reaction.on_stall(scheme, streams, trial, record.name, t_fill)
            if retry is not None:
                streams = streams + retry
                tracker = completion.tracker(scheme, record, plan)
                t_fill, consumed, order = completion_with_order(
                    streams, tracker, cfg.block_bytes, cfg.client_bandwidth_bps
                )
                rounds = 2
                if scheme.tracer.enabled:
                    scheme.tracer.count("scheme.respeculations")
        return read_epilogue(
            scheme, spec, record, plan, trial,
            streams, tracker, t_fill, consumed, order, rounds, t0,
        )


@dataclass(eq=False)
class _DiskRun:
    """Per-disk adaptive-read state.

    ``eq=False``: runs are identity-keyed (the generated field-wise
    ``__eq__`` made every ``runs.index(run)`` an O(fields) comparison per
    element — millions of calls on the hot path); ``idx`` carries the
    run's position outright.
    """

    disk_id: int
    idx: int
    svc: BlockService
    one_way: float
    batch_ids: list[int] = field(default_factory=list)
    #: ``batch_ids`` as an array, for vectorised eligibility counting.
    ids_arr: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: ``H[batch_ids].cumsum(axis=0)``: ``hold_cum[i, d]`` counts batch
    #: blocks among the first ``i+1`` that disk ``d`` holds replicas of,
    #: so the victim scan reads any thief's pending-eligible count with
    #: two scalar lookups instead of a fancy-index per candidate.
    hold_cum: np.ndarray | None = None
    completions: np.ndarray = field(default_factory=lambda: np.empty(0))
    ready: float = 0.0
    version: int = 0
    batch_start: float = 0.0
    avg_block_s: float = float("inf")  # client's observed per-block time

    def pending_at(self, t: float) -> tuple[int, list[int]]:
        """(#fully served, ids not fully received) at time ``t``.

        The block in flight at ``t`` counts as *unreceived*: cancellation
        works at physical-request granularity (§5.3.3), so a partially
        transferred block can be abandoned and re-requested elsewhere.
        """
        done = int(self.completions.searchsorted(t, side="right"))
        return done, self.batch_ids[done:]

    def inflight_at(self, t: float) -> int | None:
        """Id of the block being served at ``t``, if any."""
        done = int(self.completions.searchsorted(t, side="right"))
        if done < len(self.batch_ids):
            start = float(self.completions[done - 1]) if done > 0 else self.batch_start
            if start < t:  # its service actually began before t
                return self.batch_ids[done]
        return None


class AdaptiveDispatch:
    """Multi-round adaptive access with work stealing (§6.2.1).

    Reads start by requesting each unit from its primary disk (the
    placement policy's :meth:`adaptive_units` view).  Whenever a disk
    drains its queue, the client (one one-way latency later) finds the
    disk with the most unserved units that the idle disk also holds, and
    re-requests the second half of that victim's remaining work.  Every
    hand-off costs a round trip — the engine's sensitivity to network
    latency (Fig 6-12) — but almost no unit is ever fetched twice, so I/O
    overhead stays near zero (Fig 6-8).

    Single-holder layouts (LT, grouped RS) have nothing to steal: every
    disk's primaries are its own stored blocks, so the engine degenerates
    to one uncancelled round — the honest cost of pairing a coded layout
    with physical-granularity hand-offs.
    """

    #: The event-driven wrapper keys its steal loop off this flag.
    adaptive = True

    def read(self, scheme, spec, record, plan, trial) -> AccessResult:
        cfg = scheme.config
        completion = spec.completion
        disks = plan.disk_ids
        file_name = record.name
        rng_for = scheme.service_rng_factory(trial, "read")
        t0 = scheme.open_latency()

        # The placement's adaptive view: round-1 unit ids per disk index,
        # and which disks can serve each unit.  Unit ids are normalised to
        # native ints here, once — every downstream list (batches, steal
        # and keep sets, arrival records) inherits them unconverted.
        primaries, holder_map = spec.placement.adaptive_units(cfg, record)
        primaries = [[int(b) for b in ids] for ids in primaries]

        def holders(block: int) -> set[int]:
            """Disk indices holding a copy of ``block``."""
            return holder_map.get(block, set())

        # Dense holder matrix: H[unit, disk idx] — lets the victim scan
        # count a disk's eligible pending units in one vector op instead
        # of a per-unit set probe.
        if holder_map:
            n_units = 1 + max(
                max(holder_map),
                max((max(ids) for ids in primaries if ids), default=0),
            )
            H = np.zeros((n_units, len(disks)), dtype=bool)
            for unit, holder_set in holder_map.items():
                H[unit, list(holder_set)] = True
        else:
            H = None  # single-holder layout: nothing is ever eligible

        phase_rng_for = getattr(rng_for, "phase_rng_for", None)
        runs: list[_DiskRun] = []
        for idx, disk_id in enumerate(disks):
            filer = scheme.cluster.filer_of_disk(int(disk_id))
            runs.append(
                _DiskRun(
                    disk_id=int(disk_id),
                    idx=idx,
                    svc=scheme.cluster.block_service(
                        int(disk_id),
                        rng_for(int(disk_id)),
                        phase_rng_for=phase_rng_for,
                    ),
                    one_way=filer.link.one_way_s,
                    ready=request_arrival_time(
                        scheme.cluster, int(disk_id), t0, filer.link.one_way_s
                    ),
                )
            )

        # Victim-scan index: ready_arr[i] mirrors runs[i].ready for runs
        # with a live batch and -inf for drained ones, so one vectorised
        # compare yields the runs worth scanning at a decision point.
        ready_arr = np.full(len(runs), -np.inf)
        arrivals: list[tuple[float, int]] = []
        events: list[tuple[float, int, int]] = []  # (finish, disk idx, version)
        rounds = 1
        blocks_fetched = 0
        served_by: dict[int, int] = {}
        partial_bytes = 0.0  # fractions delivered by victims before hand-off
        # Plain-text replicas let the client assemble a block from fractions
        # fetched off different disks (§6.3.1): frac[bid] is the portion
        # still to fetch after mid-transfer hand-offs.
        frac: dict[int, float] = {}

        tracer = scheme.tracer

        def serve_batch(run: _DiskRun, ids: list[int], t_start: float) -> None:
            nonlocal blocks_fetched, partial_bytes
            run.version += 1
            # Callers pass fresh lists of native ints (primaries are
            # normalised once, steal/keep are new listcomps), so the batch
            # adopts the list without a per-element conversion pass.
            run.batch_ids = ids
            run.ids_arr = np.asarray(ids, dtype=np.int64)
            if not ids:
                # Drained by theft: the disk is idle *now* and must still
                # get its hand-off decision, or it would never steal again.
                run.completions = np.empty(0)
                run.ready = t_start
                ready_arr[run.idx] = -np.inf
                heapq.heappush(events, (t_start, run.idx, run.version))
                return
            ids = run.batch_ids
            run.hold_cum = (
                H[run.ids_arr].cumsum(axis=0, dtype=np.int32) if H is not None else None
            )
            services = run.svc.block_service_times(len(ids), cfg.block_bytes)
            if frac:
                # x * 1.0 is exact, so skipping the multiply when no block
                # is fractional is bit-identical.
                services *= np.array([frac.get(b, 1.0) for b in ids])
                frac_total = max(1e-9, sum(frac.get(b, 1.0) for b in ids))
            else:
                frac_total = float(len(ids))
            # Callers pass the true start (request arrival / in-flight end);
            # the previous batch's `ready` is stale after a cancellation.
            run.batch_start = t_start
            run.completions = run.svc.completions(
                services,
                t_start,
                reqs_per_item=run.svc.requests_per_block(cfg.block_bytes),
            )
            # What the client *observes*: wall time per block including
            # background dilation — the honest basis for steal decisions.
            run.avg_block_s = (float(run.completions[-1]) - t_start) / frac_total
            # One vectorised network hop for the whole batch; the link
            # timeline maps ready times elementwise, so this matches the
            # per-block calls exactly.
            t_clients = np.asarray(
                response_arrival_times(
                    scheme.cluster, run.disk_id, run.completions, run.one_way
                ),
                dtype=np.float64,
            )
            # C-level bulk append/merge: zip builds the (t, bid) tuples and
            # fromkeys the served_by entries without a Python-level loop.
            arrivals.extend(zip(t_clients.tolist(), ids))
            served_by.update(dict.fromkeys(ids, run.idx))
            blocks_fetched += len(ids)
            run.ready = float(run.completions[-1])
            ready_arr[run.idx] = run.ready
            if tracer.enabled and np.isfinite(run.ready):
                tracer.span(
                    "drive.batch",
                    "drive",
                    t_start,
                    run.ready,
                    track="drive",
                    args={"disk": run.disk_id, "blocks": len(ids)},
                )
            heapq.heappush(events, (run.ready, run.idx, run.version))

        # Round 1: each unit's primary disk.  Filesystem-cache hits are
        # served by the filer at request time and never queue at disks.
        cache_hits = 0
        for idx, run in enumerate(runs):
            ids = primaries[idx]
            filer = scheme.cluster.filer_of_disk(run.disk_id)
            cached = filer.cached_blocks(file_name, ids)
            hit_ids = [b for b, c in zip(ids, cached) if c]
            for b in hit_ids:
                t_client = response_arrival_times(
                    scheme.cluster, run.disk_id, run.ready, run.one_way
                )
                arrivals.append((float(t_client), int(b)))
                served_by[int(b)] = idx
            filer.record_read(file_name, hit_ids, cfg.block_bytes)
            cache_hits += len(hit_ids)
            blocks_fetched += len(hit_ids)
            serve_batch(run, [b for b, c in zip(ids, cached) if not c], run.ready)

        # Adaptive hand-offs.  The budget is a safety valve far above any
        # sane hand-off count: past it the client stops re-planning and
        # lets the outstanding queues drain.
        handoff_budget = 50 * len(disks)
        while events:
            finish, a_idx, version = heapq.heappop(events)
            a = runs[a_idx]
            if version != a.version:
                continue  # stale: this disk's plan was revised
            if rounds > handoff_budget:
                continue
            t_dec = finish + a.one_way  # client learns disk A drained

            # Victim: most unserved blocks that A holds replicas of.  The
            # strict ``>`` keeps the seed's first-wins tie-breaking; only
            # the count matters for selection, so the eligible *list* is
            # materialised for the winner alone (below, at t_cancel).
            best_b, best_cnt = None, 0
            if H is not None:
                # Drained runs are the common case late in the access: one
                # vectorised compare over the ready index yields only the
                # runs still serving past t_dec (side="right" below makes
                # ready <= t_dec exactly the all-served condition, and
                # drained/empty runs sit at -inf), in index order — the
                # same first-wins tie-breaking as the full scan.
                for b_idx in np.nonzero(ready_arr > t_dec)[0].tolist():
                    if b_idx == a_idx:
                        continue
                    b = runs[b_idx]
                    done = int(b.completions.searchsorted(t_dec, side="right"))
                    cum = b.hold_cum
                    cnt = int(cum[-1, a_idx])
                    if done:
                        cnt -= int(cum[done - 1, a_idx])
                    if cnt > best_cnt:
                        best_b, best_cnt = b_idx, cnt
            if best_b is None:
                continue  # nothing worth stealing; A idles

            b = runs[best_b]
            rounds += 1
            t_cancel = t_dec + b.one_way
            if tracer.enabled:
                # Each hand-off opens a new request round (§6.2.1): the
                # idle thief re-requests part of the victim's queue.
                tracer.count("scheme.handoffs")
                tracer.instant(
                    "scheme.round",
                    "scheme",
                    t_dec,
                    track="scheme",
                    args={
                        "round": rounds,
                        "thief": a.disk_id,
                        "victim": b.disk_id,
                        "eligible": best_cnt,
                    },
                )
            done, remaining = b.pending_at(t_cancel)
            inflight = b.inflight_at(t_cancel)
            elig = [x for x in remaining if a_idx in holders(x)]
            steal_set = set(elig[len(elig) // 2 :])  # the second half
            if len(elig) == 1:
                # Hand-off of a victim's last block: only worthwhile when
                # the thief is clearly faster (the client compares observed
                # disk performance, §5.3.1) — otherwise two idle disks
                # would bounce the block forever.
                x = elig[0]
                f = frac.get(x, 1.0)
                if x == inflight:
                    pos_x = b.batch_ids.index(x)
                    victim_left = float(b.completions[pos_x]) - t_cancel
                else:
                    victim_left = b.avg_block_s * f
                thief_time = a.avg_block_s * f + 3 * a.one_way
                if not thief_time < 0.5 * victim_left:
                    continue
            if not steal_set:
                continue
            steal = [x for x in remaining if x in steal_set]
            keep = [x for x in remaining if x not in steal_set]

            # Remove the stale arrivals B would have produced for its
            # cancelled tail (and its kept blocks, which get re-timed).
            # One filtering pass drops every match — the same set the
            # seed's repeated ``list.remove`` deleted, without the O(n²).
            cancelled = set(remaining)
            n_before = len(arrivals)
            arrivals[:] = [item for item in arrivals if item[1] not in cancelled]
            blocks_fetched -= n_before - len(arrivals)

            # The block B is transferring when the cancel lands: if stolen,
            # only its unfetched fraction moves (plain-text replicas can be
            # assembled from fractions across disks, §6.3.1); if kept, B
            # finishes it undisturbed.
            b_start = t_cancel
            if inflight is not None:
                pos = b.batch_ids.index(inflight)
                c_if = float(b.completions[pos])
                if inflight in steal_set:
                    # A failed victim (infinite completion) made no
                    # progress: the whole block moves.
                    if np.isfinite(c_if):
                        start_if = float(b.completions[pos - 1]) if pos > 0 else t_cancel
                        dur = max(c_if - start_if, 1e-12)
                        left = min(1.0, max(0.0, (c_if - t_cancel) / dur))
                        before = frac.get(inflight, 1.0)
                        partial_bytes += before * (1.0 - left) * cfg.block_bytes
                        frac[inflight] = before * left
                elif np.isfinite(c_if):
                    t_client = response_arrival_times(
                        scheme.cluster, b.disk_id, c_if, b.one_way
                    )
                    arrivals.append((float(t_client), int(inflight)))
                    blocks_fetched += 1
                    keep = [x for x in keep if x != inflight]
                    b_start = c_if
            serve_batch(b, keep, b_start)
            serve_batch(a, steal, t_dec + a.one_way)

        # Completion: feed arrivals to the composition's tracker in order,
        # through the access-core's one consumption loop.
        arrivals.sort()
        tracker = completion.tracker(scheme, record, plan)
        if arrivals:
            t_arr, b_arr = zip(*arrivals)
            times = np.array(t_arr, dtype=np.float64)
            ids = np.array(b_arr, dtype=np.int64)
        else:
            times = np.empty(0, dtype=np.float64)
            ids = np.empty(0, dtype=np.int64)
        t_fill, consumed = consume_sorted_arrivals(tracker, times, ids)
        t_done, _ = completion.finish(scheme, tracker, t_fill)

        # Fetched blocks cross the network once; block fractions delivered
        # by a victim before a hand-off add a whisker of extra bytes — the
        # scheme's "just a little more than zero" overhead (Fig 6-8).
        net_bytes = int(blocks_fetched * cfg.block_bytes + partial_bytes)
        for run in runs:
            scheme.cluster.filer_of_disk(run.disk_id).link.account(
                len(run.batch_ids) * cfg.block_bytes
            )
        trace_read_summary(
            tracer, scheme.name, trial, t0, t_done, consumed,
            cfg.block_bytes, cfg.data_bytes,
            network_bytes=net_bytes,
            span_args={"rounds": rounds},
            failed_instant=False,
        )
        completion.trace(tracer, tracker, t_fill, t_done, consumed)

        extra = dict(plan.extra)
        extra.update(completion.extras(scheme, tracker, t_fill, t_done))
        extra["handoffs"] = rounds - 1
        extra["served_by"] = served_by
        if completion.wants_order:
            extra["arrival_order"] = [int(b) for _, b in arrivals[:consumed]]
        spec.reaction.annotate(scheme, record, extra, t_done, t0)
        return AccessResult(
            latency_s=t_done,
            data_bytes=cfg.data_bytes,
            network_bytes=net_bytes,
            disk_blocks=blocks_fetched - cache_hits,
            blocks_received=consumed,
            cache_hits=cache_hits,
            rounds=rounds,
            extra=extra,
        )
