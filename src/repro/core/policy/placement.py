"""Placement policies: stripe, mirrors, parity stripes, LT, grouped RS.

Each policy turns (config, #disks, trial) into a :class:`PlacementSpec`
— the per-disk stored queues plus the coding descriptor and record extras
(LT graph, parity stripe map) the read path later needs.  For the
adaptive dispatcher, :meth:`~PlacementPolicy.adaptive_units` exposes the
layout as requestable *units* and their holder disks.
"""

from __future__ import annotations

import numpy as np

from repro.coding.lt import ImprovedLTCode, LTGraph
from repro.core import layout as L
from repro.core.policy.base import PlacementSpec
from repro.core.trackers import PARITY_BASE
from repro.sim.rng import stable_seed

#: Distinct LT graphs rotated across trials, mimicking per-simulation graph
#: regeneration at bounded cost.
GRAPH_POOL_SIZE = 4

_GRAPH_POOL: dict[tuple, list[LTGraph]] = {}

#: Measured GF(256) RS decode bandwidth by word length on this class of
#: host (see Table 5-1 bench); interpolated linearly in 1/K.
RS_DECODE_MBPS = {4: 100.0, 8: 43.0, 16: 26.0, 32: 13.0, 64: 6.5, 128: 3.2}


def pooled_graph(
    k: int,
    n: int,
    c: float,
    delta: float,
    trial: int,
    pool_size: int = GRAPH_POOL_SIZE,
    checked: bool = True,
) -> LTGraph:
    """An LT graph for (k, n), rotated by trial.

    ``checked=True`` enforces the §5.2.3 decodability guarantee over the
    full block set (what a balanced write stores).  Speculative writes use
    ``checked=False`` — their much larger rateless margins would make the
    full-set check needlessly expensive, and the writer gates completion
    on the *committed* set decoding anyway.
    """
    key = (k, n, round(c, 6), round(delta, 6), checked)
    graphs = _GRAPH_POOL.setdefault(key, [])
    idx = trial % pool_size
    while len(graphs) <= idx:
        code = ImprovedLTCode(k, c=c, delta=delta)
        rng = np.random.default_rng(stable_seed("graph-pool", *key, len(graphs)))
        if checked:
            graphs.append(code.build_graph(n, rng))
        else:
            graph = LTGraph(k)
            code.extend_graph(graph, n, rng)
            graphs.append(graph)
    return graphs[idx]


def rs_decode_bandwidth_bps(group: int) -> float:
    """Approximate RS decode bandwidth for a given word length."""
    ks = sorted(RS_DECODE_MBPS)
    if group <= ks[0]:
        return RS_DECODE_MBPS[ks[0]] * (1 << 20)
    if group >= ks[-1]:
        # Quadratic cost: bandwidth ~ 1/K beyond the table.
        return RS_DECODE_MBPS[ks[-1]] * ks[-1] / group * (1 << 20)
    for lo, hi in zip(ks, ks[1:]):
        if lo <= group <= hi:
            f = (group - lo) / (hi - lo)
            return ((1 - f) * RS_DECODE_MBPS[lo] + f * RS_DECODE_MBPS[hi]) * (1 << 20)
    raise AssertionError("unreachable")


def lt_coding(cfg) -> dict:
    """The FileRecord coding descriptor for the LT code."""
    return {
        "algorithm": "lt",
        "k": cfg.k,
        "n": cfg.n_coded,
        "c": cfg.lt_c,
        "delta": cfg.lt_delta,
    }


class _PlacementBase:
    """Default adaptive view: stored ids are the units, one holder each."""

    def adaptive_units(self, cfg, record):
        primaries: list[list[int]] = []
        holders: dict[int, set[int]] = {}
        for idx, stored in enumerate(record.placement):
            primaries.append([int(b) for b in stored])
            for b in stored:
                holders.setdefault(int(b), set()).add(idx)
        return primaries, holders


class StripedPlacement(_PlacementBase):
    """RAID-0: block i on disk i mod H, no redundancy."""

    def plan(self, cfg, n_disks, trial):
        return PlacementSpec(L.striped(cfg.k, n_disks), {"algorithm": "none"})


class RotatedReplicaPlacement(_PlacementBase):
    """RRAID: replica r of block i on disk (i + r) mod H, id r*K + i."""

    def plan(self, cfg, n_disks, trial):
        return PlacementSpec(
            L.rotated_replicas_fractional(cfg.k, cfg.redundancy, n_disks),
            {"algorithm": "replication", "replicas": cfg.replicas},
        )

    def adaptive_units(self, cfg, record):
        # Units are original blocks; any replica holder can serve them.
        # Round 1 requests each block's replica-0 home disk (i mod H).
        k = cfg.k
        h = len(record.placement)
        holders: dict[int, set[int]] = {}
        for idx, stored in enumerate(record.placement):
            for coded_id in stored:
                holders.setdefault(int(coded_id) % k, set()).add(idx)
        primaries = [[b for b in range(k) if b % h == idx] for idx in range(h)]
        return primaries, holders


class MirroredStripePlacement(_PlacementBase):
    """RAID-0+1: two disk halves, each a full stripe; ids i and K + i."""

    def plan(self, cfg, n_disks, trial):
        k = cfg.k
        if n_disks < 2:
            raise ValueError("RAID-0+1 needs at least two disks")
        half = n_disks // 2
        placement = [[] for _ in range(n_disks)]
        for i in range(k):
            placement[i % half].append(i)            # mirror set A: ids 0..k-1
            placement[half + i % half].append(k + i)  # mirror set B: ids k..2k-1
        return PlacementSpec(
            placement, {"algorithm": "mirrored-striping", "replicas": 2}
        )

    def adaptive_units(self, cfg, record):
        # Units are original blocks, held by one disk in each mirror half;
        # round 1 requests the set-A copies, so set-B disks start idle and
        # immediately steal from their struggling mirror partners.
        k = cfg.k
        h = len(record.placement)
        half = h // 2
        holders: dict[int, set[int]] = {}
        for idx, stored in enumerate(record.placement):
            for coded_id in stored:
                holders.setdefault(int(coded_id) % k, set()).add(idx)
        primaries = [
            [b for b in range(k) if b % half == idx] if idx < half else []
            for idx in range(h)
        ]
        return primaries, holders


class ParityStripePlacement(_PlacementBase):
    """RAID-5: (H-1)-block stripes with one rotating parity block each."""

    @staticmethod
    def layout(k: int, h: int):
        """Return (placement incl. parity, stripes).

        Stripe ``s`` holds data blocks ``s*(H-1) .. s*(H-1)+H-2`` and one
        parity block (id ``PARITY_BASE + s``) on disk ``H-1 - (s mod H)``.
        """
        if h < 2:
            raise ValueError("RAID-5 needs at least two disks")
        per_stripe = h - 1
        n_stripes = -(-k // per_stripe)
        placement = [[] for _ in range(h)]
        stripes = []
        for s in range(n_stripes):
            parity_disk = h - 1 - (s % h)
            data = list(range(s * per_stripe, min(k, (s + 1) * per_stripe)))
            members = []
            d = 0
            for b in data:
                if d == parity_disk:
                    d += 1
                placement[d % h].append(b)
                members.append((b, d % h))
                d += 1
            placement[parity_disk].append(PARITY_BASE + s)
            stripes.append({"data": members, "parity_disk": parity_disk, "id": s})
        return placement, stripes

    def plan(self, cfg, n_disks, trial):
        placement, stripes = self.layout(cfg.k, n_disks)
        return PlacementSpec(
            placement,
            {"algorithm": "parity", "stripes": len(stripes)},
            {"stripes": stripes},
        )


class RatelessCodedPlacement(_PlacementBase):
    """RobuSTore: N LT-coded blocks balanced over the disks."""

    def plan(self, cfg, n_disks, trial):
        graph = pooled_graph(cfg.k, cfg.n_coded, cfg.lt_c, cfg.lt_delta, trial)
        return PlacementSpec(
            L.coded_balanced(cfg.n_coded, n_disks), lt_coding(cfg), {"graph": graph}
        )


class RegeneratingPlacement(_PlacementBase):
    """Product-matrix regenerating stripes: whole nodes on single disks.

    The file is cut into stripes of ``B`` original blocks; each stripe is
    encoded by the exact product-matrix code into ``n`` *nodes* of
    ``alpha`` coded blocks, and a node's blocks land together on one disk
    (block id ``(stripe << 20) | (node * alpha + sub)``) — so a disk
    failure is a node failure, repairable from ``d`` helper nodes at
    ``d * beta`` blocks instead of a whole-stripe read.  The per-stripe
    geometry is fixed (class attributes); ``cfg.redundancy`` sets the node
    count so the storage overhead matches the other coded schemes.
    """

    #: Originals recoverable from any K_G nodes of a stripe.
    K_G = 3
    #: Helpers contacted per node repair.
    D_G = 4

    mode: str
    alpha: int
    stripe_symbols: int

    def nodes_per_stripe(self, cfg) -> int:
        """Node count matching ``1 + cfg.redundancy`` storage overhead."""
        want = self.stripe_symbols * (1.0 + cfg.redundancy) / self.alpha
        return max(self.D_G + 1, min(255, int(round(want))))

    def coding(self, cfg) -> dict:
        n = self.nodes_per_stripe(cfg)
        return {
            "algorithm": f"regenerating-{self.mode}",
            "mode": self.mode,
            "nodes": n,
            "k": self.K_G,
            "d": self.D_G,
            "alpha": self.alpha,
            "stripe_symbols": self.stripe_symbols,
            "stripes": -(-cfg.k // self.stripe_symbols),
        }

    def plan(self, cfg, n_disks, trial):
        coding = self.coding(cfg)
        n, alpha = coding["nodes"], coding["alpha"]
        placement = [[] for _ in range(n_disks)]
        for s in range(coding["stripes"]):
            for j in range(n):
                disk = (s * n + j) % n_disks
                for a in range(alpha):
                    placement[disk].append((s << 20) | (j * alpha + a))
        return PlacementSpec(placement, coding)


class RegeneratingMSRPlacement(RegeneratingPlacement):
    """MSR point at d = 2k-2: per-node storage equals the MDS optimum."""

    mode = "msr"
    alpha = RegeneratingPlacement.K_G - 1            # = 2
    stripe_symbols = RegeneratingPlacement.K_G * (RegeneratingPlacement.K_G - 1)  # = 6


class RegeneratingMBRPlacement(RegeneratingPlacement):
    """MBR point: repair moves exactly what the lost node stored."""

    mode = "mbr"
    alpha = RegeneratingPlacement.D_G                # = 4
    stripe_symbols = (
        RegeneratingPlacement.K_G * RegeneratingPlacement.D_G
        - RegeneratingPlacement.K_G * (RegeneratingPlacement.K_G - 1) // 2
    )  # = 9


class GroupedRSPlacement(_PlacementBase):
    """RobuSTore-RS: per-group RS words interleaved across all disks."""

    #: Originals per RS word (<= 128 keeps N <= 256 at 1x redundancy).
    GROUP = 32

    def grouping(self, cfg):
        group = min(self.GROUP, cfg.k)
        n_groups = -(-cfg.k // group)
        coded_per_group = max(
            group, int(round(group * (1.0 + cfg.redundancy)))
        )
        coded_per_group = min(coded_per_group, 256)
        return group, n_groups, coded_per_group

    def coding(self, cfg) -> dict:
        group, n_groups, coded_per_group = self.grouping(cfg)
        return {
            "algorithm": "reed-solomon",
            "group": group,
            "groups": n_groups,
            "coded_per_group": coded_per_group,
        }

    def plan(self, cfg, n_disks, trial):
        group, n_groups, coded_per_group = self.grouping(cfg)
        ids = [
            (g << 20) | j for j in range(coded_per_group) for g in range(n_groups)
        ]
        placement = [[] for _ in range(n_disks)]
        for pos, bid in enumerate(ids):
            placement[pos % n_disks].append(bid)
        return PlacementSpec(placement, self.coding(cfg))
