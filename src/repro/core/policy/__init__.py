"""repro.core.policy: the layered scheme decomposition.

The paper's schemes differ along orthogonal axes; this package makes each
axis a small, *stateless* policy object (SIM007 enforces the
statelessness) and :mod:`repro.core.pipeline` runs any composition:

* :mod:`~repro.core.policy.placement` — where coded/replicated blocks live
  (stripe, rotated mirror, mirrored stripes, parity stripes, rateless LT,
  grouped Reed-Solomon);
* :mod:`~repro.core.policy.dispatch` — how requests go out (speculative
  one-shot vs. adaptive multi-round with work stealing);
* :mod:`~repro.core.policy.completion` — when the client has enough
  (all blocks, replica coverage, LT decode, grouped-RS fill, parity
  reconstruction) and what decode tail that implies;
* :mod:`~repro.core.policy.reaction` — what mid-operation faults do to the
  access (abort, emergent failover, re-speculation + repair flagging,
  degraded parity planning);
* :mod:`~repro.core.policy.write` — how writes commit (uniform, uniform
  with encode overlap, speculative rateless);
* :mod:`~repro.core.policy.compose` — the :data:`COMPOSITIONS` registry
  binding names ("raid0", "robustore", "lt+adaptive", ...) to
  :class:`SchemeSpec` tuples.
"""

from repro.core.policy.base import (
    CompletionPolicy,
    DispatchPolicy,
    FaultReaction,
    PlacementPolicy,
    PlacementSpec,
    ReadPlan,
    WritePolicy,
)
from repro.core.policy.compose import COMPOSITIONS, SchemeSpec, composition

__all__ = [
    "COMPOSITIONS",
    "CompletionPolicy",
    "DispatchPolicy",
    "FaultReaction",
    "PlacementPolicy",
    "PlacementSpec",
    "ReadPlan",
    "SchemeSpec",
    "WritePolicy",
    "composition",
]
