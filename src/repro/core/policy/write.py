"""Write policies: uniform commit, encode-overlap commit, speculative rateless.

Uniform writes push the placement policy's balanced layout to every disk
and wait for the slowest commit (§6.3.1).  The grouped-RS variant overlaps
the quadratic-cost group encode with the transfer.  RobuSTore's write is
speculative and rateless: every disk keeps committing coded blocks from
its private id stream until the client has seen enough commits to (a)
reach the target redundancy and (b) guarantee decodability of the
committed set, then cancels (§4.3.2, §5.2.3 improvement 1) — leaving the
*unbalanced* placement the read path replays faithfully.

The speculative write is split the same way reads are: the closed form
here evaluates the ack timeline vectorised; the event-driven engine
(:mod:`repro.accesscore.events`) replays it ack-by-ack.  Both build the
supply from :meth:`SpeculativeRatelessWrite.supply_plan`, stop through the
same :class:`~repro.accesscore.trackers.DecodableCommit` gate, and settle
through :meth:`SpeculativeRatelessWrite.commit`.

Fail-stop detection is shared: a write whose commit acks never all arrive
(:func:`~repro.accesscore.timeline.acks_incomplete`) resolves through
:func:`~repro.accesscore.timeline.failed_write_result`, the single place a
failed write is counted and shaped.
"""

from __future__ import annotations

import numpy as np

from repro.accesscore.result import AccessResult
from repro.accesscore.routing import request_arrival_time, response_arrival_times
from repro.accesscore.timeline import (  # noqa: F401  (re-exported: original path)
    acks_incomplete,
    failed_write_result,
    simulate_uniform_write,
)
from repro.accesscore.trackers import DecodableCommit
from repro.coding.peeling import PeelingDecoder
from repro.core.policy.placement import (
    lt_coding,
    pooled_graph,
    rs_decode_bandwidth_bps,
)
from repro.disk.service import served_before


class UniformWrite:
    """Write the placement's stored queues to every disk; wait for all."""

    def encode_tail_s(self, scheme, pspec) -> float | None:
        """Client-side encode time overlapping the transfer, or ``None``."""
        return None

    def write(self, scheme, spec, file_name, trial) -> AccessResult:
        cfg = scheme.config
        disks = scheme.select_disks(trial)
        pspec = spec.placement.plan(cfg, len(disks), trial)
        t0 = scheme.open_latency()
        t_done, net = simulate_uniform_write(
            scheme.cluster,
            disks,
            pspec.placement,
            cfg.block_bytes,
            t0,
            scheme.service_rng_factory(trial, "write"),
            file_name,
        )
        return self.settle(scheme, file_name, disks, pspec, t_done, net, t0)

    def settle(
        self, scheme, file_name, disks, pspec, t_done, net, t0
    ) -> AccessResult:
        """Shared uniform-write epilogue: encode tail, register, result."""
        cfg = scheme.config
        extra = {}
        encode_s = self.encode_tail_s(scheme, pspec)
        if encode_s is not None:
            t_done = max(t_done, t0 + encode_s)
            extra["encode_s"] = encode_s
        scheme._register(
            file_name, disks, pspec.placement, coding=pspec.coding, extra=pspec.extra
        )
        total = sum(len(p) for p in pspec.placement)
        return AccessResult(
            latency_s=t_done + scheme.metadata.latency_s,  # commit to metadata
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=total,
            blocks_received=total,
            extra=extra,
        )


class EncodeOverlapWrite(UniformWrite):
    """Grouped RS: the per-word encode rides alongside the uniform I/O.

    RS cannot write speculatively (fixed rate, no rateless stream) and the
    parity of each word is only available after the group encodes — only
    the residual beyond the I/O time lands on the latency (encode ~ as
    slow as decode for RS).
    """

    def encode_tail_s(self, scheme, pspec) -> float | None:
        group = pspec.coding["group"]
        return scheme.config.data_bytes / rs_decode_bandwidth_bps(group)


class SpeculativeRatelessWrite:
    """RobuSTore: rateless commit streams cancelled at decodability."""

    #: Rateless supply multiplier: each disk can commit up to this factor
    #: times its fair share N/H before running dry.  Must cover the
    #: fastest-to-average disk speed ratio (~4-6x in the calibrated pool)
    #: so fast disks never idle mid-write (§5.3.2).  Schemes may override
    #: via a ``WRITE_SUPPLY_FACTOR`` class attribute.
    WRITE_SUPPLY_FACTOR = 8

    def supply_plan(self, scheme, trial):
        """The rateless supply: (disks, per-disk cap, target N, graph).

        Disk ``idx`` streams coded ids ``idx, idx+H, idx+2H, ...`` up to
        the cap; the pooled graph covers the whole supply so any committed
        subset can be checked for decodability.  Both engines build their
        write from this one plan (same trial -> same graph, same caps).
        """
        cfg = scheme.config
        disks = scheme.select_disks(trial)
        h = len(disks)
        target = cfg.n_coded
        supply = getattr(scheme, "WRITE_SUPPLY_FACTOR", self.WRITE_SUPPLY_FACTOR)
        per_disk_cap = -(-target * supply // h) + 8
        graph = pooled_graph(
            cfg.k,
            per_disk_cap * h,
            cfg.lt_c,
            cfg.lt_delta,
            trial,
            checked=False,
        )
        return disks, per_disk_cap, target, graph

    def commit_gate(self, graph, target) -> DecodableCommit:
        """The writer's stop rule, fed commit acks in time order."""
        return DecodableCommit(PeelingDecoder(graph), target)

    def commit(
        self,
        scheme,
        file_name,
        disks,
        one_ways,
        completions,
        per_disk_cap,
        t_enough,
        graph,
        target,
        trial,
    ) -> AccessResult:
        """Cancel at ``t_enough``; register the unbalanced placement.

        ``completions[idx]`` holds disk ``idx``'s commit times in time
        order (the closed form's serve output; the event engine's recorded
        multiset, sorted).  Blocks committed (or in flight) when the
        cancel reaches each disk are durable and define the placement the
        read path replays.
        """
        cfg = scheme.config
        h = len(disks)
        placement: list[list[int]] = []
        net_bytes = 0
        total_committed = 0
        for idx, disk_id in enumerate(disks):
            t_cancel = t_enough + one_ways[idx]
            committed = served_before(completions[idx], t_cancel)
            committed = min(committed, per_disk_cap)
            ids = (idx + h * np.arange(committed)).tolist()
            placement.append(ids)
            total_committed += committed
            nbytes = committed * cfg.block_bytes
            net_bytes += nbytes
            filer = scheme.cluster.filer_of_disk(int(disk_id))
            filer.link.account(nbytes)
            filer.record_write(file_name, ids, cfg.block_bytes)

        scheme._register(
            file_name,
            disks,
            placement,
            coding=lt_coding(cfg),
            extra={"graph": graph, "speculative": True},
        )
        tracer = scheme.tracer
        if tracer.enabled:
            tracer.count("scheme.writes")
            tracer.account_bytes("network", net_bytes)
            tracer.span(
                f"scheme.write:{scheme.name}",
                "scheme",
                0.0,
                t_enough + scheme.metadata.latency_s,
                track="scheme",
                args={
                    "trial": trial,
                    "committed": total_committed,
                    "overshoot": total_committed - target,
                },
            )
            tracer.instant(
                "scheme.write_cancel", "scheme", t_enough, track="scheme"
            )
        return AccessResult(
            latency_s=t_enough + scheme.metadata.latency_s,
            data_bytes=cfg.data_bytes,
            network_bytes=net_bytes,
            disk_blocks=total_committed,
            blocks_received=total_committed,
            extra={"target_blocks": target, "overshoot": total_committed - target},
        )

    def write(self, scheme, spec, file_name, trial) -> AccessResult:
        cfg = scheme.config
        disks, per_disk_cap, target, graph = self.supply_plan(scheme, trial)
        h = len(disks)
        rng_for = scheme.service_rng_factory(trial, "write")
        t0 = scheme.open_latency()

        # Each disk streams ids d, d+H, d+2H, ...; speculative writing keeps
        # every disk busy until the client cancels.
        completions: list[np.ndarray] = []
        one_ways: list[float] = []
        acks: list[np.ndarray] = []
        phase_rng_for = getattr(rng_for, "phase_rng_for", None)
        for idx, disk_id in enumerate(disks):
            disk_id = int(disk_id)
            filer = scheme.cluster.filer_of_disk(disk_id)
            one_way = filer.link.one_way_s
            svc = scheme.cluster.block_service(
                disk_id, rng_for(disk_id), phase_rng_for=phase_rng_for
            )
            t_arrive = request_arrival_time(scheme.cluster, disk_id, t0, one_way)
            c = svc.serve(per_disk_cap, cfg.block_bytes, t_arrive)
            completions.append(c)
            one_ways.append(one_way)
            acks.append(
                np.asarray(
                    response_arrival_times(scheme.cluster, disk_id, c, one_way)
                )
            )

        # Merge commit acks (commit + one-way back) in time order.
        ack_times = np.concatenate(acks)
        ack_ids = np.concatenate(
            [idx + h * np.arange(c.size) for idx, c in enumerate(completions)]
        )
        order = np.argsort(ack_times, kind="stable")
        ack_times, ack_ids = ack_times[order], ack_ids[order]

        # The writer stops once >= N blocks committed AND the committed set
        # is decodable (the §5.2.3 writer-side guarantee) — the shared
        # DecodableCommit gate, fed the merged ack stream.
        gate = self.commit_gate(graph, target)
        t_enough = None
        for t, bid in zip(ack_times, ack_ids):
            t_enough = gate.add(float(t), int(bid))
            if t_enough is not None:
                break
        # An infinite t_enough means the decodable target was only reached
        # by counting acks that never arrive (flushed by a fail-stop).
        if t_enough is None or not np.isfinite(t_enough):
            if acks_incomplete(ack_times):
                # Fault injection killed disks mid-write: the committed set
                # never reaches a decodable target — the write fails rather
                # than the supply being undersized.
                return failed_write_result(
                    scheme, {"target_blocks": target, "write_failed": True}
                )
            raise RuntimeError(
                "speculative write exhausted its rateless supply; "
                "increase WRITE_SUPPLY_FACTOR"
            )

        return self.commit(
            scheme,
            file_name,
            disks,
            one_ways,
            completions,
            per_disk_cap,
            t_enough,
            graph,
            target,
            trial,
        )
