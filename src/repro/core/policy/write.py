"""Write policies: uniform commit, encode-overlap commit, speculative rateless.

Uniform writes push the placement policy's balanced layout to every disk
and wait for the slowest commit (§6.3.1).  The grouped-RS variant overlaps
the quadratic-cost group encode with the transfer.  RobuSTore's write is
speculative and rateless: every disk keeps committing coded blocks from
its private id stream until the client has seen enough commits to (a)
reach the target redundancy and (b) guarantee decodability of the
committed set, then cancels (§4.3.2, §5.2.3 improvement 1) — leaving the
*unbalanced* placement the read path replays faithfully.

Fail-stop detection is shared: a write whose commit acks never all arrive
(:func:`acks_incomplete`) resolves through :func:`failed_write_result`,
the single place a failed write is counted and shaped.
"""

from __future__ import annotations

import numpy as np

from repro.coding.peeling import PeelingDecoder
from repro.core.access import (
    AccessResult,
    request_arrival_time,
    response_arrival_times,
    simulate_uniform_write,
)
from repro.core.policy.placement import (
    lt_coding,
    pooled_graph,
    rs_decode_bandwidth_bps,
)
from repro.disk.service import served_before


def acks_incomplete(ack_times) -> bool:
    """True when some commit ack never arrives (a disk fail-stopped)."""
    return not np.all(np.isfinite(ack_times))


def failed_write_result(scheme, extra: dict) -> AccessResult:
    """The one shape of a failed write: infinite latency, nothing durable."""
    if scheme.tracer.enabled:
        scheme.tracer.count("scheme.failed_writes")
    return AccessResult(
        latency_s=float("inf"),
        data_bytes=scheme.config.data_bytes,
        network_bytes=0,
        disk_blocks=0,
        blocks_received=0,
        extra=extra,
    )


class UniformWrite:
    """Write the placement's stored queues to every disk; wait for all."""

    def encode_tail_s(self, scheme, pspec) -> float | None:
        """Client-side encode time overlapping the transfer, or ``None``."""
        return None

    def write(self, scheme, spec, file_name, trial) -> AccessResult:
        cfg = scheme.config
        disks = scheme.select_disks(trial)
        pspec = spec.placement.plan(cfg, len(disks), trial)
        t0 = scheme.open_latency()
        t_done, net = simulate_uniform_write(
            scheme.cluster,
            disks,
            pspec.placement,
            cfg.block_bytes,
            t0,
            scheme.service_rng_factory(trial, "write"),
            file_name,
        )
        extra = {}
        encode_s = self.encode_tail_s(scheme, pspec)
        if encode_s is not None:
            t_done = max(t_done, t0 + encode_s)
            extra["encode_s"] = encode_s
        scheme._register(
            file_name, disks, pspec.placement, coding=pspec.coding, extra=pspec.extra
        )
        total = sum(len(p) for p in pspec.placement)
        return AccessResult(
            latency_s=t_done + scheme.metadata.latency_s,  # commit to metadata
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=total,
            blocks_received=total,
            extra=extra,
        )


class EncodeOverlapWrite(UniformWrite):
    """Grouped RS: the per-word encode rides alongside the uniform I/O.

    RS cannot write speculatively (fixed rate, no rateless stream) and the
    parity of each word is only available after the group encodes — only
    the residual beyond the I/O time lands on the latency (encode ~ as
    slow as decode for RS).
    """

    def encode_tail_s(self, scheme, pspec) -> float | None:
        group = pspec.coding["group"]
        return scheme.config.data_bytes / rs_decode_bandwidth_bps(group)


class SpeculativeRatelessWrite:
    """RobuSTore: rateless commit streams cancelled at decodability."""

    #: Rateless supply multiplier: each disk can commit up to this factor
    #: times its fair share N/H before running dry.  Must cover the
    #: fastest-to-average disk speed ratio (~4-6x in the calibrated pool)
    #: so fast disks never idle mid-write (§5.3.2).  Schemes may override
    #: via a ``WRITE_SUPPLY_FACTOR`` class attribute.
    WRITE_SUPPLY_FACTOR = 8

    def write(self, scheme, spec, file_name, trial) -> AccessResult:
        cfg = scheme.config
        disks = scheme.select_disks(trial)
        h = len(disks)
        target = cfg.n_coded
        supply = getattr(scheme, "WRITE_SUPPLY_FACTOR", self.WRITE_SUPPLY_FACTOR)
        per_disk_cap = -(-target * supply // h) + 8
        graph = pooled_graph(
            cfg.k,
            per_disk_cap * h,
            cfg.lt_c,
            cfg.lt_delta,
            trial,
            checked=False,
        )
        rng_for = scheme.service_rng_factory(trial, "write")
        t0 = scheme.open_latency()

        # Each disk streams ids d, d+H, d+2H, ...; speculative writing keeps
        # every disk busy until the client cancels.
        completions: list[np.ndarray] = []
        one_ways: list[float] = []
        acks: list[np.ndarray] = []
        phase_rng_for = getattr(rng_for, "phase_rng_for", None)
        for idx, disk_id in enumerate(disks):
            disk_id = int(disk_id)
            filer = scheme.cluster.filer_of_disk(disk_id)
            one_way = filer.link.one_way_s
            svc = scheme.cluster.block_service(
                disk_id, rng_for(disk_id), phase_rng_for=phase_rng_for
            )
            t_arrive = request_arrival_time(scheme.cluster, disk_id, t0, one_way)
            c = svc.serve(per_disk_cap, cfg.block_bytes, t_arrive)
            completions.append(c)
            one_ways.append(one_way)
            acks.append(
                np.asarray(
                    response_arrival_times(scheme.cluster, disk_id, c, one_way)
                )
            )

        # Merge commit acks (commit + one-way back) in time order.
        ack_times = np.concatenate(acks)
        ack_ids = np.concatenate(
            [idx + h * np.arange(c.size) for idx, c in enumerate(completions)]
        )
        order = np.argsort(ack_times, kind="stable")
        ack_times, ack_ids = ack_times[order], ack_ids[order]

        # The writer stops once >= N blocks committed AND the committed set
        # is decodable (the §5.2.3 writer-side guarantee).
        decoder = PeelingDecoder(graph)
        t_enough = None
        for count, (t, bid) in enumerate(zip(ack_times, ack_ids), start=1):
            decoder.add(int(bid))
            if count >= target and decoder.is_complete:
                t_enough = float(t)
                break
        # An infinite t_enough means the decodable target was only reached
        # by counting acks that never arrive (flushed by a fail-stop).
        if t_enough is None or not np.isfinite(t_enough):
            if acks_incomplete(ack_times):
                # Fault injection killed disks mid-write: the committed set
                # never reaches a decodable target — the write fails rather
                # than the supply being undersized.
                return failed_write_result(
                    scheme, {"target_blocks": target, "write_failed": True}
                )
            raise RuntimeError(
                "speculative write exhausted its rateless supply; "
                "increase WRITE_SUPPLY_FACTOR"
            )

        # Cancel: blocks committed (or in flight) when it reaches each disk
        # are durable and define the unbalanced placement.
        placement: list[list[int]] = []
        net_bytes = 0
        total_committed = 0
        for idx, disk_id in enumerate(disks):
            t_cancel = t_enough + one_ways[idx]
            committed = served_before(completions[idx], t_cancel)
            committed = min(committed, per_disk_cap)
            ids = (idx + h * np.arange(committed)).tolist()
            placement.append(ids)
            total_committed += committed
            nbytes = committed * cfg.block_bytes
            net_bytes += nbytes
            filer = scheme.cluster.filer_of_disk(int(disk_id))
            filer.link.account(nbytes)
            filer.record_write(file_name, ids, cfg.block_bytes)

        scheme._register(
            file_name,
            disks,
            placement,
            coding=lt_coding(cfg),
            extra={"graph": graph, "speculative": True},
        )
        tracer = scheme.tracer
        if tracer.enabled:
            tracer.count("scheme.writes")
            tracer.account_bytes("network", net_bytes)
            tracer.span(
                f"scheme.write:{scheme.name}",
                "scheme",
                0.0,
                t_enough + scheme.metadata.latency_s,
                track="scheme",
                args={
                    "trial": trial,
                    "committed": total_committed,
                    "overshoot": total_committed - target,
                },
            )
            tracer.instant(
                "scheme.write_cancel", "scheme", t_enough, track="scheme"
            )
        return AccessResult(
            latency_s=t_enough + scheme.metadata.latency_s,
            data_bytes=cfg.data_bytes,
            network_bytes=net_bytes,
            disk_blocks=total_committed,
            blocks_received=total_committed,
            extra={"target_blocks": target, "overshoot": total_committed - target},
        )
