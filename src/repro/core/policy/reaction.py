"""Fault reactions: what mid-operation faults do to an access.

The reaction layer owns three decision points of a read:

* :meth:`~PassiveReaction.plan_read` — turn the file record into a
  :class:`~repro.core.policy.base.ReadPlan` (or a finished result when the
  fate is already sealed, like RAID-5's double failure);
* :meth:`~PassiveReaction.on_stall` — build second-round streams after a
  stalled first round (RobuSTore's re-speculation), or ``None``;
* :meth:`~PassiveReaction.annotate` — post-access bookkeeping on the
  result extras (RobuSTore's repair-trigger flags, through the
  access-core's single repair wiring site).
"""

from __future__ import annotations

import numpy as np

from repro.accesscore.repair import annotate_repair
from repro.accesscore.result import AccessResult
from repro.accesscore.timeline import serve_read_queues
from repro.accesscore.trackers import PARITY_BASE
from repro.core.policy.base import ReadPlan


class PassiveReaction:
    """Request everything once and live with what arrives."""

    def plan_read(self, scheme, record):
        return ReadPlan(record.disk_ids, record.placement)

    def on_stall(self, scheme, streams, trial, file_name, t_fill):
        return None

    def annotate(self, scheme, record, extra, t_done, t0):
        return None


class AbortOnLoss(PassiveReaction):
    """RAID-0: any lost block leaves the access incomplete (latency inf).

    With zero redundancy there is nothing to re-request — the abort is the
    completion tracker simply never finishing.
    """


class EmergentFailover(PassiveReaction):
    """Replicated layouts: failover falls out of speculation.

    Every replica is already requested, so a failed disk's blocks arrive
    from their mirrors without any explicit reaction; the access only
    fails when *all* copies of some block sit on failed disks.
    """


class Respeculate(PassiveReaction):
    """RobuSTore: re-request undelivered blocks, flag files for repair."""

    #: The event-driven wrapper keys its second-round machinery off this.
    respeculates = True

    #: When permanent fail-stops push a file's surviving redundancy below
    #: this fraction of the configured degree, reads flag the file for a
    #: background rebuild (``extra["repair_triggered"]``;
    #: :func:`repro.faults.inject.maybe_repair` acts on it).
    REPAIR_REDUNDANCY_FLOOR = 0.5

    def retry_targets(self, scheme, pending, t_retry_floor, t0):
        """Resolve where and when a second round can go.

        ``pending`` maps disk id -> undelivered block ids (disks that are
        permanently gone already excluded); ``t_retry_floor`` is the
        earliest instant the client can have observed the stall (its last
        finite arrival).  Pushes the retry past each pending disk's
        post-fail recovery, drops disks still down at that instant, and
        emits the re-speculation trace event.  Returns ``(disks, t_retry)``
        or ``None`` when no disk can serve a second round — shared by both
        engines so the retry rule exists once.
        """
        if not pending:
            return None
        injector = scheme.cluster.faults
        # The client observes the stall no earlier than (a) its last finite
        # arrival and (b) the fail-stop that flushed each pending queue; it
        # re-requests once every pending disk has restarted.
        t_retry = t_retry_floor
        for d in pending:
            tl = injector.timeline(d)
            flush = tl.next_fail_after(t0)
            if np.isfinite(flush):
                t_retry = max(t_retry, tl.resume_time(flush))
        disks = [d for d in sorted(pending) if not injector.down_at(d, t_retry)]
        if not disks:
            return None
        if scheme.tracer.enabled:
            scheme.tracer.instant(
                "scheme.respeculate",
                "scheme",
                t_retry,
                track="scheme",
                args={
                    "disks": len(disks),
                    "blocks": sum(len(pending[d]) for d in disks),
                },
            )
        return disks, t_retry

    def on_stall(self, scheme, streams, trial, file_name, t_fill):
        """Build the second-round streams after a fault-stalled decode.

        The client notices the stall once every finite round-1 arrival has
        drained without completing the decode.  Blocks whose arrivals never
        materialised are re-requested from their disks — skipping disks that
        are permanently gone, and waiting for the next recovery when every
        stalled disk is still down at the stall instant.  Returns ``None``
        when no disk can serve a second round (the read genuinely fails).
        """
        cfg = scheme.config
        injector = scheme.cluster.faults
        t0 = scheme.open_latency()
        pending: dict[int, list[int]] = {}
        for s in streams:
            pend = s.block_ids[~np.isfinite(s.arrivals)]
            if pend.size and not injector.permanently_failed(s.disk_id):
                pending[s.disk_id] = [int(b) for b in pend]
        finite = [s.arrivals[np.isfinite(s.arrivals)] for s in streams]
        finite = np.concatenate(finite) if finite else np.empty(0)
        t_retry_floor = float(finite.max()) if finite.size else t0
        resolved = self.retry_targets(scheme, pending, t_retry_floor, t0)
        if resolved is None:
            return None
        disks, t_retry = resolved
        return serve_read_queues(
            scheme.cluster,
            disks,
            [pending[d] for d in disks],
            cfg.block_bytes,
            t_retry,
            scheme.service_rng_factory(trial, "read-retry"),
            file_name,
        )

    def annotate(self, scheme, record, extra, t_done, t0):
        floor = getattr(
            scheme, "REPAIR_REDUNDANCY_FLOOR", self.REPAIR_REDUNDANCY_FLOOR
        )
        return annotate_repair(scheme, record, extra, t_done, t0, floor)


class DegradedParityRead(PassiveReaction):
    """RAID-5: plan around one failed disk; two failures are fatal.

    Fault-free reads touch only the data blocks (parity is dead weight);
    with one failed disk every stripe that lost a data block also fetches
    its parity and reconstructs; more than one failed disk returns an
    unrecoverable result without touching the disks.
    """

    def plan_read(self, scheme, record):
        cfg = scheme.config
        stripes = record.extra["stripes"]
        failed_positions = {
            idx
            for idx, d in enumerate(record.disk_ids)
            if scheme.cluster.disk_state(int(d)).failed
        }
        if len(failed_positions) > 1:
            return AccessResult(
                latency_s=float("inf"),
                data_bytes=cfg.data_bytes,
                network_bytes=0,
                disk_blocks=0,
                blocks_received=0,
                extra={"degraded": True, "unrecoverable": True},
            )

        # Request plan: all data blocks from surviving disks; for stripes
        # that lost a data block, also the parity (if its disk survived).
        degraded = bool(failed_positions)
        failed_pos = next(iter(failed_positions), None)
        placement = [[] for _ in record.disk_ids]
        recoverable = True
        for idx, blocks in enumerate(record.placement):
            if idx == failed_pos:
                continue
            placement[idx] = [
                b
                for b in blocks
                if b < PARITY_BASE
                or degraded
                and self._stripe_lost_data(stripes[b - PARITY_BASE], failed_pos)
            ]
        if degraded:
            for stripe in stripes:
                if self._stripe_lost_data(stripe, failed_pos) and stripe[
                    "parity_disk"
                ] == failed_pos:
                    recoverable = False  # lost both a data block and parity? impossible
        if not recoverable:  # pragma: no cover - single failure never hits this
            return AccessResult(float("inf"), cfg.data_bytes, 0, 0, 0)
        return ReadPlan(
            record.disk_ids,
            placement,
            extra={"degraded": degraded},
            tracker_args={"failed_pos": failed_pos},
        )

    @staticmethod
    def _stripe_lost_data(stripe: dict, failed_pos) -> bool:
        return any(d == failed_pos for _, d in stripe["data"])
