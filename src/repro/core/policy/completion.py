"""Completion policies: when an access can finish, and at what decode cost.

Each policy builds a fresh per-access tracker (the mutable state lives in
:mod:`repro.accesscore.trackers`, not here), converts the tracker's fill
time into the access completion and cancel times, and contributes its
result extras and trace events.  The same ``tracker`` hook feeds both
engines — the closed form consumes it against a sorted arrival vector,
the event-driven reference engine one inbox message at a time.

The fill/cancel asymmetries the policies encode:

* all-blocks / coverage / parity — done at fill, cancel at fill;
* LT decode — done one block-decode after fill (incremental peeling hides
  the rest behind I/O), cancel once decoding is done;
* grouped RS — cancel at fill (the client decodes locally while disks
  stand down), done after the pipelined per-group quadratic decode.
"""

from __future__ import annotations

import numpy as np

from repro.accesscore.routing import decode_tail_s
from repro.accesscore.trackers import (
    AllBlocksTracker,
    CoverageTracker,
    DecoderTracker,
    GroupedRSTracker,
    ParityStripeTracker,
    RegenStripeTracker,
)
from repro.coding.peeling import PeelingDecoder
from repro.core.policy.base import ReadPlan
from repro.core.policy.placement import rs_decode_bandwidth_bps


class _CompletionBase:
    """Default: finish at fill, no extras, no trace events."""

    wants_order = True

    def finish(self, scheme, tracker, t_fill):
        return t_fill, t_fill

    def extras(self, scheme, tracker, t_fill, t_done):
        return {}

    def trace(self, tracer, tracker, t_fill, t_done, consumed):
        pass


class AllBlocksCompletion(_CompletionBase):
    """RAID-0: every distinct block must arrive."""

    def tracker(self, scheme, record, plan: ReadPlan):
        return AllBlocksTracker(scheme.config.k)


class CoverageCompletion(_CompletionBase):
    """Replicated layouts: one copy of every original block (id % K)."""

    def tracker(self, scheme, record, plan: ReadPlan):
        return CoverageTracker(scheme.config.k)


class LTDecodeCompletion(_CompletionBase):
    """RobuSTore: the incremental LT peeling decoder gates completion."""

    def tracker(self, scheme, record, plan: ReadPlan):
        return DecoderTracker(PeelingDecoder(record.extra["graph"]))

    def finish(self, scheme, tracker, t_fill):
        t_done = t_fill + decode_tail_s(scheme.config.block_bytes)
        return t_done, t_done

    def extras(self, scheme, tracker, t_fill, t_done):
        return {"reception_overhead": tracker.decoder.reception_overhead}

    def trace(self, tracer, tracker, t_fill, t_done, consumed):
        if tracer.enabled and np.isfinite(t_fill):
            # The decode ripple: last arrival -> decoder-complete tail.
            tracer.span(
                "scheme.decode_tail",
                "scheme",
                t_fill,
                t_done,
                track="scheme",
                args={"reception_overhead": tracker.decoder.reception_overhead},
            )
            tracer.instant(
                "scheme.decode_complete",
                "scheme",
                t_fill,
                track="scheme",
                args={"blocks_consumed": consumed},
            )


class GroupedRSCompletion(_CompletionBase):
    """RobuSTore-RS: every group fills, then groups decode pipelined.

    RS decoding pipelines *per group*: a group decodes once it fills, one
    group at a time, at the quadratic-cost RS rate.  With fast parallel
    disks every group fills almost together and the whole decode
    serialises after the fill; over a slow WAN the fills stagger and
    decoding hides behind the transfers (Collins & Plank's regime, §2.3).
    """

    def tracker(self, scheme, record, plan: ReadPlan):
        return GroupedRSTracker(record.coding["groups"], record.coding["group"])

    def finish(self, scheme, tracker, t_fill):
        cfg = scheme.config
        group = tracker.group_size
        group_decode_s = group * cfg.block_bytes / rs_decode_bandwidth_bps(group)
        decoder_free = 0.0
        for ft in sorted(tracker.fill_times):
            decoder_free = max(decoder_free, ft) + group_decode_s
        t_done = (
            decoder_free if tracker.fill_times and tracker.complete else float("inf")
        )
        # The cancel goes out as soon as the groups fill — the client
        # decodes locally while the disks stand down.
        return t_done, t_fill

    def extras(self, scheme, tracker, t_fill, t_done):
        decode_tail = (
            max(0.0, t_done - t_fill) if np.isfinite(t_done) else float("inf")
        )
        return {"decode_tail_s": decode_tail, "group": tracker.group_size}


class RegenCompletion(_CompletionBase):
    """Regenerating stripes: k complete nodes per stripe, pipelined decode.

    Like grouped RS, stripes decode one at a time as they fill, and the
    cancel goes out at fill while the client decodes locally.  The decode
    rate uses the GF(256) bandwidth table at word length ``d`` — the
    product-matrix decoder's systems are ``d x d``, far smaller than an
    RS word, which is the decode-side half of the regenerating bargain.
    """

    def tracker(self, scheme, record, plan: ReadPlan):
        c = record.coding
        return RegenStripeTracker(
            c["stripes"], c["nodes"], c["k"], c["alpha"], c["d"]
        )

    def finish(self, scheme, tracker, t_fill):
        cfg = scheme.config
        stripe_bytes = tracker.k * tracker.alpha * cfg.block_bytes
        stripe_decode_s = stripe_bytes / rs_decode_bandwidth_bps(tracker.d)
        decoder_free = 0.0
        for ft in sorted(tracker.fill_times):
            decoder_free = max(decoder_free, ft) + stripe_decode_s
        t_done = (
            decoder_free if tracker.fill_times and tracker.complete else float("inf")
        )
        return t_done, t_fill

    def extras(self, scheme, tracker, t_fill, t_done):
        decode_tail = (
            max(0.0, t_done - t_fill) if np.isfinite(t_done) else float("inf")
        )
        return {"decode_tail_s": decode_tail, "regen_nodes": tracker.nodes}


class ParityCompletion(_CompletionBase):
    """RAID-5: direct arrival or stripe reconstruction; no arrival replay."""

    wants_order = False

    def tracker(self, scheme, record, plan: ReadPlan):
        return ParityStripeTracker(
            scheme.config.k,
            record.extra["stripes"],
            plan.tracker_args.get("failed_pos"),
        )
