"""Update access (§4.3.4): rewrite only the coded blocks a change touches.

With a near-optimal code, changing one original block affects only the
coded blocks adjacent to it in the coding graph (about the mean coded
degree — ~0.5 % of the encoded data at K=1024, N=4096).  The client
inspects the graph, regenerates those blocks, writes them to the disks
that hold them, and notifies the metadata server.
"""

from __future__ import annotations

import numpy as np

from repro.core.access import AccessResult, simulate_uniform_write
from repro.core.robustore import RobuStoreScheme


def affected_blocks(scheme: RobuStoreScheme, file_name: str, original_ids) -> set[int]:
    """Coded-block ids that must be rewritten if ``original_ids`` change."""
    record = scheme.metadata.lookup(file_name)
    graph = record.extra["graph"]
    out: set[int] = set()
    for orig in original_ids:
        out.update(graph.affected_coded_blocks(int(orig)))
    stored = {b for p in record.placement for b in p}
    return out & stored


def update_access(
    scheme: RobuStoreScheme, file_name: str, original_ids, trial: int
) -> AccessResult:
    """Simulate an update of ``original_ids`` (§4.3.4's full procedure).

    The client (1) fetches the layout from the metadata server, (2) finds
    the affected coded blocks via the coding graph, (3) regenerates and
    rewrites them in place, and (4) updates the metadata record.
    """
    cfg = scheme.config
    record = scheme.metadata.lookup(file_name)
    targets = affected_blocks(scheme, file_name, original_ids)
    if not targets:
        return AccessResult(
            latency_s=2 * scheme.metadata.latency_s,
            data_bytes=0,
            network_bytes=0,
            disk_blocks=0,
            blocks_received=0,
        )

    # Group the rewrites per disk, preserving stored order.
    disk_ids = record.disk_ids
    placement = [[b for b in p if b in targets] for p in record.placement]
    t0 = scheme.open_latency()
    t_done, net = simulate_uniform_write(
        scheme.cluster,
        disk_ids,
        placement,
        cfg.block_bytes,
        t0,
        scheme.service_rng_factory(trial, "update"),
        file_name,
    )
    scheme.metadata.update_placement(file_name, record.placement)
    changed_bytes = len(original_ids) * cfg.block_bytes
    return AccessResult(
        latency_s=t_done + scheme.metadata.latency_s,
        data_bytes=max(changed_bytes, 1),
        network_bytes=net,
        disk_blocks=len(targets),
        blocks_received=len(targets),
        extra={
            "affected_coded_blocks": len(targets),
            "affected_fraction": len(targets) / max(1, record.total_blocks),
        },
    )


def update_amplification(scheme: RobuStoreScheme, file_name: str, n_samples: int = 32) -> float:
    """Mean coded blocks rewritten per single-original-block update."""
    record = scheme.metadata.lookup(file_name)
    graph = record.extra["graph"]
    rng = np.random.default_rng(0)
    ks = rng.choice(graph.k, size=min(n_samples, graph.k), replace=False)
    counts = [len(affected_blocks(scheme, file_name, [int(i)])) for i in ks]
    return float(np.mean(counts))
