"""RRAID-A: rotated replication + adaptive multi-round access (§6.2.1).

Reads start by requesting each block's first replica from its home disk.
Whenever a disk drains its queue, the client (one one-way latency later)
finds the disk with the most unserved blocks that the idle disk also holds
replicas of, cancels the second half of that victim's remaining work, and
re-requests it from the idle disk.  Every hand-off costs a round trip —
the scheme's sensitivity to network latency (Fig 6-12) — but almost no
block is ever fetched twice, so I/O overhead stays near zero (Fig 6-8).

Writes are uniform, identical to RRAID-S.

Composition: rotated-replica placement x adaptive dispatch x coverage
completion x emergent failover; the multi-round engine itself lives in
:class:`repro.core.policy.dispatch.AdaptiveDispatch`.
"""

from __future__ import annotations

from repro.core.pipeline import PolicyScheme
from repro.core.policy.compose import composition
from repro.core.policy.dispatch import _DiskRun  # noqa: F401  (re-export)
from repro.core.rraid_s import RRaidSScheme


class RRaidAScheme(RRaidSScheme):
    """Replicated striping with adaptive (multi-RTT) reads.

    Placement and (uniform) writes are shared with RRAID-S; only the
    dispatch layer differs.
    """

    name = "rraid-a"
    spec = composition("rraid-a")
