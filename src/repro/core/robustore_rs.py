"""RobuSTore-RS: speculative access over Reed-Solomon groups (§5.2.1).

The ablation behind the dissertation's code choice: keep RobuSTore's
speculative layout and cancellation but swap the rateless LT code for
optimal Reed-Solomon.  GF(256) limits one RS word to 256 blocks, so the
data splits into groups of ``group`` originals, each independently
RS-coded at the configured redundancy; a read completes when *every*
group has any ``group`` of its coded blocks.

Two costs emerge, exactly as §5.2.1 argues:

* **decode CPU** — RS decoding is quadratic in the word length and cannot
  be peeled incrementally, so a decode tail of
  ``data_size / rs_decode_bandwidth(group)`` lands on the critical path
  (LT hides all but one block of decode behind I/O);
* **group skew** — completion needs the *slowest group* to fill, giving
  up part of the any-blocks flexibility of a single long rateless word.
"""

from __future__ import annotations

import numpy as np

from repro.core import layout as L
from repro.core.access import (
    AccessResult,
    finalize_read,
    serve_read_queues,
)
from repro.core.base import SchemeBase

#: Measured GF(256) RS decode bandwidth by word length on this class of
#: host (see Table 5-1 bench); interpolated linearly in 1/K.
RS_DECODE_MBPS = {4: 100.0, 8: 43.0, 16: 26.0, 32: 13.0, 64: 6.5, 128: 3.2}


def rs_decode_bandwidth_bps(group: int) -> float:
    """Approximate RS decode bandwidth for a given word length."""
    ks = sorted(RS_DECODE_MBPS)
    if group <= ks[0]:
        return RS_DECODE_MBPS[ks[0]] * (1 << 20)
    if group >= ks[-1]:
        # Quadratic cost: bandwidth ~ 1/K beyond the table.
        return RS_DECODE_MBPS[ks[-1]] * ks[-1] / group * (1 << 20)
    for lo, hi in zip(ks, ks[1:]):
        if lo <= group <= hi:
            f = (group - lo) / (hi - lo)
            return ((1 - f) * RS_DECODE_MBPS[lo] + f * RS_DECODE_MBPS[hi]) * (1 << 20)
    raise AssertionError("unreachable")


class GroupedRSTracker:
    """Complete when every RS group holds >= group_size distinct blocks."""

    def __init__(self, n_groups: int, group_size: int) -> None:
        self.group_size = group_size
        self._counts = np.zeros(n_groups, dtype=np.int64)
        self._filled = 0
        self._seen: set[int] = set()
        self.n_groups = n_groups

    def add(self, block_id: int) -> None:
        if block_id in self._seen:
            return
        self._seen.add(block_id)
        g = block_id >> 20  # group packed in the high bits
        if self._counts[g] < self.group_size:
            self._counts[g] += 1
            if self._counts[g] == self.group_size:
                self._filled += 1

    @property
    def complete(self) -> bool:
        return self._filled >= self.n_groups


class RobuStoreRSScheme(SchemeBase):
    """Speculative access over grouped Reed-Solomon words."""

    name = "robustore-rs"

    #: Originals per RS word (<= 128 keeps N <= 256 at 1x redundancy).
    GROUP = 32

    def _grouping(self):
        cfg = self.config
        group = min(self.GROUP, cfg.k)
        n_groups = -(-cfg.k // group)
        coded_per_group = max(
            group, int(round(group * (1.0 + cfg.redundancy)))
        )
        coded_per_group = min(coded_per_group, 256)
        return group, n_groups, coded_per_group

    def _placement(self, n_disks: int):
        """Interleave every group's coded blocks across all disks.

        Block id = (group << 20) | index-within-group.
        """
        group, n_groups, coded_per_group = self._grouping()
        ids = [
            (g << 20) | j for j in range(coded_per_group) for g in range(n_groups)
        ]
        placement = [[] for _ in range(n_disks)]
        for pos, bid in enumerate(ids):
            placement[pos % n_disks].append(bid)
        return placement

    def prepare(self, file_name: str, trial: int):
        disks = self.select_disks(trial)
        group, n_groups, coded_per_group = self._grouping()
        return self._register(
            file_name,
            disks,
            self._placement(len(disks)),
            coding={
                "algorithm": "reed-solomon",
                "group": group,
                "groups": n_groups,
                "coded_per_group": coded_per_group,
            },
        )

    def write(self, file_name: str, trial: int) -> AccessResult:
        """Uniform write of every group's coded blocks.

        RS cannot write speculatively (fixed rate, no rateless stream) and
        the parity of each word is only available after the group encodes
        — the encode time rides the critical path alongside the I/O.
        """
        from repro.core.access import simulate_uniform_write

        cfg = self.config
        disks = self.select_disks(trial)
        group, n_groups, coded_per_group = self._grouping()
        placement = self._placement(len(disks))
        t0 = self.open_latency()
        t_io, net = simulate_uniform_write(
            self.cluster,
            disks,
            placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "write"),
            file_name,
        )
        # Encode overlaps with transfer; only the residual beyond the I/O
        # time lands on the latency (encode ~ as slow as decode for RS).
        encode_s = cfg.data_bytes / rs_decode_bandwidth_bps(group)
        t_done = max(t_io, t0 + encode_s)
        self._register(
            file_name,
            disks,
            placement,
            coding={
                "algorithm": "reed-solomon",
                "group": group,
                "groups": n_groups,
                "coded_per_group": coded_per_group,
            },
        )
        total = sum(len(p) for p in placement)
        return AccessResult(
            latency_s=t_done + self.metadata.latency_s,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=total,
            blocks_received=total,
            extra={"encode_s": encode_s},
        )

    def read(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        record = self._record(file_name)
        group = record.coding["group"]
        n_groups = record.coding["groups"]
        t0 = self.open_latency()
        streams = serve_read_queues(
            self.cluster,
            record.disk_ids,
            record.placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "read"),
            file_name,
        )
        from repro.core.access import merged_arrival_order

        times, ids = merged_arrival_order(
            streams, cfg.block_bytes, cfg.client_bandwidth_bps
        )
        tracker = GroupedRSTracker(n_groups, group)
        fill_times: list[float] = []
        t_fill = float("inf")
        consumed = 0
        prev_filled = 0
        for t, bid in zip(times, ids):
            consumed += 1
            tracker.add(int(bid))
            if tracker._filled > prev_filled:
                fill_times.extend([float(t)] * (tracker._filled - prev_filled))
                prev_filled = tracker._filled
            if tracker.complete:
                t_fill = float(t)
                break

        # RS decoding pipelines *per group*: a group decodes once it fills,
        # one group at a time, at the quadratic-cost RS rate.  With fast
        # parallel disks every group fills almost together and the whole
        # decode serialises after t_fill; over a slow WAN the fills stagger
        # and decoding hides behind the transfers (Collins & Plank's
        # regime, §2.3).
        group_decode_s = group * cfg.block_bytes / rs_decode_bandwidth_bps(group)
        decoder_free = 0.0
        for ft in sorted(fill_times):
            decoder_free = max(decoder_free, ft) + group_decode_s
        t_done = decoder_free if fill_times and tracker.complete else float("inf")
        # The cancel goes out as soon as the groups fill — the client
        # decodes locally while the disks stand down.
        net, disk_blocks, hits = finalize_read(
            streams, self.cluster, t_fill, cfg.block_bytes, file_name
        )
        decode_tail = max(0.0, t_done - t_fill) if np.isfinite(t_done) else float("inf")
        return AccessResult(
            latency_s=t_done,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=disk_blocks,
            blocks_received=consumed,
            cache_hits=hits,
            extra={
                "decode_tail_s": decode_tail,
                "group": group,
                "arrival_order": [int(b) for b in ids[:consumed]],
            },
        )
