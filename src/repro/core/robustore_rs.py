"""RobuSTore-RS: speculative access over Reed-Solomon groups (§5.2.1).

The ablation behind the dissertation's code choice: keep RobuSTore's
speculative layout and cancellation but swap the rateless LT code for
optimal Reed-Solomon.  GF(256) limits one RS word to 256 blocks, so the
data splits into groups of ``group`` originals, each independently
RS-coded at the configured redundancy; a read completes when *every*
group has any ``group`` of its coded blocks.

Two costs emerge, exactly as §5.2.1 argues:

* **decode CPU** — RS decoding is quadratic in the word length and cannot
  be peeled incrementally, so a decode tail of
  ``data_size / rs_decode_bandwidth(group)`` lands on the critical path
  (LT hides all but one block of decode behind I/O);
* **group skew** — completion needs the *slowest group* to fill, giving
  up part of the any-blocks flexibility of a single long rateless word.

Composition: grouped-RS placement x speculative dispatch x grouped-RS
completion x encode-overlap write (see :mod:`repro.core.policy`); the
decode-bandwidth model lives in :mod:`repro.core.policy.placement`.
"""

from __future__ import annotations

from repro.core.pipeline import PolicyScheme
from repro.core.policy.compose import composition
from repro.core.policy.placement import (  # noqa: F401  (re-exports)
    RS_DECODE_MBPS,
    rs_decode_bandwidth_bps,
)
from repro.core.trackers import GroupedRSTracker  # noqa: F401  (re-export)


class RobuStoreRSScheme(PolicyScheme):
    """Speculative access over grouped Reed-Solomon words."""

    name = "robustore-rs"
    spec = composition("robustore-rs")

    #: Originals per RS word (<= 128 keeps N <= 256 at 1x redundancy).
    GROUP = 32

    def _grouping(self):
        """(group size, #groups, coded blocks per group) — kept for tests."""
        return self.spec.placement.grouping(self.config)
