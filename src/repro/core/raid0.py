"""RAID-0: plain-text striping, zero redundancy, parallel access (§6.2.1).

The baseline every figure compares against.  With no redundancy a read must
collect *every* block, so the access is gated by the slowest disk — exactly
the behaviour RobuSTore is designed to escape.
"""

from __future__ import annotations

from repro.core import layout as L
from repro.core.access import (
    AccessResult,
    AllBlocksTracker,
    completion_with_order,
    finalize_read,
    serve_read_queues,
    simulate_uniform_write,
    trace_read_access,
)
from repro.core.base import SchemeBase


class Raid0Scheme(SchemeBase):
    """Striping with no redundancy (ignores ``config.redundancy``)."""

    name = "raid0"

    def prepare(self, file_name: str, trial: int):
        disks = self.select_disks(trial)
        placement = L.striped(self.config.k, len(disks))
        return self._register(file_name, disks, placement, coding={"algorithm": "none"})

    def write(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        disks = self.select_disks(trial)
        placement = L.striped(cfg.k, len(disks))
        t0 = self.open_latency()
        t_done, net = simulate_uniform_write(
            self.cluster,
            disks,
            placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "write"),
            file_name,
        )
        self._register(file_name, disks, placement, coding={"algorithm": "none"})
        return AccessResult(
            latency_s=t_done + self.metadata.latency_s,  # commit to metadata
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=cfg.k,
            blocks_received=cfg.k,
        )

    def read(self, file_name: str, trial: int) -> AccessResult:
        cfg = self.config
        record = self._record(file_name)
        t0 = self.open_latency()
        streams = serve_read_queues(
            self.cluster,
            record.disk_ids,
            record.placement,
            cfg.block_bytes,
            t0,
            self.service_rng_factory(trial, "read"),
            file_name,
        )
        t_done, consumed, order = completion_with_order(
            streams, AllBlocksTracker(cfg.k), cfg.block_bytes, cfg.client_bandwidth_bps
        )
        net, disk_blocks, hits = finalize_read(
            streams, self.cluster, t_done, cfg.block_bytes, file_name
        )
        trace_read_access(
            self.tracer, self.name, trial, streams, t0, t_done, consumed,
            cfg.block_bytes, cfg.data_bytes,
        )
        return AccessResult(
            latency_s=t_done,
            data_bytes=cfg.data_bytes,
            network_bytes=net,
            disk_blocks=disk_blocks,
            blocks_received=consumed,
            cache_hits=hits,
            extra={"arrival_order": order},
        )
