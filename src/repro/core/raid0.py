"""RAID-0: plain-text striping, zero redundancy, parallel access (§6.2.1).

The baseline every figure compares against.  With no redundancy a read must
collect *every* block, so the access is gated by the slowest disk — exactly
the behaviour RobuSTore is designed to escape.

Composition: striped placement x speculative dispatch x all-blocks
completion x abort-on-loss (see :mod:`repro.core.policy`).
"""

from __future__ import annotations

from repro.core.pipeline import PolicyScheme
from repro.core.policy.compose import composition


class Raid0Scheme(PolicyScheme):
    """Striping with no redundancy (ignores ``config.redundancy``)."""

    name = "raid0"
    spec = composition("raid0")
