"""Scheme base class: wiring between cluster, metadata and access engine."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cluster.metadata import FileRecord, MetadataServer
from repro.cluster.server import Cluster
from repro.core.access import AccessConfig, AccessResult, open_latency_s
from repro.core.scheduler import AccessScheduler
from repro.sim.rng import RngHub


class SchemeBase:
    """Common machinery for the four storage schemes.

    Parameters
    ----------
    cluster:
        The storage cluster (servers, disks, caches, links).
    config:
        Access parameters (data size, block size, #disks, redundancy).
    hub:
        Deterministic RNG hub; every stochastic choice derives from it.
    metadata:
        Metadata server; a private one is created if omitted.
    """

    name = "base"

    def __init__(
        self,
        cluster: Cluster,
        config: AccessConfig,
        hub: RngHub | None = None,
        metadata: MetadataServer | None = None,
        selector: AccessScheduler | None = None,
    ) -> None:
        if config.n_disks > cluster.n_disks:
            raise ValueError(
                f"access wants {config.n_disks} disks, pool has {cluster.n_disks}"
            )
        self.cluster = cluster
        self.config = config
        self.hub = hub or RngHub(0)
        self.metadata = metadata or MetadataServer(tracer=cluster.tracer)
        self.selector = selector or AccessScheduler(cluster.n_disks)

    @property
    def tracer(self):
        """The cluster's tracer (the no-op tracer unless one is installed)."""
        return self.cluster.tracer

    # -- deterministic random streams ------------------------------------------
    def select_disks(self, trial: int) -> np.ndarray:
        """Pick this access's disks (random subset, random order)."""
        rng = self.hub.fresh("select", self.name, trial)
        return self.selector.select(self.config.n_disks, rng)

    def service_rng_factory(self, trial: int, phase: str) -> Callable[[int], np.random.Generator]:
        """Per-disk service random streams for one access phase.

        The returned factory also carries a ``phase_rng_for`` attribute: a
        sibling factory for the disk's background-phase draw (its own
        ``"bgphase"`` stream, so the phase draw no longer perturbs the
        service stream).  Callers probe it with ``getattr`` so hand-rolled
        factories in tests keep the legacy draw-from-service-stream path.
        """

        def rng_for(disk_id: int) -> np.random.Generator:
            return self.hub.fresh("svc", self.name, trial, phase, disk_id)

        def phase_rng_for(disk_id: int) -> np.random.Generator:
            return self.hub.fresh("bgphase", self.name, trial, phase, disk_id)

        rng_for.phase_rng_for = phase_rng_for
        return rng_for

    def reference_rng_factory(self, trial: int) -> Callable[[int], np.random.Generator]:
        """Per-disk service streams for the event-driven reference engine.

        A separate stream family (``"refsvc"``) from the closed form's
        ``"svc"``: the DES interleaves foreground and background draws per
        request, so sharing a stream would make the two engines perturb
        each other's draw order.  Keyed by (scheme, trial, disk) — the two
        engines stay independently reproducible.
        """

        def rng_for(disk_id: int) -> np.random.Generator:
            return self.hub.fresh("refsvc", self.name, trial, disk_id)

        return rng_for

    def open_latency(self) -> float:
        return open_latency_s(self.metadata)

    # -- interface implemented by each scheme --------------------------------------
    def prepare(self, file_name: str, trial: int) -> FileRecord:
        """Provision a file (balanced layout) without simulating the write.

        Used by the read-only experiments, which study fresh reads of data
        assumed already stored.
        """
        raise NotImplementedError

    def write(self, file_name: str, trial: int) -> AccessResult:
        """Simulate a write access; registers the resulting file record."""
        raise NotImplementedError

    def read(self, file_name: str, trial: int) -> AccessResult:
        """Simulate a read access of a prepared/written file."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------
    def _register(
        self,
        file_name: str,
        disk_ids: np.ndarray,
        placement: list[list[int]],
        coding: Optional[dict] = None,
        extra: Optional[dict] = None,
    ) -> FileRecord:
        record = FileRecord(
            name=file_name,
            size_bytes=self.config.data_bytes,
            scheme=self.name,
            coding=coding or {},
            disk_ids=[int(d) for d in disk_ids],
            placement=[list(map(int, p)) for p in placement],
            extra=extra or {},
        )
        self.metadata.commit(record)
        return record

    def _record(self, file_name: str) -> FileRecord:
        return self.metadata.lookup(file_name)
