"""Layout planning: mapping blocks onto disks (Fig 6-1).

* ``striped`` — RAID-0: block ``i`` on disk ``i mod H``, in-disk order by i.
* ``rotated_replicas`` — RRAID-S / RRAID-A: replica ``r`` of block ``i`` on
  disk ``(i + r) mod H``, stored grouped by replica then block.
* ``coded_balanced`` — RobuSTore balanced write: N coded blocks dealt
  round-robin across the disks.
* ``unbalanced`` — the per-disk counts a speculative write produced.

Placements are lists (one per disk, aligned with the access's disk list) of
block ids in the disk's stored order — the order a speculative read streams
them back in.
"""

from __future__ import annotations

import numpy as np

Placement = list[list[int]]


def striped(n_blocks: int, n_disks: int) -> Placement:
    """RAID-0 striping of ``n_blocks`` plain-text blocks."""
    if n_disks < 1:
        raise ValueError("need at least one disk")
    placement: Placement = [[] for _ in range(n_disks)]
    for i in range(n_blocks):
        placement[i % n_disks].append(i)
    return placement


def rotated_replicas(k: int, replicas: int, n_disks: int) -> Placement:
    """Replica ``r`` of block ``i`` on disk ``(i + r) mod H`` (§6.2.1).

    Coded-block id convention matches
    :class:`repro.coding.replication.ReplicationCode`: replica ``r`` of
    block ``i`` is id ``r * k + i``.
    """
    if n_disks < 1 or replicas < 1:
        raise ValueError("need at least one disk and one replica")
    placement: Placement = [[] for _ in range(n_disks)]
    for r in range(replicas):
        for i in range(k):
            placement[(i + r) % n_disks].append(r * k + i)
    return placement


def rotated_replicas_fractional(
    k: int, redundancy: float, n_disks: int
) -> Placement:
    """Rotated replication at *arbitrary* redundancy (§6.2.1).

    RRAID-S "allows arbitrary redundancy": D full replica rounds plus a
    partial round covering the first ``frac * k`` blocks, each round
    rotated one disk further.  ``redundancy`` is D = copies - 1, so 0.0
    means a single copy and 2.5 means three full copies plus half a round.
    """
    if redundancy < 0:
        raise ValueError("redundancy must be >= 0")
    full = int(redundancy) + 1
    partial_blocks = int(round((redundancy - int(redundancy)) * k))
    placement = rotated_replicas(k, full, n_disks)
    for i in range(partial_blocks):
        placement[(i + full) % n_disks].append(full * k + i)
    return placement


def coded_balanced(n_coded: int, n_disks: int) -> Placement:
    """Deal N erasure-coded blocks round-robin across the disks."""
    if n_disks < 1:
        raise ValueError("need at least one disk")
    placement: Placement = [[] for _ in range(n_disks)]
    for j in range(n_coded):
        placement[j % n_disks].append(j)
    return placement


def unbalanced(counts: list[int], n_coded: int | None = None) -> Placement:
    """Assign coded-block ids to disks given per-disk written counts.

    Used to replay a speculative write's (unbalanced) outcome for a later
    read: ids are dealt round-robin over disks that still have room, so
    each disk holds distinct ids and ids are globally unique.
    """
    total = sum(counts)
    if n_coded is not None and n_coded != total:
        raise ValueError(f"counts sum to {total}, expected {n_coded}")
    placement: Placement = [[] for _ in counts]
    remaining = list(counts)
    next_id = 0
    while any(remaining):
        for d, room in enumerate(remaining):
            if room > 0:
                placement[d].append(next_id)
                next_id += 1
                remaining[d] -= 1
    return placement


def placement_counts(placement: Placement) -> np.ndarray:
    """Blocks per disk."""
    return np.array([len(p) for p in placement], dtype=np.int64)


def imbalance(placement: Placement) -> float:
    """max/mean per-disk block count (1.0 = perfectly balanced)."""
    counts = placement_counts(placement)
    mean = counts.mean()
    return float(counts.max() / mean) if mean > 0 else 1.0
