"""Deterministic random-stream management.

Every stochastic component of the simulator (each drive's layout draw, each
background-workload generator, the LT graph construction, the access
scheduler's disk selection, ...) draws from its own named child stream of a
single root seed.  Runs are exactly reproducible and adding a new component
never perturbs the draws of existing ones.
"""

from __future__ import annotations

import struct

import numpy as np


def _fnv32(data: bytes, h: int = 2166136261) -> int:
    """FNV-1a fold of ``data`` into 32 bits (process-independent)."""
    for byte in data:
        h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
    return h


#: Process-wide memo of string -> FNV-1a fold (see :meth:`RngHub._derive`).
_STR_ENTROPY: dict[str, int] = {}


def _fold_parts(parts, h: int) -> int:
    """Fold ``parts`` (stable_seed's accepted types) into one 32-bit word."""
    for part in parts:
        if isinstance(part, bool):
            data = b"\x01" if part else b"\x00"
        elif isinstance(part, (int, np.integer)):
            data = (int(part) & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        elif isinstance(part, float):
            data = struct.pack("<d", part)
        else:
            data = str(part).encode()
        # Separate parts so ("ab",) and ("a", "b") fold differently.
        h = _fnv32(data, _fnv32(b"\x1f", h))
    return h


def stable_seed(*parts) -> int:
    """Fold ``parts`` into a stable 32-bit RNG seed.

    Unlike builtin ``hash`` — whose value for strings is salted per
    process by ``PYTHONHASHSEED`` and whose value for numbers depends on
    the platform word size — the result here depends only on ``parts``:
    the same key always produces the same seed, in every process, on
    every platform.  Use this (or an :class:`RngHub` stream) whenever a
    component needs to derive a seed from identifying data.
    """
    return _fold_parts(parts, 2166136261)


#: Lane bases for :func:`stable_digest` — four distinct FNV offsets so the
#: lanes are independent folds of the same part stream.
_DIGEST_LANES = (2166136261, 0x01000193, 0x9E3779B9, 0xDEADBEEF)


def stable_digest(*parts) -> str:
    """Fold ``parts`` into a stable 128-bit hex digest.

    The content-addressing big sibling of :func:`stable_seed`: four
    differently-based FNV-1a lanes over the same part encoding, rendered
    as 32 hex characters.  Like ``stable_seed`` the value depends only on
    ``parts`` — never on the process, platform or hash salt — so it is
    safe to use as an on-disk cache key (:mod:`repro.exec` keys its
    result store with it).
    """
    return "".join(f"{_fold_parts(parts, base):08x}" for base in _DIGEST_LANES)


#: Declared stream universe: every ``hub.stream(...)`` / ``hub.fresh(...)``
#: call site in the ``repro`` package must use one of these names as a
#: string literal, with a key of the declared total arity (name included)
#: — enforced whole-program by lint rule SIM011.  A typo'd name or a
#: drifted key shape would silently fork the RNG tree and perturb every
#: later draw; declaring the shape here makes that a lint error instead.
#:
#: Values are the allowed key arity — an int, or a tuple of ints where
#: one name is legitimately used at two granularities (``"env"`` is
#: drawn per-trial in serving/extension cells and per-(scheme, trial) in
#: the harness; renaming either would change every committed golden).
STREAMS = {
    "env": (2, 3),        #: disk-state redraw; (…, trial) / (…, scheme, trial)
    "env2": 3,            #: write-phase second redraw (harness)
    "faults": 3,          #: MTTF/MTTR fault-storm draws (harness)
    "select": 3,          #: scheme disk selection (core.base)
    "svc": (3, 5),        #: per-disk service draws (serve replay / core.base)
    "refsvc": 4,          #: event-engine per-disk service draws (core.base)
    "bgphase": 5,         #: background-stream initial phase draws (core.base)
    "cal-env": 3,         #: serving calibration environments
    "repair-extend": 3,   #: repair-time redundancy extension draws
    "rebuild": 2,         #: repair-economy storm sampling (ext_repair)
    "serve": 2,           #: workload generation + service facade
    "disk": 2,            #: per-disk layout draws (doctest/tests convention)
    "bg": 3,              #: background-workload generators
}


class RngHub:
    """Root of a tree of named, independent random generators.

    Parameters
    ----------
    seed:
        Root seed.  Equal seeds produce identical simulations.

    Example
    -------
    >>> hub = RngHub(7)
    >>> a = hub.stream("disk", 3)
    >>> b = hub.stream("disk", 4)
    >>> float(a.random()) != float(b.random())
    True
    >>> hub2 = RngHub(7)
    >>> float(hub2.stream("disk", 3).random()) == float(RngHub(7).stream("disk", 3).random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._cache: dict[tuple, np.random.Generator] = {}

    def stream(self, *key) -> np.random.Generator:
        """Return the generator for ``key`` (created on first use).

        ``key`` is any tuple of ints/strings identifying the component, e.g.
        ``hub.stream("bg", disk_id, trial)``.
        """
        key = tuple(key)
        gen = self._cache.get(key)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(self._derive(key)))
            self._cache[key] = gen
        return gen

    def fresh(self, *key) -> np.random.Generator:
        """Like :meth:`stream` but always returns a *new* generator.

        Useful when a component must be re-run from its initial state (e.g.
        repeating an access trial).
        """
        return np.random.Generator(np.random.PCG64(self._derive(key)))

    def _derive(self, key: tuple) -> np.random.SeedSequence:
        # Map arbitrary hashable keys onto stable integer entropy.  String
        # parts (stream names, scheme names, phases) recur on every call,
        # so their FNV folds are memoised process-wide.
        words = [self.seed]
        append = words.append
        for part in key:
            if isinstance(part, (int, np.integer)):
                append(int(part) & 0xFFFFFFFF)
            else:
                s = str(part)
                w = _STR_ENTROPY.get(s)
                if w is None:
                    w = _STR_ENTROPY[s] = _fnv32(s.encode())
                append(w)
        return np.random.SeedSequence(words)

    def spawn(self, *key) -> "RngHub":
        """Return a child hub whose streams are independent of this hub's.

        Derivation folds ``key`` into a fresh seed, so
        ``hub.spawn("worker", 3)`` is stable across runs and disjoint from
        both the parent's streams and other spawned hubs'.
        """
        seed_rng = np.random.Generator(np.random.PCG64(self._derive(("hub",) + key)))
        return RngHub(int(seed_rng.integers(2**31)))
