"""Event primitives for the simulation kernel.

Events hold a value, a list of callbacks and a tri-state life-cycle
(pending -> triggered -> processed).  A :class:`Process` wraps a generator
and is itself an event that fires when the generator returns, enabling
process composition (``yield env.process(child(env))``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment

PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    env:
        The owning environment.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = PENDING
        self._ok = True
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire with an exception."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the state of another (triggered) event onto this one."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._value is PENDING else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        # Negative/NaN/inf delays are rejected by ``Environment.schedule``
        # with a SimulationError naming the active process.
        env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=0)


class Interruption(Event):
    """Internal event delivering an :class:`~repro.sim.core.Interrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        from repro.sim.core import Interrupt

        super().__init__(process.env)
        if process.triggered:
            raise RuntimeError("cannot interrupt a terminated process")
        self.process = process
        self.callbacks = [self._interrupt]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.env.schedule(self, priority=0)

    def _interrupt(self, event: "Event") -> None:
        proc = self.process
        if proc.triggered:
            return  # process finished before the interrupt was delivered
        if proc._target is not None and proc._target.callbacks is not None:
            proc._target.callbacks.remove(proc._resume)
            proc._target = None
        proc._resume(self)


class Process(Event):
    """Wrap a generator; the event fires when the generator returns."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self, env: "Environment", generator: Generator, name: str | None = None
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        env = self.env
        if env._sanitize and self._value is not PENDING:
            from repro.sim.core import SimulationError

            raise SimulationError(
                f"sanitizer: process {self.name} resumed by {event!r} after "
                f"it already terminated (t={env.now})"
            )
        env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                exc = RuntimeError(f"process yielded a non-event: {next_event!r}")
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    env.schedule(self)
                    break
                except BaseException as err:
                    self._ok = False
                    self._value = err
                    env.schedule(self)
                    break
                continue

            if next_event.callbacks is not None:
                # Event still pending/triggered: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: loop immediately with its value.
            event = next_event

        env._active_proc = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} at {id(self):#x}>"


class Condition(Event):
    """Fires when ``evaluate(events, count)`` becomes true (AnyOf/AllOf)."""

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        if not self._events:
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        # Only events that have actually fired (their callbacks have run or
        # are running) contribute a value; a Timeout pre-sets its value at
        # construction, so checking ``_value`` alone would over-collect.
        return {e: e._value for e in self._events if e.callbacks is None}

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())


def AllOf(env: "Environment", events: Iterable[Event]) -> Condition:
    """Condition that fires once *all* of ``events`` have fired."""
    return Condition(env, lambda evts, count: count == len(evts), events)


def AnyOf(env: "Environment", events: Iterable[Event]) -> Condition:
    """Condition that fires once *any* of ``events`` has fired."""
    return Condition(env, lambda evts, count: count >= 1, events)
