"""The kernel's event calendar: an indexed, batch-friendly pending set.

The seed kernel kept its pending events as raw ``heapq`` 4-tuples
``(time, priority, eid, event)`` and had no way to remove one.  This
module factors the structure out behind a small API:

* **total order** — identical to the seed: time-major, then scheduling
  priority (URGENT before NORMAL), then insertion order.  The insertion
  counter is unique, so the event object itself is never compared and
  every pop sequence is bit-identical to the reference implementation
  (:mod:`repro.sim._calendar_ref` — kept importable exactly so the
  differential suite in ``tests/test_sim_calendar.py`` can prove this).
* **indexed** — :meth:`push` returns a handle; :meth:`cancel` removes
  the entry by tombstoning it in place (lazy deletion), O(1).
  Cancelled entries are discarded when they surface at the top.  Only
  cancellation touches the bookkeeping counter: the push→pop fast path
  — the entirety of a cancel-free simulation — maintains no counts at
  all, which is what lets the kernel inline it.
* **batch-friendly** — :meth:`push_batch` inserts many events in one
  call, switching from repeated sifts to a single ``heapify`` once the
  batch rivals the heap (the classic calendar-bulk-load trade-off).
  Because the ``(time, priority, eid)`` order is unique, the pop
  sequence is the same either way.

Entries are 4-slot lists ``[time, priority, eid, event]`` — the seed's
tuple layout made mutable so a cancel can null the event slot in place.
Two slimmer layouts were measured and rejected on CPython: packing
``(priority << 56) | eid`` into one key costs more per push (the
shift/or on every insert) than the saved tie-break comparison ever
returns (~12% slower end to end), and an immutable 3-tuple cannot be
tombstoned at all.  The structure also deliberately stays a binary heap
rather than a bucketed calendar queue: the simulator's timestamp
distribution is dominated by same-instant bursts (every disk of an
access acks within one RTT), the degenerate case bucket widths handle
worst.

:class:`repro.sim.core.Environment` inlines :meth:`push`/:meth:`pop`
over ``_heap`` for the stock calendar — any change to the entry layout
here must be mirrored there (the differential suite catches a mismatch).
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from itertools import count
from typing import Any, Iterable

__all__ = ["EventCalendar"]

#: Index of the event payload inside a calendar entry; ``None`` there
#: marks a tombstone.
_EVENT = 3


class EventCalendar:
    """Pending-event structure with the kernel's ``(time, priority, eid)``
    total order, O(1) lazy cancellation and bulk insertion.

    Entries are ``[time, priority, eid, event]`` lists; a cancelled entry
    has its event slot set to ``None`` and is skipped (and counted back
    out of ``_dead``) when it reaches the top.  Ties on time are broken
    by priority then by the unique insertion counter, so the event object
    is never compared.
    """

    __slots__ = ("_heap", "_eid", "_dead")

    def __init__(self) -> None:
        self._heap: list[list] = []
        #: C-level insertion counter shared with the kernel's inline path.
        self._eid = count()
        #: Tombstones still sitting in ``_heap``.
        self._dead = 0

    # -- inspection -----------------------------------------------------
    def __len__(self) -> int:
        """Number of live (non-cancelled) entries."""
        return len(self._heap) - self._dead

    def __bool__(self) -> bool:
        return len(self._heap) > self._dead

    def peek_time(self) -> float:
        """Time of the earliest live entry, or ``inf`` when empty.

        Tombstones that have reached the top are discarded on the way.
        """
        heap = self._heap
        while heap and heap[0][_EVENT] is None:
            heappop(heap)
            self._dead -= 1
        return heap[0][0] if heap else math.inf

    # -- scheduling -----------------------------------------------------
    def push(self, time: float, priority: int, event: Any) -> list:
        """Insert ``event``; return its handle (accepted by :meth:`cancel`)."""
        entry = [time, priority, next(self._eid), event]
        heappush(self._heap, entry)
        return entry

    def push_batch(self, items: Iterable[tuple[float, int, Any]]) -> list[list]:
        """Insert many ``(time, priority, event)`` at once; return handles.

        Falls back to repeated sifts for small batches; rebuilds the heap
        in one ``heapify`` when the batch is at least half the heap, which
        is O(n + m) instead of O(m log n).  Pop order is unaffected.
        """
        eid = self._eid
        entries = [
            [time, priority, next(eid), event] for time, priority, event in items
        ]
        heap = self._heap
        if len(entries) * 2 >= len(heap):
            heap.extend(entries)
            heapify(heap)
        else:
            for entry in entries:
                heappush(heap, entry)
        return entries

    # -- consumption ----------------------------------------------------
    def pop(self) -> tuple[float, int, int, Any]:
        """Remove and return the earliest live entry as
        ``(time, priority, eid, event)``.

        Raises
        ------
        IndexError
            When no live entries remain.
        """
        heap = self._heap
        while heap:
            entry = heappop(heap)
            event = entry[_EVENT]
            if event is None:
                self._dead -= 1
                continue
            # Null the slot so a stale handle passed to cancel() later is
            # recognised as dead instead of corrupting the count.
            entry[_EVENT] = None
            return entry[0], entry[1], entry[2], event
        raise IndexError("pop from an empty calendar")

    # -- cancellation ---------------------------------------------------
    def cancel(self, handle: list) -> bool:
        """Remove the entry behind ``handle`` (a :meth:`push` return value).

        Returns ``True`` if the entry was live, ``False`` if it was
        already popped or cancelled.  The slot is tombstoned in place and
        reclaimed lazily — no sift, no search.
        """
        if type(handle) is not list or len(handle) != 4:
            raise ValueError(f"not a calendar handle: {handle!r}")
        if handle[_EVENT] is None:
            return False
        handle[_EVENT] = None
        self._dead += 1
        return True
