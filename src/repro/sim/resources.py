"""Shared-resource primitives: counted resources, priority resources, stores.

These model contention points in the storage cluster — e.g. a drive's command
slot, a filer's service capacity, or an admission controller's token pool.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Any

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw the request / release the slot if already granted."""
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.cancel()


class PriorityRequest(Request):
    """A request carrying a priority (smaller = more urgent) and FIFO key."""

    __slots__ = ("priority", "time", "key")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self.time = resource.env.now
        self.key = (priority, self.time, next(resource._seq))
        super().__init__(resource)


class Resource:
    """A counted resource with ``capacity`` slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def _do_request(self, req: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(None)
        else:
            self.queue.append(req)

    def release(self, req: Request) -> None:
        """Free a granted slot (or drop a still-queued request)."""
        if req in self.users:
            self.users.remove(req)
            self._grant_next()
        elif req in self.queue:
            self.queue.remove(req)

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.pop(0)
            self.users.append(nxt)
            nxt.succeed(None)


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._seq = count()
        self._heap: list[tuple[Any, PriorityRequest]] = []

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, req: Request) -> None:
        assert isinstance(req, PriorityRequest)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(None)
        else:
            heapq.heappush(self._heap, (req.key, req))

    def release(self, req: Request) -> None:
        if req in self.users:
            self.users.remove(req)
            self._grant_next()
        else:
            self._heap = [(k, r) for (k, r) in self._heap if r is not req]
            heapq.heapify(self._heap)

    def _grant_next(self) -> None:
        while self._heap and len(self.users) < self.capacity:
            _, nxt = heapq.heappop(self._heap)
            self.users.append(nxt)
            nxt.succeed(None)


class StoreGet(Event):
    __slots__ = ()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, env: "Environment", item: Any) -> None:
        super().__init__(env)
        self.item = item


class Store:
    """An unbounded-or-bounded FIFO buffer of Python objects.

    Used for message queues between simulated entities (e.g. requests flowing
    from client to filer to drive).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[StoreGet] = []
        self._putters: list[StorePut] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Deposit ``item``; the returned event fires once it is accepted."""
        ev = StorePut(self.env, item)
        if len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed(None)
            self._serve_getters()
        else:
            self._putters.append(ev)
        return ev

    def get(self) -> StoreGet:
        """Take the oldest item; the event fires with the item as value."""
        ev = StoreGet(self.env)
        if self.items:
            ev.succeed(self.items.pop(0))
            self._serve_putters()
        else:
            self._getters.append(ev)
        return ev

    def cancel_get(self, ev: StoreGet) -> None:
        """Withdraw a pending get (used on request cancellation)."""
        if ev in self._getters:
            self._getters.remove(ev)

    def filter_items(self, keep) -> list[Any]:
        """Remove and return items for which ``keep(item)`` is false."""
        removed = [it for it in self.items if not keep(it)]
        self.items = [it for it in self.items if keep(it)]
        return removed

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.pop(0)
            getter.succeed(self.items.pop(0))

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.pop(0)
            self.items.append(putter.item)
            putter.succeed(None)
            self._serve_getters()
