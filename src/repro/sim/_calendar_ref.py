"""Reference event calendar: the seed kernel's raw-heapq implementation.

This module preserves, verbatim in structure, the pending-event store the
simulator shipped with before :class:`repro.sim.calendar.EventCalendar`
replaced it: a ``heapq`` of ``(time, priority, eid, event)`` 4-tuples with
an :func:`itertools.count` event id.  It exists solely as the *oracle*
for the differential suite in ``tests/test_sim_calendar.py`` — hypothesis
drives identical schedule/cancel/pop interleavings through both
implementations and asserts the pop sequences match element-for-element.

Cancellation (which the seed heap had no operation for) is modelled the
only way a raw heap can: a set of cancelled eids checked on pop.  That is
the semantics ``EventCalendar`` must reproduce with its in-place
tombstones.

Do not use this in production paths; it is intentionally the slow,
obviously-correct implementation.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from itertools import count
from typing import Any, Iterable

__all__ = ["ReferenceCalendar"]


class ReferenceCalendar:
    """Seed-faithful pending-event store with the ``EventCalendar`` API.

    The heap entries and tie-breaking are exactly the seed kernel's:
    4-tuples ordered by ``(time, priority, eid)`` where ``eid`` is a
    monotonically increasing insertion counter.
    """

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, int, Any]] = []
        self._eid = count()
        self._cancelled: set[int] = set()

    # -- inspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def peek_time(self) -> float:
        queue = self._queue
        while queue and queue[0][2] in self._cancelled:
            self._cancelled.discard(heappop(queue)[2])
        return queue[0][0] if queue else math.inf

    # -- scheduling -----------------------------------------------------
    def push(self, time: float, priority: int, event: Any) -> tuple:
        entry = (time, priority, next(self._eid), event)
        heappush(self._queue, entry)
        return entry

    def push_batch(self, items: Iterable[tuple[float, int, Any]]) -> list[tuple]:
        return [self.push(time, priority, event) for time, priority, event in items]

    # -- consumption ----------------------------------------------------
    def pop(self) -> tuple[float, int, int, Any]:
        queue = self._queue
        while queue:
            entry = heappop(queue)
            if entry[2] in self._cancelled:
                self._cancelled.discard(entry[2])
                continue
            return entry
        raise IndexError("pop from an empty calendar")

    # -- cancellation ---------------------------------------------------
    def cancel(self, handle: tuple) -> bool:
        # O(n) scan — this is the slow oracle, not a production path.
        eid = handle[2]
        if eid in self._cancelled:
            return False
        for entry in self._queue:
            if entry[2] == eid:
                self._cancelled.add(eid)
                return True
        return False
