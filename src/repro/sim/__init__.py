"""Discrete-event simulation kernel.

A compact, generator-based DES in the style of SimPy, purpose-built for the
RobuSTore simulator but fully generic.  Processes are Python generators that
``yield`` :class:`~repro.sim.events.Event` objects; the
:class:`~repro.sim.core.Environment` advances virtual time and resumes
processes when the events they wait on fire.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield env.timeout(5)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[5.0]
"""

from repro.sim.calendar import EventCalendar
from repro.sim.core import Environment, Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout
from repro.sim.resources import PriorityResource, Resource, Store
from repro.sim.rng import RngHub

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "EventCalendar",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "RngHub",
    "SimulationError",
    "Store",
    "Timeout",
]
