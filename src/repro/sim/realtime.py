"""Wall-clock-paced simulation (§6.2.2).

The dissertation's virtual disks carry "a timer to help keep
synchronization with other simulation processes ... If the real clock is
slower, the timer stops the simulation for a certain time before
dismissing the new event and resuming the simulation."
:class:`ThrottledEnvironment` provides that pacing for the whole kernel:
virtual time advances no faster than ``speedup`` times the wall clock, so
a simulation can be co-run with real external components (or simply
watched live).  ``speedup=inf`` degenerates to the normal as-fast-as-
possible environment.
"""

from __future__ import annotations

import time

from repro.sim.core import Environment


class ThrottledEnvironment(Environment):
    """An environment whose clock is paced against real time.

    Parameters
    ----------
    speedup:
        Virtual seconds allowed per wall-clock second.  ``1.0`` is
        real-time; ``10.0`` runs ten times faster than reality; ``inf``
        disables pacing.
    max_sleep_s:
        Upper bound on any single pacing sleep (keeps the loop responsive
        to very long virtual gaps).
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        speedup: float = 1.0,
        max_sleep_s: float = 0.25,
        sleep=time.sleep,
        clock=time.perf_counter,
        tracer=None,
        sanitize=None,
    ) -> None:
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        super().__init__(initial_time, tracer=tracer, sanitize=sanitize)
        self.speedup = speedup
        self.max_sleep_s = max_sleep_s
        self._sleep = sleep
        self._clock = clock
        self._wall_start: float | None = None
        self._sim_start = initial_time
        self.total_slept_s = 0.0

    def step(self) -> None:
        if self.speedup != float("inf") and self._calendar:
            if self._wall_start is None:
                self._wall_start = self._clock()
            next_t = self.peek()
            # Wall time at which the next event is *due*.
            due = self._wall_start + (next_t - self._sim_start) / self.speedup
            while True:
                lag = due - self._clock()
                if lag <= 0:
                    break
                chunk = min(lag, self.max_sleep_s)
                self._sleep(chunk)
                self.total_slept_s += chunk
        super().step()

    def behind_by_s(self) -> float:
        """How far virtual time lags its wall-clock schedule (>=0 if the
        simulation is too slow to keep up at the requested speedup)."""
        if self._wall_start is None:
            return 0.0
        expected = self._sim_start + (self._clock() - self._wall_start) * self.speedup
        return max(0.0, expected - self.now)
