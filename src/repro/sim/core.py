"""Simulation environment: the event loop and virtual clock."""

from __future__ import annotations

import math
import os
from heapq import heappop, heappush
from typing import Any, Generator, Optional

from repro.obs.tracer import NULL_TRACER
from repro.sim.calendar import EventCalendar
from repro.sim.events import PENDING, AllOf, AnyOf, Event, Process, Timeout

# Scheduling priorities: URGENT events (process initialisation, interrupts)
# run before NORMAL events scheduled at the same instant.
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.events.Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0]


class StopSimulation(Exception):
    """Internal: raised to end :meth:`Environment.run` at an *until* event."""


class EmptySchedule(Exception):
    """Internal: raised when the event queue runs dry."""


class Environment:
    """A discrete-event simulation environment.

    Maintains the virtual clock and the pending-event heap.  All entities of
    the RobuSTore simulator (clients, filers, drives, workload generators)
    share one environment.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock (seconds by convention).
    tracer:
        Optional :class:`repro.obs.Tracer`; the kernel emits process
        lifecycle spans and event-dispatch instants through it.  Defaults
        to the no-op tracer.
    sanitize:
        Enable the DES causality sanitizer: every ``schedule``/``step``
        additionally checks for double-scheduling, scheduling onto an
        already-processed event, time running backwards, and (in
        :class:`repro.sim.events.Process`) resuming a terminated
        process.  Violations raise :class:`SimulationError` naming the
        active process and the timeline position.  ``None`` (default)
        reads the ``REPRO_SANITIZE`` environment variable.
    calendar:
        Pending-event structure.  Defaults to a fresh
        :class:`repro.sim.calendar.EventCalendar`; any object with the
        same ``push``/``pop``/``peek_time`` protocol is accepted (the
        differential tests inject
        :class:`repro.sim._calendar_ref.ReferenceCalendar` here to prove
        the kernel's dispatch order is implementation-independent).
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        tracer=None,
        sanitize: Optional[bool] = None,
        calendar=None,
    ) -> None:
        self._now = float(initial_time)
        self._calendar = calendar if calendar is not None else EventCalendar()
        # Inline fast path: with the stock calendar the kernel pushes and
        # pops on its heap directly, saving a Python call per event.  Any
        # other calendar (e.g. the differential-test reference) goes
        # through the push/pop protocol.
        if type(self._calendar) is EventCalendar:
            self._heap = self._calendar._heap
            self._eid = self._calendar._eid
        else:
            self._heap = None
            self._eid = None
        self._active_proc: Optional[Process] = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
                "1",
                "true",
                "yes",
                "on",
            )
        self._sanitize = bool(sanitize)
        # id()s of events currently sitting in the queue (sanitizer only).
        # Events in the queue are referenced by it, so ids stay unique
        # for exactly as long as they are tracked here.
        self._inflight: Optional[set[int]] = set() if self._sanitize else None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def sanitize(self) -> bool:
        """True when the DES causality sanitizer is active."""
        return self._sanitize

    def _context(self) -> str:
        """Diagnostic suffix: the active process and timeline position."""
        proc = self._active_proc.name if self._active_proc is not None else "<none>"
        return f" (active process={proc}, t={self._now})"

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Register ``generator`` as a new simulation process."""
        proc = Process(self, generator, name=name)
        tracer = self.tracer
        if tracer.enabled:
            t_start = self._now
            tracer.instant(
                f"sim.process.start:{proc.name}", "sim", t_start, track="kernel"
            )
            tracer.count("sim.processes_started")

            def _trace_finish(event: Event, _t0: float = t_start, _name: str = proc.name):
                tracer.span(f"sim.process:{_name}", "sim", _t0, self._now, track="kernel")

            proc.callbacks.append(_trace_finish)
        return proc

    def all_of(self, events) -> Event:
        return AllOf(self, events)

    def any_of(self, events) -> Event:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue a triggered ``event`` to be processed ``delay`` from now.

        Raises
        ------
        SimulationError
            If ``delay`` is negative, NaN or infinite — such delays would
            silently corrupt the event-heap ordering, so they are rejected
            even when the sanitizer is off.
        """
        if not 0.0 <= delay < math.inf:  # rejects negative, NaN and inf
            raise SimulationError(
                f"cannot schedule {event!r} with delay {delay!r}: delays "
                f"must be finite and non-negative{self._context()}"
            )
        if self._inflight is not None:
            self._sanitize_schedule(event)
        heap = self._heap
        if heap is not None:
            # Inline EventCalendar.push — see the layout note in
            # repro.sim.calendar.
            heappush(heap, [self._now + delay, priority, next(self._eid), event])
        else:
            self._calendar.push(self._now + delay, priority, event)
        if self._inflight is not None:
            self._inflight.add(id(event))

    def _sanitize_schedule(self, event: Event) -> None:
        if event.callbacks is None:
            raise SimulationError(
                f"sanitizer: scheduling already-processed event {event!r}; "
                f"its callbacks have run and will not run again{self._context()}"
            )
        if id(event) in self._inflight:
            raise SimulationError(
                f"sanitizer: {event!r} is already scheduled; double-scheduling "
                f"would dispatch its callbacks twice{self._context()}"
            )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._calendar.peek_time()

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        heap = self._heap
        if heap is not None:
            # Inline EventCalendar.pop: drop tombstoned entries, take the
            # first live one.
            while True:
                if not heap:
                    raise EmptySchedule()
                entry = heappop(heap)
                event = entry[3]
                if event is not None:
                    break
                self._calendar._dead -= 1
            entry[3] = None
            t = entry[0]
        else:
            try:
                t, _, _, event = self._calendar.pop()
            except IndexError:
                raise EmptySchedule() from None
        if self._inflight is not None:
            self._inflight.discard(id(event))
            if t < self._now:
                raise SimulationError(
                    f"sanitizer: causality violation — {event!r} due at t={t} "
                    f"popped after the clock reached t={self._now}"
                )
        self._now = t

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} was scheduled twice")
        if self.tracer.enabled:
            self.tracer.count("sim.events_dispatched")
            self.tracer.instant(
                f"sim.dispatch:{type(event).__name__}", "sim", self._now, track="kernel"
            )
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure propagates out of the simulation.
            if isinstance(event._value, BaseException):
                raise event._value
            raise SimulationError(f"event failed with non-exception {event._value!r}")

    def run(self, until: Event | float | int | None = None) -> Any:
        """Run until the queue is empty, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run to exhaustion; a number — run until the clock
            reaches that time; an :class:`Event` — run until it fires and
            return its value.
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
                if until_event.callbacks is None:  # already processed
                    return until_event._value
                until_event.callbacks.append(_stop_simulate)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until ({at}) must not be before now ({self._now})")
                until_event = Event(self)
                until_event._ok = True
                until_event._value = None
                # Urgent so that events *at* the stop time do not run.
                self.schedule(until_event, URGENT, at - self._now)
                until_event.callbacks.append(_stop_simulate)

        try:
            while True:
                self.step()
        except StopSimulation:
            assert until_event is not None
            if not until_event._ok and isinstance(until_event._value, BaseException):
                raise until_event._value
            return until_event._value
        except EmptySchedule:
            if until_event is not None and until_event._value is PENDING:
                raise SimulationError(
                    "ran out of events before the 'until' event fired"
                ) from None
            return None


def _stop_simulate(event: Event) -> None:
    raise StopSimulation()
