"""Aggregated view of a trace: per-stage time, histograms, byte accounting.

Build a :class:`TraceReport` straight from a live :class:`~repro.obs.Tracer`
or from an exported Chrome trace file::

    python -m repro.obs.report out.json

The byte accounting reconciles with the endpoint metrics: for a read run,
``consumed + cancelled == network`` and ``(network - data) / data`` equals
the mean-free ``io_overhead`` aggregate of the same trials.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Mapping


def _histogram(values) -> dict[int, int]:
    """Integer-bucket histogram of counter sample values."""
    return dict(sorted(Counter(int(v) for v in values).items()))


@dataclass
class TraceReport:
    """Everything the trace says, reduced to aggregates.

    Attributes
    ----------
    stage_time:
        Category -> total span-seconds (how much simulated time each layer
        accounts for, summed over overlapping spans).
    name_time:
        Span name -> (total seconds, count).
    counters:
        Monotonic aggregate counters (cancellations, cache hits, ...).
    bytes:
        The byte-flow ledger: ``network``, ``consumed``, ``data``.
    queue_depth_hist / inflight_hist:
        Histograms of the sampled queue-depth / in-flight counters.
    job_spans:
        ``(name, start_s, dur_s)`` per execution-engine job span
        (category ``exec``) in timeline order — where each scheduled
        ``(plan, scheme)`` cell sits on the global DES timeline.
    """

    stage_time: dict[str, float] = field(default_factory=dict)
    stage_spans: dict[str, int] = field(default_factory=dict)
    name_time: dict[str, tuple[float, int]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    bytes: dict[str, int] = field(default_factory=dict)
    queue_depth_hist: dict[int, int] = field(default_factory=dict)
    inflight_hist: dict[int, int] = field(default_factory=dict)
    job_spans: list[tuple[str, float, float]] = field(default_factory=list)
    n_instants: int = 0
    span_end_s: float = 0.0

    # -- byte accounting -------------------------------------------------------
    @property
    def network_bytes(self) -> int:
        """Bytes that crossed a client link (payloads sent by filers)."""
        return int(self.bytes.get("network", 0))

    @property
    def consumed_bytes(self) -> int:
        """Bytes the client actually consumed to complete its accesses."""
        return int(self.bytes.get("consumed", 0))

    @property
    def data_bytes(self) -> int:
        """Original data bytes the accesses asked for."""
        return int(self.bytes.get("data", 0))

    @property
    def cancelled_bytes(self) -> int:
        """Bytes transferred but never needed: sent blocks the client had
        cancelled or no longer wanted when they arrived."""
        return self.network_bytes - self.consumed_bytes

    @property
    def io_overhead(self) -> float:
        """(network - data) / data — must reconcile with the endpoint
        :attr:`repro.core.access.AccessResult.io_overhead` figures."""
        if not self.data_bytes:
            return 0.0
        return (self.network_bytes - self.data_bytes) / self.data_bytes

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer) -> "TraceReport":
        rep = cls(counters=dict(tracer.counters), bytes=dict(tracer.bytes_ledger))
        stage_t: dict[str, float] = defaultdict(float)
        stage_n: dict[str, int] = defaultdict(int)
        name_t: dict[str, list] = defaultdict(lambda: [0.0, 0])
        for s in tracer.spans:
            stage_t[s.cat] += s.dur
            stage_n[s.cat] += 1
            acc = name_t[s.name]
            acc[0] += s.dur
            acc[1] += 1
            rep.span_end_s = max(rep.span_end_s, s.end)
            if s.cat == "exec":
                rep.job_spans.append((s.name, s.ts, s.dur))
        rep.stage_time = dict(stage_t)
        rep.stage_spans = dict(stage_n)
        rep.name_time = {k: (v[0], v[1]) for k, v in name_t.items()}
        rep.n_instants = len(tracer.instants)
        depth, inflight = [], []
        for c in tracer.counter_samples:
            if "queue_depth" in c.name:
                depth.append(c.value)
            elif "inflight" in c.name:
                inflight.append(c.value)
        rep.queue_depth_hist = _histogram(depth)
        rep.inflight_hist = _histogram(inflight)
        return rep

    @classmethod
    def from_chrome(cls, trace: Mapping) -> "TraceReport":
        """Rebuild the report from an exported Chrome trace object."""
        rep = cls()
        stage_t: dict[str, float] = defaultdict(float)
        stage_n: dict[str, int] = defaultdict(int)
        name_t: dict[str, list] = defaultdict(lambda: [0.0, 0])
        depth, inflight = [], []
        for ev in trace.get("traceEvents", []):
            ph = ev.get("ph")
            if ph == "M":
                if ev.get("name") == "obs_totals":
                    args = ev.get("args", {})
                    rep.counters = dict(args.get("counters", {}))
                    rep.bytes = {k: int(v) for k, v in args.get("bytes", {}).items()}
            elif ph == "X":
                dur = float(ev.get("dur", 0.0)) / 1e6
                cat = ev.get("cat", "")
                stage_t[cat] += dur
                stage_n[cat] += 1
                acc = name_t[ev["name"]]
                acc[0] += dur
                acc[1] += 1
                start = float(ev["ts"]) / 1e6
                rep.span_end_s = max(rep.span_end_s, start + dur)
                if cat == "exec":
                    rep.job_spans.append((ev["name"], start, dur))
            elif ph == "i":
                rep.n_instants += 1
            elif ph == "C":
                value = ev.get("args", {}).get("value", 0.0)
                if "queue_depth" in ev["name"]:
                    depth.append(value)
                elif "inflight" in ev["name"]:
                    inflight.append(value)
        rep.stage_time = dict(stage_t)
        rep.stage_spans = dict(stage_n)
        rep.name_time = {k: (v[0], v[1]) for k, v in name_t.items()}
        rep.queue_depth_hist = _histogram(depth)
        rep.inflight_hist = _histogram(inflight)
        rep.job_spans.sort(key=lambda js: js[1])
        return rep

    # -- rendering -------------------------------------------------------------
    def render(self) -> str:
        """Human-readable multi-section summary."""
        lines = ["trace report", "============"]
        lines.append(f"timeline end: {self.span_end_s:.3f} s simulated")

        if self.stage_time:
            lines += ["", "per-stage time (span-seconds, overlapping):"]
            width = max(len(k) for k in self.stage_time)
            for cat in sorted(self.stage_time, key=self.stage_time.get, reverse=True):
                lines.append(
                    f"  {cat:<{width}}  {self.stage_time[cat]:12.3f} s"
                    f"  ({self.stage_spans[cat]} spans)"
                )

        if self.job_spans:
            lines += ["", "exec jobs (global timeline):"]
            width = max(len(name) for name, _s, _d in self.job_spans)
            for name, start, dur in self.job_spans:
                lines.append(
                    f"  {name:<{width}}  [{start:10.3f} .. {start + dur:10.3f}] s"
                    f"  ({dur:.3f} s)"
                )

        if self.name_time:
            lines += ["", "top spans by total time:"]
            top = sorted(self.name_time.items(), key=lambda kv: -kv[1][0])[:12]
            width = max(len(k) for k, _ in top)
            for name, (total, n) in top:
                lines.append(f"  {name:<{width}}  {total:12.3f} s  x{n}")

        if self.bytes:
            lines += ["", "byte accounting:"]
            for k in sorted(self.bytes):
                lines.append(f"  {k:<12} {self.bytes[k]:>16,d} B")
            lines.append(f"  {'cancelled':<12} {self.cancelled_bytes:>16,d} B")
            lines.append(f"  io_overhead  {self.io_overhead:16.3f}")

        for title, hist in (
            ("queue depth", self.queue_depth_hist),
            ("in-flight", self.inflight_hist),
        ):
            if hist:
                peak = max(hist.values())
                lines += ["", f"{title} histogram:"]
                for bucket in sorted(hist):
                    bar = "#" * max(1, round(30 * hist[bucket] / peak))
                    lines.append(f"  {bucket:>6} | {bar} {hist[bucket]}")

        if self.counters:
            lines += ["", "counters:"]
            width = max(len(k) for k in self.counters)
            for k in sorted(self.counters):
                lines.append(f"  {k:<{width}}  {self.counters[k]:,.0f}")
        return "\n".join(lines)


def load_trace(path: str) -> TraceReport:
    """Read a Chrome trace file and aggregate it."""
    with open(path) as fh:
        return TraceReport.from_chrome(json.load(fh))


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs.report",
        description="Pretty-print the aggregate report of a captured trace.",
    )
    parser.add_argument("trace", help="Chrome trace-event JSON file (--trace output)")
    args = parser.parse_args(argv)
    try:
        report = load_trace(args.trace)
    except OSError as exc:
        parser.error(f"cannot read trace: {exc}")
    except json.JSONDecodeError as exc:
        parser.error(f"{args.trace} is not valid trace JSON: {exc}")
    print(report.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
