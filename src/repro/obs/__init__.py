"""``repro.obs`` — event tracing and instrumentation for the simulator.

A :class:`Tracer` collects spans, point events, counter samples and
aggregate counters keyed on *simulated* time from every layer of the
simulator (DES kernel, drive model, filers, schemes).  The default
:data:`NULL_TRACER` is a no-op whose methods cost one attribute check on
the hot paths, so instrumentation is free when tracing is off.

Capture a trace from the CLI::

    python -m repro.experiments fig6_06 --trace out.json

and load ``out.json`` in ``chrome://tracing`` / Perfetto, or pretty-print
the aggregate report::

    python -m repro.obs.report out.json

See ``docs/observability.md`` for the full tour.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    CounterSample,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Tracer,
    current_tracer,
    use_tracer,
)

_REPORT_EXPORTS = ("TraceReport", "load_trace")


def __getattr__(name):
    # Lazy so `python -m repro.obs.report` doesn't re-import its own
    # module through the package (runpy would warn).
    if name in _REPORT_EXPORTS:
        from repro.obs import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "InstantRecord",
    "CounterSample",
    "current_tracer",
    "use_tracer",
    "TraceReport",
    "load_trace",
]
