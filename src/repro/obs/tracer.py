"""Tracer core: spans, point events and counters on the simulated clock.

All timestamps are *simulated seconds*.  A tracer carries an ``offset``
that is added to every recorded time, which the experiment harness uses to
lay successive trials (and successive scheme runs) out on one global
timeline instead of piling every access at t = 0.

Export is Chrome ``trace_event`` JSON (the array-of-events form inside a
``traceEvents`` object), loadable in ``chrome://tracing`` and Perfetto.
Times are converted to microseconds on export, as the format requires.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

#: Chrome trace_event process id used for every event we emit.
TRACE_PID = 1


@dataclass(frozen=True)
class SpanRecord:
    """A closed interval of simulated time attributed to one stage."""

    name: str
    cat: str
    ts: float  # start, simulated seconds (offset already applied)
    dur: float  # duration, simulated seconds
    track: str
    args: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur


@dataclass(frozen=True)
class InstantRecord:
    """A point event."""

    name: str
    cat: str
    ts: float
    track: str
    args: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """One timed sample of a named quantity (queue depth, in-flight, ...)."""

    name: str
    ts: float
    value: float
    track: str


class NullTracer:
    """No-op tracer: the default everywhere, so hot paths cost ~nothing.

    Keeps exact API parity with :class:`Tracer` (enforced by a test); every
    recording method is a no-op and every query returns an empty result.
    ``enabled`` is False so instrumentation sites can skip argument
    construction entirely with ``if tracer.enabled:``.
    """

    enabled = False
    detail = False
    offset = 0.0

    def span(self, name, cat, start, end, track=None, args=None) -> None:
        pass

    def begin(self, name, cat, t, track=None, args=None) -> None:
        pass

    def end(self, t, track=None) -> None:
        pass

    def instant(self, name, cat, t, track=None, args=None) -> None:
        pass

    def counter(self, name, t, value, track=None) -> None:
        pass

    def count(self, name, delta=1) -> None:
        pass

    def account_bytes(self, kind, nbytes) -> None:
        pass

    @property
    def spans(self) -> list:
        return []

    @property
    def instants(self) -> list:
        return []

    @property
    def counter_samples(self) -> list:
        return []

    @property
    def counters(self) -> dict:
        return {}

    @property
    def bytes_ledger(self) -> dict:
        return {}

    def categories(self) -> set:
        return set()

    def to_chrome(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> None:
        pass


#: Shared default instance — instrumented components hold a reference to
#: this when no real tracer is installed.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects the event stream of a simulation run.

    Parameters
    ----------
    detail:
        When True, instrumentation sites additionally emit per-block
        events (one span per served block instead of one per disk queue).
        Off by default — paper-scale runs move hundreds of thousands of
        blocks.
    """

    enabled = True

    def __init__(self, detail: bool = False) -> None:
        self.detail = bool(detail)
        #: Added to every recorded timestamp (global-timeline placement).
        self.offset = 0.0
        self._spans: list[SpanRecord] = []
        self._instants: list[InstantRecord] = []
        self._samples: list[CounterSample] = []
        self._counters: dict[str, float] = {}
        self._bytes: dict[str, int] = {}
        # Open begin()/end() frames, one stack per track.
        self._open: dict[str, list[tuple[str, str, float, Optional[dict]]]] = {}

    # -- recording -----------------------------------------------------------
    def span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        track: str | None = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a complete span ``[start, end]`` (simulated seconds)."""
        off = self.offset
        self._spans.append(
            SpanRecord(
                name, cat, off + start, max(0.0, end - start), track or cat, args or {}
            )
        )

    def begin(
        self,
        name: str,
        cat: str,
        t: float,
        track: str | None = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Open a nested span on ``track``; close it with :meth:`end`."""
        track = track or cat
        self._open.setdefault(track, []).append(
            (name, cat, self.offset + t, dict(args) if args else None)
        )

    def end(self, t: float, track: str | None = None) -> None:
        """Close the innermost open span on ``track`` at time ``t``."""
        if track is not None:
            stack = self._open.get(track)
        else:
            # No track given: close on the only track with an open frame.
            open_tracks = [k for k, v in self._open.items() if v]
            if len(open_tracks) != 1:
                raise RuntimeError(
                    f"end() without track is ambiguous: open on {open_tracks!r}"
                )
            track = open_tracks[0]
            stack = self._open[track]
        if not stack:
            raise RuntimeError(f"end() with no open span on track {track!r}")
        name, cat, ts, args = stack.pop()
        end_ts = self.offset + t
        self._spans.append(
            SpanRecord(name, cat, ts, max(0.0, end_ts - ts), track, args or {})
        )

    def instant(
        self,
        name: str,
        cat: str,
        t: float,
        track: str | None = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a point event at simulated time ``t``."""
        self._instants.append(
            InstantRecord(name, cat, self.offset + t, track or cat, args or {})
        )

    def counter(self, name: str, t: float, value: float, track: str | None = None) -> None:
        """Record one timed sample of a quantity (queue depth, in-flight)."""
        self._samples.append(
            CounterSample(name, self.offset + t, float(value), track or name)
        )

    def count(self, name: str, delta: float = 1) -> None:
        """Bump a monotonic aggregate counter (no timestamp).

        Deltas must be non-negative: these counters only ever grow, which
        the report and tests rely on.
        """
        if delta < 0:
            raise ValueError(f"counter {name!r}: negative delta {delta}")
        self._counters[name] = self._counters.get(name, 0) + delta

    def account_bytes(self, kind: str, nbytes: int) -> None:
        """Add ``nbytes`` to the byte-flow ledger under ``kind``.

        Kinds used by the built-in instrumentation: ``network`` (bytes that
        crossed a client link), ``consumed`` (bytes the client actually used
        to complete accesses) and ``data`` (original data bytes requested).
        """
        if nbytes < 0:
            raise ValueError(f"bytes ledger {kind!r}: negative amount {nbytes}")
        self._bytes[kind] = self._bytes.get(kind, 0) + int(nbytes)

    # -- queries -------------------------------------------------------------
    @property
    def spans(self) -> list[SpanRecord]:
        return list(self._spans)

    @property
    def instants(self) -> list[InstantRecord]:
        return list(self._instants)

    @property
    def counter_samples(self) -> list[CounterSample]:
        return list(self._samples)

    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    @property
    def bytes_ledger(self) -> dict[str, int]:
        return dict(self._bytes)

    def categories(self) -> set[str]:
        """Every category that produced at least one span or instant."""
        return {s.cat for s in self._spans} | {i.cat for i in self._instants}

    # -- Chrome trace_event export --------------------------------------------
    def to_chrome(self) -> dict:
        """The trace as a Chrome ``trace_event`` JSON object.

        Spans become complete (``"X"``) events, instants ``"i"`` events and
        counter samples ``"C"`` events; tracks map to thread ids with
        ``thread_name`` metadata.  Aggregate counters and the byte ledger
        travel in one ``obs_totals`` metadata event so a report can be
        rebuilt from the file alone.
        """
        tids: dict[str, int] = {}

        def tid(track: str) -> int:
            if track not in tids:
                tids[track] = len(tids) + 1
            return tids[track]

        def us(t: float) -> float:
            return round(t * 1e6, 3)

        events: list[dict] = []
        for s in self._spans:
            events.append(
                {
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "X",
                    "pid": TRACE_PID,
                    "tid": tid(s.track),
                    "ts": us(s.ts),
                    "dur": us(s.dur),
                    "args": dict(s.args),
                }
            )
        for i in self._instants:
            events.append(
                {
                    "name": i.name,
                    "cat": i.cat,
                    "ph": "i",
                    "s": "t",
                    "pid": TRACE_PID,
                    "tid": tid(i.track),
                    "ts": us(i.ts),
                    "args": dict(i.args),
                }
            )
        for c in self._samples:
            events.append(
                {
                    "name": c.name,
                    "cat": "counter",
                    "ph": "C",
                    "pid": TRACE_PID,
                    "tid": tid(c.track),
                    "ts": us(c.ts),
                    "args": {"value": c.value},
                }
            )
        events.sort(key=lambda e: (e["ts"], e["tid"], e["name"]))
        meta: list[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": t,
                "args": {"name": name},
            }
            for name, t in sorted(tids.items(), key=lambda kv: kv[1])
        ]
        meta.append(
            {
                "name": "obs_totals",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": 0,
                "args": {
                    "counters": {k: self._counters[k] for k in sorted(self._counters)},
                    "bytes": {k: self._bytes[k] for k in sorted(self._bytes)},
                },
            }
        )
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        """Serialise :meth:`to_chrome` to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh, separators=(",", ":"))
            fh.write("\n")


# -- ambient tracer -----------------------------------------------------------
# The experiment registry exposes zero-argument callables, so the CLI
# installs the tracer ambiently; `run_scheme` picks it up as its default.
_ambient = threading.local()


def current_tracer() -> "Tracer | NullTracer":
    """The innermost tracer installed with :func:`use_tracer` (or the null)."""
    stack = getattr(_ambient, "stack", None)
    return stack[-1] if stack else NULL_TRACER


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Install ``tracer`` as the ambient default within the block."""
    stack = getattr(_ambient, "stack", None)
    if stack is None:
        stack = _ambient.stack = []
    stack.append(tracer)
    try:
        yield tracer
    finally:
        stack.pop()
