"""Interprocedural nondeterminism taint: summaries + fixpoint (SIM010).

Per-function **summaries** record whether a function *directly* touches a
banned source — a wall-clock read, OS/process entropy, or global RNG
state (the same families SIM001/SIM002/SIM008/SIM009 flag per-file, with
the same ``time.perf_counter`` benchmark allowlist).  A breadth-first
**fixpoint over the reverse call graph** then propagates those bits to
every caller, so ``core.run -> utils.stamp -> utils._now ->
time.time()`` is caught even though ``core.run`` itself looks clean to
every per-file rule.

BFS (rather than an order-free worklist) gives each tainted function the
*shortest* witness chain, and processing functions in sorted order makes
the chosen chain deterministic — lint output must be byte-stable for the
findings cache and the CI double-run diff.

Pragmas are honoured **at the sink**: a line that disables SIM010 — or
the per-file rule that owns that sink family (SIM001 for wall-clock,
SIM002 for global RNG, SIM008/SIM009 for entropy) — stops the taint at
its source, so one justified suppression does not need to be repeated up
the call chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.lint.rules_exec import _OS_PROCESS_FNS, _UUID_NONDET_FNS
from repro.lint.rules_sim import (
    _DATETIME_CLOCK_FNS,
    _NP_GLOBAL_FNS,
    _STDLIB_RNG_ALLOWED,
    _TIME_CLOCK_FNS,
    _from_imports,
    _is_np_random,
    _module_aliases,
    _trailing_name,
)

#: Sink kinds and the per-file rules whose pragma also silences them.
KIND_WALL_CLOCK = "wall-clock"
KIND_ENTROPY = "entropy"
KIND_GLOBAL_RNG = "global-RNG"

_KIND_BASE_RULES = {
    KIND_WALL_CLOCK: ("SIM001", "SIM008", "SIM009"),
    KIND_ENTROPY: ("SIM002", "SIM008", "SIM009"),
    KIND_GLOBAL_RNG: ("SIM002", "SIM009"),
}

#: Unseeded-entropy constructors (fresh OS seed behind a clean API).
_UNSEEDED_CTORS = {"default_rng", "RandomState", "SeedSequence"}


@dataclass(frozen=True)
class Sink:
    """One direct banned call inside some function's body."""

    kind: str
    desc: str  #: e.g. ``time.time()`` — what to print in the chain
    node: ast.AST
    path: str
    line: int


@dataclass
class Taint:
    """Why one function reaches a banned source, with its witness."""

    kind: str
    #: The call (or sink) node *inside this function* that leads one hop
    #: down the witness chain — where the finding is anchored.
    via: ast.AST
    #: Next function down the chain (None when ``via`` is the sink itself).
    next_hop: Optional[str]
    sink: Sink
    depth: int


class _ModuleTables:
    """Per-module alias tables shared by every sink classification."""

    def __init__(self, tree: ast.AST) -> None:
        self.time_aliases = _module_aliases(tree, "time")
        self.datetime_aliases = _module_aliases(tree, "datetime")
        self.os_aliases = _module_aliases(tree, "os")
        self.uuid_aliases = _module_aliases(tree, "uuid")
        self.secrets_aliases = _module_aliases(tree, "secrets")
        self.random_aliases = _module_aliases(tree, "random")
        self.np_aliases = _module_aliases(tree, "numpy") | {"np"}
        self.from_time = {
            local
            for local, orig in _from_imports(tree, "time").items()
            if orig in _TIME_CLOCK_FNS
        }
        self.from_os = {
            local: orig
            for local, orig in _from_imports(tree, "os").items()
            if orig in _OS_PROCESS_FNS
        }
        self.from_uuid = {
            local: orig
            for local, orig in _from_imports(tree, "uuid").items()
            if orig in _UUID_NONDET_FNS
        }
        self.from_secrets = _from_imports(tree, "secrets")
        self.from_random = _from_imports(tree, "random")
        self.from_npr = _from_imports(tree, "numpy.random")
        self.from_datetime = {
            local
            for local, orig in _from_imports(tree, "datetime").items()
            if orig in ("datetime", "date")
        }


def classify_sink(node: ast.Call, tables: _ModuleTables) -> Optional[tuple[str, str]]:
    """``(kind, description)`` when ``node`` is a direct banned call.

    Mirrors the per-file rules' sink families — including the
    ``time.perf_counter`` allowlist (it is simply not in the banned set)
    and seeded-constructor exemptions — so a function is tainted exactly
    by the calls SIM001/SIM002/SIM008/SIM009 would flag somewhere.
    """
    func = node.func
    unseeded = not node.args and not node.keywords
    if isinstance(func, ast.Attribute):
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            bid = base.id
            if bid in tables.time_aliases and attr in _TIME_CLOCK_FNS:
                return KIND_WALL_CLOCK, f"time.{attr}()"
            if bid in tables.os_aliases and attr in _OS_PROCESS_FNS:
                return KIND_ENTROPY, f"os.{attr}()"
            if bid in tables.uuid_aliases and attr in _UUID_NONDET_FNS:
                return KIND_ENTROPY, f"uuid.{attr}()"
            if bid in tables.secrets_aliases:
                return KIND_ENTROPY, f"secrets.{attr}()"
            if bid in tables.random_aliases:
                if attr == "SystemRandom" or (attr == "Random" and unseeded):
                    return KIND_ENTROPY, f"random.{attr}()"
                if attr not in _STDLIB_RNG_ALLOWED:
                    return KIND_GLOBAL_RNG, f"random.{attr}()"
        if attr in _DATETIME_CLOCK_FNS and _trailing_name(base) in (
            {"datetime", "date"} | tables.datetime_aliases | tables.from_datetime
        ):
            return KIND_WALL_CLOCK, f"{_trailing_name(base)}.{attr}()"
        if _is_np_random(base, tables.np_aliases):
            if attr in _NP_GLOBAL_FNS:
                return KIND_GLOBAL_RNG, f"np.random.{attr}()"
            if attr in _UNSEEDED_CTORS and unseeded:
                return KIND_ENTROPY, f"np.random.{attr}()"
    elif isinstance(func, ast.Name):
        fid = func.id
        if fid in tables.from_time:
            return KIND_WALL_CLOCK, f"{fid}()"
        if fid in tables.from_os:
            return KIND_ENTROPY, f"os.{tables.from_os[fid]}()"
        if fid in tables.from_uuid:
            return KIND_ENTROPY, f"uuid.{tables.from_uuid[fid]}()"
        if fid in tables.from_secrets:
            return KIND_ENTROPY, f"secrets.{tables.from_secrets[fid]}()"
        orig = tables.from_random.get(fid)
        if orig is not None:
            if orig == "SystemRandom" or (orig == "Random" and unseeded):
                return KIND_ENTROPY, f"random.{orig}()"
            if orig not in _STDLIB_RNG_ALLOWED:
                return KIND_GLOBAL_RNG, f"random.{orig}()"
        nporig = tables.from_npr.get(fid)
        if nporig is not None:
            if nporig in _NP_GLOBAL_FNS:
                return KIND_GLOBAL_RNG, f"np.random.{nporig}()"
            if nporig in _UNSEEDED_CTORS and unseeded:
                return KIND_ENTROPY, f"np.random.{nporig}()"
    return None


def _sink_suppressed(ctx, kind: str, line: int) -> bool:
    for rule_id in ("SIM010",) + _KIND_BASE_RULES[kind]:
        if ctx.is_disabled(rule_id, line):
            return True
    return False


class TaintAnalysis:
    """Reaches-nondeterminism summaries for every corpus function."""

    def __init__(self, project) -> None:
        self.project = project
        #: (qualname, kind) -> Taint (shortest, deterministic witness).
        self.taints: dict[tuple[str, str], Taint] = {}
        self._run()

    def _direct_sinks(self) -> dict[str, list[Sink]]:
        sinks: dict[str, list[Sink]] = {}
        for name in sorted(self.project.modules):
            mod = self.project.modules[name]
            tables = _ModuleTables(mod.ctx.tree)
            path = str(mod.ctx.path)
            for node in mod.ctx.walk((ast.Call,)):
                hit = classify_sink(node, tables)
                if hit is None:
                    continue
                kind, desc = hit
                if _sink_suppressed(mod.ctx, kind, node.lineno):
                    continue
                owner = self.project.owner_of(mod, node)
                sinks.setdefault(owner, []).append(
                    Sink(kind=kind, desc=desc, node=node, path=path, line=node.lineno)
                )
        return sinks

    def _run(self) -> None:
        sinks = self._direct_sinks()
        reverse = self.project.reverse_calls()
        # Seed: functions with a direct sink (first sink of each kind wins).
        frontier: list[tuple[str, str]] = []
        for fn in sorted(sinks):
            for sink in sinks[fn]:
                key = (fn, sink.kind)
                if key in self.taints:
                    continue
                self.taints[key] = Taint(
                    kind=sink.kind, via=sink.node, next_hop=None, sink=sink, depth=0
                )
                frontier.append(key)
        # BFS up the reverse call graph: shortest chains, sorted order.
        while frontier:
            next_frontier: list[tuple[str, str]] = []
            for fn, kind in frontier:
                taint = self.taints[(fn, kind)]
                for site in reverse.get(fn, ()):
                    key = (site.caller, kind)
                    if key in self.taints:
                        continue
                    self.taints[key] = Taint(
                        kind=kind,
                        via=site.node,
                        next_hop=fn,
                        sink=taint.sink,
                        depth=taint.depth + 1,
                    )
                    next_frontier.append(key)
            frontier = sorted(next_frontier)

    # -- reporting helpers -------------------------------------------------
    def chain(self, qualname: str, kind: str) -> list[str]:
        """Witness call chain from ``qualname`` down to the sink holder."""
        out: list[str] = []
        cur: Optional[str] = qualname
        while cur is not None:
            out.append(cur)
            taint = self.taints.get((cur, kind))
            if taint is None:
                break
            cur = taint.next_hop
        return out


def short_name(qualname: str) -> str:
    """``repro.core.access:Access.run`` -> ``access.Access.run``."""
    module, _, fn = qualname.partition(":")
    return f"{module.rsplit('.', 1)[-1]}.{fn}"
