"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes: 0 — clean (warnings allowed); 1 — at least one error-severity
finding; 2 — usage error.  ``--format json`` emits a machine-readable
report (schema below) for CI; the default human format is one
``path:line:col: RULE [severity] message`` line per finding.

JSON schema (``--format json``)::

    {
      "version": 1,
      "findings": [
        {"rule": "SIM001", "severity": "error", "path": "...",
         "line": 12, "col": 5, "message": "..."},
        ...
      ],
      "counts": {"error": 2, "warning": 0},
      "files_checked": 83
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.lint.engine import Severity, all_rules, iter_py_files, lint_paths

#: Schema version of the JSON report.
JSON_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Simulator-aware static analysis for the RobuSTore repro.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _report(findings, n_files: int, fmt: str, out) -> None:
    counts = {
        "error": sum(1 for f in findings if f.severity is Severity.ERROR),
        "warning": sum(1 for f in findings if f.severity is Severity.WARNING),
    }
    if fmt == "json":
        json.dump(
            {
                "version": JSON_VERSION,
                "findings": [f.to_dict() for f in findings],
                "counts": counts,
                "files_checked": n_files,
            },
            out,
            indent=2,
        )
        out.write("\n")
        return
    for finding in findings:
        out.write(finding.render() + "\n")
    summary = (
        f"{counts['error']} error(s), {counts['warning']} warning(s) "
        f"in {n_files} file(s)"
    )
    out.write(("" if not findings else "\n") + summary + "\n")


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules.values():
            out.write(f"{rule.id} [{rule.severity.value}] {rule.summary}\n")
        return 0

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in select if r not in rules]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    files = list(iter_py_files(args.paths))
    if not files:
        parser.error(f"no .py files found under: {' '.join(map(str, args.paths))}")
    findings = lint_paths(files, select)
    _report(findings, len(files), args.format, out)
    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0
