"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes: 0 — clean (warnings allowed); 1 — at least one error-severity
finding; 2 — usage error.  ``--format json`` emits a machine-readable
report (schema below) for CI; the default human format is one
``path:line:col: RULE [severity] message`` line per finding.

Runs are cached by a content digest of the rule set and the analysis
corpus (``.repro-cache/lint/``, see :mod:`repro.lint.cache`): a repeat
run with unchanged inputs replays its findings *and* per-rule timings
byte-identically without re-parsing a single file.  ``--no-cache``
bypasses the cache; ``--cache-dir`` relocates it; cache status goes to
stderr so stdout stays diffable.

JSON schema (``--format json``)::

    {
      "version": 2,
      "findings": [
        {"rule": "SIM001", "severity": "error", "path": "...",
         "line": 12, "col": 5, "message": "..."},
        ...
      ],
      "counts": {"error": 2, "warning": 0},
      "files_checked": 83,
      "rules": {"SIM001": {"seconds": 0.0123}, ...}
    }

``rules`` carries cumulative per-rule wall seconds (project rules also
share the whole-program corpus-build cost), so lint cost stays visible
in the CI trajectory.  A warm-cache run replays the seconds recorded
when the entry was written — by design, so cold and warm reports diff
clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.lint.cache import default_cache_dir
from repro.lint.engine import LintReport, Severity, all_rules, iter_py_files, run_lint

#: Schema version of the JSON report (2: adds per-rule timing).
JSON_VERSION = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Simulator-aware static analysis for the RobuSTore repro.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules (with their scope) and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-analyse; do not read or write the findings cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="findings cache location (default: $REPRO_CACHE_DIR/lint "
        "or .repro-cache/lint)",
    )
    return parser


def _report(report: LintReport, fmt: str, out) -> None:
    findings = report.findings
    counts = {
        "error": sum(1 for f in findings if f.severity is Severity.ERROR),
        "warning": sum(1 for f in findings if f.severity is Severity.WARNING),
    }
    if fmt == "json":
        json.dump(
            {
                "version": JSON_VERSION,
                "findings": [f.to_dict() for f in findings],
                "counts": counts,
                "files_checked": report.files_checked,
                "rules": {
                    rid: {"seconds": report.rule_seconds[rid]}
                    for rid in sorted(report.rule_seconds)
                },
            },
            out,
            indent=2,
        )
        out.write("\n")
        return
    for finding in findings:
        out.write(finding.render() + "\n")
    summary = (
        f"{counts['error']} error(s), {counts['warning']} warning(s) "
        f"in {report.files_checked} file(s)"
    )
    out.write(("" if not findings else "\n") + summary + "\n")


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules.values():
            out.write(
                f"{rule.id} [{rule.severity.value}] ({rule.scope}) {rule.summary}\n"
            )
        return 0

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in select if r not in rules]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    files = list(iter_py_files(args.paths))
    if not files:
        parser.error(f"no .py files found under: {' '.join(map(str, args.paths))}")
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    report = run_lint(files, select, cache_dir=cache_dir)
    if cache_dir is not None:
        sys.stderr.write(
            f"# lint cache: {'hit' if report.cache_hit else 'miss'} ({cache_dir})\n"
        )
    _report(report, args.format, out)
    return 1 if any(f.severity is Severity.ERROR for f in report.findings) else 0
