"""Content-digest findings cache (``.repro-cache/lint/``).

A lint run is a pure function of (rule set, file contents): equal inputs
always produce the identical findings list.  That makes lint results
content-addressable exactly like ``repro.exec`` job results — this module
reuses the :func:`repro.sim.rng.stable_digest` idiom (multi-lane FNV-1a
over a part stream) to key whole-run reports, so a repeat CI lint pass is
a single digest-and-read instead of parsing and re-analysing ~250 files.

Two deliberate differences from ``repro.exec.store``:

* the digest is **re-implemented locally** rather than imported from
  ``repro.sim.rng`` — the CI lint job runs on a bare interpreter and
  ``repro.sim.rng`` imports numpy, which ``repro.lint`` must never pull
  in;
* file *contents* are first folded through :func:`hashlib.sha256` (C
  speed) and only the resulting hex digests go through the pure-Python
  FNV lanes — a warm cache hit must cost less than the parse it avoids.

Entries are JSON files named by the run key, written through a temp file
+ :func:`os.replace` (the ``repro.exec.store`` idiom), so concurrent
writers of the same key race benignly: last writer wins with identical
bytes.  Entries contain only deterministic content — findings, per-rule
timings recorded at write time, and the file count — so a warm run can
replay a byte-identical report.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Optional

#: Version salt folded into every run key.  Bump whenever a rule's
#: behaviour or the report format changes, so stale entries can never
#: replay findings computed under older semantics.
LINT_SALT = "lint-v2"

#: Default cache location (under the ``repro.exec`` cache root so one
#: ``rm -rf .repro-cache`` clears every content-addressed artefact).
DEFAULT_CACHE_SUBDIR = "lint"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR/lint`` (or ``.repro-cache/lint``)."""
    root = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
    return Path(root) / DEFAULT_CACHE_SUBDIR


# ---------------------------------------------------------------------------
# stable digest (the repro.sim.rng idiom, numpy-free)


def _fnv32(data: bytes, h: int = 2166136261) -> int:
    """FNV-1a fold of ``data`` into 32 bits (process-independent)."""
    for byte in data:
        h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
    return h


def _fold_parts(parts: Iterable, h: int) -> int:
    for part in parts:
        if isinstance(part, bool):
            data = b"\x01" if part else b"\x00"
        elif isinstance(part, int):
            data = (part & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        else:
            data = str(part).encode()
        # Separate parts so ("ab",) and ("a", "b") fold differently.
        h = _fnv32(data, _fnv32(b"\x1f", h))
    return h


#: Four distinct FNV offsets — independent lanes over the same parts.
_DIGEST_LANES = (2166136261, 0x01000193, 0x9E3779B9, 0xDEADBEEF)


def stable_digest(*parts) -> str:
    """128-bit hex digest of ``parts``; depends only on the values."""
    return "".join(f"{_fold_parts(parts, base):08x}" for base in _DIGEST_LANES)


def content_digest(source: str) -> str:
    """sha256 of one file body (hashlib for speed; deterministic)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def run_key(rule_ids: Iterable[str], entries: Iterable[tuple[str, str, bool]]) -> str:
    """The cache key for one lint run.

    ``entries`` are ``(path, content_digest, is_linted)`` triples for the
    *whole analysis corpus* — linted files plus any files pulled in for
    whole-program analysis — so a change to a transitive callee invalidates
    cached interprocedural findings even when that file is not itself
    being linted.
    """
    parts: list = [LINT_SALT, ",".join(sorted(rule_ids))]
    for path, digest, linted in sorted(entries):
        parts += [path, digest, linted]
    return stable_digest(*parts)


# ---------------------------------------------------------------------------
# entry IO


def entry_path(cache_dir: str | Path, key: str) -> Path:
    """Two-level fan-out keeps directories small (the store idiom)."""
    return Path(cache_dir) / key[:2] / f"{key}.json"


def load(cache_dir: str | Path, key: str) -> Optional[dict]:
    """The decoded entry for ``key``, or ``None``.

    Corrupt, truncated or foreign-version files are misses — a damaged
    cache degrades to re-linting, never to a crash or a stale report.
    """
    path = entry_path(cache_dir, key)
    try:
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(entry, dict) or entry.get("salt") != LINT_SALT:
        return None
    if not all(k in entry for k in ("findings", "files_checked", "rule_seconds")):
        return None
    return entry


def store(cache_dir: str | Path, key: str, payload: dict) -> None:
    """Atomically persist ``payload`` under ``key`` (best-effort)."""
    path = entry_path(cache_dir, key)
    tmp = path.with_suffix(".tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"salt": LINT_SALT, **payload}, fh, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        # An unwritable cache must never fail the lint run itself.
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
