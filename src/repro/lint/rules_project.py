"""Whole-program rules (SIM010-SIM012).

These are the interprocedural complement to SIM001-SIM009: they run once
per lint run over a :class:`repro.lint.project.ProjectContext` instead
of per file, so they see through module boundaries.

* **SIM010** — transitive nondeterminism taint.  A function in a
  sim-critical package (``core``/``disk``/``cluster``/``sim``/``exec``/
  ``serve``) that reaches a wall-clock, entropy or global-RNG source
  through *any* call chain is flagged with the full chain printed, even
  when every individual file passes SIM001/SIM002/SIM008/SIM009.  The
  exec/serve payload-hash caches are only sound under exactly this
  property.  Direct in-body sinks (chain length zero) are left to the
  per-file rules, which already point at the offending line — SIM010
  reports only taint that crosses at least one call edge.
* **SIM011** — RngHub stream discipline.  Every ``hub.stream(...)`` /
  ``hub.fresh(...)`` call site in the ``repro`` package must use a
  string-literal stream name declared in the ``STREAMS`` registry
  (``repro/sim/rng.py``) with a declared key arity, so a typo'd name or
  a drifted key shape cannot silently fork the RNG universe.
* **SIM012** *(warning)* — dead/drifted exports.  An ``__all__`` entry
  that names a symbol the module does not define, or that no other
  module, test, benchmark or example ever imports, marks a back-compat
  shim that has drifted to garbage.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Severity, rule
from repro.lint.project import SIM_CRITICAL_PACKAGES, ProjectContext, _attr_chain
from repro.lint.taint import short_name

# ---------------------------------------------------------------------------
# SIM010 — transitive nondeterminism taint


@rule(
    "SIM010",
    Severity.ERROR,
    "sim-critical code must not reach wall-clock/entropy/global-RNG "
    "through any call chain",
    packages=SIM_CRITICAL_PACKAGES,
    project=True,
)
def check_transitive_nondeterminism(project: ProjectContext) -> Iterator:
    taint = project.taint()
    for fn, kind in sorted(taint.taints):
        info = project.functions.get(fn)
        if info is None:
            continue
        mod = project.modules.get(info.module)
        if mod is None or mod.top_package not in SIM_CRITICAL_PACKAGES:
            continue
        t = taint.taints[(fn, kind)]
        if t.depth == 0:
            # A sink inside the function's own body is the per-file
            # rules' jurisdiction (SIM001/SIM002/SIM008/SIM009 point at
            # the offending line); SIM010 owns taint that crosses a call
            # edge, which is exactly what per-file rules cannot see.
            continue
        chain = " -> ".join(short_name(q) for q in taint.chain(fn, kind))
        sink = t.sink
        where = "" if sink.path == info.path else f" [{sink.path}:{sink.line}]"
        yield (
            info.path,
            t.via,
            f"{short_name(fn)} reaches {kind} source {sink.desc} via "
            f"{chain} -> {sink.desc}{where}; every transitive callee of "
            "sim-critical code must be deterministic — thread "
            "Environment.now / an RngHub stream through instead",
        )


# ---------------------------------------------------------------------------
# SIM011 — RngHub stream discipline


def _is_hub_ref(node: ast.AST) -> bool:
    """True for ``hub`` / ``self.hub`` / ``cell_hub`` receivers."""
    names = _attr_chain(node)
    if not names:
        return False
    return names[-1] == "hub" or names[-1].endswith("_hub")


def _arity_text(allowed: tuple[int, ...]) -> str:
    return " or ".join(str(a) for a in allowed)


@rule(
    "SIM011",
    Severity.ERROR,
    "hub.stream()/hub.fresh() names must be string literals from the "
    "STREAMS registry with the declared key arity",
    repro_only=True,
    project=True,
)
def check_stream_discipline(project: ProjectContext) -> Iterator:
    streams = project.stream_registry()
    if streams is None:
        return  # no registry in this corpus; nothing to check against
    for name in sorted(project.modules):
        mod = project.modules[name]
        path = str(mod.ctx.path)
        for call in mod.ctx.walk((ast.Call,)):
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("stream", "fresh")
                and _is_hub_ref(func.value)
            ):
                continue
            hint = (
                "declare the stream in repro.sim.rng.STREAMS so a typo "
                "cannot silently fork the RNG universe"
            )
            if any(isinstance(a, ast.Starred) for a in call.args) or call.keywords:
                yield (
                    path,
                    call,
                    f"hub.{func.attr}(...) key is not statically checkable "
                    f"(starred/keyword arguments); use explicit positional "
                    f"key parts starting with a literal stream name; {hint}",
                )
                continue
            if not call.args:
                yield (
                    path,
                    call,
                    f"hub.{func.attr}() with an empty key; every stream "
                    f"needs a literal name from STREAMS; {hint}",
                )
                continue
            first = call.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                yield (
                    path,
                    call,
                    f"hub.{func.attr}(...) stream name must be a string "
                    f"literal, not a computed value; {hint}",
                )
                continue
            stream = first.value
            allowed = streams.get(stream)
            if allowed is None:
                known = ", ".join(sorted(streams))
                yield (
                    path,
                    call,
                    f"unknown stream name {stream!r} (registered: {known}); "
                    f"{hint}",
                )
            elif len(call.args) not in allowed:
                yield (
                    path,
                    call,
                    f"stream {stream!r} key has {len(call.args)} part(s) but "
                    f"STREAMS declares {_arity_text(allowed)}; inconsistent "
                    "key arity silently forks the stream tree — match the "
                    "declared shape or declare the new one",
                )


# ---------------------------------------------------------------------------
# SIM012 — dead/drifted exports


def _export_uses(project: ProjectContext) -> set[tuple[str, str]]:
    """Every ``(module, symbol)`` imported or attribute-accessed anywhere.

    Scans the *whole* corpus — repro modules, tests, benchmarks,
    examples — for ``from m import s``, ``from m import *`` (credits all
    of ``m.__all__``) and ``alias.attr`` chains on imported modules.
    """
    from repro.lint.project import _resolve_relative, module_name_for

    uses: set[tuple[str, str]] = set()
    for resolved in sorted(project.files, key=str):
        ctx = project.files[resolved]
        consumer = module_name_for(ctx.path)
        # Local alias -> corpus module, for attribute-chain uses.
        aliases: dict[str, str] = {}
        dotted_imports: set[str] = set()
        for node in ctx.walk((ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        if alias.name in project.modules:
                            aliases[alias.asname] = alias.name
                    else:
                        dotted_imports.add(alias.name)
                continue
            src = node.module or ""
            if node.level:  # relative import inside the corpus
                if consumer is None:
                    continue
                mod = project.modules.get(consumer)
                if mod is None:
                    continue
                src = _resolve_relative(mod, node.level, node.module)
            for alias in node.names:
                if alias.name == "*":
                    star_mod = project.modules.get(src)
                    if star_mod is not None:
                        for exported, _line in star_mod.dunder_all:
                            uses.add((src, exported))
                        if not star_mod.dunder_all:
                            for sym in star_mod.symbols:
                                uses.add((src, sym))
                    continue
                uses.add((src, alias.name))
                if f"{src}.{alias.name}" in project.modules:
                    aliases[alias.asname or alias.name] = f"{src}.{alias.name}"
        # Attribute chains: ``alias.sym`` / ``repro.core.sym``.
        for node in ctx.walk((ast.Attribute,)):
            names = _attr_chain(node)
            if names is None or len(names) < 2:
                continue
            for k in range(len(names) - 1, 0, -1):
                head = ".".join(names[:k])
                target = aliases.get(head) if k == 1 and names[0] in aliases else None
                if target is None and (
                    head in project.modules
                    and any(d == head or d.startswith(head + ".") for d in dotted_imports)
                ):
                    target = head
                if target is not None:
                    uses.add((target, names[k]))
                    break
    return uses


def _origin_chain(
    project: ProjectContext, module: str, symbol: str
) -> list[tuple[str, str]]:
    """``(module, symbol)`` pairs along a re-export chain, facade first.

    A package ``__init__`` typically re-exports via ``from .sub import
    X``; consumers are free to import the symbol at *any* level of that
    chain (the facade or the defining submodule), so a use at any link
    keeps the export alive.
    """
    pairs: list[tuple[str, str]] = []
    seen: set[tuple[str, str]] = set()
    cur = (module, symbol)
    while cur not in seen:
        seen.add(cur)
        pairs.append(cur)
        mod = project.modules.get(cur[0])
        if mod is None:
            break
        origin = mod.from_imports.get(cur[1])
        if origin is None:
            break
        cur = origin
    return pairs


@rule(
    "SIM012",
    Severity.WARNING,
    "__all__ entries nobody imports (dead or drifted exports)",
    repro_only=True,
    project=True,
)
def check_dead_exports(project: ProjectContext) -> Iterator:
    uses = _export_uses(project)
    for name in sorted(project.modules):
        mod = project.modules[name]
        path = str(mod.ctx.path)
        # A module-level __getattr__ (PEP 562) can provide any attribute
        # dynamically, so "not statically defined" proves nothing there.
        dynamic = "__getattr__" in mod.symbols
        for symbol, line in mod.dunder_all:
            if symbol not in mod.symbols and not mod.star_imports and not dynamic:
                yield (
                    path,
                    line,
                    f"__all__ names {symbol!r} which {name} does not define "
                    "or re-export — the export has drifted; remove it or "
                    "restore the symbol",
                )
                continue
            if not any(p in uses for p in _origin_chain(project, name, symbol)):
                yield (
                    path,
                    line,
                    f"__all__ entry {symbol!r} of {name} is imported by no "
                    "module, test, benchmark or example — dead export "
                    "(back-compat shim drift?); drop it or add coverage "
                    "that imports it",
                )
