"""repro.lint: simulator-aware static analysis for the RobuSTore codebase.

The whole evaluation rests on the simulator being deterministic and
causally sound: no wall-clock reads, no global RNG state, zero-cost
tracing, and a DES timeline that only moves forward.  ``repro.lint``
enforces those conventions with a small AST-based rule engine:

* ``python -m repro.lint src/ tests/`` runs every registered rule and
  exits non-zero on error-severity findings.
* ``# lint: disable=RULE`` on the offending line suppresses a finding
  (add a short justification in the same comment).
* Rules are registered with :func:`repro.lint.engine.rule` so new
  conventions can be enforced with a single function.  File rules see
  one :class:`FileContext` at a time; project rules (``project=True``)
  see a whole-program :class:`repro.lint.project.ProjectContext` with
  import/call graphs, enabling interprocedural checks (SIM010-SIM012).
* Findings are cached under ``.repro-cache/lint/`` keyed by rule set
  and file contents; unchanged repeat runs replay instantly.

See ``docs/static_analysis.md`` for each rule's rationale.  The runtime
complement to the static pass is the DES sanitizer
(``REPRO_SANITIZE=1`` / ``Environment(sanitize=True)``) in
:mod:`repro.sim.core`.
"""

from repro.lint.engine import (
    FileContext,
    Finding,
    LintReport,
    Rule,
    Severity,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    rule,
    run_lint,
)

# Importing the rule modules registers the built-in rules.
from repro.lint import (  # noqa: F401  (registration side effect)
    rules_exec,
    rules_policy,
    rules_project,
    rules_py,
    rules_serve,
    rules_sim,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule",
    "run_lint",
]
