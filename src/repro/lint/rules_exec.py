"""Execution-engine rules (SIM008).

The ``repro.exec`` determinism contract: a job payload, cache key or
cache entry may contain only values that reproduce the simulation.  A
wall-clock stamp, a PID or a random UUID smuggled into that data makes
equal payloads hash differently (so the cache never hits) or — worse —
makes a cache entry claim results it cannot reproduce.  SIM008 bans the
sources of such values inside the ``exec`` package.

``time.perf_counter`` is explicitly allowed: the engine measures per-job
wall clock with it, and that measurement stays in :class:`ExecStats` —
it never enters a payload or a cache entry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Severity, rule
from repro.lint.rules_sim import _TIME_CLOCK_FNS, _from_imports, _module_aliases

#: ``os`` functions yielding per-process / per-boot values.
_OS_PROCESS_FNS = {"getpid", "getppid", "urandom", "times"}

#: ``uuid`` constructors that are time- or entropy-derived (uuid3/uuid5
#: are content hashes and therefore deterministic).
_UUID_NONDET_FNS = {"uuid1", "uuid4"}


@rule(
    "SIM008",
    Severity.ERROR,
    "no wall-clock / PID / UUID-derived values inside repro.exec — "
    "payloads and cache entries must be deterministic",
    packages=("exec",),
)
def check_exec_determinism(ctx: FileContext) -> Iterator:
    flagged = {
        "time": (_module_aliases(ctx.tree, "time"), _TIME_CLOCK_FNS),
        "os": (_module_aliases(ctx.tree, "os"), _OS_PROCESS_FNS),
        "uuid": (_module_aliases(ctx.tree, "uuid"), _UUID_NONDET_FNS),
    }
    from_names = {
        local: (module, orig)
        for module, (_aliases, fns) in flagged.items()
        for local, orig in _from_imports(ctx.tree, module).items()
        if orig in fns
    }
    hint = (
        "job payloads, cache keys and cache entries must contain only "
        "deterministic content (time.perf_counter is fine for wall "
        "accounting that stays out of them)"
    )
    for node in ctx.walk((ast.Call,)):
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            for module, (aliases, fns) in flagged.items():
                if func.value.id in aliases and func.attr in fns:
                    yield node, (
                        f"{module}.{func.attr}() in the execution engine; {hint}"
                    )
                    break
        elif isinstance(func, ast.Name) and func.id in from_names:
            module, orig = from_names[func.id]
            yield node, (
                f"{func.id}() (imported from {module}.{orig}) in the "
                f"execution engine; {hint}"
            )
