"""General Python hygiene rules with simulator consequences (SIM005-SIM006).

SIM005 (mutable default arguments) is classic Python, but in this codebase
it is also a determinism bug: a default ``[]`` shared across trials leaks
state between supposedly independent runs.  SIM006 guards the process
protocol — a generator process that catches :class:`repro.sim.core.Interrupt`
and silently swallows it breaks the interrupter's contract (the cause is
lost and the interrupted wait continues as if nothing happened).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Severity, rule

# ---------------------------------------------------------------------------
# SIM005 — mutable default arguments

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        return name in _MUTABLE_CALLS
    return False


@rule(
    "SIM005",
    Severity.ERROR,
    "no mutable default arguments",
)
def check_mutable_defaults(ctx: FileContext) -> Iterator:
    for node in ctx.walk((ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                name = getattr(node, "name", "<lambda>")
                yield default, (
                    f"mutable default argument in {name}(); defaults are "
                    "created once and shared across calls — use None and "
                    "construct inside the body"
                )


# ---------------------------------------------------------------------------
# SIM006 — process generators must not swallow Interrupt


def _yields_in(func: ast.AST) -> bool:
    """True if ``func``'s own body (not nested defs) contains a yield."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _catches_interrupt(handler: ast.ExceptHandler) -> bool:
    types = []
    if handler.type is None:
        return False  # bare except is pylint's business, not ours
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    else:
        types = [handler.type]
    for t in types:
        name = t.attr if isinstance(t, ast.Attribute) else getattr(t, "id", None)
        if name == "Interrupt":
            return True
    return False


def _handler_handles(handler: ast.ExceptHandler) -> bool:
    """Re-raises, or references the bound exception (reads the cause)."""
    for node in handler.body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(sub, ast.Name)
                and sub.id == handler.name
            ):
                return True
    return False


@rule(
    "SIM006",
    Severity.ERROR,
    "process generators must not swallow Interrupt without re-raising or "
    "handling the cause",
)
def check_interrupt_swallow(ctx: FileContext) -> Iterator:
    for func in ctx.walk((ast.FunctionDef, ast.AsyncFunctionDef)):
        if not _yields_in(func):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _catches_interrupt(node) and not _handler_handles(node):
                yield node, (
                    f"generator process {func.name}() catches Interrupt but "
                    "neither re-raises nor reads the cause; the interrupter's "
                    "signal is silently lost — bind the exception and handle "
                    "`exc.cause`, or re-raise"
                )
