"""Whole-program view of the ``repro`` package: ``ProjectContext``.

The per-file rules (SIM001-SIM009) are blind across module boundaries: a
one-line wrapper (``def _now(): return time.time()`` in a utils module,
called from ``core/``) launders wall-clock reads past the entire rule
set.  This module builds what the interprocedural rules (SIM010-SIM012)
need to see through that:

* **corpus discovery** — linting any file under a ``repro`` package
  pulls the *whole* package into the analysis corpus, so cross-module
  resolution works even for partial path arguments;
* **module naming** — ``src/repro/core/access.py`` becomes
  ``repro.core.access`` (paths are mapped at the ``repro`` component, so
  fixture trees under ``tmp/src/repro/...`` analyse identically);
* a **module-qualified symbol table** — top-level functions, classes
  (with methods), assignments, imports, ``from``-imports, ``__all__``;
* an **import graph** and transitive re-export resolution (``from
  repro.core.raid0 import Raid0Scheme`` in ``core/__init__`` resolves
  consumers of ``repro.core.Raid0Scheme`` to the defining module);
* a **call graph** keyed by qualified function names
  (``repro.core.access:Access.run`` / ``repro.util.helpers:_now``),
  resolved conservatively: direct names, module-attribute chains,
  ``self``/``cls`` method calls within a class, and implicit
  enclosing->nested edges for closures.  Unresolvable calls (duck-typed
  receivers, higher-order dispatch) produce *no* edge — the analysis
  under-approximates rather than invent false chains.

Everything here is pure stdlib ``ast`` — no numpy, no imports of the
analysed code — so the CI lint job runs on a bare interpreter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.lint.engine import FileContext

#: Packages whose functions must stay transitively deterministic: the
#: DES kernel and data path (``core``/``accesscore``/``disk``/
#: ``cluster``/``sim``), the payload-hash-caching layers
#: (``exec``/``serve``), and the repair economy (``rebuild`` — its
#: ledgers and schedulers feed pinned golden tables).
SIM_CRITICAL_PACKAGES = (
    "core", "accesscore", "disk", "cluster", "sim", "exec", "serve", "rebuild"
)


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for a file under a ``repro`` package root.

    ``.../repro/core/access.py`` -> ``repro.core.access``;
    ``.../repro/core/__init__.py`` -> ``repro.core``; files outside a
    ``repro`` tree (tests, benchmarks, examples) return ``None`` — they
    participate in the corpus as import *consumers* only.
    """
    parts = path.parts
    if "repro" not in parts:
        return None
    idx = parts.index("repro")
    dotted = list(parts[idx:])
    last = dotted[-1]
    if not last.endswith(".py"):
        return None
    if last == "__init__.py":
        dotted = dotted[:-1]
    else:
        dotted[-1] = last[: -len(".py")]
    return ".".join(dotted)


def discover_corpus(linted: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file of each ``repro`` package touched by ``linted``.

    Whole-program analysis must parse all of ``src/repro`` once even when
    only a sub-package is being linted, or taint laundered through an
    un-linted module would be invisible.
    """
    roots: set[Path] = set()
    for p in linted:
        resolved = Path(p).resolve()
        for parent in resolved.parents:
            if parent.name == "repro" and (parent / "__init__.py").is_file():
                roots.add(parent)
                break
    for root in sorted(roots):
        yield from sorted(q for q in root.rglob("*.py") if q.is_file())


@dataclass
class FunctionInfo:
    """One function or method (or a module's top-level pseudo-function)."""

    qualname: str  #: ``module:Class.method`` / ``module:func`` / ``module:<module>``
    module: str
    node: Optional[ast.AST]  #: None for the ``<module>`` pseudo-function
    path: str
    line: int


@dataclass
class CallSite:
    """One resolved edge of the call graph."""

    caller: str
    callee: str
    node: ast.AST  #: the Call (or nested def) node inside the caller
    path: str


@dataclass
class ModuleInfo:
    """Symbol-table view of one module in the corpus."""

    name: str
    ctx: FileContext
    symbols: dict[str, ast.AST] = field(default_factory=dict)
    classes: dict[str, dict[str, ast.AST]] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)  #: alias -> module
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    star_imports: list[str] = field(default_factory=list)
    dunder_all: list[tuple[str, int]] = field(default_factory=list)  #: (name, line)

    @property
    def is_package(self) -> bool:
        return self.ctx.path.name == "__init__.py"

    @property
    def top_package(self) -> str:
        """First component below ``repro`` ("" for ``repro`` itself)."""
        parts = self.name.split(".")
        return parts[1] if len(parts) > 1 else ""


def _resolve_relative(module: ModuleInfo, level: int, target: Optional[str]) -> str:
    """Absolute module named by a relative ``from``-import."""
    base = module.name if module.is_package else module.name.rpartition(".")[0]
    for _ in range(level - 1):
        base = base.rpartition(".")[0]
    return f"{base}.{target}" if target else base


def _collect_module(name: str, ctx: FileContext) -> ModuleInfo:
    info = ModuleInfo(name=name, ctx=ctx)
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.symbols[node.name] = node
        elif isinstance(node, ast.ClassDef):
            info.symbols[node.name] = node
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            info.classes[node.name] = methods
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                info.symbols[target.id] = node
                if target.id == "__all__" and isinstance(
                    getattr(node, "value", None), (ast.List, ast.Tuple)
                ):
                    for elt in node.value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                            info.dunder_all.append((elt.value, elt.lineno))
    # Imports can appear anywhere (function-local lazy imports included).
    for node in ctx.walk((ast.Import, ast.ImportFrom)):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                info.imports[bound] = alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname is None:
                    # ``import repro.core.access`` binds ``repro`` but makes
                    # the full dotted chain resolvable.
                    info.imports.setdefault(alias.name, alias.name)
        else:
            src = (
                _resolve_relative(info, node.level, node.module)
                if node.level
                else (node.module or "")
            )
            for alias in node.names:
                if alias.name == "*":
                    info.star_imports.append(src)
                else:
                    bound = alias.asname or alias.name
                    info.from_imports[bound] = (src, alias.name)
                    info.symbols.setdefault(bound, node)
    return info


def _attr_chain(node: ast.AST) -> Optional[list[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None if any link is not a name."""
    names: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        names.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    names.append(cur.id)
    names.reverse()
    return names


class ProjectContext:
    """Import graph + symbol table + call graph over the analysis corpus.

    Built once per lint run from already-parsed :class:`FileContext`
    objects; the interprocedural rules and the taint fixpoint
    (:mod:`repro.lint.taint`) hang off it.
    """

    MODULE_FN = "<module>"

    def __init__(
        self,
        contexts: dict[Path, FileContext],
        linted: Optional[set[Path]] = None,
    ) -> None:
        #: resolved path -> FileContext for every corpus file.
        self.files = dict(contexts)
        self.linted = set(linted) if linted is not None else set(self.files)
        self.modules: dict[str, ModuleInfo] = {}
        for path, ctx in sorted(self.files.items(), key=lambda kv: str(kv[0])):
            name = module_name_for(ctx.path)
            if name is not None and name not in self.modules:
                self.modules[name] = _collect_module(name, ctx)
        self.functions: dict[str, FunctionInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self._qualnames: dict[int, str] = {}  # id(def node) -> qualname
        for mod in self.modules.values():
            self._index_functions(mod)
        for mod in self.modules.values():
            self._index_calls(mod)
        self._taint = None
        self._stream_registry_loaded = False
        self._stream_registry = None

    # -- import graph -----------------------------------------------------
    def import_graph(self) -> dict[str, set[str]]:
        """module -> set of corpus modules it imports (any mechanism)."""
        graph: dict[str, set[str]] = {}
        for mod in self.modules.values():
            deps: set[str] = set()
            for target in mod.imports.values():
                if target in self.modules:
                    deps.add(target)
            for src, orig in mod.from_imports.values():
                if f"{src}.{orig}" in self.modules:
                    deps.add(f"{src}.{orig}")
                elif src in self.modules:
                    deps.add(src)
            for src in mod.star_imports:
                if src in self.modules:
                    deps.add(src)
            deps.discard(mod.name)
            graph[mod.name] = deps
        return graph

    # -- function indexing ------------------------------------------------
    def _index_functions(self, mod: ModuleInfo) -> None:
        path = str(mod.ctx.path)
        root = FunctionInfo(
            qualname=f"{mod.name}:{self.MODULE_FN}",
            module=mod.name,
            node=None,
            path=path,
            line=1,
        )
        self.functions[root.qualname] = root

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{mod.name}:{prefix}{child.name}"
                    self._qualnames[id(child)] = qual
                    self.functions[qual] = FunctionInfo(
                        qualname=qual,
                        module=mod.name,
                        node=child,
                        path=path,
                        line=child.lineno,
                    )
                    visit(child, f"{prefix}{child.name}.")
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}{child.name}.")
                else:
                    visit(child, prefix)

        visit(mod.ctx.tree, "")

    def owner_of(self, mod: ModuleInfo, node: ast.AST) -> str:
        """Qualname of the function whose body contains ``node``."""
        for ancestor in mod.ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = self._qualnames.get(id(ancestor))
                if qual is not None:
                    return qual
        return f"{mod.name}:{self.MODULE_FN}"

    def enclosing_class(self, mod: ModuleInfo, node: ast.AST) -> Optional[str]:
        for ancestor in mod.ctx.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor.name
        return None

    # -- symbol resolution ------------------------------------------------
    def resolve_function(
        self, module: str, name: str, _seen: Optional[set] = None
    ) -> Optional[str]:
        """Qualname of the function/ctor ``name`` refers to in ``module``.

        Follows ``from``-import chains across re-exporting modules (a
        shim's ``from impl import f`` resolves consumers to ``impl:f``);
        a class resolves to its ``__init__`` when defined.  Returns
        ``None`` for anything not statically resolvable in the corpus.
        """
        seen = _seen or set()
        if (module, name) in seen or module not in self.modules:
            return None
        seen.add((module, name))
        mod = self.modules[module]
        sym = mod.symbols.get(name)
        if isinstance(sym, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return self._qualnames.get(id(sym))
        if isinstance(sym, ast.ClassDef):
            init = mod.classes.get(name, {}).get("__init__")
            return self._qualnames.get(id(init)) if init is not None else None
        if name in mod.from_imports:
            src, orig = mod.from_imports[name]
            if f"{src}.{orig}" in self.modules:
                return None  # a module object, not a callable
            return self.resolve_function(src, orig, seen)
        for src in mod.star_imports:
            resolved = self.resolve_function(src, name, seen)
            if resolved is not None:
                return resolved
        return None

    def _module_for_chain(self, mod: ModuleInfo, names: list[str]) -> Optional[tuple[str, int]]:
        """Longest prefix of ``names`` that denotes a corpus module.

        Returns ``(module_name, consumed)`` or ``None``.  Handles plain
        dotted imports (``repro.core.access``), aliases (``import x as
        y``) and module-binding ``from``-imports (``from repro import
        core``).
        """
        head = names[0]
        candidates: list[tuple[str, int]] = []
        if head in mod.from_imports:
            src, orig = mod.from_imports[head]
            dotted = f"{src}.{orig}"
            if dotted in self.modules:
                candidates.append((dotted, 1))
        if head in mod.imports:
            base = mod.imports[head]
            candidates.append((base, 1))
        # Full dotted chain bound by ``import a.b.c``.
        for k in range(len(names), 1, -1):
            dotted = ".".join(names[:k])
            if dotted in mod.imports and dotted in self.modules:
                candidates.append((dotted, k))
        best: Optional[tuple[str, int]] = None
        for base, consumed in candidates:
            # Extend with further chain links while they name submodules.
            cur, k = base, consumed
            while k < len(names) and f"{cur}.{names[k]}" in self.modules:
                cur, k = f"{cur}.{names[k]}", k + 1
            if cur in self.modules and (best is None or k > best[1]):
                best = (cur, k)
        return best

    # -- call graph -------------------------------------------------------
    def _index_calls(self, mod: ModuleInfo) -> None:
        path = str(mod.ctx.path)
        for node in mod.ctx.walk((ast.Call,)):
            caller = self.owner_of(mod, node)
            callee = self._resolve_call(mod, node)
            if callee is not None and callee in self.functions:
                self.calls.setdefault(caller, []).append(
                    CallSite(caller=caller, callee=callee, node=node, path=path)
                )
        # Defining a closure taints the definer: a nested function's
        # behaviour escapes through the enclosing function's return
        # value, so treat the definition as a call edge.  Top-level defs
        # and methods (owner ``<module>``) get no edge — merely defining
        # them does not run them.
        for node in mod.ctx.walk((ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = self._qualnames.get(id(node))
            if qual is None:
                continue
            owner = self.owner_of(mod, node)
            if owner.endswith(f":{self.MODULE_FN}"):
                continue
            self.calls.setdefault(owner, []).append(
                CallSite(caller=owner, callee=qual, node=node, path=path)
            )

    def _resolve_call(self, mod: ModuleInfo, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_function(mod.name, func.id)
        if isinstance(func, ast.Attribute):
            names = _attr_chain(func)
            if names is None:
                return None
            if names[0] in ("self", "cls") and len(names) == 2:
                cls = self.enclosing_class(mod, call)
                if cls is not None:
                    method = mod.classes.get(cls, {}).get(names[1])
                    if method is not None:
                        return self._qualnames.get(id(method))
                return None
            prefix = names[:-1]
            hit = self._module_for_chain(mod, prefix)
            if hit is not None:
                target_mod, consumed = hit
                if consumed == len(prefix):
                    return self.resolve_function(target_mod, names[-1])
        return None

    # -- callers view (for taint propagation) ------------------------------
    def reverse_calls(self) -> dict[str, list[CallSite]]:
        """callee -> call sites that reach it (deterministic order)."""
        rev: dict[str, list[CallSite]] = {}
        for caller in sorted(self.calls):
            for site in self.calls[caller]:
                rev.setdefault(site.callee, []).append(site)
        return rev

    # -- lazy analyses -----------------------------------------------------
    def taint(self):
        """The cached transitive-nondeterminism analysis (SIM010)."""
        if self._taint is None:
            from repro.lint.taint import TaintAnalysis

            self._taint = TaintAnalysis(self)
        return self._taint

    def stream_registry(self) -> Optional[dict[str, tuple[int, ...]]]:
        """The ``STREAMS`` registry parsed from ``repro/sim/rng.py``.

        Parsed from the AST, never imported (the linted tree may not be
        importable, and ``repro.sim.rng`` pulls in numpy).  ``None`` when
        the corpus has no registry to check against.
        """
        if self._stream_registry_loaded:
            return self._stream_registry
        self._stream_registry_loaded = True
        mod = self.modules.get("repro.sim.rng")
        if mod is None:
            return None
        sym = mod.symbols.get("STREAMS")
        value = getattr(sym, "value", None)
        if not isinstance(value, ast.Dict):
            return None
        registry: dict[str, tuple[int, ...]] = {}
        for key, val in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            if isinstance(val, ast.Constant) and isinstance(val.value, int):
                registry[key.value] = (val.value,)
            elif isinstance(val, (ast.Tuple, ast.List)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, int)
                for e in val.elts
            ):
                registry[key.value] = tuple(e.value for e in val.elts)
        self._stream_registry = registry or None
        return self._stream_registry
