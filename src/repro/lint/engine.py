"""Rule registry, findings, pragma handling and the file walker.

A *rule* is a callable taking a :class:`FileContext` and yielding
:class:`Finding` objects.  Rules self-register through the :func:`rule`
decorator; the CLI (:mod:`repro.lint.cli`) runs every registered rule
over every ``.py`` file under the given paths.

Two kinds of rules:

* **file rules** (the default) see one :class:`FileContext` at a time;
* **project rules** (``project=True``) see the whole-program
  :class:`repro.lint.project.ProjectContext` — import graph, symbol
  table, call graph — and yield ``(path, node_or_line, message)``
  triples anywhere in the corpus.

Scoping is declarative: ``rule(..., repro_only=True)`` limits a rule to
files under ``src/repro``; ``packages=("core", "disk")`` limits it to
``repro/<pkg>/`` subtrees (``"core/policy"`` matches the nested
directory).  ``--list-rules`` prints each rule's scope.

Suppression: a ``# lint: disable=SIM001`` comment on the finding's line
silences that rule there (comma-separate several ids; ``all`` silences
everything on the line).  Suppressions are line-scoped on purpose — a
justification comment belongs next to the code it excuses.
"""

from __future__ import annotations

import ast
import enum
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Optional


class Severity(enum.Enum):
    """How bad a finding is; only errors affect the exit code."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule=data["rule"],
            severity=Severity(data["severity"]),
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            message=data["message"],
        )

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Rule:
    """A registered check: metadata plus the callable that runs it."""

    id: str
    severity: Severity
    summary: str
    check: Callable[..., Iterator]
    #: Restrict to ``repro/<pkg>/`` subtrees ("core/policy" matches the
    #: nested directory).  Empty means no package restriction.
    packages: tuple[str, ...] = ()
    #: Restrict to files under the ``repro`` package (``src/repro/...``).
    repro_only: bool = False
    #: Whole-program rule: ``check`` receives a ProjectContext and yields
    #: ``(path, node_or_line, message)`` for any file in the corpus.
    project: bool = False

    @property
    def scope(self) -> str:
        """Human-readable scope for ``--list-rules``."""
        if self.packages:
            inner = ",".join(self.packages)
            where = f"repro/{{{inner}}}" if len(self.packages) > 1 else f"repro/{inner}"
        elif self.repro_only:
            where = "src/repro"
        else:
            where = "all files"
        return f"{where}, whole-program" if self.project else where


_REGISTRY: dict[str, Rule] = {}


def rule(
    rule_id: str,
    severity: Severity,
    summary: str,
    *,
    packages: tuple[str, ...] = (),
    repro_only: bool = False,
    project: bool = False,
):
    """Register ``fn`` as the check for ``rule_id``.

    File rules: ``fn(ctx)`` receives a :class:`FileContext` and yields
    ``(node_or_line, message)`` pairs or :class:`Finding` objects; pairs
    are wrapped into findings carrying the rule's id and severity.  The
    declared ``packages`` / ``repro_only`` scope is applied by the engine
    before ``fn`` runs, so checks need no hand-rolled path tests.

    Project rules (``project=True``): ``fn(project)`` receives a
    :class:`~repro.lint.project.ProjectContext` and yields
    ``(path, node_or_line, message)`` triples; the engine wraps them,
    applies line pragmas, and drops findings outside the linted file set.
    """

    def decorate(fn: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(
            rule_id,
            severity,
            summary,
            fn,
            packages=tuple(packages),
            repro_only=repro_only,
            project=project,
        )
        return fn

    return decorate


def all_rules() -> dict[str, Rule]:
    """The registered rules, keyed by id (import-order stable)."""
    return dict(_REGISTRY)


#: ``# lint: disable=SIM001`` / ``# lint: disable=SIM001,SIM005`` / ``=all``
_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


def _parse_pragmas(lines: list[str]) -> dict[int, set[str]]:
    disabled: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "lint:" not in text:
            continue
        m = _PRAGMA_RE.search(text)
        if m:
            ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
            disabled.setdefault(lineno, set()).update(ids)
    return disabled


class FileContext:
    """Parsed view of one source file handed to every rule.

    Exposes the AST, a child->parent map (for guard/ancestry checks), the
    raw lines, the path split into parts (for scope decisions like
    "only under ``src/repro``") and pragma bookkeeping.
    """

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = Path(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.disabled = _parse_pragmas(self.lines)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- path scope ------------------------------------------------------
    @property
    def parts(self) -> tuple[str, ...]:
        return self.path.parts

    def under_repro(self) -> bool:
        """True for files in the simulator package (``src/repro/...``)."""
        return "repro" in self.parts

    def in_packages(self, *names: str) -> bool:
        """True if the file lives under ``repro/<name>/`` for any name.

        A name may contain ``/`` to match a nested directory chain:
        ``in_packages("core/policy")`` is true only for files under
        ``repro/core/policy/``.
        """
        parts = self.parts
        if "repro" not in parts:
            return False
        tail = parts[parts.index("repro") + 1 : -1]  # dirs below repro/
        for name in names:
            seq = tuple(name.split("/"))
            n = len(seq)
            if any(tail[i : i + n] == seq for i in range(len(tail) - n + 1)):
                return True
        return False

    # -- AST helpers -----------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def walk(self, types: tuple = ()) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if not types or isinstance(node, types):
                yield node

    # -- suppression -----------------------------------------------------
    def is_disabled(self, rule_id: str, line: int) -> bool:
        ids = self.disabled.get(line)
        return bool(ids) and (rule_id in ids or "all" in ids)


def rule_applies(rule_obj: Rule, ctx: FileContext) -> bool:
    """Apply the declarative scope of a file rule to one file."""
    if rule_obj.repro_only and not ctx.under_repro():
        return False
    if rule_obj.packages and not ctx.in_packages(*rule_obj.packages):
        return False
    return True


def _as_finding(rule_obj: Rule, ctx: FileContext, item) -> Finding:
    if isinstance(item, Finding):
        return item
    node, message = item
    if isinstance(node, ast.AST):
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
    else:
        line, col = int(node), 1
    return Finding(
        rule=rule_obj.id,
        severity=rule_obj.severity,
        path=str(ctx.path),
        line=line,
        col=col,
        message=message,
    )


def _syntax_finding(path: str | Path, exc: SyntaxError) -> Finding:
    return Finding(
        rule="SYNTAX",
        severity=Severity.ERROR,
        path=str(path),
        line=exc.lineno or 1,
        col=(exc.offset or 0) or 1,
        message=f"cannot parse: {exc.msg}",
    )


def lint_source(
    source: str,
    path: str | Path = "<string>",
    select: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Run the (selected) file rules over one source string.

    Project rules need the whole corpus and are skipped here; use
    :func:`lint_paths` / :func:`run_lint` to run them.
    """
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [_syntax_finding(path, exc)]
    wanted = set(select) if select is not None else None
    findings: list[Finding] = []
    for rule_obj in _REGISTRY.values():
        if wanted is not None and rule_obj.id not in wanted:
            continue
        if rule_obj.project or not rule_applies(rule_obj, ctx):
            continue
        for item in rule_obj.check(ctx):
            finding = _as_finding(rule_obj, ctx, item)
            if not ctx.is_disabled(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return findings


def lint_file(path: str | Path, select: Optional[Iterable[str]] = None) -> list[Finding]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path, select)


def iter_py_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files.

    Deduplicated by resolved path: overlapping arguments (``src/
    src/repro/serve``) or a file named twice yield each file exactly
    once, so no finding is ever reported twice.
    """
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py" and p.is_file():
            candidates = [p]
        else:
            continue
        for q in candidates:
            resolved = q.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield q


@dataclass
class LintReport:
    """One lint run's full result: findings plus run metadata."""

    findings: list[Finding]
    files_checked: int
    #: Cumulative seconds per rule id (project rules measured once,
    #: file rules summed over files); rounded so a cache replay is
    #: byte-identical to the original run.
    rule_seconds: dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]


def _wrap_project_item(rule_obj: Rule, item, contexts) -> Optional[Finding]:
    """Turn a project-rule yield into a Finding, honouring pragmas."""
    if isinstance(item, Finding):
        finding = item
    else:
        path, node, message = item
        if isinstance(node, ast.AST):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
        else:
            line, col = int(node), 1
        finding = Finding(
            rule=rule_obj.id,
            severity=rule_obj.severity,
            path=str(path),
            line=line,
            col=col,
            message=message,
        )
    ctx = contexts.get(Path(finding.path).resolve())
    if ctx is not None and ctx.is_disabled(finding.rule, finding.line):
        return None
    return finding


def run_lint(
    paths: Iterable[str | Path],
    select: Optional[Iterable[str]] = None,
    *,
    cache_dir: str | Path | None = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``; the full-fat entry point.

    Runs file rules per file and project rules once over the whole
    analysis corpus (the linted files plus, when any project rule is
    selected, every file of each ``repro`` package touched — so
    cross-module analysis sees the whole program even for a partial
    path argument).  Findings outside the linted set are dropped.

    With ``cache_dir`` set, the run is keyed by a content digest of the
    rule set and the corpus (:mod:`repro.lint.cache`); a warm hit replays
    the stored findings and timings byte-identically without parsing.
    """
    from repro.lint import cache as findings_cache

    wanted = set(select) if select is not None else None
    rules = [r for r in _REGISTRY.values() if wanted is None or r.id in wanted]
    rule_ids = [r.id for r in rules]
    project_rules = [r for r in rules if r.project]

    linted = list(iter_py_files(paths))
    linted_resolved = {p.resolve() for p in linted}
    sources: list[tuple[Path, str]] = []
    for p in linted:
        sources.append((p, p.read_text(encoding="utf-8")))

    corpus_extra: list[tuple[Path, str]] = []
    if project_rules:
        from repro.lint.project import discover_corpus

        for extra in discover_corpus(linted):
            if extra.resolve() not in linted_resolved:
                corpus_extra.append((extra, extra.read_text(encoding="utf-8")))

    key = None
    if cache_dir is not None:
        entries = [
            (str(p), findings_cache.content_digest(src), True) for p, src in sources
        ] + [
            (str(p), findings_cache.content_digest(src), False)
            for p, src in corpus_extra
        ]
        key = findings_cache.run_key(rule_ids, entries)
        entry = findings_cache.load(cache_dir, key)
        if entry is not None:
            return LintReport(
                findings=[Finding.from_dict(d) for d in entry["findings"]],
                files_checked=int(entry["files_checked"]),
                rule_seconds=dict(entry["rule_seconds"]),
                cache_hit=True,
            )

    findings: list[Finding] = []
    seconds: dict[str, float] = {r.id: 0.0 for r in rules}
    contexts: dict[Path, FileContext] = {}  # resolved path -> ctx (corpus)
    linted_ctxs: list[FileContext] = []
    for p, src in sources:
        try:
            ctx = FileContext(p, src)
        except SyntaxError as exc:
            findings.append(_syntax_finding(p, exc))
            continue
        contexts[p.resolve()] = ctx
        linted_ctxs.append(ctx)
    for p, src in corpus_extra:
        try:
            contexts[p.resolve()] = FileContext(p, src)
        except SyntaxError:
            continue  # not linted here; its own lint run reports it

    for rule_obj in rules:
        if rule_obj.project:
            continue
        t0 = time.perf_counter()
        for ctx in linted_ctxs:
            if not rule_applies(rule_obj, ctx):
                continue
            for item in rule_obj.check(ctx):
                finding = _as_finding(rule_obj, ctx, item)
                if not ctx.is_disabled(finding.rule, finding.line):
                    findings.append(finding)
        seconds[rule_obj.id] += time.perf_counter() - t0

    if project_rules:
        from repro.lint.project import ProjectContext

        t0 = time.perf_counter()
        project = ProjectContext(contexts, linted=linted_resolved)
        build_s = time.perf_counter() - t0
        for rule_obj in project_rules:
            t0 = time.perf_counter()
            for item in rule_obj.check(project):
                finding = _wrap_project_item(rule_obj, item, contexts)
                if finding is None:
                    continue
                if Path(finding.path).resolve() not in linted_resolved:
                    continue
                findings.append(finding)
            seconds[rule_obj.id] += time.perf_counter() - t0
        # Charge corpus construction evenly to the rules that need it.
        for rule_obj in project_rules:
            seconds[rule_obj.id] += build_s / len(project_rules)

    findings.sort(key=lambda f: f.sort_key)
    rule_seconds = {rid: round(s, 6) for rid, s in seconds.items()}
    report = LintReport(
        findings=findings,
        files_checked=len(linted),
        rule_seconds=rule_seconds,
    )
    if cache_dir is not None and key is not None:
        findings_cache.store(
            cache_dir,
            key,
            {
                "findings": [f.to_dict() for f in report.findings],
                "files_checked": report.files_checked,
                "rule_seconds": report.rule_seconds,
            },
        )
    return report


def lint_paths(
    paths: Iterable[str | Path],
    select: Optional[Iterable[str]] = None,
    *,
    cache_dir: str | Path | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; findings come back sorted."""
    return run_lint(paths, select, cache_dir=cache_dir).findings
