"""Rule registry, findings, pragma handling and the file walker.

A *rule* is a callable taking a :class:`FileContext` and yielding
:class:`Finding` objects.  Rules self-register through the :func:`rule`
decorator; the CLI (:mod:`repro.lint.cli`) runs every registered rule
over every ``.py`` file under the given paths.

Suppression: a ``# lint: disable=SIM001`` comment on the finding's line
silences that rule there (comma-separate several ids; ``all`` silences
everything on the line).  Suppressions are line-scoped on purpose — a
justification comment belongs next to the code it excuses.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Optional


class Severity(enum.Enum):
    """How bad a finding is; only errors affect the exit code."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Rule:
    """A registered check: metadata plus the callable that runs it."""

    id: str
    severity: Severity
    summary: str
    check: Callable[["FileContext"], Iterator[Finding]]


_REGISTRY: dict[str, Rule] = {}


def rule(rule_id: str, severity: Severity, summary: str):
    """Register ``fn`` as the check for ``rule_id``.

    ``fn(ctx)`` receives a :class:`FileContext` and yields
    ``(node_or_line, message)`` pairs or :class:`Finding` objects; pairs
    are wrapped into findings carrying the rule's id and severity.
    """

    def decorate(fn: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(rule_id, severity, summary, fn)
        return fn

    return decorate


def all_rules() -> dict[str, Rule]:
    """The registered rules, keyed by id (import-order stable)."""
    return dict(_REGISTRY)


#: ``# lint: disable=SIM001`` / ``# lint: disable=SIM001,SIM005`` / ``=all``
_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


def _parse_pragmas(lines: list[str]) -> dict[int, set[str]]:
    disabled: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "lint:" not in text:
            continue
        m = _PRAGMA_RE.search(text)
        if m:
            ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
            disabled.setdefault(lineno, set()).update(ids)
    return disabled


class FileContext:
    """Parsed view of one source file handed to every rule.

    Exposes the AST, a child->parent map (for guard/ancestry checks), the
    raw lines, the path split into parts (for scope decisions like
    "only under ``src/repro``") and pragma bookkeeping.
    """

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = Path(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.disabled = _parse_pragmas(self.lines)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- path scope ------------------------------------------------------
    @property
    def parts(self) -> tuple[str, ...]:
        return self.path.parts

    def under_repro(self) -> bool:
        """True for files in the simulator package (``src/repro/...``)."""
        return "repro" in self.parts

    def in_packages(self, *names: str) -> bool:
        """True if the file lives under ``repro/<name>/`` for any name."""
        parts = self.parts
        if "repro" not in parts:
            return False
        tail = parts[parts.index("repro") + 1 :]
        return any(name in tail[:-1] for name in names)

    # -- AST helpers -----------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def walk(self, types: tuple = ()) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if not types or isinstance(node, types):
                yield node

    # -- suppression -----------------------------------------------------
    def is_disabled(self, rule_id: str, line: int) -> bool:
        ids = self.disabled.get(line)
        return bool(ids) and (rule_id in ids or "all" in ids)


def _as_finding(rule_obj: Rule, ctx: FileContext, item) -> Finding:
    if isinstance(item, Finding):
        return item
    node, message = item
    if isinstance(node, ast.AST):
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
    else:
        line, col = int(node), 1
    return Finding(
        rule=rule_obj.id,
        severity=rule_obj.severity,
        path=str(ctx.path),
        line=line,
        col=col,
        message=message,
    )


def lint_source(
    source: str,
    path: str | Path = "<string>",
    select: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Run the (selected) rules over one source string."""
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="SYNTAX",
                severity=Severity.ERROR,
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                message=f"cannot parse: {exc.msg}",
            )
        ]
    wanted = set(select) if select is not None else None
    findings: list[Finding] = []
    for rule_obj in _REGISTRY.values():
        if wanted is not None and rule_obj.id not in wanted:
            continue
        for item in rule_obj.check(ctx):
            finding = _as_finding(rule_obj, ctx, item)
            if not ctx.is_disabled(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return findings


def lint_file(path: str | Path, select: Optional[Iterable[str]] = None) -> list[Finding]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path, select)


def iter_py_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py" and p.is_file():
            yield p


def lint_paths(
    paths: Iterable[str | Path], select: Optional[Iterable[str]] = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; findings come back sorted."""
    findings: list[Finding] = []
    for path in iter_py_files(paths):
        findings.extend(lint_file(path, select))
    findings.sort(key=lambda f: f.sort_key)
    return findings
