"""Policy-architecture rules (SIM007).

The layered scheme architecture (:mod:`repro.core.policy`) hinges on the
policy objects being **stateless**: one placement / dispatch / completion
/ reaction / write instance is shared by every scheme instance built from
the same composition, across trials and across schemes.  An instance
attribute written during an access would leak state between trials (and
between *schemes* sharing the singleton), breaking the determinism
contract the goldens pin down.  Per-access state belongs in the tracker
objects (:mod:`repro.core.trackers`) or in local variables.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Severity, rule

#: Methods allowed to initialise instance state.  ``__post_init__``
#: covers dataclass-style construction (frozen dataclasses route their
#: writes through ``object.__setattr__`` there).
_CTOR_METHODS = {"__init__", "__post_init__", "__new__", "__set_name__"}


def _self_name(func: ast.AST) -> str | None:
    """The receiver argument's name, or ``None`` for staticmethods."""
    for deco in getattr(func, "decorator_list", []):
        if isinstance(deco, ast.Name) and deco.id == "staticmethod":
            return None
    args = func.args.posonlyargs + func.args.args
    return args[0].arg if args else None


def _attr_writes(func: ast.AST, receiver: str) -> Iterator[ast.AST]:
    """Attribute-assignment targets on ``receiver`` anywhere in ``func``."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue  # a bare annotation stores nothing
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, (ast.Store, ast.Del))
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == receiver
                    ):
                        yield sub
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == receiver
                ):
                    yield target


@rule(
    "SIM007",
    Severity.ERROR,
    "policy classes under repro/core/policy must be stateless",
    packages=("core/policy",),
)
def check_policy_stateless(ctx: FileContext) -> Iterator:
    """Flag instance-attribute writes outside constructors in policy classes.

    Scope: class bodies in files under ``repro/core/policy/`` (declared
    in the registry).  Module functions and constructor methods
    (``__init__``/``__post_init__``) are exempt; everything else a
    method writes must be a local or live in an explicitly stateful
    object passed in (tracker, scheme, run).
    """
    for cls in ctx.walk((ast.ClassDef,)):
        for func in cls.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name in _CTOR_METHODS:
                continue
            receiver = _self_name(func)
            if receiver is None:
                continue
            for write in _attr_writes(func, receiver):
                yield write, (
                    f"policy class {cls.name!r} writes instance attribute "
                    f"{receiver}.{write.attr} in {func.name}(); policy layers "
                    "are shared singletons and must stay stateless — keep "
                    "per-access state in a tracker or a local variable"
                )
