"""Serving-simulation rules (SIM009).

The ``repro.serve`` determinism contract mirrors ``repro.exec``'s
(SIM008) but is stricter: a serving cell is a pure function of
``(plan, scheme)``, so the package may contain *no* entropy that is not
derived from the plan's seed.  That bans three families:

* wall-clock, PID and UUID-derived values (the SIM008 set) — they make
  equal payloads produce different reports;
* *unseeded* RNG construction — ``random.Random()``, ``random.SystemRandom``,
  ``np.random.default_rng()`` / ``RandomState()`` with no seed — which is
  fresh OS entropy wearing a deterministic API;
* module-level ``random.*`` / ``np.random.*`` draws (global-state RNG) —
  SIM002 flags these repo-wide, but inside ``serve`` they additionally
  break the payload contract, so SIM009 reports them in its own right
  (the two rules protect different contracts, as SIM001/SIM008 do).

Everything stochastic in ``repro.serve`` must flow through the cell's
:class:`repro.sim.rng.RngHub` or a ``Generator`` injected from it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Severity, rule
from repro.lint.rules_exec import _OS_PROCESS_FNS, _UUID_NONDET_FNS
from repro.lint.rules_sim import (
    _NP_GLOBAL_FNS,
    _TIME_CLOCK_FNS,
    _from_imports,
    _is_np_random,
    _module_aliases,
)

#: Unseeded-entropy constructors: deterministic-looking APIs that draw a
#: fresh OS seed when called with no arguments.
_UNSEEDED_CTORS = {"default_rng", "RandomState", "Random", "SeedSequence"}

_HINT = (
    "a serving cell must be a pure function of (plan, scheme) — draw "
    "from the cell's RngHub (or a Generator derived from it) instead"
)


@rule(
    "SIM009",
    Severity.ERROR,
    "no unseeded RNG / wall-clock / PID / UUID entropy inside repro.serve — "
    "serving cells must reproduce from their plan seed alone",
    packages=("serve",),
)
def check_serve_determinism(ctx: FileContext) -> Iterator:
    flagged = {
        "time": (_module_aliases(ctx.tree, "time"), _TIME_CLOCK_FNS),
        "os": (_module_aliases(ctx.tree, "os"), _OS_PROCESS_FNS),
        "uuid": (_module_aliases(ctx.tree, "uuid"), _UUID_NONDET_FNS),
        "secrets": (_module_aliases(ctx.tree, "secrets"), None),
    }
    from_names = {
        local: (module, orig)
        for module, (_aliases, fns) in flagged.items()
        for local, orig in _from_imports(ctx.tree, module).items()
        if fns is None or orig in fns
    }
    np_aliases = _module_aliases(ctx.tree, "numpy") | {"np"}
    random_aliases = _module_aliases(ctx.tree, "random")
    npr_names = _from_imports(ctx.tree, "numpy.random")
    stdlib_rng_names = _from_imports(ctx.tree, "random")

    for node in ctx.walk((ast.Call,)):
        func = node.func
        unseeded = not node.args and not node.keywords
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if _is_np_random(func.value, np_aliases):
                if attr in _NP_GLOBAL_FNS:
                    yield node, (
                        f"global-state RNG call np.random.{attr}() inside "
                        f"repro.serve; {_HINT}"
                    )
                elif attr in _UNSEEDED_CTORS and unseeded:
                    yield node, (
                        f"np.random.{attr}() without a seed draws OS "
                        f"entropy; {_HINT}"
                    )
                continue
            if not isinstance(func.value, ast.Name):
                continue
            base = func.value.id
            for module, (aliases, fns) in flagged.items():
                if base in aliases and (fns is None or attr in fns):
                    yield node, (
                        f"{module}.{attr}() inside repro.serve; {_HINT}"
                    )
                    break
            else:
                if base in random_aliases:
                    if attr == "SystemRandom" or (
                        attr == "Random" and unseeded
                    ):
                        yield node, (
                            f"unseeded random.{attr}() draws OS entropy; {_HINT}"
                        )
                    elif attr not in ("Random", "SystemRandom"):
                        yield node, (
                            f"global-state RNG call random.{attr}() inside "
                            f"repro.serve; {_HINT}"
                        )
        elif isinstance(func, ast.Name):
            if func.id in from_names:
                module, orig = from_names[func.id]
                yield node, (
                    f"{func.id}() (imported from {module}.{orig}) inside "
                    f"repro.serve; {_HINT}"
                )
            elif npr_names.get(func.id) in _UNSEEDED_CTORS and unseeded:
                yield node, (
                    f"{func.id}() (from numpy.random) without a seed draws "
                    f"OS entropy; {_HINT}"
                )
            elif npr_names.get(func.id) in _NP_GLOBAL_FNS:
                yield node, (
                    f"global-state RNG call {func.id}() (from numpy.random) "
                    f"inside repro.serve; {_HINT}"
                )
            elif func.id in stdlib_rng_names:
                orig = stdlib_rng_names[func.id]
                if orig == "SystemRandom" or (orig == "Random" and unseeded):
                    yield node, (
                        f"unseeded {func.id}() (from random) draws OS "
                        f"entropy; {_HINT}"
                    )
                elif orig not in ("Random", "SystemRandom", "getstate"):
                    yield node, (
                        f"global-state RNG call {func.id}() (from random) "
                        f"inside repro.serve; {_HINT}"
                    )
