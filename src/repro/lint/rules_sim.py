"""Simulator-specific rules: determinism and the DES timeline (SIM001-SIM004).

These rules encode the kernel's contracts:

* all time comes from ``Environment.now`` (simulated seconds) — wall-clock
  reads make runs irreproducible (SIM001);
* all randomness flows through an :class:`repro.sim.rng.RngHub` stream or
  an injected ``np.random.Generator`` — global RNG state couples
  components and breaks seed isolation (SIM002);
* simulated times are floats accumulated through an event heap, so exact
  ``==``/``!=`` on them is a latent heisenbug (SIM003);
* every tracer record call on a hot path must sit behind the
  ``tracer.enabled`` guard so the default ``NullTracer`` costs nothing
  (SIM004, the PR-1 zero-cost contract).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Severity, rule

# ---------------------------------------------------------------------------
# import tracking helpers


def _module_aliases(tree: ast.AST, module: str) -> set[str]:
    """Local names bound to ``module`` via ``import module [as alias]``."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module or alias.name.startswith(module + "."):
                    aliases.add((alias.asname or alias.name).split(".")[0])
    return aliases


def _from_imports(tree: ast.AST, module: str) -> dict[str, str]:
    """``{local_name: original_name}`` for ``from module import ...``."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


def _trailing_name(node: ast.AST) -> str | None:
    """The final identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# ---------------------------------------------------------------------------
# SIM001 — no wall-clock time inside the simulator

_TIME_CLOCK_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "localtime",
    "gmtime",
    "ctime",
}
_DATETIME_CLOCK_FNS = {"now", "utcnow", "today"}


@rule(
    "SIM001",
    Severity.ERROR,
    "no wall-clock reads inside src/repro — use Environment.now",
    repro_only=True,
)
def check_wall_clock(ctx: FileContext) -> Iterator:
    time_aliases = _module_aliases(ctx.tree, "time")
    time_names = {
        local
        for local, orig in _from_imports(ctx.tree, "time").items()
        if orig in _TIME_CLOCK_FNS
    }
    datetime_aliases = _module_aliases(ctx.tree, "datetime") | {
        local
        for local, orig in _from_imports(ctx.tree, "datetime").items()
        if orig in ("datetime", "date")
    }
    for node in ctx.walk((ast.Call,)):
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in time_aliases
                and func.attr in _TIME_CLOCK_FNS
            ):
                yield node, (
                    f"wall-clock read time.{func.attr}() in simulator code; "
                    "use Environment.now (simulated seconds) instead"
                )
            elif func.attr in _DATETIME_CLOCK_FNS and (
                _trailing_name(base) in ({"datetime", "date"} | datetime_aliases)
            ):
                yield node, (
                    f"wall-clock read {_trailing_name(base)}.{func.attr}() in "
                    "simulator code; use Environment.now instead"
                )
        elif isinstance(func, ast.Name) and func.id in time_names:
            yield node, (
                f"wall-clock read {func.id}() (imported from time); "
                "use Environment.now instead"
            )


# ---------------------------------------------------------------------------
# SIM002 — no global RNG state

#: ``random.Random(seed)`` / ``random.SystemRandom`` construct private
#: instances, which is fine; everything else on the module mutates the
#: shared global generator.
_STDLIB_RNG_ALLOWED = {"Random", "SystemRandom", "getstate"}

#: Legacy ``np.random.*`` module-level functions that read or mutate the
#: process-global RandomState.
_NP_GLOBAL_FNS = {
    "seed", "get_state", "set_state", "random", "random_sample", "ranf",
    "sample", "rand", "randn", "randint", "random_integers", "bytes",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "exponential", "standard_exponential", "poisson",
    "binomial", "negative_binomial", "geometric", "hypergeometric",
    "gamma", "standard_gamma", "beta", "chisquare", "noncentral_chisquare",
    "standard_t", "standard_cauchy", "f", "noncentral_f", "zipf", "pareto",
    "lognormal", "laplace", "weibull", "triangular", "vonmises",
    "rayleigh", "wald", "power", "gumbel", "logistic", "logseries",
    "multinomial", "multivariate_normal", "dirichlet",
}  # fmt: skip


def _is_np_random(node: ast.AST, np_aliases: set[str]) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in np_aliases
    )


#: Constructors whose argument is a seed; deriving that seed from builtin
#: ``hash()`` is nondeterministic (strings are salted by PYTHONHASHSEED).
_SEEDED_CTORS = {
    "default_rng",
    "RandomState",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "Random",
    "RngHub",
    "seed",
}


def _hash_calls(node: ast.AST):
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "hash"
        ):
            yield sub


@rule(
    "SIM002",
    Severity.ERROR,
    "no global RNG — draw from an RngHub stream or an injected Generator",
)
def check_global_rng(ctx: FileContext) -> Iterator:
    np_aliases = _module_aliases(ctx.tree, "numpy") | {"np"}
    random_aliases = _module_aliases(ctx.tree, "random")
    stdlib_names = {
        local
        for local, orig in _from_imports(ctx.tree, "random").items()
        if orig not in _STDLIB_RNG_ALLOWED
    }
    npr_names = _from_imports(ctx.tree, "numpy.random")
    hint = "route randomness through an RngHub stream or an injected np.random.Generator"
    for node in ctx.walk((ast.Call,)):
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in random_aliases
                and func.attr not in _STDLIB_RNG_ALLOWED
            ):
                yield node, f"global RNG call random.{func.attr}(); {hint}"
            elif _is_np_random(base, np_aliases):
                if func.attr in _NP_GLOBAL_FNS:
                    yield node, f"global RNG call np.random.{func.attr}(); {hint}"
                elif func.attr in ("default_rng", "RandomState") and not (
                    node.args or node.keywords
                ):
                    yield node, (
                        f"np.random.{func.attr}() without a seed is "
                        f"nondeterministic; {hint}"
                    )
            ctor = func.attr
            if ctor in _SEEDED_CTORS:
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    for h in _hash_calls(arg):
                        yield h, (
                            f"seed for {ctor}(...) derived from builtin hash(); "
                            "string hashes are salted per process by "
                            "PYTHONHASHSEED — use repro.sim.rng.stable_seed "
                            "or an RngHub stream"
                        )
        elif isinstance(func, ast.Name):
            if func.id in _SEEDED_CTORS or npr_names.get(func.id) in _SEEDED_CTORS:
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    for h in _hash_calls(arg):
                        yield h, (
                            f"seed for {func.id}(...) derived from builtin "
                            "hash(); string hashes are salted per process by "
                            "PYTHONHASHSEED — use repro.sim.rng.stable_seed "
                            "or an RngHub stream"
                        )
            if func.id in stdlib_names:
                yield node, f"global RNG call {func.id}() (from random); {hint}"
            elif npr_names.get(func.id) in _NP_GLOBAL_FNS:
                yield node, (
                    f"global RNG call {func.id}() (from numpy.random); {hint}"
                )
            elif npr_names.get(func.id) in ("default_rng", "RandomState") and not (
                node.args or node.keywords
            ):
                yield node, (
                    f"{func.id}() without a seed is nondeterministic; {hint}"
                )


# ---------------------------------------------------------------------------
# SIM003 — no exact float equality on simulated-time expressions


def _called_attrs(node: ast.AST) -> set[int]:
    """ids of Attribute nodes that are the func of a Call within ``node``."""
    return {
        id(sub.func)
        for sub in ast.walk(node)
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)
    }


@rule(
    "SIM003",
    Severity.ERROR,
    "no float ==/!= on simulated-time expressions",
)
def check_time_equality(ctx: FileContext) -> Iterator:
    for node in ctx.walk((ast.Compare,)):
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        called = _called_attrs(node)
        for operand in operands:
            hit = False
            for sub in ast.walk(operand):
                if isinstance(sub, ast.Attribute) and sub.attr == "now":
                    if id(sub) not in called:  # `.now(...)` call is SIM001
                        hit = True
                        break
                elif isinstance(sub, ast.Name) and sub.id == "now":
                    hit = True
                    break
            if hit:
                yield node, (
                    "exact ==/!= on a simulated-time expression; simulated "
                    "times are accumulated floats — compare with a tolerance "
                    "(math.isclose) or use ordered comparisons"
                )
                break


# ---------------------------------------------------------------------------
# SIM004 — tracer record calls on hot paths must be enabled-guarded

_TRACER_RECORD_METHODS = {
    "span",
    "instant",
    "counter",
    "count",
    "begin",
    "end",
    "account_bytes",
}

_HOT_PACKAGES = ("core", "disk", "cluster")


def _is_tracer_ref(node: ast.AST) -> bool:
    """True for ``tracer`` / ``self.tracer`` / ``cluster.tracer`` etc."""
    name = _trailing_name(node)
    return name is not None and name.endswith("tracer")


def _test_guards_tracer(test: ast.AST) -> bool:
    """True if ``test`` reads ``<tracer>.enabled`` somewhere."""
    for sub in ast.walk(test):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr in ("enabled", "detail")
            and _is_tracer_ref(sub.value)
        ):
            return True
    return False


def _has_early_return_guard(func: ast.AST, call: ast.Call) -> bool:
    """True if a ``if not tracer.enabled: return`` precedes ``call``.

    Only top-level statements of the enclosing function are considered —
    the idiom used throughout ``core/access.py``.
    """
    body = getattr(func, "body", [])
    for stmt in body:
        if stmt.lineno >= call.lineno:
            break
        if (
            isinstance(stmt, ast.If)
            and isinstance(stmt.test, ast.UnaryOp)
            and isinstance(stmt.test.op, ast.Not)
            and _test_guards_tracer(stmt.test)
            and stmt.body
            and isinstance(stmt.body[-1], (ast.Return, ast.Raise, ast.Continue))
        ):
            return True
    return False


@rule(
    "SIM004",
    Severity.ERROR,
    "tracer record calls in core/, disk/, cluster/ must be guarded by tracer.enabled",
    packages=_HOT_PACKAGES,
)
def check_tracer_guard(ctx: FileContext) -> Iterator:
    for node in ctx.walk((ast.Call,)):
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _TRACER_RECORD_METHODS
            and _is_tracer_ref(func.value)
        ):
            continue
        guarded = False
        enclosing_func = None
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.If, ast.IfExp)) and _test_guards_tracer(
                ancestor.test
            ):
                guarded = True
                break
            if enclosing_func is None and isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                enclosing_func = ancestor
        if not guarded and enclosing_func is not None:
            guarded = _has_early_return_guard(enclosing_func, node)
        if not guarded:
            yield node, (
                f"tracer.{func.attr}(...) on a hot path without a "
                "`tracer.enabled` guard; wrap it in `if tracer.enabled:` so "
                "the NullTracer default stays zero-cost"
            )
