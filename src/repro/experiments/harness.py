"""Trial runner: one (scheme, configuration) point -> MetricSummary.

Each trial redraws the per-disk random state (in-disk layout, zone,
competitive load — §6.2.5's sources of variation), randomly selects the
access's disks, and runs the scheme's read and/or write procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.cluster.server import Cluster
from repro.core.access import AccessConfig, AccessResult
from repro.core.pipeline import scheme_class
from repro.disk.workload import InDiskLayout
from repro.experiments import config as C
from repro.metrics.stats import MetricSummary, summarize
from repro.obs.tracer import current_tracer
from repro.sim.core import Environment
from repro.sim.rng import RngHub


@dataclass(frozen=True)
class TrialPlan:
    """One experiment point.

    Attributes
    ----------
    access:
        Access parameters (data size, block size, #disks, redundancy).
    mode:
        ``read`` — fresh balanced read; ``write`` — a write access;
        ``raw`` — write, redraw disk performance, then read the resulting
        (unbalanced, for RobuSTore) placement.
    layout:
        ``None`` = heterogeneous per-disk draws; otherwise every disk uses
        this in-disk layout (homogeneous environment).
    fixed_zone:
        Pin all data to one zone (homogeneous media rate).
    background:
        ``none``; ``homogeneous`` (every disk loaded at ``bg_interval_s``);
        ``heterogeneous`` (per-disk interval drawn from
        ``BG_INTERVAL_RANGE_S`` each trial, §6.3.2).
    """

    access: AccessConfig
    mode: str = "read"
    pool: int = C.POOL_DISKS
    rtt_s: float = C.BASELINE_RTT_S
    fs_cache_bytes: int = 0
    layout: Optional[InDiskLayout] = None
    fixed_zone: Optional[int] = None
    background: str = "none"
    bg_interval_s: float = 0.05
    trials: int = field(default_factory=C.trials)
    seed: int = 0
    #: Simulated gap between a write and its later read (``raw`` mode):
    #: competing traffic during the gap ages the filesystem caches, so
    #: re-reads get partial (not total) hit rates — and trial-to-trial
    #: hit-rate spread, the extra latency variation of Fig 6-36.
    cache_aging_window_s: float = 1000.0
    #: Disks (drawn randomly per trial) that fail and never respond.
    failed_disks: int = 0
    #: Fixed mid-operation fault schedule installed for every trial
    #: (:class:`repro.faults.plan.FaultPlan`); ``None`` = no timed faults.
    fault_plan: Optional[object] = None
    #: Stochastic fault storm: a :class:`repro.faults.model.FaultModel`
    #: sampled per (scheme, trial) from its own seeded stream, so fault
    #: draws never perturb the other random streams.  Mutually exclusive
    #: with ``fault_plan``.
    fault_model: Optional[object] = None
    #: Sampling horizon (simulated seconds) for ``fault_model`` storms.
    fault_horizon_s: float = 60.0
    #: Simulation engine: ``closed`` (vectorised closed form) or ``event``
    #: (the event-driven reference engine).  Defaults from ``REPRO_ENGINE``
    #: (the runner's ``--engine`` flag sets it); an explicit ``engine=``
    #: argument to :func:`run_scheme` still overrides the plan.
    engine: str = field(default_factory=C.engine)

    def __post_init__(self) -> None:
        if self.mode not in ("read", "write", "raw"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.background not in ("none", "homogeneous", "heterogeneous"):
            raise ValueError(f"unknown background mode {self.background!r}")
        if self.fault_plan is not None and self.fault_model is not None:
            raise ValueError("fault_plan and fault_model are mutually exclusive")
        if self.engine not in ("closed", "event"):
            raise ValueError(f"unknown engine {self.engine!r}")

    def bg_intervals(self, rng: np.random.Generator) -> Optional[dict[int, float]]:
        if self.background == "none":
            return None
        if self.background == "homogeneous":
            return {d: self.bg_interval_s for d in range(self.pool)}
        if self.background == "heterogeneous":
            lo, hi = C.BG_INTERVAL_RANGE_S
            return {d: float(rng.uniform(lo, hi)) for d in range(self.pool)}
        raise ValueError(f"unknown background mode {self.background!r}")


def _engine_read(scheme, name: str, trial: int, engine: str) -> AccessResult:
    if engine == "event":
        from repro.core.reference import reference_read

        return reference_read(scheme, name, trial=trial).result
    return scheme.read(name, trial)


def _engine_write(scheme, name: str, trial: int, engine: str) -> AccessResult:
    if engine == "event":
        from repro.core.reference import reference_write

        return reference_write(scheme, name, trial=trial)
    return scheme.write(name, trial)


def _run_trial(plan: TrialPlan, scheme, cluster: Cluster, hub: RngHub,
               scheme_name: str, trial: int, engine: str = "closed") -> AccessResult:
    """One trial: redraw the environment, run the scheme's access(es).

    Identical between the traced and untraced paths, so installing a tracer
    never changes simulation results (the RNG stream is untouched).
    ``engine`` selects the closed-form evaluator (``"closed"``) or the
    event-driven reference engine (``"event"``) — same environment redraw,
    same fault plan, same policy layer.
    """
    env_rng = hub.fresh("env", scheme_name, trial)
    failed = (
        set(map(int, env_rng.choice(plan.pool, plan.failed_disks, replace=False)))
        if plan.failed_disks
        else None
    )
    cluster.redraw_disk_states(
        env_rng,
        layout=plan.layout,
        background_intervals=plan.bg_intervals(env_rng),
        fixed_zone=plan.fixed_zone,
        failed_disks=failed,
    )
    if plan.fault_plan is not None:
        cluster.install_faults(plan.fault_plan)
    elif plan.fault_model is not None:
        fault_rng = hub.fresh("faults", scheme_name, trial)
        cluster.install_faults(
            plan.fault_model.sample_plan(
                fault_rng, plan.pool, plan.fault_horizon_s, n_filers=cluster.n_filers
            )
        )
    else:
        cluster.install_faults(None)
    if cluster.faults is not None and cluster.tracer.enabled:
        cluster.faults.emit_trace(cluster.tracer)
    name = f"f-{scheme_name}-{trial}"
    if plan.mode == "read":
        scheme.prepare(name, trial)
        return _engine_read(scheme, name, trial, engine)
    elif plan.mode == "write":
        return _engine_write(scheme, name, trial, engine)
    elif plan.mode == "raw":
        _engine_write(scheme, name, trial, engine)
        env_rng2 = hub.fresh("env2", scheme_name, trial)
        cluster.redraw_disk_states(
            env_rng2,
            layout=plan.layout,
            background_intervals=plan.bg_intervals(env_rng2),
            fixed_zone=plan.fixed_zone,
        )
        # Competing traffic between the write and the later read ages
        # the shared filesystem caches (§6.3.3).
        cluster.age_caches(plan.cache_aging_window_s)
        return _engine_read(scheme, name, trial, engine)
    raise ValueError(f"unknown mode {plan.mode!r}")


#: Simulated idle gap between consecutive trials on the traced timeline —
#: keeps trials visually separate in chrome://tracing.
TRACE_TRIAL_GAP_S = 0.05


def run_scheme(
    plan: TrialPlan, scheme_name: str, tracer=None, engine: str | None = None
) -> list[AccessResult]:
    """Run all trials of one scheme under ``plan``.

    ``tracer`` defaults to the ambient tracer installed with
    :func:`repro.obs.use_tracer` (the no-op tracer otherwise).  With a live
    tracer, trials are sequenced by a process on the DES kernel so every
    trial's events land at a distinct place on one global simulated
    timeline — and the kernel's own process/event instrumentation appears
    in the trace alongside drive, filer and scheme spans.

    ``engine="event"`` runs every access on the event-driven reference
    engine instead of the closed form — same trial structure, same
    environment redraws, different clock.  ``None`` (the default) takes
    the plan's ``engine`` field, which in turn defaults from
    ``REPRO_ENGINE`` / the runner's ``--engine`` flag.
    """
    if engine is None:
        engine = plan.engine
    if engine not in ("closed", "event"):
        raise ValueError(f"unknown engine {engine!r}")
    cls = scheme_class(scheme_name)  # raises ValueError for unknown names
    tracer = tracer if tracer is not None else current_tracer()
    access = plan.access
    override = cls.spec.redundancy_override
    if override is not None:
        access = replace(access, redundancy=override)
    hub = RngHub(plan.seed)
    cluster = Cluster(
        n_disks=plan.pool,
        disks_per_filer=C.DISKS_PER_FILER,
        rtt_s=plan.rtt_s,
        fs_cache_bytes=plan.fs_cache_bytes,
        cache_line_bytes=access.block_bytes,
        tracer=tracer,
    )
    scheme = cls(cluster, access, hub=hub)
    results: list[AccessResult] = []

    if not tracer.enabled:
        for trial in range(plan.trials):
            results.append(
                _run_trial(plan, scheme, cluster, hub, scheme_name, trial, engine)
            )
        return results

    # Traced run: a DES driver process advances the virtual clock past each
    # trial's latency, placing trial t at the global time where trial t-1
    # ended.  Trial-internal emitters use trial-local times, mapped onto
    # the global timeline via the tracer offset; the kernel always emits
    # while offset == base, so its env-relative times line up exactly.
    base = tracer.offset
    env = Environment(tracer=tracer)

    def one_trial(trial: int):
        tracer.offset = base + env.now
        try:
            result = _run_trial(
                plan, scheme, cluster, hub, scheme_name, trial, engine
            )
        finally:
            tracer.offset = base
        results.append(result)
        lat = result.latency_s
        span = lat if np.isfinite(lat) and lat > 0 else 0.0
        yield env.timeout(span + TRACE_TRIAL_GAP_S)

    def driver():
        for trial in range(plan.trials):
            yield env.process(one_trial(trial), name=f"{scheme_name}/trial{trial}")

    env.process(driver(), name=f"run:{scheme_name}")
    env.run()
    # Next scheme (or experiment) continues after this run on the timeline.
    tracer.offset = base + env.now
    return results


def run_point(
    plan: TrialPlan, schemes: Sequence[str] = C.ALL_SCHEMES, tracer=None
) -> dict[str, MetricSummary]:
    """Run every scheme at one configuration point.

    Submits one :class:`repro.exec.job.Job` per scheme through the ambient
    executor (:func:`repro.exec.use_executor`) — sequential and uncached by
    default, process-parallel and memoized when the CLI installs one.
    """
    from repro.exec.engine import current_executor
    from repro.exec.job import Job

    jobs = [Job(plan, name) for name in schemes]
    batches = current_executor().run_jobs(jobs, tracer=tracer)
    return {name: summarize(results) for name, results in zip(schemes, batches)}


@dataclass
class ExperimentResult:
    """A complete figure/table reproduction: series over a swept variable."""

    experiment_id: str
    title: str
    x_label: str
    xs: list
    summaries: Mapping[str, list[MetricSummary]]

    def series(self, metric: str) -> dict[str, list[float]]:
        return {
            name: [getattr(s, metric) for s in col]
            for name, col in self.summaries.items()
        }

    def text(self, bars: bool = True) -> str:
        from repro.metrics.reporting import TEXT_METRICS, format_bars, format_series

        blocks = []
        for metric, label in TEXT_METRICS:
            blocks.append(
                format_series(
                    f"{self.title} — {label}",
                    self.x_label,
                    self.xs,
                    self.series(metric),
                )
            )
        if bars:
            blocks.append(
                format_bars(
                    f"{self.title} — bandwidth profile",
                    self.series("bandwidth_mbps"),
                    self.xs,
                )
            )
        return "\n\n".join(blocks)


def sweep(
    experiment_id: str,
    title: str,
    x_label: str,
    xs: Sequence,
    plan_for,
    schemes: Sequence[str] = C.ALL_SCHEMES,
    tracer=None,
) -> ExperimentResult:
    """Run ``plan_for(x)`` for every x; collect per-scheme series.

    The whole grid goes to the ambient executor as *one* batch (x-major,
    scheme-minor — the order the sequential loop used), so a parallel
    executor can overlap every cell of the sweep, not just one point's.
    """
    from repro.exec.engine import current_executor
    from repro.exec.job import Job

    xs = list(xs)
    jobs = [Job(plan_for(x), name) for x in xs for name in schemes]
    batches = current_executor().run_jobs(jobs, tracer=tracer)
    summaries: dict[str, list[MetricSummary]] = {name: [] for name in schemes}
    it = iter(batches)
    for _x in xs:
        for name in schemes:
            summaries[name].append(summarize(next(it)))
    return ExperimentResult(experiment_id, title, x_label, xs, summaries)
