"""Disk-level experiments: Table 6-1 and Fig 6-5."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.calibration import format_table, grid_statistics, table_6_1
from repro.disk.mechanics import DiskMechanics
from repro.disk.service import BackgroundLoad, BlockService
from repro.disk.workload import InDiskLayout
from repro.metrics.reporting import format_series

MB = 1 << 20


@dataclass
class Tab61Result:
    cells: list
    stats: dict

    def text(self) -> str:
        return (
            format_table(self.cells)
            + "\n\n"
            + f"mean={self.stats['mean_mbps']:.1f} MB/s, "
            + f"min={self.stats['min_mbps']:.2f}, max={self.stats['max_mbps']:.1f}, "
            + f"spread={self.stats['spread']:.0f}x  (paper: mean 14.9, 0.52..53, ~100x)"
        )


def tab6_1(total_mb: int = 64, seed: int = 0) -> Tab61Result:
    """Regenerate the Table 6-1 bandwidth grid from the drive model."""
    cells = table_6_1(rng=np.random.default_rng(seed), total_mb=total_mb)
    return Tab61Result(cells, grid_statistics(cells))


@dataclass
class Fig65Result:
    intervals_ms: list
    fg_bandwidth_mbps: list
    bg_utilization: list

    def text(self) -> str:
        return format_series(
            "Fig 6-5: background workload impact on foreground bandwidth",
            "interval (ms)",
            self.intervals_ms,
            {
                "fg bw (MB/s)": self.fg_bandwidth_mbps,
                "bg utilization": self.bg_utilization,
            },
        )


def fig6_5(
    intervals_ms=(6, 10, 20, 40, 80, 120, 200),
    layout: InDiskLayout | None = None,
    n_blocks: int = 64,
    trials: int = 10,
    seed: int = 0,
) -> Fig65Result:
    """Foreground disk bandwidth vs background request interval (§6.2.5)."""
    mech = DiskMechanics()
    layout = layout or InDiskLayout(512, 1.0)
    spt = mech.geometry.zones[2].sectors_per_track
    bws, utils = [], []
    for ms in intervals_ms:
        bg = BackgroundLoad(interval_s=ms / 1000.0)
        per_trial = []
        for t in range(trials):
            rng = np.random.default_rng(seed + 31 * t)
            svc = BlockService(mech, layout, spt, rng, background=bg)
            completions = svc.serve(n_blocks, 1 * MB, 0.0)
            per_trial.append(n_blocks * 1.0 / float(completions[-1]))
        bws.append(float(np.mean(per_trial)))
        utils.append(round(bg.utilization(mech, spt), 3))
    return Fig65Result(list(intervals_ms), [round(b, 2) for b in bws], utils)
