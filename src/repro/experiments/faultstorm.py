"""``ext_faultstorm``: bandwidth distributions under a mid-operation fault storm.

The dissertation's robustness claims (Chapter 6) perturb the environment
*between* trials — each access still runs on a frozen cluster.  This
experiment perturbs the cluster *during* the access: every (scheme, trial)
pair samples a deterministic fault storm from a seeded
:class:`repro.faults.model.FaultModel` — fail-stops (no repair within the
window), transient slowdowns, filer crashes and link degradations — and
installs it before the read.

The output is a per-scheme bandwidth CDF summary (p10/p50/p90), mean,
standard deviation and coefficient of variation, plus the count of reads
the storm killed outright.  The paper's prediction: RAID-0's distribution
collapses (any lost stripe disk is fatal, so its bandwidth mixes zeros
with full-speed runs — maximal variance); the replicated schemes survive
but stretch; RobuSTore's erasure-coded speculation keeps both the median
and the spread close to the fault-free run.

Equal seeds reproduce equal storms and equal tables (the determinism
contract of :mod:`repro.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.access import MB, AccessConfig
from repro.experiments import config as C
from repro.experiments.harness import TrialPlan
from repro.faults.model import FaultModel
from repro.metrics.reporting import format_table

#: The storm used by the experiment (and by the golden regression tests).
#: A fault only matters while the struck disk still holds queued work, so
#: the per-disk MTTF is tuned against the schemes' *busy* windows: an
#: erasure-coded read cancels within a few hundred milliseconds and usually
#: dodges the storm, while a RAID-0 read keeps a straggler busy for
#: seconds and gets caught in a sizeable fraction of trials — without dying
#: every time.  Slowdowns, filer crashes and link degradation ride along.
STORM = FaultModel(
    mttf_s=50.0,
    mttr_s=None,  # no repair inside the window: fail-stops are permanent
    slow_mtbf_s=60.0,
    slow_factor=4.0,
    slow_duration_s=2.0,
    filer_crash_mtbf_s=20.0,
    filer_down_s=0.5,
    link_degrade_mtbf_s=15.0,
    link_extra_s=0.020,
    link_duration_s=2.0,
)

#: Storm sampling horizon; must cover the slowest scheme's access window.
HORIZON_S = 12.0


@dataclass
class FaultstormResult:
    """Per-scheme bandwidth distribution under the fault storm."""

    rows: list
    bandwidths: dict[str, list[float]]

    def text(self) -> str:
        return format_table(
            "Extension: bandwidth under a mid-operation fault storm",
            self.rows,
        )


def _summarise(name: str, results) -> dict:
    """One table row: bandwidth CDF landmarks for a scheme's trials.

    Failed reads (infinite latency) deliver zero bandwidth — they stay in
    the distribution, which is exactly how a lost read shows up to a user.
    """
    bw = np.array(
        [r.bandwidth_bps / MB if np.isfinite(r.latency_s) else 0.0 for r in results]
    )
    failed = int(sum(1 for r in results if not np.isfinite(r.latency_s)))
    mean = float(bw.mean())
    std = float(bw.std())
    p10, p50, p90 = (float(np.percentile(bw, q)) for q in (10, 50, 90))
    return {
        "scheme": name,
        "trials": len(results),
        "failed": failed,
        "bw_p10": round(p10, 2),
        "bw_p50": round(p50, 2),
        "bw_p90": round(p90, 2),
        "bw_mean": round(mean, 2),
        "bw_std": round(std, 2),
        "cv": round(std / mean, 3) if mean > 0 else float("inf"),
    }


def ext_faultstorm(
    data_mb: int = 128,
    n_disks: int = 32,
    seed: int = 0,
    schemes=C.ALL_SCHEMES,
    trials: int | None = None,
) -> FaultstormResult:
    """Run every scheme's read under per-trial sampled fault storms."""
    cfg = AccessConfig(data_bytes=data_mb * MB, n_disks=n_disks)
    plan = TrialPlan(
        access=cfg,
        seed=seed,
        fault_model=STORM,
        fault_horizon_s=HORIZON_S,
        **({"trials": trials} if trials is not None else {}),
    )
    from repro.exec.engine import current_executor
    from repro.exec.job import Job

    batches = current_executor().run_jobs([Job(plan, name) for name in schemes])

    rows = []
    bandwidths: dict[str, list[float]] = {}
    for name, results in zip(schemes, batches):
        rows.append(_summarise(name, results))
        bandwidths[name] = [
            r.bandwidth_bps / MB if np.isfinite(r.latency_s) else 0.0
            for r in results
        ]
    return FaultstormResult(rows, bandwidths)
