"""``ext_matrix``: the policy-composition grid, fault-free and stormy.

The layered policy architecture (:mod:`repro.core.policy`) makes every
scheme a declarative composition of placement x dispatch x completion x
fault-reaction x write.  This experiment sweeps the whole registered grid
— the paper's seven schemes *plus* the cross-product compositions that
exist only because the layers compose (``lt+adaptive``,
``mirror+adaptive``, ``rs+adaptive``) — through one read workload twice:
once on a healthy cluster and once under the :data:`ext_faultstorm` storm.

For each composition the table lists the layer stack (so the reader can
see *what* was composed) next to fault-free median write and read
bandwidth, storm median read bandwidth, the storm retention ratio and
the storm's outright kill count.  (The storm leg reads a fresh balanced
placement, mirroring :mod:`repro.experiments.faultstorm`: a storm can
kill the *write*, and a file that was never stored has nothing to read.)  The interesting comparisons the monoliths could never ask:
does adaptive dispatch rescue a mirrored placement the way rotated
replicas do?  Does LT coding still dodge the storm when driven by
multi-round stealing instead of speculation?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.access import MB, AccessConfig
from repro.core.policy.compose import COMPOSITIONS
from repro.experiments import config as C
from repro.experiments.faultstorm import HORIZON_S, STORM
from repro.experiments.harness import TrialPlan
from repro.metrics.reporting import format_table

#: Every registered composition, paper schemes first, cross-products last.
MATRIX_SCHEMES = tuple(COMPOSITIONS)


def _layer_names(name: str) -> dict:
    """Short layer labels for one composition (placement/dispatch/completion)."""
    spec = COMPOSITIONS[name]

    def short(obj, suffix: str) -> str:
        label = type(obj).__name__
        return label[: -len(suffix)].lower() if label.endswith(suffix) else label.lower()

    return {
        "placement": short(spec.placement, "Placement"),
        "dispatch": short(spec.dispatch, "Dispatch"),
        "completion": short(spec.completion, "Completion"),
        "reaction": short(spec.reaction, "Reaction"),
    }


def _median_bw(results) -> float:
    bw = [r.bandwidth_bps / MB if np.isfinite(r.latency_s) else 0.0 for r in results]
    return float(np.median(bw))


@dataclass
class MatrixResult:
    """Per-composition bandwidth, healthy vs under the fault storm."""

    rows: list
    medians: dict[str, tuple[float, float]]

    def text(self) -> str:
        return format_table(
            "Extension: the placement x dispatch x completion grid",
            self.rows,
        )


def ext_matrix(
    data_mb: int = 64,
    n_disks: int = 16,
    seed: int = 0,
    schemes=MATRIX_SCHEMES,
    trials: int | None = None,
) -> MatrixResult:
    """Run every composition fault-free and under the storm; tabulate both."""
    cfg = AccessConfig(data_bytes=data_mb * MB, n_disks=n_disks)
    extra = {"trials": trials} if trials is not None else {}
    writes = TrialPlan(access=cfg, mode="write", seed=seed, **extra)
    healthy = TrialPlan(access=cfg, mode="read", seed=seed, **extra)
    stormy = TrialPlan(
        access=cfg,
        mode="read",
        seed=seed,
        fault_model=STORM,
        fault_horizon_s=HORIZON_S,
        **extra,
    )
    from repro.exec.engine import current_executor
    from repro.exec.job import Job

    # One batch for the whole (scheme × leg) grid, so a parallel executor
    # overlaps every cell rather than each scheme's three legs at a time.
    legs = (writes, healthy, stormy)
    jobs = [Job(plan, name) for name in schemes for plan in legs]
    batches = iter(current_executor().run_jobs(jobs))

    rows = []
    medians: dict[str, tuple[float, float]] = {}
    for name in schemes:
        wr, base, storm = (next(batches) for _ in legs)
        bw0 = _median_bw(base)
        bw1 = _median_bw(storm)
        killed = int(sum(1 for r in storm if not np.isfinite(r.latency_s)))
        medians[name] = (bw0, bw1)
        rows.append(
            {
                "scheme": name,
                **_layer_names(name),
                "w_p50": round(_median_bw(wr), 2),
                "bw_p50": round(bw0, 2),
                "storm_p50": round(bw1, 2),
                "retained": round(bw1 / bw0, 3) if bw0 > 0 else 0.0,
                "killed": killed,
            }
        )
    return MatrixResult(rows, medians)
