"""Extension: multi-tenant serving at scale (``ext_serve``).

Sweeps the open-loop client population per scheme through the
:mod:`repro.serve` facade: consistent-hash placement across filers,
QoS-planned admission, per-filer queueing with graceful rejection, and
SLO-grade metrics (p50/p99/p999 latency, goodput under overload,
rejection rate).  Each ``(scheme, client count)`` cell is one
:class:`repro.serve.ServeJob` submitted through the ambient
:mod:`repro.exec` executor, so cells parallelise over ``-j N`` workers
and memoize in the result cache — byte-identically to a sequential run.

``REPRO_SERVE_CLIENTS`` (comma-separated counts) overrides the swept
populations; the default tops out at 10⁵ simulated clients.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.metrics.reporting import format_table
from repro.serve.job import ServeJob
from repro.serve.service import ServePlan
from repro.serve.slo import ServeReport
from repro.serve.workload import WorkloadSpec

#: Default swept client populations (override with ``REPRO_SERVE_CLIENTS``).
DEFAULT_CLIENTS = (1_000, 10_000, 100_000)

#: Schemes served (the paper's protagonist and its baseline).
SERVE_SCHEMES = ("raid0", "robustore")


def serve_clients(default=DEFAULT_CLIENTS) -> tuple[int, ...]:
    """Swept client counts (``REPRO_SERVE_CLIENTS`` overrides)."""
    raw = os.environ.get("REPRO_SERVE_CLIENTS")
    if not raw:
        return tuple(default)
    counts = tuple(int(tok) for tok in raw.split(",") if tok.strip())
    if not counts or any(c < 1 for c in counts):
        raise ValueError(f"bad REPRO_SERVE_CLIENTS={raw!r}")
    return counts


@dataclass
class ServeSweepResult:
    """Per-cell SLO reports over the client-count sweep."""

    reports: list[ServeReport]

    def text(self) -> str:
        return format_table(
            "Extension: multi-tenant serving — consistent-hash placement, "
            "QoS admission, SLO metrics (open loop)",
            [r.row() for r in self.reports],
        )


def base_plan(n_clients: int, seed: int = 0) -> ServePlan:
    """The baseline serving cell at ``n_clients`` open-loop clients."""
    return ServePlan(
        workload=WorkloadSpec(n_clients=n_clients),
        seed=seed,
    )


def ext_serve(
    client_counts=None,
    schemes=SERVE_SCHEMES,
    seed: int = 0,
) -> ServeSweepResult:
    """SLO metrics per scheme vs open-loop client population."""
    from repro.exec.engine import current_executor

    counts = serve_clients() if client_counts is None else tuple(client_counts)
    jobs = [
        ServeJob(base_plan(n, seed=seed), scheme)
        for n in counts
        for scheme in schemes
    ]
    reports = current_executor().run_jobs(jobs)
    return ServeSweepResult(list(reports))


def overload_plan(n_clients: int, seed: int = 0) -> ServePlan:
    """A deliberately undersized cluster: overload behaviour on display."""
    plan = base_plan(n_clients, seed=seed)
    return replace(plan, pool=32, max_wait_s=5.0)
