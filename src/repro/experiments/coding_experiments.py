"""Chapter 4/5 coding experiments: Fig 4-1, Table 5-1, Figs 5-1/5-2/5-3."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.coding.analysis import (
    erasure_coverage_curve,
    median_blocks_needed,
    replication_coverage_curve,
)
from repro.coding.lt import ImprovedLTCode
from repro.coding.peeling import PeelingDecoder, blocks_needed
from repro.coding.reed_solomon import ReedSolomonCode
from repro.coding.xorblocks import random_blocks
from repro.metrics.reporting import format_series, format_table

MB = 1 << 20


def _samples(default: int) -> int:
    return int(os.environ.get("REPRO_CODING_SAMPLES", default))


# ---------------------------------------------------------------- Fig 4-1


@dataclass
class Fig41Result:
    ms: np.ndarray
    replicated: np.ndarray
    coded: np.ndarray
    median_replicated: int
    median_coded: int

    def text(self) -> str:
        series = {
            "replicated": list(self.replicated),
            "LT-coded": list(self.coded),
        }
        body = format_series(
            "Fig 4-1: cumulative probability of reassembly (K=1024, 4x blocks)",
            "M blocks",
            [int(m) for m in self.ms],
            series,
            fmt="{:10.3f}",
        )
        return (
            body
            + f"\n\nmedian blocks needed: replicated={self.median_replicated}"
            + f" (~{self.median_replicated / 1024:.2f}K), "
            + f"coded={self.median_coded} (~{self.median_coded / 1024:.2f}K)"
        )


def fig4_1(k: int = 1024, expansion: int = 4, degree: int = 5, points: int = 13) -> Fig41Result:
    """Appendix A curves: replication vs erasure coding reassembly."""
    ms = np.linspace(k, expansion * k, points).astype(int)
    repl = replication_coverage_curve(k, expansion, ms)
    coded = erasure_coverage_curve(k, degree, ms)
    fine = np.arange(k, expansion * k + 1, max(1, k // 32))
    m_repl = median_blocks_needed(fine, replication_coverage_curve(k, expansion, fine))
    m_coded = median_blocks_needed(fine, erasure_coverage_curve(k, degree, fine))
    return Fig41Result(ms, repl, coded, m_repl, m_coded)


# ---------------------------------------------------------------- Table 5-1


@dataclass
class Tab51Row:
    k: int
    n: int
    encode_mbps: float
    decode_mbps: float


@dataclass
class Tab51Result:
    rows: list

    def text(self) -> str:
        return format_table(
            "Table 5-1: Reed-Solomon coding bandwidth (rate 1/2)",
            [
                {
                    "K": r.k,
                    "N": r.n,
                    "encode MB/s": round(r.encode_mbps, 1),
                    "decode MB/s": round(r.decode_mbps, 1),
                }
                for r in self.rows
            ],
        )


def tab5_1(data_mb: int = 16, ks=(4, 8, 16, 32), seed: int = 0) -> Tab51Result:
    """RS encode/decode bandwidth vs word length K (N = 2K, fixed data)."""
    rng = np.random.default_rng(seed)
    rows = []
    for k in ks:
        n = 2 * k
        block_len = (data_mb * MB) // k
        block_len -= block_len % 8
        code = ReedSolomonCode(k, n)
        data = random_blocks(rng, k, block_len)

        t0 = time.perf_counter()
        coded = code.encode(data)
        t_enc = time.perf_counter() - t0

        ids = rng.choice(n, size=k, replace=False)
        t0 = time.perf_counter()
        out = code.decode(ids, coded[ids])
        t_dec = time.perf_counter() - t0
        assert np.array_equal(out, data)

        total = k * block_len / MB
        rows.append(Tab51Row(k, n, total / t_enc, total / t_dec))
    return Tab51Result(rows)


# ---------------------------------------------------------------- Fig 5-1 / 5-2


@dataclass
class LTGridResult:
    title: str
    ks: list
    cs: list
    deltas: list
    mean: dict      # (k, c, delta) -> mean metric
    rel_std: dict   # (k, c, delta) -> relative std

    def text(self) -> str:
        lines = [self.title, "-" * len(self.title)]
        for k in self.ks:
            lines.append(f"K = {k}")
            header = "   C \\ delta | " + " | ".join(f"{d:>8}" for d in self.deltas)
            lines.append(header)
            for c in self.cs:
                cells = []
                for d in self.deltas:
                    m = self.mean[(k, c, d)]
                    s = self.rel_std[(k, c, d)]
                    cells.append(f"{m:5.2f}±{s:4.2f}")
                lines.append(f"{c:>12} | " + " | ".join(f"{x:>8}" for x in cells))
        return "\n".join(lines)


def fig5_1(
    ks=(128, 512, 1024),
    cs=(0.1, 0.3, 0.5, 1.0, 2.0),
    deltas=(0.01, 0.1, 0.5),
    samples: int | None = None,
    seed: int = 0,
) -> LTGridResult:
    """Reception overhead of (improved) LT codes across C and delta."""
    samples = samples if samples is not None else _samples(8)
    mean, rel = {}, {}
    for k in ks:
        for c in cs:
            for d in deltas:
                code = ImprovedLTCode(k, c=c, delta=d)
                overheads = []
                for s in range(samples):
                    rng = np.random.default_rng(seed + 1000 * s + k)
                    graph = code.build_graph(4 * k, rng)
                    used = blocks_needed(graph, rng.permutation(graph.n))
                    overheads.append(used / k - 1.0)
                arr = np.array(overheads)
                mean[(k, c, d)] = float(arr.mean())
                rel[(k, c, d)] = float(arr.std() / max(1e-9, 1 + arr.mean()))
    return LTGridResult(
        "Fig 5-1: LT reception overhead (mean ± relative std)", list(ks), list(cs), list(deltas), mean, rel
    )


def fig5_2(
    k: int = 1024,
    cs=(0.1, 0.3, 0.5, 1.0, 2.0),
    deltas=(0.01, 0.1, 0.5),
    samples: int | None = None,
    seed: int = 0,
) -> LTGridResult:
    """Edges consumed during decoding (CPU-cost proxy), K = 1024."""
    samples = samples if samples is not None else _samples(6)
    mean, rel = {}, {}
    for c in cs:
        for d in deltas:
            code = ImprovedLTCode(k, c=c, delta=d)
            edges = []
            for s in range(samples):
                rng = np.random.default_rng(seed + 7000 * s)
                graph = code.build_graph(4 * k, rng)
                dec = PeelingDecoder(graph)
                for cid in rng.permutation(graph.n):
                    dec.add(int(cid))
                    if dec.is_complete:
                        break
                edges.append(dec.edges_peeled / 1000.0)
            arr = np.array(edges)
            mean[(k, c, d)] = float(arr.mean())
            rel[(k, c, d)] = float(arr.std() / max(1e-9, arr.mean()))
    return LTGridResult(
        "Fig 5-2: edges used in LT decoding (thousands), K=1024",
        [k], list(cs), list(deltas), mean, rel,
    )


# ---------------------------------------------------------------- Fig 5-3


@dataclass
class Fig53Row:
    c: float
    delta: float
    decode_mbps: float
    reception_overhead: float


@dataclass
class Fig53Result:
    rows: list

    def text(self) -> str:
        return format_table(
            "Fig 5-3: LT decoding bandwidth and reception overhead (K=1024)",
            [
                {
                    "C": r.c,
                    "delta": r.delta,
                    "decode MB/s": round(r.decode_mbps, 1),
                    "reception ovh": round(r.reception_overhead, 3),
                }
                for r in self.rows
            ],
        )


def fig5_3(
    k: int = 1024,
    block_kb: int = 64,
    pairs=((0.5, 0.5), (1.0, 0.5), (1.0, 0.1), (2.0, 0.1), (2.0, 0.01)),
    seed: int = 0,
) -> Fig53Result:
    """Real decoding bandwidth on this host across (C, delta).

    The trade-off to reproduce: larger C / larger delta -> sparser decoding
    graphs -> faster decoding but higher reception overhead.
    """
    rng = np.random.default_rng(seed)
    block_len = block_kb << 10
    rows = []
    for c, d in pairs:
        code = ImprovedLTCode(k, c=c, delta=d)
        graph = code.build_graph(2 * k, rng)
        data = random_blocks(rng, k, block_len)
        coded = code.encode(data, graph)
        order = rng.permutation(graph.n)

        dec = PeelingDecoder(graph, block_len=block_len)
        t0 = time.perf_counter()
        used = 0
        for cid in order:
            dec.add(int(cid), coded[cid])
            used += 1
            if dec.is_complete:
                break
        elapsed = time.perf_counter() - t0
        assert np.array_equal(dec.get_data(), data)
        rows.append(
            Fig53Row(c, d, k * block_len / MB / elapsed, used / k - 1.0)
        )
    return Fig53Result(rows)
